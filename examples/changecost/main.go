// Changecost: the paper's §5 maintenance scenario, quantified. The
// customer asks to replace the Index access structure with an Indexed
// Guided Tour; this example measures what that change costs in the
// tangled implementation (edit every page of every context, Figures 3–4)
// versus the separated implementation (edit one declaration line).
//
// Run with: go run ./examples/changecost
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/tangled"
)

func main() {
	fmt.Println("Cost of switching ByAuthor from Index to Indexed Guided Tour")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "context size\ttangled: files edited\ttangled: lines\tseparated: files\tseparated: lines")
	for _, n := range []int{3, 10, 50, 100, 500} {
		store := museum.Synthetic(museum.SyntheticSpec{
			Painters: 1, PaintingsPerPainter: n, Seed: 11,
		})
		r, err := tangled.MeasureAccessChange(store, museum.Model, "ByAuthor",
			navigation.Index{}, navigation.IndexedGuidedTour{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n",
			n, r.Tangled.FilesChanged, r.Tangled.TotalLineEdits(),
			r.Separated.FilesChanged, r.Separated.TotalLineEdits())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The tangled cost is linear in the context size; the separated cost")
	fmt.Println("is one replaced line in the navigation declaration, at any size —")
	fmt.Println("the paper's argument, measured.")
}
