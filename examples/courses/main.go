// Courses: the library applied to a second domain — a university course
// catalog — showing nothing in the machinery is museum-specific. The
// conceptual model holds departments and courses; navigation declares a
// per-department guided tour ordered by level, a filtered context of
// advanced courses, and a department menu landmark reachable from every
// page.
//
// Run with: go run ./examples/courses
package main

import (
	"fmt"
	"log"

	navaspect "repro"
)

func main() {
	schema := navaspect.NewSchema()
	schema.MustAddClass(navaspect.NewClass("Department",
		navaspect.AttrDef{Name: "name", Type: navaspect.StringAttr, Required: true},
	))
	schema.MustAddClass(navaspect.NewClass("Course",
		navaspect.AttrDef{Name: "title", Type: navaspect.StringAttr, Required: true},
		navaspect.AttrDef{Name: "level", Type: navaspect.IntAttr},
	))
	schema.MustAddRelationship(&navaspect.Relationship{
		Name: "offers", Source: "Department", Target: "Course", Card: navaspect.OneToMany,
	})

	store := navaspect.NewStore(schema)
	store.MustAdd("Department", "cs", map[string]string{"name": "Computer Science"})
	store.MustAdd("Department", "math", map[string]string{"name": "Mathematics"})
	for id, course := range map[string]map[string]string{
		"cs101":   {"title": "Programming I", "level": "100"},
		"cs201":   {"title": "Data Structures", "level": "200"},
		"cs401":   {"title": "Distributed Systems", "level": "400"},
		"math101": {"title": "Calculus", "level": "100"},
		"math301": {"title": "Topology", "level": "300"},
	} {
		store.MustAdd("Course", id, course)
	}
	for _, id := range []string{"cs101", "cs201", "cs401"} {
		store.MustLink("offers", "cs", id)
	}
	for _, id := range []string{"math101", "math301"} {
		store.MustLink("offers", "math", id)
	}

	model := navaspect.NewModel()
	model.MustAddNodeClass(&navaspect.NodeClass{Name: "CourseNode", Class: "Course", TitleAttr: "title"})
	model.MustAddContext(&navaspect.ContextDef{
		Name: "ByDepartment", NodeClass: "CourseNode",
		GroupBy: "offers", OrderBy: "level",
		Access: navaspect.IndexedGuidedTour{},
	})
	model.MustAddContext(&navaspect.ContextDef{
		Name: "Advanced", NodeClass: "CourseNode",
		OrderBy: "title", Where: "level >= 300",
		Access: navaspect.Index{},
	})
	model.MustAddContext(&navaspect.ContextDef{
		Name: "AllCourses", NodeClass: "CourseNode",
		OrderBy: "title", Access: navaspect.Menu{},
	})
	model.MustAddLandmark("AllCourses")

	app, err := navaspect.New(store, model)
	if err != nil {
		log.Fatal(err)
	}
	site, err := app.WeaveSite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("woven %d pages; contexts:\n", site.Len())
	for _, rc := range app.Resolved().Contexts {
		fmt.Printf("  %-24s %-20s %d members\n", rc.Name, rc.Def.Access.Kind(), len(rc.Members))
	}

	// The study path: walk the CS tour in level order.
	s := navaspect.NewSession(app.Resolved())
	must(s.EnterContext("ByDepartment:cs", "cs101"))
	fmt.Println("\nCS study path:")
	fmt.Printf("  start at %s\n", s.Here().Title())
	for s.Next() == nil {
		fmt.Printf("  next: %s\n", s.Here().Title())
	}

	page, err := app.RenderPage("Advanced", "cs401")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDistributed Systems in the Advanced context (filtered, with landmark):")
	fmt.Println(page.HTML)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
