// Adaptive navigation: derive the access structure from traffic
// instead of authoring it. The museum opens with the paper's
// hand-declared indexed guided tour (ordered by year), simulated
// visitors walk their own dominant path through the Picasso rooms, and
// the analytics pipeline — recorder, transition graph, derivation —
// compiles their behaviour into an adaptive tour that is swapped in
// through the same SetAccessStructure call the paper's §5 change
// scenario uses. Navigation is so separate from the conceptual model
// that the linkbase can be rewritten from telemetry while nothing else
// moves.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	navaspect "repro"
	"repro/internal/analytics"
	"repro/internal/museum"
	"repro/internal/navigation"
)

func main() {
	app, err := navaspect.New(museum.PaperStore(), museum.Model(navaspect.IndexedGuidedTour{}))
	if err != nil {
		log.Fatal(err)
	}
	const ctx = "ByAuthor:picasso"

	fmt.Println("== authored structure (indexed guided tour, ordered by year)")
	printTour(app, ctx)

	// Simulate a season of museum traffic. The curators ordered the
	// rooms by year (avignon 1907, guitar 1913, guernica 1937), but
	// most visitors come for Guernica first and wander backwards — and
	// nobody who starts elsewhere skips Guitar.
	rec := analytics.NewRecorder(analytics.RecorderConfig{})
	for v := 0; v < 60; v++ { // the dominant trail
		rec.Record(ctx, analytics.EntryFrom, "guernica")
		rec.Record(ctx, "guernica", "avignon")
		rec.Record(ctx, "avignon", "guitar")
	}
	for v := 0; v < 15; v++ { // a minority tours by year
		rec.Record(ctx, analytics.EntryFrom, "avignon")
		rec.Record(ctx, "avignon", "guitar")
		rec.Record(ctx, "guitar", "guernica")
	}
	for v := 0; v < 30; v++ { // and the Guitar draws direct visits
		rec.Record(ctx, analytics.EntryFrom, "guitar")
	}
	st := rec.Stats()
	fmt.Printf("\n== recorded %d hops (0 allocations, ~40ns each)\n", st.Recorded)

	// Fold the hops into a transition graph and look at what it learned.
	g := analytics.BuildGraph(rec.Snapshot())
	cg := g.Contexts[ctx]
	fmt.Printf("top entries: %v\n", cg.TopEntries(3))
	fmt.Printf("top edges:   %v\n", cg.TopEdges(3))

	// Compile the graph into access structures and swap them live. The
	// dependency-aware page cache re-weaves only the contexts whose
	// edges changed.
	cfg := analytics.Config{MinHops: 10, LandmarkShare: 0.35}
	tours := analytics.Derive(g, analytics.Infos(app.Resolved()), cfg)
	for family, tour := range tours {
		plan := tour.Plans[ctx]
		fmt.Printf("\n== derived adaptive tour for %s\n", family)
		fmt.Printf("order:     %v\n", plan.Order)
		fmt.Printf("landmarks: %v (visit share over %.0f%%)\n", plan.Landmarks, 100*cfg.LandmarkShare)
		if err := app.SetAccessStructure(family, tour); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n== woven structure after adaptation")
	printTour(app, ctx)
}

// printTour walks the context's Next chain from its first member and
// shows the hub roll order.
func printTour(app *navaspect.App, ctx string) {
	rc := app.Resolved().Context(ctx)
	var order []string
	for _, e := range rc.Edges() {
		if e.From == navigation.HubID && e.Kind == navigation.EdgeMember {
			order = append(order, e.To)
		}
	}
	fmt.Printf("hub roll: %v\n", order)
	if len(order) == 0 {
		return
	}
	trail := []string{order[0]}
	for n := rc.Next(order[0]); n != nil && len(trail) < len(order); n = rc.Next(n.ID()) {
		trail = append(trail, n.ID())
	}
	fmt.Printf("tour:     %v\n", trail)
}
