// Museum: the paper's full running example — two context families
// (ByAuthor, ByMovement) over the same paintings, a custom presentation
// stylesheet, a static weave to disk, and the §2 context-dependence demo:
// the same painting answers "Next" differently depending on how it was
// reached.
//
// Run with: go run ./examples/museum [-out museum-site]
package main

import (
	"flag"
	"fmt"
	"log"

	navaspect "repro"
	"repro/internal/museum"
)

const stylesheet = `<s:stylesheet xmlns:s="urn:repro:style">
  <s:template match="Painting" priority="1">
    <html>
      <head><title><s:value-of select="title"/></title></head>
      <body>
        <h1><s:value-of select="title"/></h1>
        <p class="caption">
          <s:value-of select="title"/> (<s:value-of select="year"/>)
          <s:if test="technique != ''"> — <s:value-of select="technique"/></s:if>
        </p>
      </body>
    </html>
  </s:template>
</s:stylesheet>`

func main() {
	out := flag.String("out", "", "when set, write the woven site to this directory")
	flag.Parse()

	// The paper's dataset and navigational model, via the museum fixture.
	app, err := navaspect.New(museum.PaperStore(), museum.Model(navaspect.IndexedGuidedTour{}))
	if err != nil {
		log.Fatal(err)
	}
	ss, err := navaspect.ParseStylesheet(stylesheet)
	if err != nil {
		log.Fatal(err)
	}
	app.SetStylesheet(ss)

	site, err := app.WeaveSite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("woven %d pages across %d contexts\n\n", site.Len(), len(app.Resolved().Contexts))

	// The §2 demonstration: Next from Guitar depends on the entry path.
	byAuthor := navaspect.NewSession(app.Resolved())
	must(byAuthor.EnterContext("ByAuthor:picasso", "guitar"))
	must(byAuthor.Next())
	fmt.Printf("Guitar reached via its author   -> Next is %q (%s)\n",
		byAuthor.Here().Title(), byAuthor.Here().ID())

	byMovement := navaspect.NewSession(app.Resolved())
	must(byMovement.EnterContext("ByMovement:cubism", "guitar"))
	must(byMovement.Next())
	fmt.Printf("Guitar reached via its movement -> Next is %q (%s)\n",
		byMovement.Here().Title(), byMovement.Here().ID())

	// A walk with the context switch of the museum visitor.
	walk := navaspect.NewSession(app.Resolved())
	must(walk.EnterContext("ByAuthor:picasso", navaspect.HubID))
	must(walk.Select("guernica"))
	must(walk.SwitchContext("ByMovement:surrealism"))
	must(walk.Next())
	fmt.Println("\nvisitor trail (context @ node):")
	for _, v := range walk.History() {
		fmt.Printf("  %s @ %s\n", v.Context, v.NodeID)
	}

	if *out != "" {
		if err := site.WriteTo(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsite written to %s\n", *out)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
