// Gallerywall: the XLink behaviours the paper could not demonstrate in
// 2002 browsers, honoured by this library's agent. A context declared
// with xlink:show="embed" turns its index page into a gallery wall — the
// members' content is inlined where the links would stand — and a second
// context with xlink:show="new" opens paintings in a separate window.
// A declarative Where filter (OOHDM's context classes) restricts one
// context to modern works.
//
// Run with: go run ./examples/gallerywall
package main

import (
	"fmt"
	"log"

	navaspect "repro"
	"repro/internal/museum"
)

func main() {
	model := navaspect.NewModel()
	model.MustAddNodeClass(&navaspect.NodeClass{
		Name: "PaintingNode", Class: "Painting", TitleAttr: "title",
	})
	// The gallery wall: an embedded index over every painting.
	model.MustAddContext(&navaspect.ContextDef{
		Name: "Wall", NodeClass: "PaintingNode",
		OrderBy: "year",
		Access:  navaspect.Menu{},
		Show:    "embed",
	})
	// Modern works only, opened in a new window.
	model.MustAddContext(&navaspect.ContextDef{
		Name: "ModernByAuthor", NodeClass: "PaintingNode",
		GroupBy: "paints", OrderBy: "year",
		Where:  "year >= 1910",
		Access: navaspect.IndexedGuidedTour{},
		Show:   "new",
	})

	app, err := navaspect.New(museum.PaperStore(), model)
	if err != nil {
		log.Fatal(err)
	}

	wall, err := app.RenderPage("Wall", navaspect.HubID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== The gallery wall (xlink:show=\"embed\") ===")
	fmt.Println(wall.HTML)

	modern, err := app.RenderPage("ModernByAuthor:picasso", "guitar")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Modern works, filtered (year >= 1910), opened per xlink:show=\"new\" ===")
	fmt.Println(modern.HTML)

	fmt.Println("=== The behaviours live in links.xml, not in any page ===")
	lb := app.Linkbase().IndentedString()
	if len(lb) > 1200 {
		lb = lb[:1200] + "\n...\n"
	}
	fmt.Println(lb)
}
