// Searchscroll: the paper's §2 distinction between navigating and
// scrolling. The numbered links under a search-engine result list do not
// move the user to a different information space — they page through the
// same one — so they are not navigation. This example builds a paginated
// result set next to the museum's navigation graph and classifies every
// link.
//
// Run with: go run ./examples/searchscroll
package main

import (
	"fmt"
	"log"

	"repro/internal/museum"
	"repro/internal/navigation"
)

func main() {
	// A search for "cubist guitars" returning 23 hits, 10 per page.
	results := make([]string, 23)
	for i := range results {
		results[i] = fmt.Sprintf("hit%02d", i)
	}
	pages, pageEdges, err := navigation.Paginate(results, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search result list: %d hits over %d pages\n", len(results), len(pages))
	for _, p := range pages {
		fmt.Printf("  page %d: %d hits\n", p.Number, len(p.Items))
	}

	// The museum's real navigation, for contrast.
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		log.Fatal(err)
	}
	var navEdges []navigation.Edge
	for _, rc := range rm.Contexts {
		navEdges = append(navEdges, rc.Edges()...)
	}

	fmt.Println("\nclassifying every link (§2 semantics):")
	all := append(append([]navigation.Edge{}, navEdges...), pageEdges...)
	report := navigation.ClassifyAll(all)
	fmt.Printf("  navigational: %3d  (index members, up, next, prev — movement between nodes)\n",
		report.Navigational)
	fmt.Printf("  scrolling:    %3d  (result paging — same information space)\n",
		report.Scrolling)

	fmt.Println("\nexamples:")
	fmt.Printf("  %-40s -> %s\n", pageEdges[0].String(), navigation.Classify(pageEdges[0].Kind))
	for _, e := range navEdges {
		if e.Kind == navigation.EdgeNext {
			fmt.Printf("  %-40s -> %s\n", e.String(), navigation.Classify(e.Kind))
			break
		}
	}
}
