// Control plane: the paper's one-line maintenance change as a one-call
// edit against a live server. A navserve-equivalent process serves the
// museum on a loopback port with its /api/v1 control plane enabled; a
// reader polls a page with conditional GETs (as any HTTP cache would);
// then a *second* process — here played by the typed client, exactly
// what `navctl context set-structure` runs — flips the ByAuthor family
// from the authored indexed guided tour to a pure guided tour. The
// reader's next revalidation comes back 200 with a rotated ETag and the
// new link topology, while a page of the untouched ByMovement family
// keeps answering 304: the swap's blast radius was one family, because
// navigation is a separated, dependency-tracked aspect.
//
// Run with: go run ./examples/controlplane
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	navaspect "repro"
	"repro/client"
	"repro/internal/museum"
	"repro/internal/server"
)

const token = "example-control-plane-token"

func main() {
	// Process one: the serving fleet (of one), control plane enabled.
	app, err := navaspect.New(museum.PaperStore(), museum.Model(navaspect.IndexedGuidedTour{}))
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(app, server.WithAPIToken(token))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("== serving the museum on %s (control plane at /api/v1)\n", base)

	// The reader: a plain HTTP client revalidating two pages, one per
	// family, the way any intermediary cache would.
	authorPage := base + "/ByAuthor/picasso/guitar.html"
	movementPage := base + "/ByMovement/cubism/guitar.html"
	authorTag, authorBody := get(authorPage, "")
	movementTag, _ := get(movementPage, "")
	fmt.Printf("reader cached %s (ETag %s)\n", authorPage, authorTag)
	fmt.Printf("reader cached %s (ETag %s)\n", movementPage, movementTag)
	fmt.Printf("page links Up to the family index: %v\n\n", strings.Contains(authorBody, `class="nav-up"`))

	// Process two: the operator. This client is what navctl wraps —
	// over a real socket, nothing in-process.
	c, err := client.New(base, token)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	st, err := c.Structure(ctx, "ByAuthor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== operator reads the live structure: %s\n", st.Text)
	fmt.Println("== operator flips ByAuthor to a guided tour (one call — the paper's one-line change)")
	res, err := c.SetStructureKind(ctx, "ByAuthor", "guided-tour")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server re-wove %d cached pages, affected contexts: %s\n\n",
		res.DroppedPages, strings.Join(res.Contexts, ", "))

	// The reader revalidates. Affected family: new entity, new tag.
	status, newTag, newBody := revalidate(authorPage, authorTag)
	fmt.Printf("reader revalidates %s: %d (ETag %s -> %s)\n", authorPage, status, authorTag, newTag)
	fmt.Printf("page links Up to the family index: %v (the tour has no index page now)\n",
		strings.Contains(newBody, `class="nav-up"`))

	// Untouched family: still 304 — the old validator survives.
	status, _, _ = revalidate(movementPage, movementTag)
	fmt.Printf("reader revalidates %s: %d (validator survived the other family's swap)\n\n", movementPage, status)

	// And the spec artifact reads back the new declaration.
	model, err := c.Model(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(model.SpecText), "\n") {
		if strings.HasPrefix(line, "context ") {
			fmt.Println(line)
		}
	}
}

// get fetches a URL, returning its ETag and body.
func get(url, inm string) (etag, body string) {
	status, etag, body := revalidate(url, inm)
	if status != http.StatusOK {
		log.Fatalf("GET %s = %d", url, status)
	}
	return etag, body
}

// revalidate performs a conditional GET.
func revalidate(url, inm string) (status int, etag, body string) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), string(raw)
}
