// Quickstart: the smallest complete use of the navaspect public API.
//
// It declares a three-painting gallery, weaves it with an Index access
// structure, prints one woven page, then swaps the access structure to an
// Indexed Guided Tour with a single call — the paper's motivating change —
// and prints the same page again to show the navigation that appeared.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	navaspect "repro"
)

func main() {
	// 1. The conceptual model: pure data, no links (paper §5 step 1).
	schema := navaspect.NewSchema()
	schema.MustAddClass(navaspect.NewClass("Painter",
		navaspect.AttrDef{Name: "name", Type: navaspect.StringAttr, Required: true},
	))
	schema.MustAddClass(navaspect.NewClass("Painting",
		navaspect.AttrDef{Name: "title", Type: navaspect.StringAttr, Required: true},
		navaspect.AttrDef{Name: "year", Type: navaspect.IntAttr},
	))
	schema.MustAddRelationship(&navaspect.Relationship{
		Name: "paints", Source: "Painter", Target: "Painting", Card: navaspect.OneToMany,
	})

	store := navaspect.NewStore(schema)
	store.MustAdd("Painter", "picasso", map[string]string{"name": "Pablo Picasso"})
	store.MustAdd("Painting", "avignon", map[string]string{"title": "Les Demoiselles d'Avignon", "year": "1907"})
	store.MustAdd("Painting", "guitar", map[string]string{"title": "Guitar", "year": "1913"})
	store.MustAdd("Painting", "guernica", map[string]string{"title": "Guernica", "year": "1937"})
	store.MustLink("paints", "picasso", "avignon")
	store.MustLink("paints", "picasso", "guitar")
	store.MustLink("paints", "picasso", "guernica")

	// 2. The navigational aspect, declared separately (§5 step 2).
	model := navaspect.NewModel()
	model.MustAddNodeClass(&navaspect.NodeClass{
		Name: "PaintingNode", Class: "Painting", TitleAttr: "title",
	})
	model.MustAddContext(&navaspect.ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode",
		GroupBy: "paints", OrderBy: "year",
		Access: navaspect.Index{},
	})

	// 3. Weave (§5 steps 3-4: join points + composition).
	app, err := navaspect.New(store, model)
	if err != nil {
		log.Fatal(err)
	}

	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Guitar page with Index (the paper's Figure 3) ===")
	fmt.Println(page.HTML)

	// 4. The requirements change: one declaration swap, zero page edits.
	if err := app.SetAccessStructure("ByAuthor", navaspect.IndexedGuidedTour{}); err != nil {
		log.Fatal(err)
	}
	page, err = app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Guitar page with Indexed Guided Tour (Figure 4) ===")
	fmt.Println(page.HTML)

	// The separated navigation lives in links.xml, not in the pages.
	fmt.Println("=== links.xml (excerpt, Figure 9) ===")
	lb := app.Linkbase().IndentedString()
	if len(lb) > 800 {
		lb = lb[:800] + "\n...\n"
	}
	fmt.Println(lb)
}
