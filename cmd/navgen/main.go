// Command navgen is the compile-time weaver: it composes data,
// presentation and the navigational aspect once, at generation time, and
// emits a standalone Go program with the woven site baked in — the
// build-time counterpart of navserve's request-time weaving, mirroring
// AspectJ's class-file weaving among the §3 mechanisms.
//
// Usage:
//
//	navgen -out woven/main.go
//	cd woven && go run .   # serves the pre-woven site
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/codegen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("navgen", flag.ContinueOnError)
	var flags cli.DatasetFlags
	flags.Register(fs)
	out := fs.String("out", "woven_site.go", "output Go source file")
	pkg := fs.String("package", "main", "generated package name")
	addr := fs.String("addr", ":8080", "default listen address baked into the program")
	if err := fs.Parse(args); err != nil {
		return err
	}

	app, err := flags.BuildApp()
	if err != nil {
		return err
	}
	src, err := codegen.Generate(app, codegen.Options{Package: *pkg, Addr: *addr})
	if err != nil {
		return err
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		return err
	}
	fmt.Printf("generated %s (%d bytes of pre-woven site)\n", *out, len(src))
	return nil
}
