package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesSource(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen", "main.go")
	if err := run([]string{"-out", out, "-addr", ":7777"}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DO NOT EDIT", "package main", `":7777"`, "guitar.html"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-dataset", "bogus"}); err == nil {
		t.Error("bogus dataset accepted")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	// Unwritable output path.
	if err := run([]string{"-out", "/proc/definitely/not/writable/main.go"}); err == nil {
		t.Error("unwritable path accepted")
	}
}
