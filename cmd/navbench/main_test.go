package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// Run the cheap, artifact-producing experiments through the CLI
	// path; the timing ones run in the experiments package tests.
	for _, id := range []string{"e2", "e4", "e6", "e9", "e13"} {
		if err := run([]string{"-exp", id}); err != nil {
			t.Errorf("run(-exp %s): %v", id, err)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
