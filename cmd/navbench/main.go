// Command navbench regenerates the paper's figures and the quantified
// claims as experiment output — the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	navbench            # run every experiment
//	navbench -exp e5    # just the Figure 4 reproduction
//	navbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("navbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (e1..e13) or 'all'")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		out, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(strings.TrimRight(out, "\n"))
		fmt.Println()
	}
	return nil
}
