// Package core stubs the application core: just enough surface for the
// planes analyzer's mutation-plane table to bind against.
package core

// App mirrors the real core.App's mutation surface.
type App struct{}

// SetStylesheet is a mutation-plane method (per the rules table).
func (a *App) SetStylesheet(s string) {}
