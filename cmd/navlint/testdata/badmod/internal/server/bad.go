// Package server seeds one deliberate violation per navlint analyzer;
// the driver tests assert every rule fires by name over this module.
package server

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
)

//repro:hotpth
// ^ malformed directive: the directives analyzer must flag the typo.

// Hot violates the hotpath rule: annotated, but formats.
//
//repro:hotpath
func Hot(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// G carries the mutex the locks analyzer watches.
type G struct {
	mu sync.Mutex
	n  int
}

// Leak violates the locks rule: the early return leaves mu held.
func (g *G) Leak(cond bool) int {
	g.mu.Lock()
	if cond {
		return g.n
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

// Serve violates the planes rule: a serve-plane function calling a
// mutation-plane method.
func Serve(app *core.App) {
	app.SetStylesheet("plain")
}

// S is the dispatcher the apihandler analyzer inspects.
type S struct{}

// serveAPI violates the apihandler rule: no Cache-Control: no-store,
// and the handler is dispatched without a method guard.
//
//repro:apimux
func (s *S) serveAPI(w http.ResponseWriter, r *http.Request) {
	s.apiThing(w, r)
}

func (s *S) apiThing(w http.ResponseWriter, r *http.Request) {}
