// Package navigation violates the layering rule: a foundation layer
// reaching up into the serving stack.
package navigation

import "repro/internal/server"

// UsesServer drags the serve plane into the navigation layer.
func UsesServer(n int) string { return server.Hot(n) }
