// Command navlint runs the repository's invariant analyzers (see
// internal/lint): hotpath, locks, planes, apihandler and the directive
// grammar check.
//
// Two modes, one analysis:
//
//	navlint ./...                     # standalone multichecker
//	go vet -vettool=$(which navlint) ./...   # unitchecker under go vet
//
// Standalone, navlint loads every matched package in dependency order
// and sweeps the suite across them, passing analyzer facts from
// package to package in memory. Under go vet, the go command invokes
// navlint once per package with a .cfg describing the compilation
// unit, and facts travel through .vetx files exactly like the
// golang.org/x/tools unitchecker protocol; both modes therefore reach
// identical verdicts.
//
// Exit status: 0 clean, 1 (standalone) / 2 (vettool) when diagnostics
// were reported, 3 on loading errors. Diagnostics name the rule:
//
//	internal/server/server.go:388:9: [hotpath] hotpath function etagMatches calls strings.Split ...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/apihandler"
	"repro/internal/lint/directives"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/load"
	"repro/internal/lint/locks"
	"repro/internal/lint/planes"
)

// suite is every analyzer navlint runs, in a fixed order so output is
// stable.
var suite = []*analysis.Analyzer{
	directives.Analyzer,
	hotpath.Analyzer,
	locks.Analyzer,
	planes.Analyzer,
	apihandler.Analyzer,
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("navlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (go vet tool protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON (go vet tool protocol)")
	list := fs.Bool("list", false, "list the analyzers and what they check")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	if err := fs.Parse(args); err != nil {
		return 3
	}
	switch {
	case *version != "":
		// The go command fingerprints vet tools via `-V=full`; the
		// binary's own hash keeps the build cache honest across rebuilds.
		fmt.Fprintf(stdout, "navlint version devel buildID=%s\n", selfID())
		return 0
	case *printFlags:
		// No user-settable analyzer flags; `go vet` learns that here.
		fmt.Fprintln(stdout, "[]")
		return 0
	case *list:
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], stderr)
	}
	return standalone(*dir, fs.Args(), stdout, stderr)
}

// selfID hashes the running binary (best-effort) for -V=full.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// diag is one rendered diagnostic.
type diag struct {
	pos      token.Position
	analyzer string
	msg      string
}

// runSuite applies every analyzer to pkgs (already in dependency
// order) against one shared fact store.
func runSuite(fset *token.FileSet, pkgs []*load.Package) ([]diag, error) {
	facts := analysis.NewFactStore()
	var diags []diag
	for _, p := range pkgs {
		for _, a := range suite {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Facts:     facts,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, diag{fset.Position(d.Pos), a.Name, d.Message})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	return diags, nil
}

// standalone is the multichecker mode: load, sweep, print.
func standalone(dir string, patterns []string, stdout, stderr io.Writer) int {
	fset, pkgs, err := load.Repo(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "navlint: %v\n", err)
		return 3
	}
	diags, err := runSuite(fset, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "navlint: %v\n", err)
		return 3
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, d.pos.Line, d.pos.Column, d.analyzer, d.msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "navlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for vet tools (the
// unitchecker Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck is the `go vet -vettool` mode: analyze one compilation
// unit described by cfgPath, reading dependency facts from and writing
// this package's facts to vetx files.
func unitcheck(cfgPath string, stderr io.Writer) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "navlint: %v\n", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(stderr, "navlint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	facts := analysis.NewFactStore()
	// Dependency order of the merge does not matter: keys are disjoint
	// per (analyzer, object) and later packages win ties identically.
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			fmt.Fprintf(stderr, "navlint: %v\n", err)
			return 3
		}
		if err := facts.Merge(data); err != nil {
			fmt.Fprintf(stderr, "navlint: merging facts from %s: %v\n", vetx, err)
			return 3
		}
	}
	fset, pkg, err := load.Unit(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, analysis.NewFactStore(), stderr)
		}
		fmt.Fprintf(stderr, "navlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	var diags []diag
	for _, a := range suite {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, diag{fset.Position(d.Pos), a.Name, d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "navlint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 3
		}
	}
	if code := writeVetx(&cfg, facts, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: [%s] %s\n", d.pos.Filename, d.pos.Line, d.pos.Column, d.analyzer, d.msg)
	}
	return 2
}

func writeVetx(cfg *vetConfig, facts *analysis.FactStore, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	data, err := facts.Encode()
	if err != nil {
		fmt.Fprintf(stderr, "navlint: encoding facts: %v\n", err)
		return 3
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintf(stderr, "navlint: %v\n", err)
		return 3
	}
	return 0
}
