package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// ruleNames is every analyzer the suite must surface by name when its
// deliberately-violated corpus module is checked.
var ruleNames = []string{"directives", "hotpath", "locks", "planes", "apihandler"}

// TestStandaloneNamesEveryRule runs the multichecker over the badmod
// corpus — one deliberate violation per analyzer — and requires each
// rule to fail by name, with a nonzero exit.
func TestStandaloneNamesEveryRule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-C", filepath.Join("testdata", "badmod"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, name := range ruleNames {
		if !strings.Contains(stdout.String(), "["+name+"]") {
			t.Errorf("no [%s] finding in output:\n%s", name, stdout.String())
		}
	}
}

// TestStandaloneCleanExitsZero: a package with no violations (the
// corpus core stub) comes back clean, silent, exit 0.
func TestStandaloneCleanExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-C", filepath.Join("testdata", "badmod"), "./internal/core/"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestVetToolProtocolFlags: the go command probes vet tools with
// -V=full and -flags before trusting them; both must answer in form.
func TestVetToolProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit = %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "navlint version ") {
		t.Errorf("-V=full output = %q, want 'navlint version ...'", stdout.String())
	}
	stdout.Reset()
	if code := realMain([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit = %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags output = %q, want []", stdout.String())
	}
	stdout.Reset()
	if code := realMain([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range ruleNames {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list omits %s:\n%s", name, stdout.String())
		}
	}
}

// TestGoVetVettool drives the unitchecker protocol for real: build the
// binary, hand it to go vet over the corpus module, and require the
// same findings — including the cross-package layering one, whose
// facts travel through vetx files.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and vets a module")
	}
	bin := filepath.Join(t.TempDir(), "navlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("testdata", "badmod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over the violation corpus:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go vet did not run: %v\n%s", err, out)
	}
	for _, name := range ruleNames {
		if !strings.Contains(string(out), "["+name+"]") {
			t.Errorf("no [%s] finding under go vet:\n%s", name, out)
		}
	}
}
