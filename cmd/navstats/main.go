// Command navstats runs the adaptive-navigation pipeline offline: it
// reads the visitor trails a navserve persisted into a -store-dir (the
// durable sessions of internal/storage), folds them into per-context
// transition graphs, and derives the same access structures the live
// adaptation loop would install — without the server running.
//
// Usage:
//
//	navstats -store-dir /var/lib/navserve
//	navstats -store-dir /var/lib/navserve -k 10 -min-hops 20 -json
//
// Flags:
//
//	-store-dir       the navserve file store to read (required)
//	-k               how many top nodes/edges to report per context
//	-min-hops        per-context sample floor before a tour is derived
//	-landmark-share  visit share that promotes a node to a landmark
//	-format          text (default), json (the full report) or dot (the
//	                 per-context transition graphs as one Graphviz digraph)
//	-json            deprecated alias for -format json
//
// The site definition (which contexts exist, their member order) comes
// from the snapshot navserve exports into the same store at startup, so
// navstats needs nothing but the directory. The file backend is
// single-writer: run navstats after the server has exited, or against a
// copy of the directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/navigation"
	"repro/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "navstats:", err)
		os.Exit(1)
	}
}

// sessionRecord mirrors the server's durable session shape; navstats
// only needs the trail.
type sessionRecord struct {
	State navigation.SessionState `json:"state"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("navstats", flag.ContinueOnError)
	storeDir := fs.String("store-dir", "", "navserve file store directory (required)")
	topK := fs.Int("k", 5, "top nodes/edges per context to report")
	minHops := fs.Uint64("min-hops", analytics.DefaultMinHops,
		"per-context hops required before a tour is derived (1 = no floor; 0 means the default)")
	landmarkShare := fs.Float64("landmark-share", analytics.DefaultLandmarkShare,
		"visit share that promotes a node to a landmark (negative = promote everything, >=1 = never; 0 means the default)")
	format := fs.String("format", "text", "output format: text, json or dot")
	asJSON := fs.Bool("json", false, "deprecated alias for -format json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		*format = "json"
	}
	switch *format {
	case "text", "json", "dot":
	default:
		return fmt.Errorf("unknown -format %q (want text, json or dot)", *format)
	}
	if *storeDir == "" {
		return fmt.Errorf("-store-dir is required")
	}

	st, err := storage.OpenFile(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	hops, sessions, err := collectHops(st)
	if err != nil {
		return err
	}
	if sessions == 0 {
		return fmt.Errorf("store holds no persisted sessions")
	}
	lcs, err := core.LoadSnapshotContexts(st)
	if err != nil {
		return fmt.Errorf("reading site snapshot (did navserve run with -store file?): %w", err)
	}

	g := analytics.BuildGraph(hops)
	cfg := analytics.Config{MinHops: *minHops, LandmarkShare: *landmarkShare}
	tours := analytics.Derive(g, analytics.InfosFromLinkbase(lcs), cfg)

	switch *format {
	case "json":
		return writeJSON(out, sessions, g, tours, *topK)
	case "dot":
		writeDOT(out, g)
	default:
		writeText(out, sessions, g, tours, *topK)
	}
	return nil
}

// collectHops folds every persisted trail into transition hops: a move
// between two nodes of one context is a traversal, a context change
// (or trail start) an entry, and a repeated position a reload — which,
// like the live recorder, it does not count.
func collectHops(st storage.Store) ([]analytics.Hop, int, error) {
	counts := map[analytics.Hop]uint64{}
	sessions := 0
	err := st.Scan("session/", func(_ string, raw []byte) error {
		var rec sessionRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil // a torn or foreign record is skipped, not fatal
		}
		sessions++
		var prev *navigation.Visit
		for i := range rec.State.History {
			v := &rec.State.History[i]
			key := analytics.Hop{Context: v.Context, From: analytics.EntryFrom, To: v.NodeID}
			if prev != nil && prev.Context == v.Context {
				if prev.NodeID == v.NodeID {
					prev = v
					continue
				}
				key.From = prev.NodeID
			}
			counts[key]++
			prev = v
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	hops := make([]analytics.Hop, 0, len(counts))
	for key, n := range counts {
		key.Count = n
		hops = append(hops, key)
	}
	return hops, sessions, nil
}

// report is the JSON form of a full navstats run.
type report struct {
	Sessions int                      `json:"sessions"`
	Hops     uint64                   `json:"hops"`
	Contexts map[string]contextReport `json:"contexts"`
	Tours    map[string]tourReport    `json:"derived_tours"`
}

type contextReport struct {
	Hops     uint64                 `json:"hops"`
	TopNodes []analytics.NodeCount  `json:"top_nodes"`
	TopEdges []analytics.Transition `json:"top_edges"`
	Entries  []analytics.NodeCount  `json:"top_entries"`
	// Transitions is the complete transition graph of the context (the
	// same edges -format dot draws), deterministically ordered.
	Transitions []analytics.Transition `json:"transitions"`
}

type tourReport struct {
	Contexts map[string]navigation.TourPlan `json:"contexts"`
}

func buildReport(sessions int, g *analytics.Graph, tours map[string]*navigation.AdaptiveTour, k int) report {
	rep := report{
		Sessions: sessions,
		Hops:     g.Hops,
		Contexts: map[string]contextReport{},
		Tours:    map[string]tourReport{},
	}
	for name, cg := range g.Contexts {
		rep.Contexts[name] = contextReport{
			Hops:        cg.Hops,
			TopNodes:    cg.TopNodes(k),
			TopEdges:    cg.TopEdges(k),
			Entries:     cg.TopEntries(k),
			Transitions: sortedEdges(cg),
		}
	}
	for family, tour := range tours {
		rep.Tours[family] = tourReport{Contexts: tour.Plans}
	}
	return rep
}

func writeJSON(out io.Writer, sessions int, g *analytics.Graph, tours map[string]*navigation.AdaptiveTour, k int) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(buildReport(sessions, g, tours, k))
}

// sortedEdges returns the context's full transition list in a
// deterministic order (by count descending, then from/to), so DOT and
// JSON exports diff cleanly between runs.
func sortedEdges(cg *analytics.ContextGraph) []analytics.Transition {
	edges := cg.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Count != edges[j].Count {
			return edges[i].Count > edges[j].Count
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// writeDOT renders every context's transition graph as one Graphviz
// digraph, one cluster per context: node labels carry visit counts,
// solid edges are traversals weighted by count, dashed edges from the
// context's entry pseudo-node show where visitors came in. Pipe it to
// `dot -Tsvg` for the visualization item from the roadmap.
func writeDOT(out io.Writer, g *analytics.Graph) {
	fmt.Fprintln(out, "digraph navstats {")
	fmt.Fprintln(out, "  rankdir=LR;")
	fmt.Fprintln(out, "  node [shape=box, fontsize=10];")

	names := make([]string, 0, len(g.Contexts))
	for name := range g.Contexts {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		cg := g.Contexts[name]
		fmt.Fprintf(out, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(out, "    label=%q;\n", fmt.Sprintf("%s (%d hops)", name, cg.Hops))

		nodes := make([]string, 0, len(cg.Visits))
		for node := range cg.Visits {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		var maxCount uint64 = 1
		for _, e := range cg.Edges() {
			if e.Count > maxCount {
				maxCount = e.Count
			}
		}
		for _, node := range nodes {
			display := node
			if node == navigation.HubID {
				display = "(hub)"
			}
			fmt.Fprintf(out, "    %q [label=%q];\n", name+"/"+node,
				fmt.Sprintf("%s\n%d visits", display, cg.Visits[node]))
		}
		if len(cg.Entries) > 0 {
			fmt.Fprintf(out, "    %q [shape=plaintext, label=\"entry\"];\n", name+"/(entry)")
			entries := make([]string, 0, len(cg.Entries))
			for node := range cg.Entries {
				entries = append(entries, node)
			}
			sort.Strings(entries)
			for _, node := range entries {
				fmt.Fprintf(out, "    %q -> %q [style=dashed, label=\"%d\"];\n",
					name+"/(entry)", name+"/"+node, cg.Entries[node])
			}
		}
		for _, e := range sortedEdges(cg) {
			// Edge weight 1..4 by share of the heaviest edge.
			width := 1 + 3*float64(e.Count)/float64(maxCount)
			fmt.Fprintf(out, "    %q -> %q [label=\"%d\", penwidth=%.1f];\n",
				name+"/"+e.From, name+"/"+e.To, e.Count, width)
		}
		fmt.Fprintln(out, "  }")
	}
	fmt.Fprintln(out, "}")
}

func writeText(out io.Writer, sessions int, g *analytics.Graph, tours map[string]*navigation.AdaptiveTour, k int) {
	rep := buildReport(sessions, g, tours, k)
	fmt.Fprintf(out, "%d sessions, %d hops, %d contexts with traffic\n",
		rep.Sessions, rep.Hops, len(rep.Contexts))

	names := make([]string, 0, len(rep.Contexts))
	for name := range rep.Contexts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cr := rep.Contexts[name]
		fmt.Fprintf(out, "\ncontext %s: %d hops\n", name, cr.Hops)
		for _, n := range cr.TopNodes {
			fmt.Fprintf(out, "  node  %-20s %6d visits\n", n.Node, n.Count)
		}
		for _, e := range cr.TopEdges {
			fmt.Fprintf(out, "  edge  %-20s %6d traversals\n", e.From+" -> "+e.To, e.Count)
		}
		for _, n := range cr.Entries {
			fmt.Fprintf(out, "  entry %-20s %6d arrivals\n", n.Node, n.Count)
		}
	}

	families := make([]string, 0, len(rep.Tours))
	for family := range rep.Tours {
		families = append(families, family)
	}
	sort.Strings(families)
	if len(families) == 0 {
		fmt.Fprintf(out, "\nno tours derived (below the -min-hops floor?)\n")
		return
	}
	for _, family := range families {
		fmt.Fprintf(out, "\nderived adaptive-tour for family %s:\n", family)
		ctxNames := make([]string, 0, len(rep.Tours[family].Contexts))
		for name := range rep.Tours[family].Contexts {
			ctxNames = append(ctxNames, name)
		}
		sort.Strings(ctxNames)
		for _, name := range ctxNames {
			plan := rep.Tours[family].Contexts[name]
			fmt.Fprintf(out, "  %s: order %s\n", name, strings.Join(plan.Order, " -> "))
			if len(plan.Landmarks) > 0 {
				fmt.Fprintf(out, "    landmarks: %s\n", strings.Join(plan.Landmarks, ", "))
			}
			if len(plan.Dead) > 0 {
				fmt.Fprintf(out, "    demoted (never visited): %s\n", strings.Join(plan.Dead, ", "))
			}
		}
	}
}
