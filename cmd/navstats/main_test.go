package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

// seedStore writes a site snapshot and a set of persisted trails into
// dir, the way a navserve -store file run would leave them: visitors
// dominantly entered ByAuthor:picasso at guernica and walked
// guernica -> avignon -> guitar.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := app.ExportSnapshot(st); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		state := navigation.SessionState{
			Context: "ByAuthor:picasso",
			NodeID:  "guitar",
			History: []navigation.Visit{
				{Context: "ByAuthor:picasso", NodeID: "guernica"},
				{Context: "ByAuthor:picasso", NodeID: "guernica"}, // a reload, not a hop
				{Context: "ByAuthor:picasso", NodeID: "avignon"},
				{Context: "ByAuthor:picasso", NodeID: "guitar"},
			},
		}
		raw, err := json.Marshal(sessionRecord{State: state})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(fmt.Sprintf("session/v%02d", v), raw); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNavstatsDerivesFromPersistedTrails(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var out strings.Builder
	if err := run([]string{"-store-dir", dir, "-min-hops", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"20 sessions",
		"context ByAuthor:picasso: 60 hops",
		"guernica -> avignon", // top edge of the dominant path
		"derived adaptive-tour for family ByAuthor",
		"order guernica -> avignon -> guitar",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestNavstatsJSON(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var out strings.Builder
	if err := run([]string{"-store-dir", dir, "-min-hops", "10", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 20 || rep.Hops != 60 {
		t.Errorf("sessions/hops = %d/%d, want 20/60", rep.Sessions, rep.Hops)
	}
	plan := rep.Tours["ByAuthor"].Contexts["ByAuthor:picasso"]
	if len(plan.Order) == 0 || plan.Order[0] != "guernica" {
		t.Errorf("derived order = %v, want to start at guernica", plan.Order)
	}
}

// TestNavstatsFormatJSON: -format json matches the -json alias and
// carries the full transition graph alongside the top-K lists.
func TestNavstatsFormatJSON(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var out strings.Builder
	if err := run([]string{"-store-dir", dir, "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	tr := rep.Contexts["ByAuthor:picasso"].Transitions
	// The dominant path has exactly two distinct transitions:
	// guernica -> avignon and avignon -> guitar, 20 traversals each.
	if len(tr) != 2 {
		t.Fatalf("transitions = %+v, want 2", tr)
	}
	for _, e := range tr {
		if e.Count != 20 {
			t.Errorf("transition %s->%s count = %d, want 20", e.From, e.To, e.Count)
		}
	}
}

// TestNavstatsDOT: -format dot emits a Graphviz digraph with one
// cluster per context, entry edges and weighted transition edges.
func TestNavstatsDOT(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var out strings.Builder
	if err := run([]string{"-store-dir", dir, "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"digraph navstats {",
		`label="ByAuthor:picasso (60 hops)"`,
		`"ByAuthor:picasso/guernica" -> "ByAuthor:picasso/avignon" [label="20"`,
		`"ByAuthor:picasso/avignon" -> "ByAuthor:picasso/guitar" [label="20"`,
		`"ByAuthor:picasso/(entry)" -> "ByAuthor:picasso/guernica" [style=dashed, label="20"]`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dot output missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(text), "}") {
		t.Error("dot output not closed")
	}
	// Deterministic: a second run renders byte-identical output.
	var again strings.Builder
	if err := run([]string{"-store-dir", dir, "-format", "dot"}, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("dot output not deterministic across runs")
	}
}

func TestNavstatsErrors(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("missing -store-dir accepted")
	}
	if err := run([]string{"-store-dir", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("empty store accepted")
	}
	if err := run([]string{"-store-dir", t.TempDir(), "-format", "svg"}, &strings.Builder{}); err == nil {
		t.Error("unknown format accepted")
	}
}
