// Command navctl drives the navigation control plane of a live
// navserve: the separated navigational aspect, inspected and mutated
// over HTTP. The paper's one-line maintenance change — swap a context
// family's access structure — is one command against a running fleet:
//
//	navctl -addr http://museum:8080 -token $TOK context set-structure ByAuthor guided-tour
//
// Usage:
//
//	navctl [-addr URL] [-token T] [-retries N] <command> [args]
//
// Commands:
//
//	model                                print the live model's
//	                                     declaration artifact (the same
//	                                     SpecText the E8 experiment
//	                                     diffs)
//	contexts                             list resolved contexts
//	context get-structure FAMILY         print the family's structure
//	                                     spec as JSON
//	context set-structure FAMILY KIND    swap the structure to KIND
//	                                     (index, menu, guided-tour,
//	                                     indexed-guided-tour, or a
//	                                     circular- variant)
//	context set-structure FAMILY -spec F install the full structure
//	                                     spec read from JSON file F
//	                                     ("-" = stdin)
//	doc set ID attr=value [attr=value…]  edit a data document's
//	                                     attributes
//	stylesheet get                       print the installed stylesheet
//	stylesheet set FILE                  install a stylesheet from its
//	                                     XML file ("-" = stdin)
//	stylesheet clear                     restore the built-in
//	                                     presentation
//	graph                                dump the analytics transition
//	                                     graph as JSON
//	snapshot                             export the site snapshot into
//	                                     the server's store
//	adapt                                force one adaptation cycle
//	events [-n N]                        print the mutation trace (most
//	                                     recent model mutations with
//	                                     rebuild duration and
//	                                     invalidation blast radius),
//	                                     newest first
//	traces [-n N] [-slow]                print the request-trace ring
//	                                     (sampled and slow-captured
//	                                     request lifecycles with their
//	                                     per-phase breakdown), newest
//	                                     first; -slow keeps only traces
//	                                     over the server's slow
//	                                     threshold
//	metrics                              print the server's Prometheus
//	                                     text exposition (GET /metrics;
//	                                     works without a token)
//
// The token may also come from the NAVCTL_TOKEN environment variable;
// the flag wins when both are set. Mutations print the server's
// mutation report (affected contexts, dropped pages, new cache
// generation — the value that rotates the affected pages' ETags).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "navctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("navctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "navserve base URL")
	token := fs.String("token", "", "control-plane bearer token (or NAVCTL_TOKEN)")
	retries := fs.Int("retries", client.DefaultRetryPolicy.MaxAttempts,
		"total attempts for idempotent requests against a shedding or degraded server (1 = no retry; mutating POST/PATCH never retry)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tok := *token
	if tok == "" {
		tok = os.Getenv("NAVCTL_TOKEN")
	}
	policy := client.DefaultRetryPolicy
	policy.MaxAttempts = *retries
	c, err := client.New(*addr, tok, client.WithRetry(policy))
	if err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command (want model, contexts, context, doc, stylesheet, graph, snapshot, adapt, events, traces or metrics)")
	}
	ctx := context.Background()
	switch rest[0] {
	case "model":
		return cmdModel(ctx, c, out)
	case "contexts":
		return cmdContexts(ctx, c, out)
	case "context":
		return cmdContext(ctx, c, out, rest[1:])
	case "doc":
		return cmdDoc(ctx, c, out, rest[1:])
	case "stylesheet":
		return cmdStylesheet(ctx, c, out, rest[1:])
	case "graph":
		g, err := c.AnalyticsGraph(ctx)
		if err != nil {
			return err
		}
		return printJSON(out, g)
	case "snapshot":
		res, err := c.Snapshot(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "snapshot exported: %d documents into %s store (generation %d)\n",
			res.Documents, res.Store, res.CacheGeneration)
		return nil
	case "adapt":
		res, err := c.Adapt(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "adapt cycle %d: %d derived structures (generation %d)\n",
			res.AdaptGeneration, res.DerivedStructures, res.CacheGeneration)
		return nil
	case "events":
		return cmdEvents(ctx, c, out, rest[1:])
	case "traces":
		return cmdTraces(ctx, c, out, rest[1:])
	case "metrics":
		text, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, text)
		return err
	}
	return fmt.Errorf("unknown command %q", rest[0])
}

// cmdModel prints the live declaration artifact — byte-identical to
// navigation.SpecText over the server's model, so an operator can diff
// it against the repository's authored spec.
func cmdModel(ctx context.Context, c *client.Client, out io.Writer) error {
	m, err := c.Model(ctx)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, m.SpecText)
	return err
}

func cmdContexts(ctx context.Context, c *client.Client, out io.Writer) error {
	list, err := c.Contexts(ctx)
	if err != nil {
		return err
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	for _, rc := range list {
		fmt.Fprintf(out, "%s\tfamily=%s members=%d entry=%s access=%s\n",
			rc.Name, rc.Family, rc.Members, rc.Entry, rc.Access)
	}
	return nil
}

func cmdContext(ctx context.Context, c *client.Client, out io.Writer, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("context: want get-structure FAMILY or set-structure FAMILY KIND|-spec FILE")
	}
	verb, family := args[0], args[1]
	switch verb {
	case "get-structure":
		st, err := c.Structure(ctx, family)
		if err != nil {
			return err
		}
		return printJSON(out, st)
	case "set-structure":
		if len(args) < 3 {
			return fmt.Errorf("context set-structure: want KIND or -spec FILE")
		}
		var spec client.StructureSpec
		if args[2] == "-spec" {
			if len(args) < 4 {
				return fmt.Errorf("context set-structure -spec: want a JSON file (or - for stdin)")
			}
			raw, err := readInput(args[3])
			if err != nil {
				return err
			}
			// Strict, like the server: a typoed field in the spec file
			// must fail here, not silently install a different structure.
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				return fmt.Errorf("parsing structure spec: %w", err)
			}
			if dec.More() {
				return fmt.Errorf("parsing structure spec: trailing content after the JSON value")
			}
		} else {
			spec.Kind = args[2]
		}
		res, err := c.SetStructure(ctx, family, spec)
		if err != nil {
			return err
		}
		return printMutation(out, res)
	}
	return fmt.Errorf("unknown context verb %q", verb)
}

func cmdDoc(ctx context.Context, c *client.Client, out io.Writer, args []string) error {
	if len(args) < 3 || args[0] != "set" {
		return fmt.Errorf("doc: want set ID attr=value [attr=value…]")
	}
	id := args[1]
	set := make(map[string]string, len(args)-2)
	for _, kv := range args[2:] {
		name, value, ok := strings.Cut(kv, "=")
		if !ok || name == "" {
			return fmt.Errorf("doc set: %q is not attr=value", kv)
		}
		set[name] = value
	}
	res, err := c.PatchDocument(ctx, id, set)
	if err != nil {
		return err
	}
	return printMutation(out, res)
}

func cmdStylesheet(ctx context.Context, c *client.Client, out io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("stylesheet: want get, set FILE or clear")
	}
	switch args[0] {
	case "get":
		src, err := c.Stylesheet(ctx)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, src)
		return err
	case "set":
		if len(args) < 2 {
			return fmt.Errorf("stylesheet set: want an XML file (or - for stdin)")
		}
		raw, err := readInput(args[1])
		if err != nil {
			return err
		}
		res, err := c.SetStylesheet(ctx, string(raw))
		if err != nil {
			return err
		}
		return printMutation(out, res)
	case "clear":
		res, err := c.ClearStylesheet(ctx)
		if err != nil {
			return err
		}
		return printMutation(out, res)
	}
	return fmt.Errorf("unknown stylesheet verb %q", args[0])
}

// cmdEvents prints the server's mutation trace newest-first, one line
// per event — the operator's answer to "what changed the model and what
// did it cost".
func cmdEvents(ctx context.Context, c *client.Client, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	n := fs.Int("n", 0, "print at most N events (0 = the whole retained ring)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := c.Events(ctx, *n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d mutations traced, %d retained\n", res.Total, len(res.Events))
	for _, e := range res.Events {
		fmt.Fprintf(out, "#%d\t%s\t%s\t%s\t%.3fms\t%d pages dropped\tverdict=%s\tgeneration=%d\n",
			e.Seq, e.Time.Format("2006-01-02T15:04:05Z07:00"), e.Kind, e.Target,
			e.DurationSeconds*1000, e.PagesInvalidated, e.Verdict, e.CacheGeneration)
	}
	return nil
}

// cmdTraces prints the server's request-trace ring newest-first: one
// header line per trace (identity, route, status, total) and one
// indented line per phase — the operator's answer to "where did that
// slow request spend its time".
func cmdTraces(ctx context.Context, c *client.Client, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	n := fs.Int("n", 0, "print at most N traces (0 = the whole retained ring)")
	slow := fs.Bool("slow", false, "only traces over the server's slow threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := c.Traces(ctx, *n, *slow)
	if err != nil {
		return err
	}
	if !res.Enabled {
		fmt.Fprintln(out, "tracing disabled (start navserve with -trace)")
		return nil
	}
	fmt.Fprintf(out, "%d traces kept, %d shown\n", res.Total, len(res.Traces))
	for _, tr := range res.Traces {
		mark := ""
		if tr.Slow {
			mark = "\tSLOW"
		}
		fmt.Fprintf(out, "#%d\t%s\t%s %s\t%d\t%.3fms\ttrace=%s%s\n",
			tr.Seq, tr.Time.Format("2006-01-02T15:04:05Z07:00"), tr.Route, tr.Path,
			tr.Status, tr.DurationSeconds*1000, tr.TraceID, mark)
		for _, sp := range tr.Spans {
			fmt.Fprintf(out, "\t%s\t+%.3fms\t%.3fms\n",
				sp.Phase, float64(sp.StartNS)/1e6, float64(sp.DurationNS)/1e6)
		}
		if tr.TruncatedSpans > 0 {
			fmt.Fprintf(out, "\t(%d spans truncated)\n", tr.TruncatedSpans)
		}
	}
	return nil
}

// readInput reads a file argument, "-" meaning stdin.
func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func printJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// printMutation reports a write's outcome the way an operator reads it:
// what changed, how many pages dropped, and the generation whose move
// is what rotates the affected ETags.
func printMutation(out io.Writer, res *client.MutationResult) error {
	what := res.Family
	if what == "" {
		what = res.Document
	}
	fmt.Fprintf(out, "mutated %s (generation %d", what, res.CacheGeneration)
	if res.DroppedPages >= 0 {
		fmt.Fprintf(out, ", %d cached pages dropped", res.DroppedPages)
	}
	fmt.Fprint(out, ")\n")
	if len(res.Contexts) > 0 {
		fmt.Fprintf(out, "affected contexts: %s\n", strings.Join(res.Contexts, ", "))
	}
	return nil
}
