package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/server"
)

func testControlPlane(t *testing.T) (*core.App, string) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(app, server.WithAPIToken("navctl-test")))
	t.Cleanup(ts.Close)
	return app, ts.URL
}

// TestNavctlFlow drives the CLI verbs the README quickstart shows
// against a live control plane.
func TestNavctlFlow(t *testing.T) {
	app, url := testControlPlane(t)
	base := []string{"-addr", url, "-token", "navctl-test"}

	var out strings.Builder
	if err := run(append(base, "model"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "access=indexed-guided-tour") {
		t.Errorf("model output:\n%s", out.String())
	}

	out.Reset()
	if err := run(append(base, "context", "set-structure", "ByAuthor", "guided-tour"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mutated ByAuthor") ||
		!strings.Contains(out.String(), "ByAuthor:picasso") {
		t.Errorf("set-structure output:\n%s", out.String())
	}
	if kind := app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "guided-tour" {
		t.Errorf("live structure = %q after navctl swap", kind)
	}

	out.Reset()
	if err := run(append(base, "context", "get-structure", "ByAuthor"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"kind": "guided-tour"`) {
		t.Errorf("get-structure output:\n%s", out.String())
	}

	out.Reset()
	if err := run(append(base, "contexts"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ByMovement:cubism") {
		t.Errorf("contexts output:\n%s", out.String())
	}

	out.Reset()
	if err := run(append(base, "doc", "set", "guitar", "technique=Assemblage"), &out); err != nil {
		t.Fatal(err)
	}
	if got := app.Store().Get("guitar").Attr("technique"); got != "Assemblage" {
		t.Errorf("technique = %q after navctl doc set", got)
	}

	// The mutations above left a trace: events prints them newest first,
	// and metrics exposes the rebuild counters they bumped.
	out.Reset()
	if err := run(append(base, "events", "-n", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "document") || !strings.Contains(out.String(), "guitar.xml") {
		t.Errorf("events output:\n%s", out.String())
	}

	out.Reset()
	if err := run(append(base, "metrics"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "navcore_rebuilds_total") {
		t.Errorf("metrics output missing rebuild counter:\n%s", out.String())
	}
}

// TestNavctlErrors: bad invocations and server rejections surface as
// errors, not silent successes.
func TestNavctlErrors(t *testing.T) {
	_, url := testControlPlane(t)
	var out strings.Builder
	cases := [][]string{
		{"-addr", url, "-token", "navctl-test"},                                             // no command
		{"-addr", url, "-token", "navctl-test", "teleport"},                                 // unknown command
		{"-addr", url, "-token", "navctl-test", "context", "set-structure", "ByAuthor"},     // missing kind
		{"-addr", url, "-token", "navctl-test", "context", "set-structure", "Nope", "menu"}, // unknown family
		{"-addr", url, "-token", "wrong", "model"},                                          // bad token
		{"-addr", url, "-token", "navctl-test", "doc", "set", "guitar", "year=notanumber"},  // invalid attr
		{"-addr", url, "-token", "navctl-test", "doc", "set", "guitar", "malformed"},        // not attr=value
	}
	for _, args := range cases {
		out.Reset()
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestNavctlSpecFileStrict: a typoed field in a -spec file must fail
// locally, not silently install a different structure.
func TestNavctlSpecFileStrict(t *testing.T) {
	app, url := testControlPlane(t)
	spec := t.TempDir() + "/tour.json"
	if err := os.WriteFile(spec, []byte(`{"kind":"guided-tour","circulr":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-addr", url, "-token", "navctl-test",
		"context", "set-structure", "ByAuthor", "-spec", spec}, &out)
	if err == nil || !strings.Contains(err.Error(), "circulr") {
		t.Errorf("typoed spec file: err = %v, want unknown-field error", err)
	}
	if kind := app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "indexed-guided-tour" {
		t.Errorf("structure = %q after rejected spec file", kind)
	}
}

// TestNavctlTraces: the traces verb prints the request-trace ring with
// its phase breakdown, and -slow filters; against an untraced server it
// says so instead of printing an empty listing.
func TestNavctlTraces(t *testing.T) {
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(app,
		server.WithAPIToken("navctl-test"),
		server.WithTracing(obs.NewTracer(obs.TraceConfig{SampleEvery: 1, RingSize: 16}))))
	t.Cleanup(ts.Close)
	base := []string{"-addr", ts.URL, "-token", "navctl-test"}

	// The model call itself is traced, so the listing is never empty.
	var out strings.Builder
	if err := run(append(base, "model"), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(append(base, "traces", "-n", "5"), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "traces kept") || !strings.Contains(got, "api /api/v1/model") {
		t.Errorf("traces output:\n%s", got)
	}
	if !strings.Contains(got, "admit") || !strings.Contains(got, "trace=") {
		t.Errorf("traces output missing phase breakdown:\n%s", got)
	}

	// -slow against a fast server filters everything out.
	out.Reset()
	if err := run(append(base, "traces", "-slow"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "SLOW") {
		t.Errorf("-slow listed a trace on an unstalled server:\n%s", out.String())
	}

	// Tracing off: the verb says so.
	_, plainURL := testControlPlane(t)
	out.Reset()
	if err := run([]string{"-addr", plainURL, "-token", "navctl-test", "traces"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tracing disabled") {
		t.Errorf("untraced server output:\n%s", out.String())
	}
}
