// Command navload drives a live navserve with large numbers of
// simulated visitor sessions and gates the result on SLOs — the load
// half of the paper's "navigation as a separate, independently served
// aspect" claim. Each simulated session walks the site's access
// structures (fetched from /api/v1) with realistic back/forward usage,
// reload storms, think times and abandonment, while checking every
// /go/back and /go/forward redirect against a local model of the
// Brewster–Jeffrey navigation-history semantics.
//
//	navload -url http://127.0.0.1:8080 -token t -sessions 5000 -steps 30
//
// Chaos runs record session snapshots before the kill and verify them
// after the restart:
//
//	navload -url ... -sessions 2000 -record snaps.json -record-every 10 -settle 10s
//	<SIGKILL the server, restart it over the same store>
//	navload -url ... -verify snaps.json
//
// Exit status: 0 when the run met its SLOs (and, with -verify, zero
// sessions were lost); 1 on SLO violation, history mismatch or session
// loss; 2 on usage or infrastructure errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of the navserve under test")
		token    = flag.String("token", "", "control-plane bearer token (required except with -verify)")
		sessions = flag.Int("sessions", 1000, "total simulated visitor sessions")
		workers  = flag.Int("workers", 0, "driver goroutines (0 = 8); each multiplexes its share of sessions")
		seed     = flag.Int64("seed", 1, "scenario seed; same seed + site = same walks")
		steps    = flag.Int("steps", 20, "mean steps per session before abandonment")
		think    = flag.Duration("think", 10*time.Millisecond, "mean think time between a session's steps (0 = hammer)")
		duration = flag.Duration("duration", 0, "wall-clock cap on the run (0 = until all sessions finish)")
		trailLim = flag.Int("trail-limit", 0, "server's -trail-limit, so history mirrors trim identically (0 = unlimited)")

		sloP99    = flag.Duration("slo-p99", 0, "fail when p99 latency exceeds this (0 = unchecked)")
		sloErrors = flag.Float64("slo-errors", 0, "fail when error rate exceeds this fraction (0 = unchecked)")
		sloShed   = flag.Float64("slo-shed", 0, "fail when 503-shed rate exceeds this fraction (0 = unchecked)")
		sloHeapMB = flag.Float64("slo-heap-mb", 0, "fail when the server heap ceiling exceeds this many MB (0 = unchecked)")

		out         = flag.String("out", "", "write the run report as JSON to this file (- for stdout)")
		record      = flag.String("record", "", "write sampled session snapshots (cookie + expected history) to this file")
		recordEvery = flag.Int("record-every", 10, "with -record, snapshot every Nth session")
		verify      = flag.String("verify", "", "verify a snapshot file against the server and exit (chaos phase 2)")
		settle      = flag.Duration("settle", 0, "after the run, wait up to this long for the write-behind queue to drain")
	)
	flag.Parse()
	ctx := context.Background()

	if *verify != "" {
		return runVerify(ctx, *url, *verify)
	}

	cfg := load.Config{
		BaseURL:    *url,
		Token:      *token,
		Sessions:   *sessions,
		Workers:    *workers,
		Seed:       *seed,
		Steps:      *steps,
		Think:      *think,
		Duration:   *duration,
		TrailLimit: *trailLim,
	}
	if *record != "" {
		cfg.SnapshotEvery = *recordEvery
	}
	runner, err := load.NewRunner(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "navload:", err)
		return 2
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "navload:", err)
		return 2
	}

	if *settle > 0 {
		if err := runner.Settle(ctx, *settle); err != nil {
			fmt.Fprintln(os.Stderr, "navload:", err)
			return 1
		}
		fmt.Printf("settled: write-behind queue drained\n")
	}
	if *record != "" {
		snaps := runner.Snapshots()
		if err := load.WriteSnapshots(*record, snaps); err != nil {
			fmt.Fprintln(os.Stderr, "navload:", err)
			return 2
		}
		fmt.Printf("recorded %d session snapshots to %s\n", len(snaps), *record)
	}

	fmt.Printf("sessions=%d steps=%d requests=%d errors=%d shed=%d mismatches=%d\n",
		rep.Sessions, rep.Steps, rep.Requests, rep.Errors, rep.Shed, rep.Mismatches)
	fmt.Printf("elapsed=%.2fs throughput=%.0f req/s p50=%.2fms p90=%.2fms p99=%.2fms heap_max=%.1fMB\n",
		rep.Elapsed, rep.Throughput, rep.P50ms, rep.P90ms, rep.P99ms, rep.MaxHeapBytes/(1<<20))

	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "navload:", err)
			return 2
		}
		raw = append(raw, '\n')
		if *out == "-" {
			os.Stdout.Write(raw)
		} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "navload:", err)
			return 2
		}
	}

	slo := load.SLO{
		MaxP99:       *sloP99,
		MaxErrorRate: *sloErrors,
		MaxShedRate:  *sloShed,
		MaxHeapBytes: *sloHeapMB * (1 << 20),
	}
	if violations := slo.Check(rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "SLO VIOLATION:", v)
		}
		return 1
	}
	fmt.Println("SLOs met")
	return 0
}

// runVerify is the chaos phase's second half: assert that every
// recorded session survived the kill/restart with its navigation
// history intact and traversable.
func runVerify(ctx context.Context, url, path string) int {
	snaps, err := load.ReadSnapshots(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "navload:", err)
		return 2
	}
	res, err := load.Verify(ctx, url, snaps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "navload:", err)
		return 2
	}
	fmt.Printf("verified=%d lost=%d\n", res.Verified, res.Lost)
	if res.Lost > 0 {
		for _, d := range res.Details {
			fmt.Fprintln(os.Stderr, "SESSION LOST:", d)
		}
		return 1
	}
	fmt.Println("zero session loss")
	return 0
}
