// Command navweave statically weaves a web site from separated data,
// navigation and presentation — the build-time composition of the paper's
// Figure 6. It writes the woven HTML pages plus the separated artifacts
// (per-node data XML and the links.xml linkbase) to an output directory.
//
// Usage:
//
//	navweave -out ./site                                # paper museum
//	navweave -out ./site -access index                  # Figure 3 pages
//	navweave -out ./site -dataset synthetic -painters 20
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navweave:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("navweave", flag.ContinueOnError)
	var flags cli.DatasetFlags
	flags.Register(fs)
	out := fs.String("out", "site", "output directory")
	quiet := fs.Bool("quiet", false, "suppress the per-file listing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	app, err := flags.BuildApp()
	if err != nil {
		return err
	}
	site, err := app.WeaveSite()
	if err != nil {
		return err
	}

	if err := site.WriteTo(*out); err != nil {
		return err
	}
	if !*quiet {
		for _, rel := range site.Paths() {
			fmt.Println("  wrote", filepath.Join(*out, filepath.FromSlash(rel)))
		}
	}
	// The separated artifacts: data documents and the linkbase.
	repo := app.Repository()
	for _, uri := range repo.URIs() {
		doc, err := repo.Get(uri)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "data", filepath.FromSlash(uri))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(doc.IndentedString()), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Println("  wrote", path)
		}
	}
	fmt.Printf("woven %d pages and %d separated XML artifacts into %s\n",
		site.Len(), len(repo.URIs()), *out)
	return nil
}
