package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSite(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-quiet", "-access", "indexed-guided-tour"}); err != nil {
		t.Fatal(err)
	}
	// A woven page exists and carries navigation.
	page, err := os.ReadFile(filepath.Join(dir, "ByAuthor", "picasso", "guitar.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "nav-next") {
		t.Errorf("woven page lacks navigation:\n%s", page)
	}
	// The separated artifacts exist.
	links, err := os.ReadFile(filepath.Join(dir, "data", "links.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(links), "xlink") {
		t.Error("links.xml lacks xlink markup")
	}
	if _, err := os.Stat(filepath.Join(dir, "data", "picasso.xml")); err != nil {
		t.Error("picasso.xml not written")
	}
}

func TestRunSynthetic(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-quiet", "-dataset", "synthetic",
		"-painters", "2", "-paintings", "2", "-movements", "0", "-access", "index"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ByAuthor", "painter000", "index.html")); err != nil {
		t.Error("synthetic hub page not written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-dataset", "bogus"}); err == nil {
		t.Error("bogus dataset accepted")
	}
	if err := run([]string{"-access", "bogus"}); err == nil {
		t.Error("bogus access structure accepted")
	}
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
