// Command navlift migrates a tangled site to the separated architecture:
// it reads a directory of hand-written HTML pages with embedded navigation
// (the world of the paper's Figures 3–4), extracts the navigational aspect
// into links.xml, and writes the pages back with their navigation
// stripped — pure content plus a linkbase, ready for the weaver.
//
// Usage:
//
//	navlift -in ./old-site -out ./separated
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lift"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navlift:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs_ := flag.NewFlagSet("navlift", flag.ContinueOnError)
	in := fs_.String("in", "", "directory holding the tangled HTML site (required)")
	out := fs_.String("out", "separated", "output directory for links.xml and stripped pages")
	if err := fs_.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in directory is required")
	}

	pages, err := readSite(*in)
	if err != nil {
		return err
	}
	result, err := lift.Site(pages)
	if err != nil {
		return err
	}

	write := func(rel, content string) error {
		path := filepath.Join(*out, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(content), 0o644)
	}
	if err := write("links.xml", result.Linkbase.IndentedString()); err != nil {
		return err
	}
	for rel, html := range result.Pages {
		if err := write("content/"+rel, html); err != nil {
			return err
		}
	}
	fmt.Printf("lifted %d pages: %d contexts, %d anchors moved to links.xml, %d hub pages dropped\n",
		result.Stats.PagesIn, result.Stats.Contexts, result.Stats.AnchorsLifted, result.Stats.HubPages)
	fmt.Printf("wrote %s and %d content pages under %s\n",
		filepath.Join(*out, "links.xml"), len(result.Pages), *out)
	return nil
}

// readSite loads every .html file under root, keyed by slash-separated
// relative path.
func readSite(root string) (map[string]string, error) {
	pages := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".html") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pages[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("no .html pages under %s", root)
	}
	return pages, nil
}
