package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/tangled"
)

func writeTangledSite(t *testing.T, dir string) {
	t.Helper()
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	for rel, html := range tangled.GenerateSite(rm) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(html), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunLiftsSite(t *testing.T) {
	in := t.TempDir()
	out := t.TempDir()
	writeTangledSite(t, in)
	if err := run([]string{"-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	links, err := os.ReadFile(filepath.Join(out, "links.xml"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"xlink", "indexed-guided-tour", "guitar.xml"} {
		if !strings.Contains(string(links), want) {
			t.Errorf("links.xml missing %q", want)
		}
	}
	page, err := os.ReadFile(filepath.Join(out, "content", "ByAuthor", "picasso", "guitar.html"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(page), "<a ") {
		t.Errorf("stripped page still has anchors:\n%s", page)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", t.TempDir()}); err == nil {
		t.Error("empty input directory accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}); err == nil {
		t.Error("nonexistent input accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
