// Command navserve runs the XLink-aware user agent over a woven
// application: pages are woven per request from the separated data,
// linkbase and presentation, and each visitor's navigation trail is
// tracked in a session (GET /session returns it as JSON).
//
// Usage:
//
//	navserve -addr :8080
//	navserve -addr :8080 -dataset synthetic -painters 20 -access index
//
// Serving knobs:
//
//	-no-cache          weave every page per request instead of serving
//	                   from the woven-page cache (the cache is
//	                   invalidated automatically when the model
//	                   changes, so it is safe to leave on)
//	-session-ttl       idle visitor-session lifetime before eviction
//	                   (default 30m; 0 keeps sessions forever)
//	-session-shards    lock-shard count of the session store
//	                   (default 16; raise for very high concurrency)
//	-evict-interval    how often the background janitor sweeps expired
//	                   sessions (default 1m; 0 disables the sweeper,
//	                   leaving only lazy on-access eviction)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, contexts, err := build(args)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d contexts on %s (site map at /)\n", contexts, srv.Addr)
	return srv.ListenAndServe()
}

// build assembles the HTTP server from flags; split from run so tests can
// verify assembly without binding a port.
func build(args []string) (*http.Server, int, error) {
	fs := flag.NewFlagSet("navserve", flag.ContinueOnError)
	var flags cli.DatasetFlags
	flags.Register(fs)
	addr := fs.String("addr", ":8080", "listen address")
	noCache := fs.Bool("no-cache", false, "weave every page per request (disable the woven-page cache)")
	sessionTTL := fs.Duration("session-ttl", server.DefaultSessionTTL,
		"idle session lifetime before eviction (0 = never expire)")
	sessionShards := fs.Int("session-shards", server.DefaultSessionShards,
		"session store shard count")
	evictInterval := fs.Duration("evict-interval", time.Minute,
		"expired-session sweep interval (0 = lazy eviction only)")
	if err := fs.Parse(args); err != nil {
		return nil, 0, err
	}
	app, err := flags.BuildApp()
	if err != nil {
		return nil, 0, err
	}
	opts := []server.Option{
		server.WithSessionTTL(*sessionTTL),
		server.WithSessionShards(*sessionShards),
	}
	if *noCache {
		opts = append(opts, server.WithoutPageCache())
	}
	handler := server.New(app, opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *sessionTTL > 0 && *evictInterval > 0 {
		// The janitor sweeps abandoned sessions; tying its stop to
		// server shutdown keeps the goroutine from outliving serving.
		srv.RegisterOnShutdown(handler.StartJanitor(*evictInterval))
	}
	return srv, len(app.Resolved().Contexts), nil
}
