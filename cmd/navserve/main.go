// Command navserve runs the XLink-aware user agent over a woven
// application: pages are woven per request from the separated data,
// linkbase and presentation, and each visitor's navigation trail is
// tracked in a session (GET /session returns it as JSON).
//
// Usage:
//
//	navserve -addr :8080
//	navserve -addr :8080 -dataset synthetic -painters 20 -access index
//	navserve -addr :8080 -store file -store-dir /var/lib/navserve
//
// Serving knobs:
//
//	-no-cache          weave every page per request instead of serving
//	                   from the woven-page cache (the cache is
//	                   invalidated automatically when the model
//	                   changes, so it is safe to leave on)
//	-session-ttl       idle visitor-session lifetime before eviction
//	                   (default 30m; 0 keeps sessions forever)
//	-session-shards    lock-shard count of the session store
//	                   (default 16; raise for very high concurrency)
//	-evict-interval    how often the background janitor sweeps expired
//	                   sessions (default 1m; 0 disables the sweeper,
//	                   leaving only lazy on-access eviction)
//	-trail-limit       cap each visitor session's history at its
//	                   most-recent N hops (default 1024; 0 keeps
//	                   everything — long-lived crawler sessions then
//	                   grow without bound)
//
// Adaptive navigation (the internal/analytics subsystem):
//
//	-analytics         record visitor navigation hops (sharded atomic
//	                   counters, no locks or allocations on the request
//	                   path) and serve GET /stats (default true)
//	-sample-rate       record one hop in every N (default 1 = all)
//	-adapt-interval    how often to recompute access structures from
//	                   recorded traffic (default 30s; 0 records and
//	                   reports but never adapts)
//	-adapt-min-hops    skip adapt cycles until this many hops have been
//	                   recorded (default 200)
//
// With -analytics, every page view and /go/ traversal is counted as a
// transition of the visitor's current context. The adaptation loop
// folds the counts into a per-context transition graph, derives a
// "popular next" guided tour per context (plus landmark promotion for
// high-traffic nodes and demotion of never-followed links), and swaps
// the derived structures in through the same SetAccessStructure path an
// operator would use — the dependency-aware cache then re-weaves only
// the contexts whose edges actually changed, rotating their ETags.
// GET /stats exposes the recorder counters and per-context top
// nodes/edges; GET /healthz carries the headline analytics counters.
//
// Control plane (the /api/v1 management surface):
//
//	-api-token         bearer token guarding /api/v1. When unset the
//	                   control plane is disabled entirely (every /api
//	                   request answers 403): a server nobody configured
//	                   a token for exposes no mutation surface. With a
//	                   token, reads (GET /api/v1/model, /contexts,
//	                   /contexts/{family}/structure, /stylesheet,
//	                   /analytics/graph) and writes (PUT structure and
//	                   stylesheet, PATCH documents, POST snapshot and
//	                   adapt) require "Authorization: Bearer <token>".
//
// The control plane turns the paper's one-line maintenance change into
// a one-call edit against a live process: PUT a structure spec at
// /api/v1/contexts/{family}/structure (or run `navctl context
// set-structure FAMILY KIND`) and the dependency-aware cache re-weaves
// only that family's contexts, rotating their ETags and no others.
// Writes validate the whole payload before mutating, so a bad spec
// never half-applies. See the README's "Control plane" section and
// cmd/navctl.
//
// Observability (the internal/obs subsystem):
//
// GET /metrics serves the process's metrics in Prometheus text
// exposition format — request counts and latency per route class,
// woven-page cache hits/misses, rebuild verdicts and invalidation
// counts, write-behind flush depth and batch latency, storage
// operation latency per backend, adaptation-cycle timings, and
// process vitals (uptime, goroutines, heap). Like /healthz it needs
// no bearer token. Recording is lock-free and allocation-free on the
// serving path. With -api-token, GET /api/v1/events (or `navctl
// events`) additionally lists recent model mutations with their
// rebuild duration and cache blast radius.
//
// Tracing knobs (request-lifecycle traces, GET /api/v1/traces):
//
//	-trace             record request lifecycles into a bounded trace
//	                   ring (default true). Each kept trace carries a
//	                   per-phase breakdown (limiter admit, session
//	                   lookup, cache hit/miss, weave, storage op,
//	                   response write, ...) and W3C trace-context
//	                   identity; responses echo a Traceparent header
//	                   when the caller sent one or the trace was
//	                   sampled. The unsampled fast path allocates
//	                   nothing.
//	-trace-sample      keep one request in every N (default 128;
//	                   1 keeps everything, 0 disables sampling so only
//	                   slow requests are kept)
//	-trace-slow        always keep a request slower than this,
//	                   sampled or not (default 250ms; 0 disables
//	                   slow capture)
//	-trace-ring        how many kept traces are retained (default 256)
//	-store-faults      wrap the store in a deterministic fault
//	                   injector, e.g. "put:latency=75ms;get:err=0.1"
//	                   (testing/smoke only — see
//	                   internal/storage/faultstore)
//
// Persistence knobs (the internal/storage subsystem):
//
//	-store             session/snapshot backend: "mem" (in-process,
//	                   lost on exit) or "file" (append-only log with
//	                   snapshot compaction, crash-safe)
//	-store-dir         directory the file backend lives in (required
//	                   with -store file)
//	-sync-persist      write each session record synchronously on every
//	                   navigation step instead of through the
//	                   write-behind flusher (durability per step, at
//	                   the old per-request cost)
//	-flush-interval    how often the write-behind flusher drains the
//	                   dirty-session queue (default 100ms; bounds the
//	                   crash-loss window)
//	-flush-batch       sessions per flush round, and the queue depth
//	                   that triggers an early flush (default 256)
//	-shutdown-timeout  grace period for in-flight requests when
//	                   SIGINT/SIGTERM arrives (default 10s)
//
// Profiling:
//
//	-pprof             serve net/http/pprof on a separate loopback
//	                   listener (e.g. -pprof 127.0.0.1:6060; empty =
//	                   off). The address must be a loopback host — the
//	                   profiler is never exposed on the serving
//	                   address. Then e.g.:
//	                   go tool pprof http://127.0.0.1:6060/debug/pprof/profile
//
// With -store file, every visitor session reaches the store after each
// navigation step — write-behind by default, coalesced by the flusher;
// synchronously with -sync-persist — and is rehydrated lazily after a
// restart, so a redeploy loses nobody's place in their tour; the woven
// site
// definition (data documents + links.xml) is also exported into the
// store at startup, so the next navserve — or any XLink-aware agent —
// can reload the same site from the same directory. The file backend
// is single-writer: an advisory lock makes a second process opening a
// live -store-dir fail fast, so sharing happens by sequential hand-off
// (one process exits, the next takes over). Responses carry
// ETag validators derived from the woven-page cache generation;
// conditional GETs revalidate with 304 until the model changes. HEAD
// is supported on every endpoint, and GET /healthz reports session
// count, cache generation and the active backend for load balancers.
//
// On SIGINT/SIGTERM the server drains in-flight requests (up to
// -shutdown-timeout), stops the session janitor, and closes the store —
// the file backend's final flush compacts everything into one fsync'd
// snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analytics"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/faultstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navserve:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	srv, cfg, contexts, err := build(args)
	if err != nil {
		return err
	}
	// The store's final flush is the point of shutting down gracefully;
	// if it fails, the operator must hear about it, not see a clean exit
	// over a stale snapshot. The handler's session-queue drain runs
	// first (LIFO), so pending write-behind states reach the store
	// before it closes.
	defer func() {
		if cerr := cfg.closeStore(); cerr != nil && err == nil {
			err = fmt.Errorf("closing store: %w", cerr)
		}
	}()
	defer func() {
		if cerr := cfg.closeHandler(); cerr != nil && err == nil {
			err = fmt.Errorf("flushing sessions: %w", cerr)
		}
	}()
	if cfg.pprofAddr != "" {
		pp := pprofServer(cfg.pprofAddr)
		go func() {
			if perr := pp.ListenAndServe(); perr != nil && perr != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "navserve: pprof:", perr)
			}
		}()
		defer pp.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", cfg.pprofAddr)
	}
	api := "control plane off (set -api-token)"
	if cfg.apiEnabled {
		api = "control plane at /api/v1"
	}
	fmt.Printf("serving %d contexts on %s (site map at /, health at /healthz, %s store, %s)\n",
		contexts, srv.Addr, cfg.storeName, api)

	// Serve until the listener fails or a shutdown signal arrives; on
	// SIGINT/SIGTERM drain in-flight requests within the grace period so
	// the janitor stop (RegisterOnShutdown) and the store's final flush
	// actually run instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Println("navserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}

// buildConfig carries the run-loop pieces assembled by build that are
// not the *http.Server itself.
type buildConfig struct {
	storeName       string
	shutdownTimeout time.Duration
	pprofAddr       string
	apiEnabled      bool
	closeHandler    func() error
	closeStore      func() error
}

// build assembles the HTTP server from flags; split from run so tests can
// verify assembly without binding a port.
func build(args []string) (*http.Server, *buildConfig, int, error) {
	fs := flag.NewFlagSet("navserve", flag.ContinueOnError)
	var flags cli.DatasetFlags
	flags.Register(fs)
	addr := fs.String("addr", ":8080", "listen address")
	noCache := fs.Bool("no-cache", false, "weave every page per request (disable the woven-page cache)")
	sessionTTL := fs.Duration("session-ttl", server.DefaultSessionTTL,
		"idle session lifetime before eviction (0 = never expire)")
	sessionShards := fs.Int("session-shards", server.DefaultSessionShards,
		"session store shard count")
	evictInterval := fs.Duration("evict-interval", time.Minute,
		"expired-session sweep interval (0 = lazy eviction only)")
	trailLimit := fs.Int("trail-limit", server.DefaultTrailLimit,
		"keep each session's most-recent N hops (0 = unbounded)")
	analyticsOn := fs.Bool("analytics", true,
		"record navigation hops and serve /stats")
	sampleRate := fs.Int("sample-rate", 1,
		"record one hop in every N (1 = all)")
	adaptInterval := fs.Duration("adapt-interval", server.DefaultAdaptInterval,
		"access-structure recomputation interval (0 = never adapt)")
	adaptMinHops := fs.Uint64("adapt-min-hops", 200,
		"recorded hops required before an adapt cycle runs")
	apiToken := fs.String("api-token", "",
		"bearer token guarding the /api/v1 control plane (empty = control plane disabled)")
	storeKind := fs.String("store", "mem", `persistence backend: "mem" or "file"`)
	storeDir := fs.String("store-dir", "", "directory for the file backend (required with -store file)")
	syncPersist := fs.Bool("sync-persist", false,
		"write session records synchronously per step instead of write-behind")
	flushInterval := fs.Duration("flush-interval", server.DefaultFlushInterval,
		"write-behind flush interval (bounds the crash-loss window)")
	flushBatch := fs.Int("flush-batch", server.DefaultFlushBatch,
		"sessions per write-behind flush round")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"max duration for reading an entire request, body included (0 = unbounded)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second,
		"max duration for writing a response — bounds slow-client drains (0 = unbounded)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute,
		"how long a keep-alive connection may sit idle before the server closes it (0 = unbounded)")
	maxInflight := fs.Int("max-inflight", 0,
		"bound on concurrently served visitor requests; past it requests are shed with 503 + Retry-After (0 = unbounded)")
	maxInflightAPI := fs.Int("max-inflight-api", 0,
		"bound on concurrent /api/v1 control-plane requests (0 = unbounded)")
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = off)")
	traceOn := fs.Bool("trace", true,
		"record request-lifecycle traces (GET /api/v1/traces, navctl traces)")
	traceSample := fs.Int("trace-sample", 128,
		"keep one request trace in every N (1 = all, 0 = only slow requests)")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond,
		"always keep a request slower than this, sampled or not (0 = off)")
	traceRing := fs.Int("trace-ring", obs.DefaultTraceRing,
		"how many kept traces are retained")
	storeFaults := fs.String("store-faults", "",
		`wrap the store in a deterministic fault injector, e.g. "put:latency=75ms" (testing only)`)
	if err := fs.Parse(args); err != nil {
		return nil, nil, 0, err
	}
	if *pprofAddr != "" {
		host, _, err := net.SplitHostPort(*pprofAddr)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("-pprof %q: %w", *pprofAddr, err)
		}
		if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			return nil, nil, 0, fmt.Errorf("-pprof %q: profiler must bind a loopback address", *pprofAddr)
		}
	}
	app, err := flags.BuildApp()
	if err != nil {
		return nil, nil, 0, err
	}

	var store storage.Store
	switch *storeKind {
	case "mem":
		if *storeDir != "" {
			return nil, nil, 0, fmt.Errorf("-store-dir is only meaningful with -store file")
		}
		store = storage.NewMem()
	case "file":
		if *storeDir == "" {
			return nil, nil, 0, fmt.Errorf("-store file requires -store-dir")
		}
		store, err = storage.OpenFile(*storeDir)
		if err != nil {
			return nil, nil, 0, err
		}
	default:
		return nil, nil, 0, fmt.Errorf("unknown -store %q (want mem or file)", *storeKind)
	}
	// Fault injection wraps the raw backend first, so the injected
	// latency and errors are visible to the instrumentation layer the
	// same way a genuinely slow disk would be.
	if *storeFaults != "" {
		fst := faultstore.New(store, 1)
		if err := fst.Configure(*storeFaults); err != nil {
			store.Close()
			return nil, nil, 0, fmt.Errorf("-store-faults: %w", err)
		}
		store = fst
	}
	// Time every storage operation into the /metrics op-latency
	// histograms; wrapping before the snapshot export means startup I/O
	// is visible too, not just steady-state traffic.
	store = storage.Instrument(store)
	// Publish the woven site definition into the store so the next
	// process over this directory (a navserve, an XLink agent) can
	// reload it. Only durable backends can carry it anywhere, so the
	// mem store skips the copy.
	if *storeKind == "file" {
		if err := app.ExportSnapshot(store); err != nil {
			store.Close()
			return nil, nil, 0, err
		}
	}

	opts := []server.Option{
		server.WithSessionTTL(*sessionTTL),
		server.WithSessionShards(*sessionShards),
		server.WithPersistence(store),
		server.WithFlushInterval(*flushInterval),
		server.WithFlushBatch(*flushBatch),
		server.WithTrailLimit(*trailLimit),
	}
	if *syncPersist {
		opts = append(opts, server.WithSyncPersistence())
	}
	if *maxInflight > 0 {
		opts = append(opts, server.WithMaxInflight(*maxInflight))
	}
	if *maxInflightAPI > 0 {
		opts = append(opts, server.WithMaxInflightAPI(*maxInflightAPI))
	}
	if *apiToken != "" {
		opts = append(opts, server.WithAPIToken(*apiToken))
	}
	if *noCache {
		opts = append(opts, server.WithoutPageCache())
	}
	if *analyticsOn {
		opts = append(opts, server.WithAnalytics(
			analytics.NewRecorder(analytics.RecorderConfig{SampleRate: *sampleRate})))
	}
	if *traceOn {
		opts = append(opts, server.WithTracing(obs.NewTracer(obs.TraceConfig{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
			RingSize:      *traceRing,
		})))
	}
	if *pprofAddr != "" {
		// Labeled profiles only cost anything while a profiler is
		// attachable, so labeling rides the -pprof flag.
		opts = append(opts, server.WithProfileLabels())
	}
	handler := server.New(app, opts...)
	// The full timeout set: header read was always bounded; body reads,
	// response writes and idle keep-alives are now too, so one slow (or
	// hostile) client cannot pin a connection — or a handler goroutine —
	// forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	if *sessionTTL > 0 && *evictInterval > 0 {
		// The janitor sweeps abandoned sessions; tying its stop to
		// server shutdown keeps the goroutine from outliving serving.
		srv.RegisterOnShutdown(handler.StartJanitor(*evictInterval))
	}
	if *analyticsOn && *adaptInterval > 0 {
		// The adaptation loop re-derives access structures from live
		// traffic; its stop rides shutdown like the janitor's.
		srv.RegisterOnShutdown(handler.StartAdaptation(*adaptInterval, *adaptMinHops))
	}
	cfg := &buildConfig{
		storeName:       store.Name(),
		shutdownTimeout: *shutdownTimeout,
		pprofAddr:       *pprofAddr,
		apiEnabled:      *apiToken != "",
		// Drain the write-behind session queue before the store's final
		// flush, so the last steps of every trail reach disk.
		closeHandler: handler.Close,
		closeStore:   store.Close,
	}
	return srv, cfg, len(app.Resolved().Contexts), nil
}

// pprofServer builds the profiling listener's server: the standard
// pprof handlers on their own mux, so nothing else the process
// registers on http.DefaultServeMux leaks onto the profiling port (and
// vice versa — the serving mux never exposes /debug).
func pprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}
