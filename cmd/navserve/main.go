// Command navserve runs the XLink-aware user agent over a woven
// application: pages are woven per request from the separated data,
// linkbase and presentation, and each visitor's navigation trail is
// tracked in a session (GET /session returns it as JSON).
//
// Usage:
//
//	navserve -addr :8080
//	navserve -addr :8080 -dataset synthetic -painters 20 -access index
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "navserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, contexts, err := build(args)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d contexts on %s (site map at /)\n", contexts, srv.Addr)
	return srv.ListenAndServe()
}

// build assembles the HTTP server from flags; split from run so tests can
// verify assembly without binding a port.
func build(args []string) (*http.Server, int, error) {
	fs := flag.NewFlagSet("navserve", flag.ContinueOnError)
	var flags cli.DatasetFlags
	flags.Register(fs)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return nil, 0, err
	}
	app, err := flags.BuildApp()
	if err != nil {
		return nil, 0, err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(app),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv, len(app.Resolved().Contexts), nil
}
