package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestBuildAssemblesServer(t *testing.T) {
	srv, contexts, err := build([]string{"-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown runs the RegisterOnShutdown hook, stopping the janitor.
	defer srv.Shutdown(context.Background())
	if srv.Addr != ":0" || srv.Handler == nil {
		t.Errorf("server = %+v", srv)
	}
	if contexts != 4 {
		t.Errorf("contexts = %d, want 4 (paper museum)", contexts)
	}
	// Drive the assembled handler end to end.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<h1>Guitar</h1>") {
		t.Error("page content missing")
	}
}

func TestBuildServingKnobs(t *testing.T) {
	srv, _, err := build([]string{
		"-addr", ":0", "-no-cache",
		"-session-ttl", "5m", "-session-shards", "4", "-evict-interval", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build([]string{"-dataset", "bogus"}); err == nil {
		t.Error("bogus dataset accepted")
	}
	if _, _, err := build([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
