package main

import (
	"context"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBuildAssemblesServer(t *testing.T) {
	srv, cfg, contexts, err := build([]string{"-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown runs the RegisterOnShutdown hook, stopping the janitor.
	defer srv.Shutdown(context.Background())
	defer cfg.closeStore()
	if srv.Addr != ":0" || srv.Handler == nil {
		t.Errorf("server = %+v", srv)
	}
	if contexts != 4 {
		t.Errorf("contexts = %d, want 4 (paper museum)", contexts)
	}
	if cfg.storeName != "mem" {
		t.Errorf("default store = %q, want mem", cfg.storeName)
	}
	// Drive the assembled handler end to end.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("page response missing ETag")
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<h1>Guitar</h1>") {
		t.Error("page content missing")
	}
}

func TestBuildServingKnobs(t *testing.T) {
	srv, cfg, _, err := build([]string{
		"-addr", ":0", "-no-cache",
		"-session-ttl", "5m", "-session-shards", "4", "-evict-interval", "0",
		"-shutdown-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cfg.closeStore()
	if cfg.shutdownTimeout != 3*time.Second {
		t.Errorf("shutdownTimeout = %v", cfg.shutdownTimeout)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestBuildAnalyticsKnobs: the adaptive-navigation flags wire a
// recorder into the handler — /stats reports analytics on, records the
// traffic the request itself generated, and -analytics=false turns the
// endpoint into its disabled form.
func TestBuildAnalyticsKnobs(t *testing.T) {
	srv, cfg, _, err := build([]string{
		"-addr", ":0", "-sample-rate", "1",
		"-adapt-interval", "50ms", "-adapt-min-hops", "1",
		"-trail-limit", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	defer cfg.closeStore()
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	if resp, err := ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	body := string(buf[:n])
	if !strings.Contains(body, `"analytics":true`) || !strings.Contains(body, `"recorded":1`) {
		t.Errorf("/stats = %s", body)
	}

	off, cfgOff, _, err := build([]string{"-addr", ":0", "-analytics=false"})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Shutdown(context.Background())
	defer cfgOff.closeStore()
	tsOff := httptest.NewServer(off.Handler)
	defer tsOff.Close()
	resp, err = tsOff.Client().Get(tsOff.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), `"analytics":false`) {
		t.Errorf("disabled /stats = %s", buf[:n])
	}
}

// TestBuildFileStore: -store file persists sessions under -store-dir and
// exports the site snapshot at startup.
func TestBuildFileStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	srv, cfg, _, err := build([]string{"-addr", ":0", "-store", "file", "-store-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.storeName != "file" {
		t.Errorf("store = %q, want file", cfg.storeName)
	}
	ts := httptest.NewServer(srv.Handler)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), `"store":"file"`) {
		t.Errorf("healthz = %s", buf[:n])
	}
	ts.Close()
	if err := cfg.closeStore(); err != nil {
		t.Fatal(err)
	}
	// The final flush left a snapshot holding the exported site.
	raw, err := os.ReadFile(filepath.Join(dir, "snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "site/links.xml") {
		t.Error("store snapshot missing the exported linkbase")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "bogus"},
		{"-nope"},
		{"-store", "bogus"},
		{"-store", "file"},                      // missing -store-dir
		{"-store", "mem", "-store-dir", "/tmp"}, // dir without file backend
	}
	for _, args := range cases {
		if _, _, _, err := build(args); err == nil {
			t.Errorf("build(%v) accepted", args)
		}
	}
}

// TestRunShutsDownOnSignal covers the graceful-shutdown path end to end:
// run serves until SIGTERM, then drains and exits nil.
func TestRunShutsDownOnSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("signals the whole process")
	}
	// Guard first: registering any SIGTERM handler disables the default
	// kill-the-process disposition, so a signal that lands before run()
	// installs its own NotifyContext cannot take the test binary down.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	dir := filepath.Join(t.TempDir(), "store")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-store", "file", "-store-dir", dir})
	}()
	// run() has no readiness signal, so deliver SIGTERM periodically:
	// signals sent before NotifyContext is installed land only in the
	// guard channel; the first one after it triggers the shutdown path.
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run after SIGTERM = %v, want nil", err)
			}
			// The store's final flush ran: the snapshot exists.
			if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
				t.Errorf("no snapshot after graceful shutdown: %v", err)
			}
			return
		case <-tick.C:
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("run did not shut down on SIGTERM")
		}
	}
}

// TestBuildPprofFlag: the profiler only ever binds loopback, and the
// assembled pprof server answers the index route.
func TestBuildPprofFlag(t *testing.T) {
	srv, cfg, _, err := build([]string{"-addr", ":0", "-pprof", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	defer cfg.closeStore()
	defer cfg.closeHandler()
	if cfg.pprofAddr != "127.0.0.1:0" {
		t.Errorf("pprofAddr = %q", cfg.pprofAddr)
	}

	for _, bad := range []string{"0.0.0.0:6060", "example.com:6060", "6060", "192.168.1.4:6060"} {
		if _, _, _, err := build([]string{"-addr", ":0", "-pprof", bad}); err == nil {
			t.Errorf("build accepted non-loopback -pprof %q", bad)
		}
	}

	ts := httptest.NewServer(pprofServer("127.0.0.1:0").Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index = %d", resp.StatusCode)
	}
}

// TestBuildPersistenceKnobs: the write-behind flags parse and assemble.
func TestBuildPersistenceKnobs(t *testing.T) {
	srv, cfg, _, err := build([]string{
		"-addr", ":0", "-sync-persist", "-flush-interval", "50ms", "-flush-batch", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	defer cfg.closeStore()
	defer cfg.closeHandler()
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `"persist_queue":0`) {
		t.Errorf("healthz = %s, want persist_queue", buf[:n])
	}
}
