#!/bin/sh
# metrics_smoke.sh — boot a real navserve, drive page traffic, a
# revalidation and one control-plane mutation, then assert the
# observability surface holds together across processes: /metrics
# exposes the series every layer is supposed to record, /healthz
# carries the runtime vitals, and /api/v1/events traces the mutation
# with its blast radius. This is the cross-process half of the metrics
# tests — what a real scraper and a real operator would see.
#
# Usage:
#   scripts/metrics_smoke.sh            # builds into a temp dir, runs, cleans up
#   PORT=18099 scripts/metrics_smoke.sh # pin the port
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
PORT="${PORT:-$((18000 + $$ % 2000))}"
ADDR="127.0.0.1:$PORT"
TOKEN="metrics-smoke-$$"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "metrics-smoke: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$DIR/navserve.log" >&2 || true
	exit 1
}

echo "== building navserve and navctl"
"$GO" build -o "$DIR/navserve" ./cmd/navserve
"$GO" build -o "$DIR/navctl" ./cmd/navctl

echo "== starting navserve on $ADDR"
"$DIR/navserve" -addr "$ADDR" -api-token "$TOKEN" >"$DIR/navserve.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "server did not become healthy"
	kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
	sleep 0.1
done

echo "== driving traffic: pages, a cache hit, a revalidation, a traversal"
PAGE="http://$ADDR/ByAuthor/picasso/guitar.html"
TAG="$(curl -fsSI "$PAGE" | tr -d '\r' | awk 'tolower($1) == "etag:" { print $2 }')"
[ -n "$TAG" ] || fail "no ETag on $PAGE"
curl -fsS "$PAGE" >/dev/null                          # cache hit
curl -fsS "http://$ADDR/ByAuthor/picasso/guernica.html" >/dev/null
code="$(curl -sS -o /dev/null -w '%{http_code}' -H "If-None-Match: $TAG" "$PAGE")"
[ "$code" = "304" ] || fail "revalidation = $code, want 304"
curl -fsS "http://$ADDR/" >/dev/null                  # sitemap
curl -sS -o /dev/null "http://$ADDR/go/next"          # traversal (starts a session)

echo "== one mutation through the control plane"
"$DIR/navctl" -addr "http://$ADDR" -token "$TOKEN" context set-structure ByAuthor guided-tour \
	|| fail "navctl set-structure failed"

echo "== /metrics must expose every layer's series"
METRICS="$DIR/metrics.txt"
curl -fsS "http://$ADDR/metrics" >"$METRICS" || fail "GET /metrics failed"
ct="$(curl -fsSI "http://$ADDR/metrics" | tr -d '\r' | awk -F': ' 'tolower($1) == "content-type" { print $2 }')"
case "$ct" in
text/plain*version=0.0.4*) ;;
*) fail "/metrics Content-Type = $ct" ;;
esac
for series in \
	'navserve_http_requests_total{route="page",code="2xx"}' \
	'navserve_http_not_modified_total{route="page"} 1' \
	'navserve_http_request_duration_seconds_bucket' \
	'navcore_page_cache_hits_total' \
	'navcore_page_cache_misses_total' \
	'navcore_rebuilds_total{verdict="local"} 1' \
	'navcore_pages_invalidated_total' \
	'navserve_flush_queue_depth' \
	'navstorage_op_duration_seconds_count{backend="mem",op="put"}' \
	'navserve_adapt_cycles_total' \
	'navserve_uptime_seconds' \
	'navserve_goroutines' \
	'navserve_heap_bytes'; do
	grep -Fq "$series" "$METRICS" || fail "/metrics missing: $series"
done

echo "== /api/v1/events must trace the structure swap"
EVENTS="$DIR/events.json"
curl -fsS -H "Authorization: Bearer $TOKEN" "http://$ADDR/api/v1/events" >"$EVENTS" \
	|| fail "GET /api/v1/events failed"
grep -q '"kind":"structure-swap"' "$EVENTS" || fail "events missing the structure swap: $(cat "$EVENTS")"
grep -q '"target":"ByAuthor"' "$EVENTS" || fail "events missing the target family: $(cat "$EVENTS")"
"$DIR/navctl" -addr "http://$ADDR" -token "$TOKEN" events -n 1 | grep -q structure-swap \
	|| fail "navctl events does not show the swap"

echo "== non-GET on operational endpoints is a structured 405"
code="$(curl -sS -o "$DIR/405.json" -w '%{http_code}' -X POST "http://$ADDR/metrics")"
[ "$code" = "405" ] || fail "POST /metrics = $code, want 405"
grep -q '"status":405' "$DIR/405.json" || fail "405 body is not the structured error: $(cat "$DIR/405.json")"

echo "metrics-smoke: PASS ($(grep -c '^navserve_\|^navcore_\|^navstorage_' "$METRICS") series exposed)"
