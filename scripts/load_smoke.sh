#!/bin/sh
# load_smoke.sh — load + chaos smoke: boot a real navserve on the file
# store, drive thousands of seeded simulated sessions through navload
# (every /go/back and /go/forward checked against the harness's
# independent history mirror), gate on SLOs, then SIGKILL the server,
# restart it over the same store, and assert zero session loss: every
# recorded navigation history is served verbatim and still traversable.
#
# Usage:
#   scripts/load_smoke.sh                 # builds into a temp dir, runs, cleans up
#   SESSIONS=10000 scripts/load_smoke.sh  # scale the run
#   PORT=18399 scripts/load_smoke.sh      # pin the port
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
PORT="${PORT:-$((18300 + $$ % 2000))}"
ADDR="127.0.0.1:$PORT"
SESSIONS="${SESSIONS:-2000}"
SEED="${SEED:-42}"
TOKEN="load-smoke-token"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "load-smoke: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$DIR/navserve.log" >&2 || true
	exit 1
}

start_server() {
	"$DIR/navserve" -addr "$ADDR" \
		-store file -store-dir "$DIR/store" \
		-api-token "$TOKEN" \
		-flush-interval 50ms \
		-read-timeout 10s -write-timeout 10s -idle-timeout 30s \
		>>"$DIR/navserve.log" 2>&1 &
	SERVER_PID=$!
	i=0
	until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 50 ] && fail "server did not become healthy"
		kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
		sleep 0.1
	done
}

echo "== building navserve and navload"
"$GO" build -o "$DIR/navserve" ./cmd/navserve
"$GO" build -o "$DIR/navload" ./cmd/navload

echo "== starting navserve on $ADDR (file store in $DIR/store)"
mkdir -p "$DIR/store"
start_server

echo "== load phase: $SESSIONS seeded sessions, SLO-gated, snapshots recorded"
"$DIR/navload" -url "http://$ADDR" -token "$TOKEN" \
	-sessions "$SESSIONS" -seed "$SEED" -steps 20 -think 1ms \
	-slo-p99 2s -slo-errors 0.001 -slo-shed 0.01 -slo-heap-mb 512 \
	-record "$DIR/snaps.json" -record-every 20 -settle 15s \
	-out "$DIR/report.json" \
	|| fail "load phase did not meet its SLOs"
grep -q '"history_mismatches": 0' "$DIR/report.json" \
	|| fail "history mismatches in report: $(cat "$DIR/report.json")"

echo "== chaos phase: SIGKILL the server mid-life"
kill -9 "$SERVER_PID" || fail "could not kill server"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== restarting on the same store"
start_server

echo "== verify phase: zero session loss, histories still traversable"
"$DIR/navload" -url "http://$ADDR" -verify "$DIR/snaps.json" \
	|| fail "session loss across SIGKILL/restart"

echo "load-smoke: PASS ($SESSIONS sessions, SLOs met, zero loss across SIGKILL)"
