#!/bin/sh
# bench.sh — run the serve/persist/analytics benchmarks and emit
# BENCH_serve.json, a {benchmark: {ns_per_op, bytes_per_op,
# allocs_per_op}} summary, so the serving stack's perf trajectory is
# tracked PR over PR. Then run a fixed-seed navload scenario against a
# real navserve and record its latency/throughput report in
# BENCH_load.json.
#
# Usage:
#   scripts/bench.sh                 # 1s per benchmark, writes BENCH_serve.json + BENCH_load.json
#   BENCHTIME=100ms scripts/bench.sh # quicker, noisier
#   LOAD_SESSIONS=20000 scripts/bench.sh
#   OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_serve.json}"
LOAD_OUT="${LOAD_OUT:-BENCH_load.json}"
LOAD_SESSIONS="${LOAD_SESSIONS:-5000}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

{
	${GO:-go} test -run '^$' -bench 'Serve|Step|Session|ColdStart' \
		-benchmem -benchtime "$BENCHTIME" ./internal/server/
	${GO:-go} test -run '^$' -bench 'Record|Graph|Derive' \
		-benchmem -benchtime "$BENCHTIME" ./internal/analytics/
	${GO:-go} test -run '^$' -bench 'Counter|Histogram|Trace' \
		-benchmem -benchtime "$BENCHTIME" ./internal/obs/
	${GO:-go} test -run '^$' -bench 'ObserveRequest' \
		-benchmem -benchtime "$BENCHTIME" ./internal/server/
} | tee "$TMP"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
BEGIN { print "{" }
END   { print "\n}" }
' "$TMP" > "$OUT"

echo "wrote $OUT"

# Load benchmark: a seeded navload scenario against a live navserve on
# a file store, so the numbers include real session persistence. The
# report (throughput, p50/p90/p99, heap ceiling, mismatch count) IS the
# benchmark artifact.
DIR="$(mktemp -d)"
SERVER_PID=""
load_cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR" "$TMP"
}
trap load_cleanup EXIT

PORT=$((18500 + $$ % 2000))
${GO:-go} build -o "$DIR/navserve" ./cmd/navserve
${GO:-go} build -o "$DIR/navload" ./cmd/navload
mkdir -p "$DIR/store"
"$DIR/navserve" -addr "127.0.0.1:$PORT" \
	-store file -store-dir "$DIR/store" -api-token bench \
	>"$DIR/navserve.log" 2>&1 &
SERVER_PID=$!
i=0
until curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "bench: navserve did not become healthy" >&2
		cat "$DIR/navserve.log" >&2 || true
		exit 1
	fi
	sleep 0.1
done

"$DIR/navload" -url "http://127.0.0.1:$PORT" -token bench \
	-sessions "$LOAD_SESSIONS" -seed 1 -steps 20 -think 0 \
	-out "$LOAD_OUT"

echo "wrote $LOAD_OUT"
