#!/bin/sh
# bench.sh — run the serve/persist/analytics benchmarks and emit
# BENCH_serve.json, a {benchmark: {ns_per_op, bytes_per_op,
# allocs_per_op}} summary, so the serving stack's perf trajectory is
# tracked PR over PR.
#
# Usage:
#   scripts/bench.sh                 # 1s per benchmark, writes BENCH_serve.json
#   BENCHTIME=100ms scripts/bench.sh # quicker, noisier
#   OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_serve.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

{
	${GO:-go} test -run '^$' -bench 'Serve|Step|Session|ColdStart' \
		-benchmem -benchtime "$BENCHTIME" ./internal/server/
	${GO:-go} test -run '^$' -bench 'Record|Graph|Derive' \
		-benchmem -benchtime "$BENCHTIME" ./internal/analytics/
	${GO:-go} test -run '^$' -bench 'Counter|Histogram|Trace' \
		-benchmem -benchtime "$BENCHTIME" ./internal/obs/
	${GO:-go} test -run '^$' -bench 'ObserveRequest' \
		-benchmem -benchtime "$BENCHTIME" ./internal/server/
} | tee "$TMP"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
BEGIN { print "{" }
END   { print "\n}" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
