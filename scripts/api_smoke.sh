#!/bin/sh
# api_smoke.sh — boot a real navserve with its control plane enabled,
# drive navctl through the paper's maintenance change (swap one context
# family's access structure), and assert what a production cache would
# observe: the affected family's ETag rotates, the untouched family's
# validator keeps answering 304, and write endpoints reject missing
# tokens. This is the cross-process half of the control-plane tests —
# two separate binaries over a real socket.
#
# Usage:
#   scripts/api_smoke.sh            # builds into a temp dir, runs, cleans up
#   PORT=18099 scripts/api_smoke.sh # pin the port
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
PORT="${PORT:-$((18000 + $$ % 2000))}"
ADDR="127.0.0.1:$PORT"
TOKEN="smoke-$$"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "api-smoke: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$DIR/navserve.log" >&2 || true
	exit 1
}

echo "== building navserve and navctl"
"$GO" build -o "$DIR/navserve" ./cmd/navserve
"$GO" build -o "$DIR/navctl" ./cmd/navctl

echo "== starting navserve on $ADDR"
"$DIR/navserve" -addr "$ADDR" -api-token "$TOKEN" >"$DIR/navserve.log" 2>&1 &
SERVER_PID=$!

# Wait for /healthz.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "server did not become healthy"
	kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
	sleep 0.1
done

etag_of() {
	curl -fsSI "$1" | tr -d '\r' | awk 'tolower($1) == "etag:" { print $2 }'
}
status_inm() {
	curl -sS -o /dev/null -w '%{http_code}' -H "If-None-Match: $2" "$1"
}

AUTHOR="http://$ADDR/ByAuthor/picasso/guitar.html"
MOVEMENT="http://$ADDR/ByMovement/cubism/guitar.html"
AUTHOR_TAG="$(etag_of "$AUTHOR")"
MOVEMENT_TAG="$(etag_of "$MOVEMENT")"
[ -n "$AUTHOR_TAG" ] || fail "no ETag on $AUTHOR"
echo "== cached $AUTHOR ($AUTHOR_TAG) and $MOVEMENT ($MOVEMENT_TAG)"

echo "== write without a token must be rejected"
code="$(curl -sS -o /dev/null -w '%{http_code}' -X PUT \
	-d '{"kind":"guided-tour"}' "http://$ADDR/api/v1/contexts/ByAuthor/structure")"
[ "$code" = "401" ] || fail "unauthenticated PUT = $code, want 401"

echo "== navctl swaps ByAuthor to a guided tour"
"$DIR/navctl" -addr "http://$ADDR" -token "$TOKEN" context set-structure ByAuthor guided-tour \
	|| fail "navctl set-structure failed"
"$DIR/navctl" -addr "http://$ADDR" -token "$TOKEN" model | grep -q \
	'context ByAuthor of PaintingNode groupby=paints orderby=year access=guided-tour' \
	|| fail "navctl model does not show the swapped structure"

echo "== affected family's ETag must rotate"
code="$(status_inm "$AUTHOR" "$AUTHOR_TAG")"
[ "$code" = "200" ] || fail "author page revalidation = $code, want 200 (new content)"
NEW_TAG="$(etag_of "$AUTHOR")"
[ "$NEW_TAG" != "$AUTHOR_TAG" ] || fail "author ETag did not rotate ($NEW_TAG)"

echo "== untouched family's validator must survive"
code="$(status_inm "$MOVEMENT" "$MOVEMENT_TAG")"
[ "$code" = "304" ] || fail "movement page revalidation = $code, want 304"

echo "== the family index is gone with the hub"
code="$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/ByAuthor/picasso/index.html")"
[ "$code" = "404" ] || fail "hub page after guided-tour swap = $code, want 404"

echo "api-smoke: PASS (ETag $AUTHOR_TAG -> $NEW_TAG, other family stable)"
