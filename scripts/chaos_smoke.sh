#!/bin/sh
# chaos_smoke.sh — crash-recovery smoke: boot a real navserve on the
# file store, walk a visitor trail, SIGKILL the process mid-flight (no
# graceful drain), restart on the same store directory, and assert the
# trail resumes where the flusher had persisted it and /readyz reports
# ready. This is the cross-process half of the resilience tests: the
# in-process chaos tests inject faults with faultstore; this one kills
# a real process under real traffic.
#
# Usage:
#   scripts/chaos_smoke.sh            # builds into a temp dir, runs, cleans up
#   PORT=18299 scripts/chaos_smoke.sh # pin the port
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
PORT="${PORT:-$((18200 + $$ % 2000))}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
SERVER_PID=""
TRAFFIC_PID=""
cleanup() {
	[ -n "$TRAFFIC_PID" ] && kill "$TRAFFIC_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "chaos-smoke: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$DIR/navserve.log" >&2 || true
	exit 1
}

start_server() {
	"$DIR/navserve" -addr "$ADDR" \
		-store file -store-dir "$DIR/store" \
		-flush-interval 50ms \
		-max-inflight 256 \
		-read-timeout 10s -write-timeout 10s -idle-timeout 30s \
		>>"$DIR/navserve.log" 2>&1 &
	SERVER_PID=$!
	i=0
	until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 50 ] && fail "server did not become healthy"
		kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
		sleep 0.1
	done
}

ready_code() {
	curl -sS -o "$DIR/ready.json" -w '%{http_code}' "http://$ADDR/readyz"
}

visits() {
	curl -fsS -b "$DIR/jar" "http://$ADDR/session"
}

echo "== building navserve"
"$GO" build -o "$DIR/navserve" ./cmd/navserve

echo "== starting navserve on $ADDR (file store in $DIR/store)"
mkdir -p "$DIR/store"
start_server

code="$(ready_code)"
[ "$code" = "200" ] || fail "fresh /readyz = $code, want 200"
grep -q '"ready"' "$DIR/ready.json" || fail "/readyz body lacks ready: $(cat "$DIR/ready.json")"

echo "== walking a visitor trail"
curl -fsS -c "$DIR/jar" -o /dev/null "http://$ADDR/ByAuthor/picasso/avignon.html"
curl -fsS -b "$DIR/jar" -L -o /dev/null "http://$ADDR/go/next"
curl -fsS -b "$DIR/jar" -L -o /dev/null "http://$ADDR/go/next"
trail="$(visits)"
echo "$trail" | grep -q '"guernica"' || fail "trail did not reach guernica: $trail"

# Let the write-behind flusher (50ms interval) land the trail in the
# file store before the crash.
sleep 0.5

echo "== SIGKILL mid-flight"
# Background traffic so the kill lands while requests are in the air.
(while :; do
	curl -sS -o /dev/null "http://$ADDR/ByAuthor/picasso/guitar.html" 2>/dev/null || exit 0
done) &
TRAFFIC_PID=$!
sleep 0.2
kill -9 "$SERVER_PID" || fail "could not kill server"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
kill "$TRAFFIC_PID" 2>/dev/null || true
wait "$TRAFFIC_PID" 2>/dev/null || true
TRAFFIC_PID=""

echo "== restarting on the same store"
start_server

code="$(ready_code)"
[ "$code" = "200" ] || fail "post-restart /readyz = $code, want 200"
grep -q '"ready"' "$DIR/ready.json" || fail "post-restart /readyz body: $(cat "$DIR/ready.json")"

echo "== the trail must resume from the persisted state"
trail="$(visits)"
echo "$trail" | grep -q '"guernica"' || fail "trail lost across the crash: $trail"
n="$(echo "$trail" | grep -o '"NodeID"' | wc -l | tr -d ' ')"
[ "$n" -ge 3 ] || fail "trail has $n visits after restart, want >= 3"

echo "== the rehydrated session keeps navigating"
code="$(curl -sS -b "$DIR/jar" -o /dev/null -w '%{http_code}' "http://$ADDR/ByAuthor/picasso/guernica.html")"
[ "$code" = "200" ] || fail "page with rehydrated session = $code, want 200"

echo "chaos-smoke: PASS (trail of $n visits survived SIGKILL, /readyz ready)"
