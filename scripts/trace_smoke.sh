#!/bin/sh
# trace_smoke.sh — boot a real navserve with tracing on and a
# fault-injected store that stalls session writes, drive fast traffic
# plus one deliberately slow page request, then assert the tracing
# surface holds together across processes: the slow request is captured
# unconditionally (sampling is off), /api/v1/traces?slow=1 returns it
# with the stall attributed to the storage-op phase, navctl traces
# -slow prints it, and W3C trace context propagates caller → response.
# This is the cross-process half of the tracing tests — what a real
# operator chasing a latency spike would see.
#
# Usage:
#   scripts/trace_smoke.sh            # builds into a temp dir, runs, cleans up
#   PORT=18099 scripts/trace_smoke.sh # pin the port
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
PORT="${PORT:-$((18000 + $$ % 2000))}"
ADDR="127.0.0.1:$PORT"
TOKEN="trace-smoke-$$"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "trace-smoke: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$DIR/navserve.log" >&2 || true
	exit 1
}

echo "== building navserve and navctl"
"$GO" build -o "$DIR/navserve" ./cmd/navserve
"$GO" build -o "$DIR/navctl" ./cmd/navctl

# Sampling off (-trace-sample 0): anything in the ring got there via
# slow capture. The fault injector stalls every store put 75ms, and
# -sync-persist puts that stall on the page request path; the 25ms
# threshold catches it while /links.xml (no session write) stays under.
echo "== starting navserve on $ADDR (tracing on, 75ms injected store stall)"
"$DIR/navserve" -addr "$ADDR" -api-token "$TOKEN" \
	-store mem -sync-persist -store-faults "put:latency=75ms" \
	-trace -trace-sample 0 -trace-slow 25ms >"$DIR/navserve.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "server did not become healthy"
	kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
	sleep 0.1
done

echo "== driving traffic: fast doc GETs plus one slow page request"
for _ in 1 2 3 4 5; do
	curl -fsS "http://$ADDR/links.xml" >/dev/null # fast: no session write
done
PAGE="http://$ADDR/ByAuthor/picasso/guitar.html"
curl -fsS "$PAGE" >/dev/null # slow: the session put eats the 75ms stall

echo "== the slow request must be in /api/v1/traces?slow=1 with a storage-op phase"
TRACES="$DIR/traces.json"
curl -fsS -H "Authorization: Bearer $TOKEN" "http://$ADDR/api/v1/traces?slow=1" >"$TRACES" \
	|| fail "GET /api/v1/traces?slow=1 failed"
grep -q '"enabled":true' "$TRACES" || fail "tracing not enabled: $(cat "$TRACES")"
grep -q '"slow":true' "$TRACES" || fail "no slow trace captured: $(cat "$TRACES")"
grep -q '"route":"page"' "$TRACES" || fail "slow trace is not the page request: $(cat "$TRACES")"
grep -q '"phase":"storage-op"' "$TRACES" || fail "slow trace has no storage-op phase: $(cat "$TRACES")"
grep -q '"route":"doc"' "$TRACES" && fail "fast doc GETs leaked into the slow listing: $(cat "$TRACES")"

echo "== navctl traces -slow must print it with the phase breakdown"
"$DIR/navctl" -addr "http://$ADDR" -token "$TOKEN" traces -slow >"$DIR/navctl-traces.txt" \
	|| fail "navctl traces -slow failed"
grep -q 'SLOW' "$DIR/navctl-traces.txt" || fail "navctl traces shows no SLOW marker: $(cat "$DIR/navctl-traces.txt")"
grep -q 'page /ByAuthor/picasso/guitar.html' "$DIR/navctl-traces.txt" \
	|| fail "navctl traces missing the page: $(cat "$DIR/navctl-traces.txt")"
grep -q 'storage-op' "$DIR/navctl-traces.txt" \
	|| fail "navctl traces missing the storage-op phase: $(cat "$DIR/navctl-traces.txt")"

echo "== W3C trace context must propagate caller -> response"
PARENT="00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
TP="$(curl -fsSI -H "Traceparent: $PARENT" "http://$ADDR/links.xml" \
	| tr -d '\r' | awk 'tolower($1) == "traceparent:" { print $2 }')"
case "$TP" in
00-4bf92f3577b34da6a3ce929d0e0e4736-*) ;;
*) fail "response Traceparent = '$TP', want the caller's trace id echoed" ;;
esac
[ "$TP" = "$PARENT" ] && fail "response reused the caller's span id instead of minting its own"

echo "== the trace ring gauge must be on /metrics"
curl -fsS "http://$ADDR/metrics" | grep -q '^navserve_traces_kept' \
	|| fail "/metrics missing navserve_traces_kept"

echo "trace-smoke: PASS (slow request captured, phases attributed, context propagated)"
