package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/client"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/server"
)

const testToken = "client-test-token"

func testClient(t *testing.T, opts ...server.Option) (*client.Client, *core.App, *httptest.Server) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(app, append([]server.Option{server.WithAPIToken(testToken)}, opts...)...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, testToken)
	if err != nil {
		t.Fatal(err)
	}
	return c, app, ts
}

// TestClientStructureSwap drives the paper's maintenance change through
// the typed client: GET the structure, swap it, observe the swap live.
func TestClientStructureSwap(t *testing.T) {
	c, app, _ := testClient(t)
	ctx := context.Background()

	st, err := c.Structure(ctx, "ByAuthor")
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Kind != "indexed-guided-tour" {
		t.Fatalf("initial structure = %+v", st.Spec)
	}

	res, err := c.SetStructureKind(ctx, "ByAuthor", "circular-guided-tour")
	if err != nil {
		t.Fatal(err)
	}
	if res.Family != "ByAuthor" || res.DroppedPages < 0 {
		t.Errorf("mutation result = %+v", res)
	}
	if kind := app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "guided-tour" {
		t.Errorf("live structure = %q, want guided-tour", kind)
	}
	st, err = c.Structure(ctx, "ByAuthor")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Spec.Circular || st.Text != "circular-guided-tour" {
		t.Errorf("structure after swap = %+v text=%q", st.Spec, st.Text)
	}

	// A full spec round trip: GET, tweak, PUT back.
	st.Spec.Circular = false
	if _, err := c.SetStructure(ctx, "ByAuthor", *st.Spec); err != nil {
		t.Fatal(err)
	}
	gt, ok := app.Resolved().Context("ByAuthor:picasso").Def.Access.(navigation.GuidedTour)
	if !ok || gt.Circular {
		t.Errorf("live structure after spec edit = %#v", app.Resolved().Context("ByAuthor:picasso").Def.Access)
	}
}

// TestClientModel: the model read carries the same artifact the server
// renders, and the families' specs decode.
func TestClientModel(t *testing.T) {
	c, app, _ := testClient(t)
	m, err := c.Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.SpecText != app.SpecText() {
		t.Errorf("client model spec text differs from the live artifact")
	}
	if len(m.Families) != 2 || m.Families[0].Access == nil {
		t.Fatalf("families = %+v", m.Families)
	}
	if _, err := navigation.DecodeSpec(m.Families[0].Access); err != nil {
		t.Errorf("family spec does not decode: %v", err)
	}
	contexts, err := c.Contexts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(contexts) != 4 {
		t.Errorf("contexts = %d, want 4 (two painters, two movements)", len(contexts))
	}
}

// TestClientErrors: non-2xx responses surface as typed *APIError with
// the server's structured message.
func TestClientErrors(t *testing.T) {
	c, _, ts := testClient(t)
	ctx := context.Background()

	_, err := c.Structure(ctx, "Nope")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown family error = %v", err)
	}
	if _, err := c.SetStructure(ctx, "ByAuthor", client.StructureSpec{Kind: "teleporter"}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("bad spec error = %v", err)
	}
	if !strings.Contains(apiErr.Message, "teleporter") {
		t.Errorf("error message lost the structured detail: %q", apiErr.Message)
	}
	// Adapt without a recorder conflicts.
	if _, err := c.Adapt(ctx); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Errorf("adapt error = %v", err)
	}
	// A wrong token is a 401 for every call.
	bad, err := client.New(ts.URL, "wrong")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Model(ctx); !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Errorf("wrong-token error = %v", err)
	}
}

// TestClientDocumentAndStylesheet exercises the remaining write surface
// end to end.
func TestClientDocumentAndStylesheet(t *testing.T) {
	c, app, _ := testClient(t)
	ctx := context.Background()

	res, err := c.PatchDocument(ctx, "guitar", map[string]string{"technique": "Sheet metal"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Document != "guitar.xml" {
		t.Errorf("patch result = %+v", res)
	}
	if got := app.Store().Get("guitar").Attr("technique"); got != "Sheet metal" {
		t.Errorf("technique = %q", got)
	}

	src := `<s:stylesheet xmlns:s="urn:repro:style">
  <s:template match="Painting">
    <html><body><h1><s:value-of select="title"/></h1></body></html>
  </s:template>
</s:stylesheet>`
	if _, err := c.SetStylesheet(ctx, src); err != nil {
		t.Fatal(err)
	}
	got, err := c.Stylesheet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Errorf("stylesheet round trip lost bytes")
	}
	if _, err := c.ClearStylesheet(ctx); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := c.Stylesheet(ctx); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("stylesheet after clear = %v, want 404", err)
	}
}

// TestClientEventsAndMetrics: a mutation driven through the client
// shows up in the events trace, and the metrics exposition reads back
// without a token (the endpoint is bearer-exempt like /healthz).
func TestClientEventsAndMetrics(t *testing.T) {
	c, _, ts := testClient(t)
	ctx := context.Background()

	res, err := c.SetStructureKind(ctx, "ByAuthor", "menu")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := c.Events(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Events) != 1 || ev.Total == 0 {
		t.Fatalf("events = %+v", ev)
	}
	e := ev.Events[0]
	if e.Kind != "structure-swap" || e.Target != "ByAuthor" {
		t.Errorf("event = %+v, want structure-swap of ByAuthor", e)
	}
	if e.PagesInvalidated != res.DroppedPages || e.CacheGeneration != res.CacheGeneration {
		t.Errorf("event blast radius %+v disagrees with mutation result %+v", e, res)
	}

	anon, err := client.New(ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	text, err := anon.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE navserve_http_requests_total counter",
		"navcore_rebuilds_total",
		"navserve_cache_generation",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// But the events trace is control-plane surface: no token, no trace.
	var apiErr *client.APIError
	if _, err := anon.Events(ctx, 0); !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Errorf("tokenless events = %v, want 401", err)
	}
}

// TestClientAdaptAndGraph: recorded traffic reaches the graph export
// and a forced adapt cycle derives structures.
func TestClientAdaptAndGraph(t *testing.T) {
	rec := analytics.NewRecorder(analytics.RecorderConfig{})
	c, _, _ := testClient(t, server.WithAnalytics(rec),
		server.WithDeriveConfig(analytics.Config{MinHops: 1, LandmarkShare: 0.35}))
	ctx := context.Background()

	for i := 0; i < 20; i++ {
		rec.Record("ByAuthor:picasso", analytics.EntryFrom, "guernica")
		rec.Record("ByAuthor:picasso", "guernica", "avignon")
	}
	g, err := c.AnalyticsGraph(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cg, ok := g.Contexts["ByAuthor:picasso"]
	if !ok || cg.Hops != 40 || len(cg.Edges) != 1 || cg.Edges[0].Count != 20 {
		t.Fatalf("graph context = %+v", cg)
	}

	res, err := c.Adapt(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.DerivedStructures == 0 || res.AdaptGeneration != 1 {
		t.Errorf("adapt result = %+v", res)
	}
	// The derived structure reads back as an adaptive-tour spec.
	st, err := c.Structure(ctx, "ByAuthor")
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Kind != "adaptive-tour" || st.Spec.Fallback == nil ||
		st.Spec.Fallback.Kind != "indexed-guided-tour" {
		t.Errorf("derived spec = %+v", st.Spec)
	}
	if plan, ok := st.Spec.Plans["ByAuthor:picasso"]; !ok || len(plan.Order) == 0 {
		t.Errorf("derived plans = %+v", st.Spec.Plans)
	}
}

// TestClientTraces: the client propagates W3C trace context on every
// call, so its own control-plane requests land in the server's trace
// ring joinable by parent span — and Traces reads them back typed.
func TestClientTraces(t *testing.T) {
	c, _, ts := testClient(t, server.WithTracing(obs.NewTracer(obs.TraceConfig{
		SampleEvery: 1, RingSize: 16,
	})))
	ctx := context.Background()

	if _, err := c.Model(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Traces(ctx, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Enabled || res.Total == 0 {
		t.Fatalf("traces = %+v, want enabled with kept traces", res)
	}
	var modelTrace *client.Trace
	for i := range res.Traces {
		if res.Traces[i].Path == "/api/v1/model" {
			modelTrace = &res.Traces[i]
			break
		}
	}
	if modelTrace == nil {
		t.Fatalf("model call not traced; ring holds %d traces", len(res.Traces))
	}
	if modelTrace.Route != "api" || len(modelTrace.TraceID) != 32 {
		t.Errorf("model trace = route %q id %q", modelTrace.Route, modelTrace.TraceID)
	}
	// The client sent a traceparent, so the server's span records the
	// client's span as its parent.
	if len(modelTrace.ParentSpanID) != 16 {
		t.Errorf("parent_span_id = %q, want the client's 16-hex span id", modelTrace.ParentSpanID)
	}

	// limit and slow filters pass through.
	limited, err := c.Traces(ctx, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Traces) != 1 {
		t.Errorf("Traces(1, false) returned %d traces", len(limited.Traces))
	}
	slow, err := c.Traces(ctx, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range slow.Traces {
		if !tr.Slow {
			t.Errorf("slow-only listing carries non-slow trace %+v", tr)
		}
	}

	// A structured error carries the failing request's trace id.
	wrong, err := client.New(ts.URL, "wrong-token")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := wrong.Model(ctx); !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Fatalf("wrong-token model = %v, want 401", err)
	}
	if len(apiErr.TraceID) != 32 {
		t.Errorf("APIError.TraceID = %q, want the 32-hex trace id", apiErr.TraceID)
	}
}
