// Retry: the client half of the server's resilience story. navserve
// sheds overload with 503 + Retry-After and serves degraded instances
// the same way; a well-behaved client treats those as "come back in a
// moment", not as failure — but only for requests that are safe to
// send twice. GETs, PUTs and DELETEs are idempotent by contract
// (replaying one converges on the same state); POST (/snapshot, /adapt)
// and PATCH (document edits) are not, and are never retried: a lost
// response does not prove the mutation was lost with it.

package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy configures automatic re-attempts of idempotent requests.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first included.
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first re-attempt; it doubles
	// per attempt. Jitter spreads each wait over [delay/2, delay), so a
	// fleet of clients released by one outage does not reconverge as a
	// thundering herd.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff. A server Retry-After hint
	// overrides the computation (and the cap): the server knows its own
	// recovery better than our curve does.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries transient failures three extra times over
// roughly a second — enough to ride out a flush hiccup or a rolling
// restart without turning a real outage into a hang.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   100 * time.Millisecond,
	MaxDelay:    2 * time.Second,
}

// WithRetry makes the client re-attempt idempotent requests that fail
// transiently: transport errors, 429s and 502/503/504s. The request
// deadline stays in charge — a backoff that cannot finish before the
// context's deadline is not slept, and the last real failure is
// returned instead.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// idempotentMethod reports whether a request may be sent twice without
// changing what it means. Matches RFC 9110: POST and PATCH are not on
// the list.
func idempotentMethod(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// retryableStatus reports whether a status speaks of a transient
// condition. 4xxs other than 429 mean the request itself is wrong —
// resending it cannot help.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header;
// the HTTP-date form (rare from servers we speak to) and garbage both
// yield zero, falling back to computed backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff waits before re-attempt number attempt+1: the doubled, capped,
// jittered delay — or the server's own Retry-After hint when it sent
// one. It returns non-nil when the context's budget cannot cover the
// wait, in which case the caller gives up with the last real error.
func (c *Client) backoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	delay := c.retry.BaseDelay
	if delay <= 0 {
		delay = DefaultRetryPolicy.BaseDelay
	}
	for i := 1; i < attempt && delay < c.retry.MaxDelay; i++ {
		delay *= 2
	}
	if c.retry.MaxDelay > 0 && delay > c.retry.MaxDelay {
		delay = c.retry.MaxDelay
	}
	// Equal jitter: keep half the backoff, randomize the rest.
	delay = delay/2 + c.jitterFn(delay/2+1)
	if retryAfter > 0 {
		delay = retryAfter
	}
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < delay {
		return context.DeadlineExceeded
	}
	return c.sleepFn(ctx, delay)
}

// sleepContext is the default sleep seam: a timer racing the context.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// randomJitter is the default jitter seam.
func randomJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d)))
}
