package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer answers fail[i] for request i (0 = 200 with a tiny
// JSON body), counting requests. An optional retryAfter is sent with
// every failure.
type scriptedServer struct {
	fails      []int
	retryAfter string
	requests   atomic.Int64
	methods    []string
}

func (s *scriptedServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := int(s.requests.Add(1)) - 1
		s.methods = append(s.methods, r.Method)
		if n < len(s.fails) && s.fails[n] != 0 {
			if s.retryAfter != "" {
				w.Header().Set("Retry-After", s.retryAfter)
			}
			http.Error(w, "scripted failure", s.fails[n])
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}
}

// retryClient builds a Client against url with deterministic seams:
// zero jitter, and sleeps recorded instead of slept.
func retryClient(t *testing.T, url string, p RetryPolicy) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(url, "", WithRetry(p))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.jitterFn = func(time.Duration) time.Duration { return 0 }
	c.sleepFn = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

var quickRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}

// TestRetryIdempotentGet: a GET that hits two 503s lands on the third
// attempt, with a backoff slept between each.
func TestRetryIdempotentGet(t *testing.T) {
	srv := &scriptedServer{fails: []int{503, 503}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	c, slept := retryClient(t, ts.URL, quickRetry)

	var out struct{ OK bool }
	if err := c.do(context.Background(), http.MethodGet, "/x", nil, "", &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Error("body not decoded after retries")
	}
	if n := srv.requests.Load(); n != 3 {
		t.Errorf("requests = %d, want 3", n)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Zero-jitter equal-jitter backoff keeps delay/2: 50ms then 100ms.
	if (*slept)[0] != 50*time.Millisecond || (*slept)[1] != 100*time.Millisecond {
		t.Errorf("backoffs = %v, want [50ms 100ms]", *slept)
	}
}

// TestRetryPutIsIdempotent: PUT is on the idempotent list — replaying
// one converges on the same state — so it retries like a GET.
func TestRetryPutIsIdempotent(t *testing.T) {
	srv := &scriptedServer{fails: []int{503}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	c, _ := retryClient(t, ts.URL, quickRetry)

	if err := c.do(context.Background(), http.MethodPut, "/x", []byte(`{}`), "application/json", nil); err != nil {
		t.Fatal(err)
	}
	if n := srv.requests.Load(); n != 2 {
		t.Errorf("requests = %d, want 2", n)
	}
}

// TestNonIdempotentNeverRetried: POST (Snapshot, Adapt) and PATCH
// (document edits) fail straight through — a lost response does not
// prove the mutation was lost with it.
func TestNonIdempotentNeverRetried(t *testing.T) {
	for _, method := range []string{http.MethodPost, http.MethodPatch} {
		srv := &scriptedServer{fails: []int{503, 503, 503, 503}}
		ts := httptest.NewServer(srv.handler())
		c, slept := retryClient(t, ts.URL, quickRetry)

		err := c.do(context.Background(), method, "/x", []byte(`{}`), "application/json", nil)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Errorf("%s error = %v, want APIError 503", method, err)
		}
		if n := srv.requests.Load(); n != 1 {
			t.Errorf("%s requests = %d, want 1 (never retried)", method, n)
		}
		if len(*slept) != 0 {
			t.Errorf("%s slept %v, want no backoff", method, *slept)
		}
		ts.Close()
	}
}

// TestNoRetryOnClientError: a 4xx (other than 429) means the request
// itself is wrong; resending it cannot help.
func TestNoRetryOnClientError(t *testing.T) {
	srv := &scriptedServer{fails: []int{400, 400}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	c, _ := retryClient(t, ts.URL, quickRetry)

	err := c.do(context.Background(), http.MethodGet, "/x", nil, "", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("error = %v, want APIError 400", err)
	}
	if n := srv.requests.Load(); n != 1 {
		t.Errorf("requests = %d, want 1", n)
	}
}

// TestRetryHonorsRetryAfter: a server that says when to come back is
// believed — the hint replaces the computed backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	srv := &scriptedServer{fails: []int{503}, retryAfter: "7"}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	c, slept := retryClient(t, ts.URL, quickRetry)

	if err := c.do(context.Background(), http.MethodGet, "/x", nil, "", nil); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
		t.Errorf("slept %v, want [7s] (the server's hint)", *slept)
	}
}

// TestRetryRespectsDeadline: a backoff that cannot finish inside the
// context's budget is not slept; the last real failure surfaces.
func TestRetryRespectsDeadline(t *testing.T) {
	srv := &scriptedServer{fails: []int{503, 503, 503, 503}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	c, err := New(ts.URL, "", WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: 10 * time.Second, MaxDelay: time.Minute,
	}))
	if err != nil {
		t.Fatal(err)
	}
	c.jitterFn = func(time.Duration) time.Duration { return 0 }
	c.sleepFn = func(context.Context, time.Duration) error {
		t.Fatal("slept past the deadline budget")
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	doErr := c.do(ctx, http.MethodGet, "/x", nil, "", nil)
	var apiErr *APIError
	if !errors.As(doErr, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("error = %v, want the last APIError 503, not a context error", doErr)
	}
	if n := srv.requests.Load(); n != 1 {
		t.Errorf("requests = %d, want 1 (no budget for a retry)", n)
	}
}

// TestRetryTransportError: a connection-level failure is retryable for
// idempotent methods — nothing reached a handler.
func TestRetryTransportError(t *testing.T) {
	var calls atomic.Int64
	hc := &http.Client{Transport: roundTripFunc(func(*http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, errors.New("connection refused")
	})}
	c, err := New("http://unreachable.test", "", WithHTTPClient(hc), WithRetry(quickRetry))
	if err != nil {
		t.Fatal(err)
	}
	c.jitterFn = func(time.Duration) time.Duration { return 0 }
	c.sleepFn = func(context.Context, time.Duration) error { return nil }

	if err := c.do(context.Background(), http.MethodGet, "/x", nil, "", nil); err == nil {
		t.Fatal("want error from a dead transport")
	}
	if n := calls.Load(); n != int64(quickRetry.MaxAttempts) {
		t.Errorf("attempts = %d, want %d", n, quickRetry.MaxAttempts)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestBackoffDoublesAndCaps: the computed delay doubles per attempt and
// stops at MaxDelay (zero-jitter keeps the deterministic half).
func TestBackoffDoublesAndCaps(t *testing.T) {
	c, slept := retryClient(t, "http://x.test", RetryPolicy{
		MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	})
	for attempt := 1; attempt <= 4; attempt++ {
		if err := c.backoff(context.Background(), attempt, 0); err != nil {
			t.Fatal(err)
		}
	}
	want := []time.Duration{
		50 * time.Millisecond,  // 100ms/2
		100 * time.Millisecond, // 200ms/2
		200 * time.Millisecond, // 400ms/2 (cap reached)
		200 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if (*slept)[i] != w {
			t.Errorf("backoff[%d] = %v, want %v", i, (*slept)[i], w)
		}
	}
}

// TestRandomJitterBounds: the default jitter stays in [0, d).
func TestRandomJitterBounds(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if j := randomJitter(50 * time.Millisecond); j < 0 || j >= 50*time.Millisecond {
			t.Fatalf("jitter = %v, out of [0, 50ms)", j)
		}
	}
	if j := randomJitter(0); j != 0 {
		t.Errorf("jitter(0) = %v, want 0", j)
	}
}

// TestParseRetryAfter: delay-seconds parses, garbage and dates fall
// back to zero.
func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"":                              0,
		"0":                             0,
		"7":                             7 * time.Second,
		"-3":                            0,
		"soon":                          0,
		"Fri, 08 Aug 2026 12:00:00 GMT": 0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
