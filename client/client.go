// Package client is the typed Go client of the navigation control
// plane — the /api/v1 surface a navserve process exposes with
// -api-token. Through it the paper's motivating maintenance change
// (swap one context family's access structure) is a one-call edit
// against a live fleet:
//
//	c, _ := client.New("http://museum.example:8080", token)
//	err := c.SetStructureKind(ctx, "ByAuthor", "guided-tour")
//
// Every mutation is validate-then-mutate on the server: a bad spec
// never half-applies, and the typed error (*client.APIError) carries
// the structured message back. cmd/navctl is this package as a CLI.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/navigation"
	"repro/internal/obs"
)

// Wire payload aliases, so client users name every control-plane type
// without importing the internal api package (which the module layout
// would forbid them anyway).
type (
	// Model is the whole navigational aspect as GET /model serves it.
	Model = api.Model
	// Family is one context-family declaration within a Model.
	Family = api.Family
	// Context is one resolved context instance in the Contexts listing.
	Context = api.Context
	// Structure is one family's access structure with its wire spec.
	Structure = api.Structure
	// StructureSpec is the declarative wire form of an access structure.
	StructureSpec = navigation.StructureSpec
	// TourPlanSpec is one context's derived plan inside an adaptive spec.
	TourPlanSpec = navigation.TourPlanSpec
	// MutationResult reports what a write changed and the new cache
	// generation (the value that rotates affected ETags).
	MutationResult = api.MutationResult
	// SnapshotResult reports a site-snapshot export.
	SnapshotResult = api.SnapshotResult
	// AdaptResult reports a forced adaptation cycle.
	AdaptResult = api.AdaptResult
	// Graph is the full analytics transition graph.
	Graph = api.Graph
	// Event is one traced model mutation from the events ring.
	Event = api.Event
	// EventsResponse is the mutation-trace listing, newest first.
	EventsResponse = api.EventsResponse
	// Trace is one captured request lifecycle from the trace ring.
	Trace = api.Trace
	// TraceSpan is one phase of a Trace's lifecycle breakdown.
	TraceSpan = api.TraceSpan
	// TracesResponse is the request-trace listing, newest first.
	TracesResponse = api.TracesResponse
)

// APIError is a non-2xx control-plane response: the structured error
// body, typed.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's structured error message.
	Message string
	// TraceID is the failing request's trace id when the server traces —
	// the handle to hand navctl traces or GET /api/v1/traces.
	TraceID string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("control plane: %d: %s", e.Status, e.Message)
}

// Client speaks the v1 control plane. It is safe for concurrent use.
type Client struct {
	base  string
	token string
	hc    *http.Client
	retry RetryPolicy

	// Test seams: sleepFn waits out a backoff delay (or the context),
	// jitterFn draws a random duration in [0, d).
	sleepFn  func(ctx context.Context, d time.Duration) error
	jitterFn func(d time.Duration) time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// proxies, test transports). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the control plane at baseURL (the serving
// address, e.g. "http://127.0.0.1:8080"), authenticating every request
// with the bearer token.
func New(baseURL, token string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{
		base:     strings.TrimSuffix(u.String(), "/"),
		token:    token,
		hc:       http.DefaultClient,
		sleepFn:  sleepContext,
		jitterFn: randomJitter,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// do performs an authenticated request; a non-2xx response is decoded
// into an *APIError. When out is non-nil the 2xx body is decoded into
// it (as JSON, or copied verbatim into a *string for XML resources).
// Under WithRetry, transient failures of idempotent requests are
// re-attempted with backoff — see retry.go for the exact contract.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string, out any) error {
	attempts := 1
	if c.retry.MaxAttempts > 1 && idempotentMethod(method) {
		attempts = c.retry.MaxAttempts
	}
	// One trace id spans the logical request across every retry; each
	// attempt gets its own span id, so server-side traces distinguish the
	// attempts while staying joinable to one another.
	tid, traced := newTraceID()
	for attempt := 1; ; attempt++ {
		retryable, retryAfter, err := c.attempt(ctx, method, path, body, contentType, tid, traced, out)
		if err == nil || !retryable || attempt >= attempts {
			return err
		}
		if c.backoff(ctx, attempt, retryAfter) != nil {
			// The deadline budget is spent: surface the last real
			// failure, not the bookkeeping around waiting to retry it.
			return err
		}
	}
}

// newTraceID draws a W3C trace id; ok is false when the platform's
// entropy source fails (the request then goes out without trace
// context — propagation is best-effort, never a reason to fail a call).
func newTraceID() (tid [16]byte, ok bool) {
	if _, err := rand.Read(tid[:]); err != nil {
		return tid, false
	}
	// An all-zero id is invalid per the spec; pinning a bit costs one
	// bit of entropy and guarantees validity.
	tid[15] |= 1
	return tid, true
}

// attempt performs exactly one request. The request is rebuilt from the
// byte-slice body each call, so a re-attempt never re-reads a consumed
// stream. It reports whether the failure is worth retrying and any
// Retry-After hint the server sent.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, contentType string, tid [16]byte, traced bool, out any) (retryable bool, retryAfter time.Duration, _ error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, 0, fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if traced {
		var sid [8]byte
		if _, err := rand.Read(sid[:]); err == nil {
			sid[7] |= 1
			req.Header.Set("Traceparent", obs.FormatTraceparent(tid, sid, false))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport-level failure: nothing reached the handler (or the
		// response was lost). Retryable for idempotent methods.
		return true, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return true, 0, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		retryable = retryableStatus(resp.StatusCode)
		retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		var eb api.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Message != "" {
			return retryable, retryAfter, &APIError{Status: eb.Error.Status, Message: eb.Error.Message, TraceID: eb.Error.TraceID}
		}
		return retryable, retryAfter, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	switch dst := out.(type) {
	case nil:
		return false, 0, nil
	case *string:
		*dst = string(raw)
		return false, 0, nil
	default:
		if err := json.Unmarshal(raw, out); err != nil {
			return false, 0, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
		return false, 0, nil
	}
}

// get is do without a request body.
func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, "", out)
}

// Model fetches the whole navigational aspect: the SpecText artifact
// plus structured families with their access-structure specs.
func (c *Client) Model(ctx context.Context) (*Model, error) {
	var m Model
	if err := c.get(ctx, api.BasePath+"/model", &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Contexts lists every resolved context instance.
func (c *Client) Contexts(ctx context.Context) ([]Context, error) {
	var out []Context
	if err := c.get(ctx, api.BasePath+"/contexts", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Structure fetches one family's access structure as its wire spec.
func (c *Client) Structure(ctx context.Context, family string) (*Structure, error) {
	var out Structure
	if err := c.get(ctx, api.BasePath+"/contexts/"+url.PathEscape(family)+"/structure", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetStructure swaps one family's access structure — the paper's
// one-line change, over the wire. The server validates the whole spec
// before mutating and re-weaves only the family's own contexts.
func (c *Client) SetStructure(ctx context.Context, family string, spec StructureSpec) (*MutationResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encoding structure spec: %w", err)
	}
	var out MutationResult
	if err := c.do(ctx, http.MethodPut,
		api.BasePath+"/contexts/"+url.PathEscape(family)+"/structure",
		body, "application/json", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetStructureKind is SetStructure for parameterless swaps: kind names
// the structure in the AccessByKind vocabulary ("index", "menu",
// "guided-tour", "circular-indexed-guided-tour", ...).
func (c *Client) SetStructureKind(ctx context.Context, family, kind string) (*MutationResult, error) {
	return c.SetStructure(ctx, family, StructureSpec{Kind: kind})
}

// PatchDocument edits attributes of the conceptual instance behind one
// data document; the server validates the batch, applies it, and
// invalidates exactly the pages the edit touched.
func (c *Client) PatchDocument(ctx context.Context, id string, set map[string]string) (*MutationResult, error) {
	body, err := json.Marshal(struct {
		Set map[string]string `json:"set"`
	}{set})
	if err != nil {
		return nil, fmt.Errorf("client: encoding document patch: %w", err)
	}
	var out MutationResult
	if err := c.do(ctx, http.MethodPatch,
		api.BasePath+"/documents/"+url.PathEscape(id),
		body, "application/json", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stylesheet fetches the XML source of the stylesheet installed through
// the control plane ( *APIError with Status 404 when the built-in
// presentation is in effect).
func (c *Client) Stylesheet(ctx context.Context) (string, error) {
	var src string
	if err := c.get(ctx, api.BasePath+"/stylesheet", &src); err != nil {
		return "", err
	}
	return src, nil
}

// SetStylesheet installs a presentation stylesheet from its XML form.
func (c *Client) SetStylesheet(ctx context.Context, src string) (*MutationResult, error) {
	var out MutationResult
	if err := c.do(ctx, http.MethodPut, api.BasePath+"/stylesheet",
		[]byte(src), "application/xml", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClearStylesheet restores the built-in presentation.
func (c *Client) ClearStylesheet(ctx context.Context) (*MutationResult, error) {
	var out MutationResult
	if err := c.do(ctx, http.MethodDelete, api.BasePath+"/stylesheet", nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyticsGraph fetches the full transition graph the adaptation
// pipeline derives from.
func (c *Client) AnalyticsGraph(ctx context.Context) (*Graph, error) {
	var out Graph
	if err := c.get(ctx, api.BasePath+"/analytics/graph", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events fetches the mutation trace: the most recent model mutations
// (structure swaps, document patches, stylesheet installs) with their
// rebuild duration and invalidation blast radius, newest first. limit
// caps how many events are returned; 0 fetches the whole retained
// ring.
func (c *Client) Events(ctx context.Context, limit int) (*EventsResponse, error) {
	path := api.BasePath + "/events"
	if limit > 0 {
		path += "?limit=" + url.QueryEscape(strconv.Itoa(limit))
	}
	var out EventsResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Traces fetches the request-trace ring: sampled and slow-captured
// request lifecycles with their per-phase breakdown, newest first.
// limit caps how many traces are returned (0 fetches the whole retained
// ring); slow keeps only the traces over the server's slow threshold.
func (c *Client) Traces(ctx context.Context, limit int, slow bool) (*TracesResponse, error) {
	path := api.BasePath + "/traces"
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if slow {
		q.Set("slow", "1")
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out TracesResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition from GET /metrics —
// the same bytes a scraper sees. The endpoint is read-only and
// bearer-exempt like /healthz, so Metrics works against servers whose
// control plane is disabled.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var out string
	if err := c.get(ctx, "/metrics", &out); err != nil {
		return "", err
	}
	return out, nil
}

// Snapshot exports the woven site definition into the server's
// persistence backend.
func (c *Client) Snapshot(ctx context.Context) (*SnapshotResult, error) {
	var out SnapshotResult
	if err := c.do(ctx, http.MethodPost, api.BasePath+"/snapshot", nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Adapt forces one adaptation cycle: recorded traffic is folded into
// access structures immediately instead of on the next interval tick.
func (c *Client) Adapt(ctx context.Context) (*AdaptResult, error) {
	var out AdaptResult
	if err := c.do(ctx, http.MethodPost, api.BasePath+"/adapt", nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
