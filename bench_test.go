// Benchmarks regenerating the performance-shaped experiments of
// EXPERIMENTS.md (E1–E13). Qualitative artifacts (the figures' HTML/XML)
// are produced by cmd/navbench; these benches measure the mechanisms.
package navaspect_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/aspect"
	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/server"
	"repro/internal/tangled"
	"repro/internal/xlink"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

func mustApp(b *testing.B, access navigation.AccessStructure) *core.App {
	b.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(access))
	if err != nil {
		b.Fatal(err)
	}
	return app
}

func syntheticApp(b *testing.B, painters, paintings int) *core.App {
	b.Helper()
	store := museum.Synthetic(museum.SyntheticSpec{
		Painters: painters, PaintingsPerPainter: paintings, Movements: 4, Seed: 1,
	})
	app, err := core.NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// BenchmarkE1AspectWeave measures one fully advised page production —
// the weaving step of Figure 1/Figure 6.
func BenchmarkE1AspectWeave(b *testing.B) {
	app := mustApp(b, navigation.IndexedGuidedTour{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := app.RenderPage("ByAuthor:picasso", "guitar"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2AccessStructures measures edge computation for the Figure 2
// topologies at several context sizes.
func BenchmarkE2AccessStructures(b *testing.B) {
	store := museum.Synthetic(museum.SyntheticSpec{Painters: 1, PaintingsPerPainter: 100, Seed: 3})
	rm, err := museum.Model(navigation.Index{}).Resolve(store)
	if err != nil {
		b.Fatal(err)
	}
	members := rm.Contexts[0].Members
	for _, tc := range []struct {
		name   string
		access navigation.AccessStructure
	}{
		{"Index", navigation.Index{}},
		{"GuidedTour", navigation.GuidedTour{}},
		{"IndexedGuidedTour", navigation.IndexedGuidedTour{}},
		{"Menu", navigation.Menu{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := tc.access.Edges(members); len(got) == 0 {
					b.Fatal("no edges")
				}
			}
		})
	}
}

// BenchmarkE4WeaveGuitarIndex regenerates the Figure 3 page.
func BenchmarkE4WeaveGuitarIndex(b *testing.B) {
	app := mustApp(b, navigation.Index{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := app.RenderPage("ByAuthor:picasso", "guitar"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5WeaveGuitarIGT regenerates the Figure 4 page.
func BenchmarkE5WeaveGuitarIGT(b *testing.B) {
	app := mustApp(b, navigation.IndexedGuidedTour{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := app.RenderPage("ByAuthor:picasso", "guitar"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7LinkbaseRoundTrip measures generating links.xml from the
// model and parsing the navigation back out of it (Figures 7–9 pipeline).
func BenchmarkE7LinkbaseRoundTrip(b *testing.B) {
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := navigation.GenerateLinkbase(rm)
		if _, err := navigation.ParseLinkbase(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8ChangeCost measures the change-cost analysis itself at the
// sizes EXPERIMENTS.md reports.
func BenchmarkE8ChangeCost(b *testing.B) {
	for _, n := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			store := museum.Synthetic(museum.SyntheticSpec{Painters: 1, PaintingsPerPainter: n, Seed: 11})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tangled.MeasureAccessChange(store, museum.Model, "ByAuthor",
					navigation.Index{}, navigation.IndexedGuidedTour{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9ContextResolution measures resolving the navigational model
// (grouping + ordering all context families) at growing store sizes.
func BenchmarkE9ContextResolution(b *testing.B) {
	for _, painters := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("painters=%d", painters), func(b *testing.B) {
			store := museum.Synthetic(museum.SyntheticSpec{
				Painters: painters, PaintingsPerPainter: 10, Movements: 5, Seed: 2,
			})
			model := museum.Model(navigation.IndexedGuidedTour{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.Resolve(store); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10WeaveThroughput measures static whole-site weaving vs
// request-time page weaving, sequential and with the bounded worker
// pool (the ≥2× tentpole speedup shows in workers=4/8 vs workers=1).
func BenchmarkE10WeaveThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("static-site-120pages/workers=%d", workers), func(b *testing.B) {
			app := syntheticApp(b, 10, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				site, err := app.WeaveSiteWorkers(workers)
				if err != nil {
					b.Fatal(err)
				}
				if site.Len() == 0 {
					b.Fatal("empty site")
				}
			}
		})
	}
	b.Run("dynamic-single-page", func(b *testing.B) {
		app := syntheticApp(b, 10, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPage("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14CachedServe measures the request-time serving path with
// and without the woven-page cache — the ≥10× cached-serve claim.
func BenchmarkE14CachedServe(b *testing.B) {
	b.Run("uncached-render", func(b *testing.B) {
		app := syntheticApp(b, 10, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPage("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-render", func(b *testing.B) {
		app := syntheticApp(b, 10, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPageCached("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-render-parallel", func(b *testing.B) {
		app := syntheticApp(b, 10, 10)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := app.RenderPageCached("ByAuthor:painter000", "painting000_005"); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkE14ConcurrentHTTP measures the full HTTP serving path under
// concurrent clients, cached vs per-request weaving.
func BenchmarkE14ConcurrentHTTP(b *testing.B) {
	run := func(b *testing.B, opts ...server.Option) {
		app := syntheticApp(b, 10, 10)
		ts := httptest.NewServer(server.New(app, opts...))
		defer ts.Close()
		url := ts.URL + "/ByAuthor/painter000/painting000_005.html"
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			client := ts.Client()
			for pb.Next() {
				resp, err := client.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		})
	}
	b.Run("cached", func(b *testing.B) { run(b) })
	b.Run("uncached", func(b *testing.B) { run(b, server.WithoutPageCache()) })
}

// BenchmarkE11AdviceOverhead is the ablation: the cost of the interface-
// based AOP simulation per join point, against a direct call.
func BenchmarkE11AdviceOverhead(b *testing.B) {
	body := func(*aspect.JoinPoint) (any, error) { return 42, nil }
	jp := &aspect.JoinPoint{Kind: "op", Name: "x"}
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := body(jp); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, advices := range []int{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("woven-%dadvice", advices), func(b *testing.B) {
			w := aspect.NewWeaver()
			a := aspect.NewAspect("bench")
			pc := aspect.MustCompilePointcut("kind(op)")
			for i := 0; i < advices; i++ {
				a.AroundAdvice(fmt.Sprintf("a%d", i), pc, i, func(inv *aspect.Invocation) (any, error) {
					return inv.Proceed()
				})
			}
			w.Use(a)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.Execute(jp, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12XLinkResolve measures arc queries against growing
// linkbases, the cost of externalizing links into links.xml.
func BenchmarkE12XLinkResolve(b *testing.B) {
	for _, painters := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("painters=%d", painters), func(b *testing.B) {
			store := museum.Synthetic(museum.SyntheticSpec{
				Painters: painters, PaintingsPerPainter: 10, Seed: 4,
			})
			rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(store)
			if err != nil {
				b.Fatal(err)
			}
			lb := xlink.NewLinkbase()
			if err := lb.AddDocument(navigation.GenerateLinkbase(rm)); err != nil {
				b.Fatal(err)
			}
			ref := xlink.Ref{URI: "painting000_005.xml"}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = lb.ArcsFromRef(ref)
			}
		})
	}
	b.Run("xpath-eval", func(b *testing.B) {
		doc := xmldom.MustParseString(
			`<museum><painter id="p"><painting year="1913"><title>Guitar</title></painting></painter></museum>`)
		expr := xpath.MustCompile("//painting[@year>1900]/title")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expr.Select(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTangledVsWoven compares producing the whole site by
// direct tangled generation against the aspect-woven pipeline — the cost
// of the separation machinery itself (DESIGN.md §7).
func BenchmarkAblationTangledVsWoven(b *testing.B) {
	store := museum.Synthetic(museum.SyntheticSpec{
		Painters: 5, PaintingsPerPainter: 10, Movements: 3, Seed: 6,
	})
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(store)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tangled-generation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if site := tangled.GenerateSite(rm); len(site) == 0 {
				b.Fatal("empty site")
			}
		}
	})
	b.Run("aspect-woven", func(b *testing.B) {
		app, err := core.NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			site, err := app.WeaveSite()
			if err != nil {
				b.Fatal(err)
			}
			if site.Len() == 0 {
				b.Fatal("empty site")
			}
		}
	})
}

// BenchmarkAblationLift measures the tangled-to-separated migration.
func BenchmarkAblationLift(b *testing.B) {
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		b.Fatal(err)
	}
	site := tangled.GenerateSite(rm)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lift.Site(site); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Classify measures link classification over a mixed corpus.
func BenchmarkE13Classify(b *testing.B) {
	items := make([]string, 200)
	for i := range items {
		items[i] = fmt.Sprintf("result%03d", i)
	}
	_, pageEdges, err := navigation.Paginate(items, 10)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		b.Fatal(err)
	}
	edges := append(rm.Contexts[0].Edges(), pageEdges...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := navigation.ClassifyAll(edges)
		if r.Scrolling == 0 {
			b.Fatal("no scrolling edges")
		}
	}
}
