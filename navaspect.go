// Package navaspect is the public facade of the reproduction of
// "Separating the Navigational Aspect" (Reina Quintero & Torres
// Valderrama, ICDCS 2002 workshops): a library for building web
// applications whose navigation is a separate, swappable aspect rather
// than markup tangled into every page.
//
// The workflow mirrors the paper's Figure 6:
//
//	store := navaspect.NewSchema()…          // conceptual model (data)
//	model := navaspect.NewModel()…           // navigational model (links)
//	app, _ := navaspect.New(store, model)    // weave them together
//	site, _ := app.WeaveSite()               // static weaving, or
//	page, _ := app.RenderPage(ctx, node)     // request-time weaving
//
// Data is exported to per-node XML documents containing no links; all link
// structure is generated into an XLink linkbase (links.xml); presentation
// is a template stylesheet; and the navigation aspect weaves the three at
// page-production join points. Changing an access structure — the paper's
// motivating maintenance scenario — is one SetAccessStructure call.
//
// The facade re-exports the types a downstream user needs; the full
// machinery lives in the internal packages (xmldom, xpath, xpointer,
// xlink, conceptual, aspect, navigation, presentation, core, tangled,
// server).
package navaspect

import (
	"repro/internal/aspect"
	"repro/internal/conceptual"
	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/navigation"
	"repro/internal/presentation"
	"repro/internal/server"
)

// Conceptual-model types (the paper's "basic functionality").
type (
	// Schema declares conceptual classes and relationships.
	Schema = conceptual.Schema
	// Class is one conceptual class.
	Class = conceptual.Class
	// AttrDef declares a class attribute.
	AttrDef = conceptual.AttrDef
	// Relationship declares a relationship between classes.
	Relationship = conceptual.Relationship
	// Store holds validated instances and links.
	Store = conceptual.Store
	// Instance is one conceptual object.
	Instance = conceptual.Instance
)

// Attribute types and cardinalities.
const (
	StringAttr = conceptual.StringAttr
	IntAttr    = conceptual.IntAttr

	OneToOne   = conceptual.OneToOne
	OneToMany  = conceptual.OneToMany
	ManyToOne  = conceptual.ManyToOne
	ManyToMany = conceptual.ManyToMany
)

// NewSchema returns an empty conceptual schema.
func NewSchema() *Schema { return conceptual.NewSchema() }

// NewClass declares a conceptual class.
func NewClass(name string, attrs ...AttrDef) *Class { return conceptual.NewClass(name, attrs...) }

// NewStore returns an empty instance store over a schema.
func NewStore(schema *Schema) *Store { return conceptual.NewStore(schema) }

// Navigational-model types (the separated aspect).
type (
	// Model is a navigational schema: node classes, links, contexts.
	Model = navigation.Model
	// NodeClass is a navigational view over a conceptual class.
	NodeClass = navigation.NodeClass
	// NavLink is a navigational view over a relationship.
	NavLink = navigation.NavLink
	// ContextDef declares a navigational context family.
	ContextDef = navigation.ContextDef
	// AccessStructure computes a context's traversal topology.
	AccessStructure = navigation.AccessStructure
	// Index is the access structure of the paper's Figure 2(a).
	Index = navigation.Index
	// GuidedTour is a sequential tour without an index page.
	GuidedTour = navigation.GuidedTour
	// IndexedGuidedTour is the structure of Figure 2(b).
	IndexedGuidedTour = navigation.IndexedGuidedTour
	// Menu is a flat entry page without back links.
	Menu = navigation.Menu
	// Session is a context-tracking navigation session (§2 semantics).
	Session = navigation.Session
	// Edge is one navigation edge.
	Edge = navigation.Edge
)

// NewModel returns an empty navigational model.
func NewModel() *Model { return navigation.NewModel() }

// NewSession starts a navigation session over a resolved model.
func NewSession(rm *navigation.ResolvedModel) *Session { return navigation.NewSession(rm) }

// HubID is the pseudo-node ID of a context's entry (index) page.
const HubID = navigation.HubID

// Application types (the weaving of Figure 6).
type (
	// App is a woven application.
	App = core.App
	// Site is a statically woven site.
	Site = core.Site
	// Page is one woven page.
	Page = core.Page
	// Stylesheet is a presentation template stylesheet.
	Stylesheet = presentation.Stylesheet
	// Aspect is a unit of crosscutting behaviour.
	Aspect = aspect.Aspect
	// Weaver composes aspects with join points.
	Weaver = aspect.Weaver
)

// New assembles an application from a store and a navigational model:
// data documents and links.xml are derived, and the navigation aspect is
// installed on the page pipeline.
func New(store *Store, model *Model) (*App, error) { return core.NewApp(store, model) }

// ParseStylesheet parses the XML form of a presentation stylesheet.
func ParseStylesheet(src string) (*Stylesheet, error) {
	return presentation.ParseStylesheetString(src)
}

// NewServer returns an http.Handler serving the woven application — the
// XLink-aware user agent of the paper's further-work section.
func NewServer(app *App) *server.Server { return server.New(app) }

// PagePath maps (context, node) to the page's site-relative path.
func PagePath(contextName, nodeID string) string { return core.PagePath(contextName, nodeID) }

// LiftResult is the outcome of lifting a tangled site: the extracted
// linkbase, the recovered contexts and the navigation-stripped pages.
type LiftResult = lift.Result

// LiftSite migrates a tangled HTML site (path -> page text) to the
// separated architecture by extracting its navigation into an XLink
// linkbase — the adoption path for existing applications.
func LiftSite(pages map[string]string) (*LiftResult, error) { return lift.Site(pages) }
