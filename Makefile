# Tier-1 gate: everything CI runs. `make` = build + vet + race-enabled
# short tests (the ~13s benchmark-backed experiment tests only run in
# `make test-full`).

GO ?= go

.PHONY: all build vet test test-full bench ci

all: ci

ci: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race -short ./...

test-full:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./...
