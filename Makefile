# Tier-1 gate: everything CI runs. `make` = build + vet + race-enabled
# short tests (the ~13s benchmark-backed experiment tests only run in
# `make test-full`).

GO ?= go

.PHONY: all build vet lint test test-full bench bench-all bench-smoke api-smoke metrics-smoke trace-smoke chaos-smoke load-smoke ci

all: ci

ci: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repository's own invariant analyzers (internal/lint via
# cmd/navlint): hot-path purity, lock discipline, plane separation and
# API-handler hygiene. Also usable as `go vet -vettool`.
lint:
	$(GO) run ./cmd/navlint ./...

test:
	$(GO) test -race -short ./...

test-full:
	$(GO) test -race ./...

# bench runs the serve/persist benchmarks and records the summary in
# BENCH_serve.json (ns/op, B/op, allocs/op per benchmark).
bench:
	GO="$(GO)" scripts/bench.sh

# bench-all runs every benchmark in the repository.
bench-all:
	$(GO) test -run xxx -bench . -benchtime 1s ./...

# bench-smoke executes each benchmark once so benchmark code cannot rot
# (CI runs this).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# api-smoke boots a real navserve with -api-token, drives navctl
# through a structure swap over the control plane, and asserts the
# ETag rotation stays within the swapped family (CI runs this).
api-smoke:
	GO="$(GO)" scripts/api_smoke.sh

# metrics-smoke boots a real navserve, drives traffic plus one
# mutation, and asserts /metrics exposes every layer's series and
# /api/v1/events traces the mutation (CI runs this).
metrics-smoke:
	GO="$(GO)" scripts/metrics_smoke.sh

# trace-smoke boots a real navserve with tracing on and an injected
# store stall, and asserts the slow request is captured with its phase
# breakdown and that W3C trace context propagates (CI runs this).
trace-smoke:
	GO="$(GO)" scripts/trace_smoke.sh

# chaos-smoke boots a real navserve on the file store, SIGKILLs it
# mid-flight, restarts it, and asserts the visitor trail resumed and
# /readyz reports ready (CI runs this).
chaos-smoke:
	GO="$(GO)" scripts/chaos_smoke.sh

# load-smoke drives thousands of seeded navload sessions against a real
# navserve on the file store, gates on SLOs and the back/forward history
# mirror, then SIGKILLs and restarts the server asserting zero session
# loss (CI runs this).
load-smoke:
	GO="$(GO)" scripts/load_smoke.sh
