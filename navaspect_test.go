package navaspect_test

import (
	"strings"
	"testing"

	navaspect "repro"
)

// buildApp assembles a small gallery through the public facade only,
// exactly as a downstream user would.
func buildApp(t *testing.T, access navaspect.AccessStructure) *navaspect.App {
	t.Helper()
	schema := navaspect.NewSchema()
	schema.MustAddClass(navaspect.NewClass("Painter",
		navaspect.AttrDef{Name: "name", Type: navaspect.StringAttr, Required: true},
	))
	schema.MustAddClass(navaspect.NewClass("Painting",
		navaspect.AttrDef{Name: "title", Type: navaspect.StringAttr, Required: true},
		navaspect.AttrDef{Name: "year", Type: navaspect.IntAttr},
	))
	schema.MustAddRelationship(&navaspect.Relationship{
		Name: "paints", Source: "Painter", Target: "Painting", Card: navaspect.OneToMany,
	})
	store := navaspect.NewStore(schema)
	store.MustAdd("Painter", "picasso", map[string]string{"name": "Pablo Picasso"})
	store.MustAdd("Painting", "guitar", map[string]string{"title": "Guitar", "year": "1913"})
	store.MustAdd("Painting", "guernica", map[string]string{"title": "Guernica", "year": "1937"})
	store.MustLink("paints", "picasso", "guitar")
	store.MustLink("paints", "picasso", "guernica")

	model := navaspect.NewModel()
	model.MustAddNodeClass(&navaspect.NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	model.MustAddContext(&navaspect.ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode", GroupBy: "paints", OrderBy: "year", Access: access,
	})
	app, err := navaspect.New(store, model)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestFacadeEndToEnd(t *testing.T) {
	app := buildApp(t, navaspect.Index{})
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	if site.Len() != 3 { // hub + 2 paintings
		t.Fatalf("pages = %d: %v", site.Len(), site.Paths())
	}
	page := site.Page(navaspect.PagePath("ByAuthor:picasso", "guitar"))
	if page == nil {
		t.Fatal("guitar page missing")
	}
	if !strings.Contains(page.HTML, "<h1>Guitar</h1>") || !strings.Contains(page.HTML, "nav-up") {
		t.Errorf("page content:\n%s", page.HTML)
	}
}

func TestFacadeAccessSwap(t *testing.T) {
	app := buildApp(t, navaspect.Index{})
	if err := app.SetAccessStructure("ByAuthor", navaspect.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML, "nav-next") {
		t.Errorf("swap did not add tour anchors:\n%s", page.HTML)
	}
}

func TestFacadeSession(t *testing.T) {
	app := buildApp(t, navaspect.IndexedGuidedTour{})
	s := navaspect.NewSession(app.Resolved())
	if err := s.EnterContext("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}
	if err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.Here().ID() != "guernica" {
		t.Errorf("Next landed on %v", s.Here())
	}
}

func TestFacadeLift(t *testing.T) {
	tangledSite := map[string]string{
		"Gallery/a.html": `<html><body><h1>A</h1><a href="index.html">Index</a></body></html>`,
		"Gallery/b.html": `<html><body><h1>B</h1><a href="index.html">Index</a></body></html>`,
		"Gallery/index.html": `<html><body><h1>Gallery</h1>` +
			`<ul><li><a href="a.html">A</a></li><li><a href="b.html">B</a></li></ul></body></html>`,
	}
	result, err := navaspect.LiftSite(tangledSite)
	if err != nil {
		t.Fatal(err)
	}
	if result.Stats.Contexts != 1 || len(result.Pages) != 2 {
		t.Errorf("lift stats = %+v, pages = %d", result.Stats, len(result.Pages))
	}
	if !strings.Contains(result.Linkbase.String(), "xlink") {
		t.Error("linkbase missing xlink markup")
	}
}

func TestFacadeStylesheet(t *testing.T) {
	app := buildApp(t, navaspect.Index{})
	ss, err := navaspect.ParseStylesheet(`<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="Painting">
	    <html><head><title><s:value-of select="title"/></title></head>
	    <body><h1 id="styled"><s:value-of select="title"/></h1></body></html>
	  </s:template>
	</s:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	app.SetStylesheet(ss)
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML, `<h1 id="styled">Guitar</h1>`) {
		t.Errorf("stylesheet not applied:\n%s", page.HTML)
	}
}
