package aspect

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func jp(kind, name string, attrs map[string]string) *JoinPoint {
	return &JoinPoint{Kind: kind, Name: name, Attrs: attrs}
}

func TestGlobMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true},
		{"", "x", false},
		{"*", "", true},
		{"*", "anything", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abbbc", true},
		{"a*c", "abcd", false},
		{"*render", "page.render", true},
		{"page.*", "page.render", true},
		{"?bc", "abc", true},
		{"?bc", "bc", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXcYb", false},
		{"ByAuthor*", "ByAuthor:picasso", true},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestPointcutMatching(t *testing.T) {
	point := jp("page.render", "guitar", map[string]string{"context": "ByAuthor:picasso", "class": "Painting"})
	tests := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"kind(page.render)", true},
		{"kind(page.*)", true},
		{"kind(link.*)", false},
		{"name(guitar)", true},
		{"name(gu*)", true},
		{"name(index)", false},
		{"attr(context, ByAuthor*)", true},
		{"attr(context, *)", true},
		{"attr(context, ByMovement*)", false},
		{"attr(missing, *)", false}, // absent attribute never matches
		{"attr(missing, )", false},
		{"kind(page.render) && name(guitar)", true},
		{"kind(page.render) && name(index)", false},
		{"name(index) || name(guitar)", true},
		{"!name(index)", true},
		{"!name(guitar)", false},
		{"kind(page.render) && (name(index) || attr(class, Painting))", true},
		{"!(kind(page.render) && name(guitar))", false},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			pc, err := CompilePointcut(tt.src)
			if err != nil {
				t.Fatalf("CompilePointcut(%q): %v", tt.src, err)
			}
			if got := pc.Matches(point); got != tt.want {
				t.Errorf("Matches(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestTargetPointcut(t *testing.T) {
	type museumApp struct{}
	point := &JoinPoint{Kind: "op", Name: "x", Target: &museumApp{}}
	tests := []struct {
		src  string
		want bool
	}{
		{"target(*aspect.museumApp)", true},
		{"target(*aspect.*)", true},
		{"target(*core.App)", false},
		{"kind(op) && target(*aspect.museumApp)", true},
	}
	for _, tt := range tests {
		pc := MustCompilePointcut(tt.src)
		if got := pc.Matches(point); got != tt.want {
			t.Errorf("Matches(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
	// Nil target never matches.
	bare := &JoinPoint{Kind: "op", Name: "x"}
	if MustCompilePointcut("target(*)").Matches(bare) {
		t.Error("nil target matched")
	}
	if _, err := CompilePointcut("target(a,b)"); err == nil {
		t.Error("target with two args accepted")
	}
}

func TestPointcutParseErrors(t *testing.T) {
	bad := []string{
		"",
		"kind",
		"kind(",
		"kind(a) &&",
		"kind(a) extra",
		"unknown(a)",
		"attr(onlykey)",
		"kind(a,b)",
		"(kind(a)",
		"&& kind(a)",
	}
	for _, src := range bad {
		if _, err := CompilePointcut(src); err == nil {
			t.Errorf("CompilePointcut(%q) succeeded, want error", src)
		}
	}
}

func TestMustCompilePointcutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompilePointcut("((")
}

func TestBeforeAfterAroundOrder(t *testing.T) {
	var log []string
	w := NewWeaver()
	a := NewAspect("trace")
	pc := MustCompilePointcut("kind(op)")
	a.BeforeAdvice("b1", pc, 0, func(*JoinPoint) error {
		log = append(log, "before1")
		return nil
	})
	a.BeforeAdvice("b2", pc, 0, func(*JoinPoint) error {
		log = append(log, "before2")
		return nil
	})
	a.AroundAdvice("outer", pc, 0, func(inv *Invocation) (any, error) {
		log = append(log, "around-outer-pre")
		r, err := inv.Proceed()
		log = append(log, "around-outer-post")
		return r, err
	})
	a.AroundAdvice("inner", pc, 1, func(inv *Invocation) (any, error) {
		log = append(log, "around-inner-pre")
		r, err := inv.Proceed()
		log = append(log, "around-inner-post")
		return r, err
	})
	a.AfterAdvice("a1", pc, 0, func(*JoinPoint, any, error) {
		log = append(log, "after1")
	})
	a.AfterAdvice("a2", pc, 0, func(*JoinPoint, any, error) {
		log = append(log, "after2")
	})
	w.Use(a)

	result, err := w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) {
		log = append(log, "body")
		return "ok", nil
	})
	if err != nil || result != "ok" {
		t.Fatalf("Execute = %v, %v", result, err)
	}
	want := strings.Join([]string{
		"before1", "before2",
		"around-outer-pre", "around-inner-pre",
		"body",
		"around-inner-post", "around-outer-post",
		"after2", "after1", // after runs in reverse precedence
	}, ",")
	if got := strings.Join(log, ","); got != want {
		t.Errorf("execution order:\n got %s\nwant %s", got, want)
	}
}

func TestBeforeErrorAborts(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("guard")
	sentinel := errors.New("denied")
	a.BeforeAdvice("deny", MustCompilePointcut("true"), 0, func(*JoinPoint) error {
		return sentinel
	})
	w.Use(a)
	ran := false
	_, err := w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) {
		ran = true
		return nil, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
	if ran {
		t.Error("body ran despite before-advice error")
	}
}

func TestAroundReplacesResult(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("replace")
	a.AroundAdvice("swap", MustCompilePointcut("true"), 0, func(inv *Invocation) (any, error) {
		return "replaced", nil // never proceeds
	})
	w.Use(a)
	ran := false
	result, err := w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) {
		ran = true
		return "original", nil
	})
	if err != nil || result != "replaced" {
		t.Errorf("result = %v, %v", result, err)
	}
	if ran {
		t.Error("body ran although around advice replaced it")
	}
}

func TestAroundTransformsResult(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("decorate")
	a.AroundAdvice("wrap", MustCompilePointcut("true"), 0, func(inv *Invocation) (any, error) {
		r, err := inv.Proceed()
		if err != nil {
			return nil, err
		}
		return fmt.Sprintf("<%v>", r), nil
	})
	w.Use(a)
	result, err := w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) {
		return "core", nil
	})
	if err != nil || result != "<core>" {
		t.Errorf("result = %v, %v", result, err)
	}
}

func TestAfterObservesError(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("observe")
	var seenErr error
	a.AfterAdvice("watch", MustCompilePointcut("true"), 0, func(_ *JoinPoint, _ any, err error) {
		seenErr = err
	})
	w.Use(a)
	boom := errors.New("boom")
	_, err := w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if !errors.Is(seenErr, boom) {
		t.Errorf("after advice saw %v, want boom", seenErr)
	}
}

func TestNonMatchingAdviceSkipped(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("selective")
	count := 0
	a.BeforeAdvice("only-render", MustCompilePointcut("kind(page.render)"), 0, func(*JoinPoint) error {
		count++
		return nil
	})
	w.Use(a)
	_, _ = w.Execute(jp("page.render", "a", nil), func(*JoinPoint) (any, error) { return nil, nil })
	_, _ = w.Execute(jp("link.traverse", "b", nil), func(*JoinPoint) (any, error) { return nil, nil })
	if count != 1 {
		t.Errorf("advice ran %d times, want 1", count)
	}
}

func TestRemoveAspect(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("index")
	count := 0
	a.BeforeAdvice("n", MustCompilePointcut("true"), 0, func(*JoinPoint) error {
		count++
		return nil
	})
	w.Use(a)
	if got := w.Aspects(); len(got) != 1 || got[0] != "index" {
		t.Errorf("Aspects = %v", got)
	}
	_, _ = w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) { return nil, nil })
	if !w.Remove("index") {
		t.Error("Remove(index) = false")
	}
	if w.Remove("index") {
		t.Error("second Remove(index) = true")
	}
	_, _ = w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) { return nil, nil })
	if count != 1 {
		t.Errorf("advice ran %d times, want 1 (removed before second call)", count)
	}
}

func TestTrace(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("nav")
	pc := MustCompilePointcut("kind(page.render)")
	a.BeforeAdvice("announce", pc, 0, func(*JoinPoint) error { return nil })
	a.AroundAdvice("inject", pc, 0, func(inv *Invocation) (any, error) { return inv.Proceed() })
	a.AfterAdvice("log", pc, 0, func(*JoinPoint, any, error) {})
	w.Use(a)
	w.EnableTrace()
	_, _ = w.Execute(jp("page.render", "guitar", nil), func(*JoinPoint) (any, error) { return nil, nil })
	trace := w.Trace()
	if len(trace) != 3 {
		t.Fatalf("trace entries = %d, want 3: %+v", len(trace), trace)
	}
	if trace[0].When != Before || trace[1].When != Around || trace[2].When != After {
		t.Errorf("trace order = %+v", trace)
	}
	if trace[0].JoinPoint != "page.render(guitar)" {
		t.Errorf("join point = %q", trace[0].JoinPoint)
	}
	// Tracing stops after Trace().
	_, _ = w.Execute(jp("page.render", "x", nil), func(*JoinPoint) (any, error) { return nil, nil })
	if again := w.Trace(); len(again) != 0 {
		t.Errorf("trace after stop = %d entries", len(again))
	}
}

func TestMultipleAspectsPrecedence(t *testing.T) {
	var log []string
	w := NewWeaver()
	pc := MustCompilePointcut("true")
	first := NewAspect("first")
	first.AroundAdvice("f", pc, 5, func(inv *Invocation) (any, error) {
		log = append(log, "first")
		return inv.Proceed()
	})
	second := NewAspect("second")
	second.AroundAdvice("s", pc, 1, func(inv *Invocation) (any, error) {
		log = append(log, "second")
		return inv.Proceed()
	})
	w.Use(first)
	w.Use(second)
	_, _ = w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) { return nil, nil })
	// Lower order wraps outermost regardless of registration order.
	if strings.Join(log, ",") != "second,first" {
		t.Errorf("precedence order = %v", log)
	}
}

func TestConcurrentExecute(t *testing.T) {
	w := NewWeaver()
	a := NewAspect("counter")
	var mu sync.Mutex
	count := 0
	a.BeforeAdvice("inc", MustCompilePointcut("true"), 0, func(*JoinPoint) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	w.Use(a)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = w.Execute(jp("op", "x", nil), func(*JoinPoint) (any, error) { return nil, nil })
		}()
	}
	wg.Wait()
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
}

func TestJoinPointAccessors(t *testing.T) {
	point := jp("k", "n", map[string]string{"a": "v"})
	if point.Attr("a") != "v" || point.Attr("zz") != "" {
		t.Error("Attr lookup wrong")
	}
	bare := jp("k", "n", nil)
	if bare.Attr("a") != "" {
		t.Error("nil attrs should yield empty")
	}
	if point.String() != "k(n)" {
		t.Errorf("String = %q", point.String())
	}
	if Before.String() != "before" || After.String() != "after" || Around.String() != "around" || When(0).String() != "unknown" {
		t.Error("When.String values wrong")
	}
}

func TestAspectAdviceCount(t *testing.T) {
	a := NewAspect("x")
	pc := MustCompilePointcut("true")
	a.BeforeAdvice("b", pc, 0, func(*JoinPoint) error { return nil })
	a.AfterAdvice("a", pc, 0, func(*JoinPoint, any, error) {})
	if a.AdviceCount() != 2 {
		t.Errorf("AdviceCount = %d", a.AdviceCount())
	}
}

// TestQuickGlobReflexive property-tests that any literal string (without
// metacharacters) matches itself and matches "*".
func TestQuickGlobReflexive(t *testing.T) {
	f := func(s string) bool {
		clean := strings.NewReplacer("*", "", "?", "").Replace(s)
		return globMatch(clean, clean) && globMatch("*", clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickGlobPrefixSuffix property-tests prefix/suffix globs.
func TestQuickGlobPrefixSuffix(t *testing.T) {
	f := func(prefix, suffix string) bool {
		p := strings.NewReplacer("*", "", "?", "").Replace(prefix)
		s := strings.NewReplacer("*", "", "?", "").Replace(suffix)
		return globMatch(p+"*", p+s) && globMatch("*"+s, p+s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
