package aspect

import (
	"fmt"
	"strings"
)

// Pointcut is a compiled predicate over join points, in the spirit of
// AspectJ's pointcut designators. The expression language:
//
//	kind(GLOB)       matches the join point kind
//	name(GLOB)       matches the join point name
//	attr(KEY, GLOB)  matches an exposed attribute
//	target(GLOB)     matches the advised object's Go type (e.g. *core.App)
//	true             matches everything
//
// combined with !, &&, || and parentheses. GLOB supports '*' (any
// sequence) and '?' (one character). Examples from the navigation aspect:
//
//	kind(page.render) && attr(context, ByAuthor*)
//	kind(page.render) && !name(index)
type Pointcut struct {
	src  string
	root pcNode
}

// Source returns the original expression.
func (p *Pointcut) Source() string { return p.src }

// String implements fmt.Stringer.
func (p *Pointcut) String() string { return p.src }

// Matches reports whether the join point satisfies the pointcut.
func (p *Pointcut) Matches(jp *JoinPoint) bool {
	return p.root.matches(jp)
}

type pcNode interface {
	matches(jp *JoinPoint) bool
}

type pcKind struct{ glob string }
type pcName struct{ glob string }
type pcAttr struct{ key, glob string }
type pcTarget struct{ glob string }
type pcTrue struct{}
type pcNot struct{ operand pcNode }
type pcAnd struct{ lhs, rhs pcNode }
type pcOr struct{ lhs, rhs pcNode }

func (n pcKind) matches(jp *JoinPoint) bool { return globMatch(n.glob, jp.Kind) }
func (n pcName) matches(jp *JoinPoint) bool { return globMatch(n.glob, jp.Name) }

// pcAttr requires the attribute to be present; an absent attribute never
// matches, even against "*".
func (n pcAttr) matches(jp *JoinPoint) bool {
	if jp.Attrs == nil {
		return false
	}
	v, ok := jp.Attrs[n.key]
	return ok && globMatch(n.glob, v)
}
func (pcTrue) matches(*JoinPoint) bool { return true }

// pcTarget matches the dynamic Go type of the advised object, the closest
// analogue of AspectJ's target() designator. A nil target never matches.
func (n pcTarget) matches(jp *JoinPoint) bool {
	if jp.Target == nil {
		return false
	}
	return globMatch(n.glob, fmt.Sprintf("%T", jp.Target))
}

func (n pcNot) matches(jp *JoinPoint) bool { return !n.operand.matches(jp) }
func (n pcAnd) matches(jp *JoinPoint) bool { return n.lhs.matches(jp) && n.rhs.matches(jp) }
func (n pcOr) matches(jp *JoinPoint) bool  { return n.lhs.matches(jp) || n.rhs.matches(jp) }

// globMatch matches pattern (with '*' and '?') against s.
func globMatch(pattern, s string) bool {
	// Iterative two-pointer algorithm with backtracking on '*'.
	p, i := 0, 0
	star, mark := -1, 0
	for i < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == s[i]):
			p++
			i++
		case p < len(pattern) && pattern[p] == '*':
			star = p
			mark = i
			p++
		case star >= 0:
			p = star + 1
			mark++
			i = mark
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// CompilePointcut parses a pointcut expression.
func CompilePointcut(src string) (*Pointcut, error) {
	p := &pcParser{src: src}
	p.skipSpace()
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("aspect: pointcut %q: unexpected input at offset %d", src, p.pos)
	}
	return &Pointcut{src: src, root: node}, nil
}

// MustCompilePointcut is CompilePointcut that panics; for static
// expressions.
func MustCompilePointcut(src string) *Pointcut {
	pc, err := CompilePointcut(src)
	if err != nil {
		panic(err)
	}
	return pc
}

type pcParser struct {
	src string
	pos int
}

func (p *pcParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *pcParser) errorf(format string, args ...any) error {
	return fmt.Errorf("aspect: pointcut %q at offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *pcParser) parseOr() (pcNode, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.consume("||") {
			return lhs, nil
		}
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = pcOr{lhs: lhs, rhs: rhs}
	}
}

func (p *pcParser) parseAnd() (pcNode, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.consume("&&") {
			return lhs, nil
		}
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = pcAnd{lhs: lhs, rhs: rhs}
	}
}

func (p *pcParser) parseUnary() (pcNode, error) {
	p.skipSpace()
	if p.consume("!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return pcNot{operand: inner}, nil
	}
	if p.consume("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return nil, p.errorf("expected ')'")
		}
		return inner, nil
	}
	return p.parsePrimary()
}

func (p *pcParser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *pcParser) parsePrimary() (pcNode, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	word := p.src[start:p.pos]
	if word == "" {
		return nil, p.errorf("expected designator")
	}
	if word == "true" {
		return pcTrue{}, nil
	}
	p.skipSpace()
	if !p.consume("(") {
		return nil, p.errorf("expected '(' after %q", word)
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	switch word {
	case "kind":
		if len(args) != 1 {
			return nil, p.errorf("kind() takes one argument")
		}
		return pcKind{glob: args[0]}, nil
	case "name":
		if len(args) != 1 {
			return nil, p.errorf("name() takes one argument")
		}
		return pcName{glob: args[0]}, nil
	case "attr":
		if len(args) != 2 {
			return nil, p.errorf("attr() takes two arguments")
		}
		return pcAttr{key: args[0], glob: args[1]}, nil
	case "target":
		if len(args) != 1 {
			return nil, p.errorf("target() takes one argument")
		}
		return pcTarget{glob: args[0]}, nil
	default:
		return nil, p.errorf("unknown designator %q", word)
	}
}

// parseArgs reads comma-separated bare or quoted arguments up to ')'.
func (p *pcParser) parseArgs() ([]string, error) {
	var args []string
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errorf("unterminated argument list")
		}
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != ',' && p.src[p.pos] != ')' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, p.errorf("unterminated argument list")
		}
		args = append(args, strings.TrimSpace(p.src[start:p.pos]))
		if p.src[p.pos] == ')' {
			p.pos++
			return args, nil
		}
		p.pos++ // skip ','
	}
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}
