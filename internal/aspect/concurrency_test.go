package aspect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentExecuteWithMutation exercises the weaver's concurrency
// contract: many goroutines executing join points while aspects are
// registered and removed. Run with -race.
func TestConcurrentExecuteWithMutation(t *testing.T) {
	w := NewWeaver()
	var advised atomic.Int64
	a := NewAspect("counter")
	a.AroundAdvice("count", MustCompilePointcut("kind(op)"), 0,
		func(inv *Invocation) (any, error) {
			advised.Add(1)
			return inv.Proceed()
		})
	w.Use(a)

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				jp := &JoinPoint{Kind: "op", Name: fmt.Sprintf("g%d-%d", g, i)}
				res, err := w.Execute(jp, func(*JoinPoint) (any, error) { return i, nil })
				if err != nil {
					t.Errorf("Execute: %v", err)
					return
				}
				if res.(int) != i {
					t.Errorf("Execute result = %v, want %d", res, i)
					return
				}
			}
		}(g)
	}
	// Concurrent registration/removal must not race with Execute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			extra := NewAspect(fmt.Sprintf("extra%d", i))
			extra.BeforeAdvice("noop", MustCompilePointcut("kind(op)"), 5,
				func(*JoinPoint) error { return nil })
			w.Use(extra)
			w.Remove(extra.Name)
		}
	}()
	wg.Wait()

	if got := advised.Load(); got != goroutines*perG {
		t.Errorf("advised executions = %d, want %d", got, goroutines*perG)
	}
}

// TestTracingAccessor checks Tracing reflects EnableTrace/Trace.
func TestTracingAccessor(t *testing.T) {
	w := NewWeaver()
	if w.Tracing() {
		t.Error("new weaver should not be tracing")
	}
	w.EnableTrace()
	if !w.Tracing() {
		t.Error("Tracing() = false after EnableTrace")
	}
	w.Trace()
	if w.Tracing() {
		t.Error("Tracing() = true after Trace drained")
	}
}
