// Package aspect simulates the aspect-oriented programming mechanisms the
// paper surveys in §3 — AspectJ-style join points, pointcuts and advice —
// using Go interfaces and closures, since Go has no AOP support.
//
// The base program exposes named join points (the page-production pipeline
// in package core does this for every render step). Aspects declare advice
// bound to pointcut expressions; the Weaver composes matching advice around
// the join point's body at execution time. This is the "weaving" of the
// paper's Figure 1/Figure 6: base functionality and the navigational
// concern are authored separately and mixed by the mechanism, not by hand.
package aspect

import (
	"fmt"
	"sort"
	"sync"
)

// JoinPoint identifies one point in the base program's execution.
type JoinPoint struct {
	// Kind classifies the point, e.g. "page.render" or "link.traverse".
	Kind string
	// Name identifies the particular occurrence, e.g. the node id.
	Name string
	// Attrs carries arbitrary exposed state, e.g. {"context": "ByAuthor"}.
	Attrs map[string]string
	// Target is the object being advised, when one exists.
	Target any
}

// Attr returns an exposed attribute ("" when absent).
func (jp *JoinPoint) Attr(key string) string {
	if jp.Attrs == nil {
		return ""
	}
	return jp.Attrs[key]
}

// String renders the join point for traces.
func (jp *JoinPoint) String() string {
	return fmt.Sprintf("%s(%s)", jp.Kind, jp.Name)
}

// When says when advice runs relative to the join point.
type When int

// Advice positions.
const (
	Before When = iota + 1
	After
	Around
)

// String names the advice position.
func (w When) String() string {
	switch w {
	case Before:
		return "before"
	case After:
		return "after"
	case Around:
		return "around"
	default:
		return "unknown"
	}
}

// Invocation is the reified join-point execution handed to around advice.
// Proceed continues with the next advice in the chain (innermost: the
// original body). An around advice that never calls Proceed replaces the
// computation entirely.
type Invocation struct {
	// JP is the join point being executed.
	JP *JoinPoint

	chain []*adviceEntry
	body  func(*JoinPoint) (any, error)
	next  int
}

// Proceed runs the rest of the advice chain and the underlying body.
func (inv *Invocation) Proceed() (any, error) {
	for inv.next < len(inv.chain) {
		entry := inv.chain[inv.next]
		inv.next++
		if entry.when == Around {
			return entry.around(inv)
		}
	}
	return inv.body(inv.JP)
}

// BeforeFunc runs before the join point; returning an error aborts it.
type BeforeFunc func(jp *JoinPoint) error

// AfterFunc observes the join point's result (result may be nil, err the
// body's error). It runs even when the body failed.
type AfterFunc func(jp *JoinPoint, result any, err error)

// AroundFunc wraps the join point; it may call inv.Proceed zero or one
// times and may transform the result.
type AroundFunc func(inv *Invocation) (any, error)

// adviceEntry is one declared advice bound into an aspect.
type adviceEntry struct {
	aspect   *Aspect
	name     string
	when     When
	pointcut *Pointcut
	order    int
	seq      int // declaration order within the weaver, for stable sort

	before BeforeFunc
	after  AfterFunc
	around AroundFunc
}

// Aspect is a named group of advice — the unit of modularity the paper
// wants navigation to be packaged as.
type Aspect struct {
	// Name identifies the aspect, e.g. "navigation:index".
	Name string

	advices []*adviceEntry
}

// NewAspect returns an empty aspect.
func NewAspect(name string) *Aspect { return &Aspect{Name: name} }

// BeforeAdvice declares before advice on the pointcut. Order controls
// precedence (lower runs earlier); advice with equal order runs in
// declaration order. It returns the aspect for chaining.
func (a *Aspect) BeforeAdvice(name string, pc *Pointcut, order int, fn BeforeFunc) *Aspect {
	a.advices = append(a.advices, &adviceEntry{
		aspect: a, name: name, when: Before, pointcut: pc, order: order, before: fn,
	})
	return a
}

// AfterAdvice declares after advice on the pointcut.
func (a *Aspect) AfterAdvice(name string, pc *Pointcut, order int, fn AfterFunc) *Aspect {
	a.advices = append(a.advices, &adviceEntry{
		aspect: a, name: name, when: After, pointcut: pc, order: order, after: fn,
	})
	return a
}

// AroundAdvice declares around advice on the pointcut. Lower order wraps
// outermost.
func (a *Aspect) AroundAdvice(name string, pc *Pointcut, order int, fn AroundFunc) *Aspect {
	a.advices = append(a.advices, &adviceEntry{
		aspect: a, name: name, when: Around, pointcut: pc, order: order, around: fn,
	})
	return a
}

// AdviceCount returns the number of advice declarations.
func (a *Aspect) AdviceCount() int { return len(a.advices) }

// TraceEntry records one advice execution for diagnostics and the E1
// weaving-trace experiment.
type TraceEntry struct {
	JoinPoint string
	Aspect    string
	Advice    string
	When      When
}

// Weaver composes registered aspects with join-point executions. The zero
// value is unusable; use NewWeaver.
//
// Concurrency contract: Execute may be called from any number of
// goroutines at once — the page-production hot path weaves many join
// points in parallel — and Use/Remove may race with Execute (an Execute
// sees the aspect set as of its own start). Advice functions themselves
// must therefore be safe for concurrent invocation: they may run for
// several join points simultaneously. Trace recording is serialized, so
// concurrent executions interleave their entries in completion order;
// callers wanting a deterministic trace (the E1 figure) must serialize
// the executions themselves — core does this by weaving sequentially
// while Tracing() reports true.
type Weaver struct {
	mu      sync.RWMutex
	aspects []*Aspect
	seq     int

	traceMu sync.Mutex
	tracing bool
	trace   []TraceEntry
}

// NewWeaver returns an empty weaver.
func NewWeaver() *Weaver { return &Weaver{} }

// Use registers an aspect. Aspects registered earlier get lower sequence
// numbers, which break precedence ties.
func (w *Weaver) Use(a *Aspect) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, adv := range a.advices {
		w.seq++
		adv.seq = w.seq
	}
	w.aspects = append(w.aspects, a)
}

// Remove unregisters the named aspect, reporting whether it was present.
// This is the operation that makes the paper's requirements change cheap:
// swapping the access structure is Remove(old) + Use(new).
func (w *Weaver) Remove(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, a := range w.aspects {
		if a.Name == name {
			w.aspects = append(w.aspects[:i], w.aspects[i+1:]...)
			return true
		}
	}
	return false
}

// Aspects returns the registered aspect names in registration order.
func (w *Weaver) Aspects() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, len(w.aspects))
	for i, a := range w.aspects {
		out[i] = a.Name
	}
	return out
}

// EnableTrace starts recording advice executions.
func (w *Weaver) EnableTrace() {
	w.traceMu.Lock()
	defer w.traceMu.Unlock()
	w.tracing = true
	w.trace = nil
}

// Tracing reports whether the weaver is currently recording advice
// executions. Parallel drivers consult it to fall back to sequential
// execution, keeping recorded traces deterministic.
func (w *Weaver) Tracing() bool {
	w.traceMu.Lock()
	defer w.traceMu.Unlock()
	return w.tracing
}

// Trace returns the recorded entries and stops recording.
func (w *Weaver) Trace() []TraceEntry {
	w.traceMu.Lock()
	defer w.traceMu.Unlock()
	w.tracing = false
	out := w.trace
	w.trace = nil
	return out
}

func (w *Weaver) record(jp *JoinPoint, adv *adviceEntry) {
	w.traceMu.Lock()
	defer w.traceMu.Unlock()
	if !w.tracing {
		return
	}
	w.trace = append(w.trace, TraceEntry{
		JoinPoint: jp.String(),
		Aspect:    adv.aspect.Name,
		Advice:    adv.name,
		When:      adv.when,
	})
}

// matching collects advice matching jp, sorted by (order, seq).
func (w *Weaver) matching(jp *JoinPoint) []*adviceEntry {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []*adviceEntry
	for _, a := range w.aspects {
		for _, adv := range a.advices {
			if adv.pointcut.Matches(jp) {
				out = append(out, adv)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].order != out[j].order {
			return out[i].order < out[j].order
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Execute runs body at the join point, weaving in all matching advice:
// before advice first (any error aborts), then the around chain down to
// the body, then after advice in reverse precedence (innermost first),
// which also observes errors.
func (w *Weaver) Execute(jp *JoinPoint, body func(*JoinPoint) (any, error)) (any, error) {
	matched := w.matching(jp)
	if len(matched) == 0 {
		return body(jp)
	}

	var afters []*adviceEntry
	var arounds []*adviceEntry
	for _, adv := range matched {
		switch adv.when {
		case Before:
			w.record(jp, adv)
			if err := adv.before(jp); err != nil {
				return nil, fmt.Errorf("aspect: before advice %s/%s: %w", adv.aspect.Name, adv.name, err)
			}
		case After:
			afters = append(afters, adv)
		case Around:
			arounds = append(arounds, adv)
		}
	}

	tracedBody := body
	if len(arounds) > 0 {
		for _, adv := range arounds {
			w.record(jp, adv)
		}
	}
	inv := &Invocation{JP: jp, chain: arounds, body: tracedBody}
	result, err := inv.Proceed()

	for i := len(afters) - 1; i >= 0; i-- {
		w.record(jp, afters[i])
		afters[i].after(jp, result, err)
	}
	return result, err
}
