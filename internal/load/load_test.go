package load

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/server"
	"repro/internal/storage"
)

// liveServer boots a real navserve (museum model, file store, control
// plane enabled) for the harness to drive. Tests may import the server
// — the layering rule binds only the package's non-test sources, which
// must stay on the wire.
func liveServer(t *testing.T, dir string, opts ...server.Option) *httptest.Server {
	t.Helper()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(app, append([]server.Option{
		server.WithAPIToken("load-test-token"),
		server.WithPersistence(st),
		server.WithSyncPersistence(),
	}, opts...)...)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		st.Close()
	})
	return ts
}

// TestScenarioAgainstLiveServer runs a full fixed-seed scenario and
// demands a clean bill: zero errors, zero history mismatches, sane
// latency accounting. Because every /go/back and /go/forward response
// is checked against the harness's independent Brewster–Jeffrey
// mirror, a green run here is an end-to-end property test of the
// server's history semantics under concurrency.
func TestScenarioAgainstLiveServer(t *testing.T) {
	ts := liveServer(t, t.TempDir())
	ctx := context.Background()
	runner, err := NewRunner(ctx, Config{
		BaseURL:  ts.URL,
		Token:    "load-test-token",
		Sessions: 300,
		Workers:  8,
		Seed:     42,
		Steps:    15,
		Think:    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("history mismatches: %d (first: %s)", rep.Mismatches, rep.Mismatch)
	}
	if rep.Errors != 0 {
		t.Errorf("errors: %d of %d requests", rep.Errors, rep.Requests)
	}
	if rep.Completed != 300 {
		t.Errorf("completed = %d, want 300", rep.Completed)
	}
	if rep.Requests == 0 || rep.Steps == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.P50ms <= 0 || rep.P99ms < rep.P50ms {
		t.Errorf("quantiles p50=%.3f p99=%.3f", rep.P50ms, rep.P99ms)
	}
	// SLO machinery: a generous SLO passes, an impossible one fails.
	if v := (SLO{MaxP99: time.Minute}).Check(rep); len(v) != 0 {
		t.Errorf("generous SLO violated: %v", v)
	}
	if v := (SLO{MaxErrorRate: -1}).Check(rep); len(v) != 0 {
		t.Errorf("unset SLO checked: %v", v)
	}
	bad := SLO{MaxP99: time.Nanosecond}
	if v := bad.Check(rep); len(v) == 0 {
		t.Error("impossible p99 SLO not violated")
	}
}

// TestScenarioWithTrailLimit: when the server caps trails, the mirrors
// must trim identically or back/forward predictions diverge.
func TestScenarioWithTrailLimit(t *testing.T) {
	ts := liveServer(t, t.TempDir(), server.WithTrailLimit(4))
	ctx := context.Background()
	runner, err := NewRunner(ctx, Config{
		BaseURL:    ts.URL,
		Token:      "load-test-token",
		Sessions:   150,
		Workers:    6,
		Seed:       7,
		Steps:      25,
		TrailLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("history mismatches under trail limit: %d (first: %s)", rep.Mismatches, rep.Mismatch)
	}
	if rep.Errors != 0 {
		t.Errorf("errors: %d", rep.Errors)
	}
}

// TestSnapshotVerifyAcrossRestart is the chaos contract in miniature:
// record sessions, kill the server, restart over the same store, and
// verify zero loss — every recorded history served verbatim and still
// traversable.
func TestSnapshotVerifyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(app,
		server.WithAPIToken("load-test-token"),
		server.WithPersistence(st),
		server.WithSyncPersistence())
	ts := httptest.NewServer(srv)

	ctx := context.Background()
	runner, err := NewRunner(ctx, Config{
		BaseURL:       ts.URL,
		Token:         "load-test-token",
		Sessions:      120,
		Workers:       4,
		Seed:          3,
		Steps:         12,
		SnapshotEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("mismatches before restart: %d (%s)", rep.Mismatches, rep.Mismatch)
	}
	snaps := runner.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no snapshots recorded")
	}
	// Snapshots must survive the file round-trip the chaos script uses.
	snapPath := filepath.Join(t.TempDir(), "snaps.json")
	if err := WriteSnapshots(snapPath, snaps); err != nil {
		t.Fatal(err)
	}
	snaps, err = ReadSnapshots(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	// Kill: nothing survives but the store directory.
	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := liveServer(t, dir)
	res, err := Verify(ctx, ts2.URL, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d of %d sessions across restart: %v", res.Lost, len(snaps), res.Details)
	}
	if res.Verified != len(snaps) {
		t.Errorf("verified %d, want %d", res.Verified, len(snaps))
	}
	// Verify probes with a back/forward pair, so it must leave every
	// session exactly as recorded: a second pass sees the same world.
	res, err = Verify(ctx, ts2.URL, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("verify is not idempotent: second pass lost %d: %v", res.Lost, res.Details)
	}
}

// TestPagePathRoundTrip covers the harness's own URL mapping,
// including nested context names and hubs.
func TestPagePathRoundTrip(t *testing.T) {
	cases := []struct{ ctx, node, path string }{
		{"ByAuthor:picasso", "guitar", "/ByAuthor/picasso/guitar.html"},
		{"ByAuthor:picasso", "_index", "/ByAuthor/picasso/index.html"},
		{"Top", "node", "/Top/node.html"},
	}
	for _, c := range cases {
		if got := pagePath(c.ctx, c.node); got != c.path {
			t.Errorf("pagePath(%s,%s) = %s, want %s", c.ctx, c.node, got, c.path)
		}
		ctx, node, err := parsePagePath(c.path)
		if err != nil || ctx != c.ctx || node != c.node {
			t.Errorf("parsePagePath(%s) = %s,%s,%v", c.path, ctx, node, err)
		}
	}
	if _, _, err := parsePagePath("/go/next"); err == nil {
		t.Error("non-page path parsed")
	}
}

// TestHistQuantiles sanity-checks the log-linear histogram.
func TestHistQuantiles(t *testing.T) {
	var h latHist
	for i := 0; i < 99; i++ {
		h.record(time.Millisecond)
	}
	h.record(time.Second)
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %s, want ~1ms", p50)
	}
	if p99 < 500*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("p99 = %s, want ~1s", p99)
	}
	if h.quantile(0) > p50 || p50 > h.quantile(1) {
		t.Error("quantiles not monotone")
	}
}

// TestMirrorSemantics pins the mirror itself to the paper's rules —
// the harness-side half of the property the load run checks end to end.
func TestMirrorSemantics(t *testing.T) {
	var m mirror
	a, b, c := Entry{"C", "a"}, Entry{"C", "b"}, Entry{"C", "c"}
	m.navigate(a)
	m.navigate(b)
	m.navigate(b) // reload: untouched
	if len(m.nav) != 2 || m.cur != 1 {
		t.Fatalf("after a,b,reload: %+v@%d", m.nav, m.cur)
	}
	m.navigate(c)
	if !m.canBack() || m.canForward() {
		t.Fatal("at tip: canBack/canForward wrong")
	}
	m.back()
	m.back()
	if m.current() != a || !m.canForward() {
		t.Fatalf("after 2 backs: %+v", m.current())
	}
	m.navigate(c) // truncates b,c forward entries
	if m.canForward() {
		t.Error("navigate did not truncate forward history")
	}
	if len(m.nav) != 2 || m.nav[1] != c {
		t.Errorf("nav after truncating navigate: %+v", m.nav)
	}
}
