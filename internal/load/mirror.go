package load

// Entry is one navigation-history position as it appears on the wire
// (the server's Visit marshals with these exact field names).
type Entry struct {
	Context string `json:"Context"`
	NodeID  string `json:"NodeID"`
}

// mirror is the harness's own implementation of the Brewster–Jeffrey
// navigation-history semantics: a history list with a cursor, truncate
// on new navigation, reload untouched, front trimmed at the trail
// limit. It is written against the paper's model, not the server's
// code — the layering rules forbid this package from importing the
// navigation package — so agreement between mirror and server is an
// end-to-end check of the server's semantics, not a tautology.
type mirror struct {
	nav   []Entry
	cur   int
	limit int
}

// navigate applies one navigation (a page load or a followed
// traversal redirect) to the mirror.
func (m *mirror) navigate(e Entry) {
	if len(m.nav) == 0 {
		m.nav, m.cur = append(m.nav, e), 0
		return
	}
	if m.nav[m.cur] == e {
		return // reload
	}
	m.nav = append(m.nav[:m.cur+1], e)
	m.cur = len(m.nav) - 1
	if m.limit > 0 {
		for len(m.nav) > m.limit && m.cur > 0 {
			m.nav = m.nav[1:]
			m.cur--
		}
	}
}

func (m *mirror) canBack() bool    { return m.cur > 0 && len(m.nav) > 0 }
func (m *mirror) canForward() bool { return m.cur < len(m.nav)-1 }

// peekBack returns the entry Back should land on.
func (m *mirror) peekBack() Entry { return m.nav[m.cur-1] }

// peekForward returns the entry Forward should land on.
func (m *mirror) peekForward() Entry { return m.nav[m.cur+1] }

func (m *mirror) back()    { m.cur-- }
func (m *mirror) forward() { m.cur++ }

// current returns the position under the cursor (zero Entry before the
// first navigation).
func (m *mirror) current() Entry {
	if len(m.nav) == 0 {
		return Entry{}
	}
	return m.nav[m.cur]
}

// copyNav exports the history list for snapshots.
func (m *mirror) copyNav() []Entry {
	return append([]Entry(nil), m.nav...)
}
