package load

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// monitor polls the server's /metrics exposition (bearer-exempt, like
// any scraper) during a run, tracking the heap ceiling for the memory
// SLO.
type monitor struct {
	baseURL  string
	interval time.Duration
	stopc    chan struct{}
	donec    chan struct{}
	max      float64
}

func newMonitor(baseURL string, interval time.Duration) *monitor {
	return &monitor{baseURL: baseURL, interval: interval,
		stopc: make(chan struct{}), donec: make(chan struct{})}
}

func (m *monitor) start() {
	go func() {
		defer close(m.donec)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			if v, err := scrapeGauge(m.baseURL, "navserve_heap_bytes"); err == nil && v > m.max {
				m.max = v
			}
			select {
			case <-m.stopc:
				return
			case <-t.C:
			}
		}
	}()
}

func (m *monitor) stop() {
	close(m.stopc)
	<-m.donec
}

// maxHeap is valid after stop.
func (m *monitor) maxHeap() float64 { return m.max }

// scrapeGauge fetches one metric value from the Prometheus text
// exposition at /metrics.
func scrapeGauge(baseURL, name string) (float64, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("load: /metrics returned %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") {
			continue // longer metric name sharing the prefix
		}
		return strconv.ParseFloat(strings.TrimSpace(rest), 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("load: metric %s not found", name)
}

// settle waits until the server's write-behind flush queue is empty —
// every dirty session durably in the store. A chaos scenario calls
// this before the SIGKILL so zero-session-loss is the server's
// contract to keep, not a race.
func settle(ctx context.Context, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		depth, err := scrapeGauge(baseURL, "navserve_flush_queue_depth")
		retries, rerr := scrapeGauge(baseURL, "navserve_persist_retry_queue_depth")
		if err == nil && rerr == nil && depth == 0 && retries == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("load: settle: %w", err)
			}
			return fmt.Errorf("load: settle: flush queue still %d deep after %s", int(depth), timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
