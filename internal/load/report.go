package load

import (
	"fmt"
	"time"
)

// Report is the outcome of one scenario run, shaped for BENCH_load.json.
type Report struct {
	Sessions   int     `json:"sessions"`
	Completed  uint64  `json:"completed"`
	Steps      uint64  `json:"steps"`
	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed_503"`
	Mismatches uint64  `json:"history_mismatches"`
	Elapsed    float64 `json:"elapsed_seconds"`
	Throughput float64 `json:"requests_per_second"`
	P50ms      float64 `json:"p50_ms"`
	P90ms      float64 `json:"p90_ms"`
	P99ms      float64 `json:"p99_ms"`
	// MaxHeapBytes is the largest navserve_heap_bytes observed by the
	// metrics poller during the run (0 when /metrics was unreachable).
	MaxHeapBytes float64 `json:"max_heap_bytes"`
	// Mismatch carries the first history-mismatch detail for debugging.
	Mismatch string `json:"mismatch,omitempty"`
}

// ErrorRate is errors over requests (0 when no requests ran).
func (r *Report) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// ShedRate is 503-sheds over requests.
func (r *Report) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

func mergeStats(stats []*workerStats, elapsed time.Duration) *Report {
	var h latHist
	rep := &Report{Elapsed: elapsed.Seconds()}
	for _, st := range stats {
		h.merge(&st.hist)
		rep.Requests += st.requests
		rep.Errors += st.errors
		rep.Shed += st.shed
		rep.Mismatches += st.mismatches
		rep.Completed += st.completed
		rep.Steps += st.steps
		if rep.Mismatch == "" {
			rep.Mismatch = st.mismatchMsg
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.P50ms = float64(h.quantile(0.50)) / float64(time.Millisecond)
	rep.P90ms = float64(h.quantile(0.90)) / float64(time.Millisecond)
	rep.P99ms = float64(h.quantile(0.99)) / float64(time.Millisecond)
	return rep
}

// SLO is the assertion set a scenario is gated on. Zero fields are not
// checked — except history mismatches, which always fail a run.
type SLO struct {
	MaxP99       time.Duration `json:"max_p99,omitempty"`
	MaxErrorRate float64       `json:"max_error_rate,omitempty"`
	MaxShedRate  float64       `json:"max_shed_rate,omitempty"`
	MaxHeapBytes float64       `json:"max_heap_bytes,omitempty"`
}

// Check returns every violated assertion, empty when the run met its
// SLOs.
func (s SLO) Check(r *Report) []string {
	var v []string
	if r.Mismatches > 0 {
		v = append(v, fmt.Sprintf("%d history mismatches (first: %s) — the server's back/forward semantics diverged from the model", r.Mismatches, r.Mismatch))
	}
	if s.MaxP99 > 0 && r.P99ms > float64(s.MaxP99)/float64(time.Millisecond) {
		v = append(v, fmt.Sprintf("p99 %.2fms exceeds SLO %s", r.P99ms, s.MaxP99))
	}
	if s.MaxErrorRate > 0 && r.ErrorRate() > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f exceeds SLO %.4f (%d/%d)", r.ErrorRate(), s.MaxErrorRate, r.Errors, r.Requests))
	}
	if s.MaxShedRate > 0 && r.ShedRate() > s.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.4f exceeds SLO %.4f (%d/%d)", r.ShedRate(), s.MaxShedRate, r.Shed, r.Requests))
	}
	if s.MaxHeapBytes > 0 && r.MaxHeapBytes > s.MaxHeapBytes {
		v = append(v, fmt.Sprintf("heap ceiling %.0fMB exceeds SLO %.0fMB", r.MaxHeapBytes/(1<<20), s.MaxHeapBytes/(1<<20)))
	}
	return v
}
