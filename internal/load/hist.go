package load

import (
	"math"
	"time"
)

// latHist is a log-linear latency histogram: 80 buckets spanning 50µs
// to ~1min with ~19% resolution, constant memory, O(1) record. Each
// worker owns one (no atomics on the record path); merge folds them.
type latHist struct {
	buckets [80]uint64
	count   uint64
}

const (
	histBase  = 50 * time.Microsecond
	histRatio = 1.19
)

func (h *latHist) record(d time.Duration) {
	i := 0
	if d > histBase {
		i = int(math.Log(float64(d)/float64(histBase)) / math.Log(histRatio))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
	}
	h.buckets[i]++
	h.count++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
}

// quantile returns the q-th (0..1) latency as the geometric midpoint of
// the bucket holding that rank.
func (h *latHist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			lo := float64(histBase) * math.Pow(histRatio, float64(i))
			return time.Duration(lo * math.Sqrt(histRatio))
		}
	}
	return time.Duration(float64(histBase) * math.Pow(histRatio, float64(len(h.buckets))))
}
