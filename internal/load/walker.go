package load

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// session is one simulated visitor: a cookie, a deterministic action
// stream, and a local mirror of the navigation history the server
// should be keeping for it.
type session struct {
	id     int
	cfg    *Config
	site   *Site
	rng    *rand.Rand
	cookie string
	mirror mirror
	steps  int // remaining steps before abandonment
	nextAt time.Time
}

func newSession(id int, cfg Config, site *Site) *session {
	rng := sessionSource(cfg.Seed, id)
	// Geometric-ish abandonment around the mean: between half and
	// one-and-a-half times the configured steps.
	steps := cfg.Steps/2 + rng.Intn(cfg.Steps+1)
	if steps < 1 {
		steps = 1
	}
	return &session{id: id, cfg: &cfg, site: site, rng: rng, steps: steps,
		mirror: mirror{limit: cfg.TrailLimit}}
}

// think samples the exponential think-time distribution.
func (s *session) think() time.Duration {
	if s.cfg.Think <= 0 {
		return 0
	}
	d := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.Think))
	if d > 10*s.cfg.Think {
		d = 10 * s.cfg.Think
	}
	return d
}

// snapshot exports the session's expected history for a chaos Verify.
func (s *session) snapshot() Snapshot {
	return Snapshot{Cookie: s.cookie, Entries: s.mirror.copyNav(), Cursor: s.mirror.cur}
}

// workerStats accumulates one worker's counters; merged after the run
// so the record path is uncontended.
type workerStats struct {
	hist        latHist
	requests    uint64
	errors      uint64
	shed        uint64
	mismatches  uint64
	completed   uint64
	steps       uint64
	mismatchMsg string // first mismatch, for the report
}

func newWorkerStats() *workerStats { return &workerStats{} }

// get issues one GET with the session's cookie, records latency and
// classifies the outcome. The body is drained so connections are
// reused. Returns the response status (0 on transport error) and the
// Location header for redirects.
func (r *Runner) get(ctx context.Context, s *session, st *workerStats, path string) (int, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+path, nil)
	if err != nil {
		st.errors++
		return 0, ""
	}
	if s.cookie != "" {
		req.Header.Set("Cookie", "navsession="+s.cookie)
	}
	from := time.Now()
	resp, err := r.httpc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.errors++
		}
		return 0, ""
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st.hist.record(time.Since(from))
	st.requests++
	for _, c := range resp.Cookies() {
		if c.Name == "navsession" && c.Value != "" {
			s.cookie = c.Value
		}
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		st.shed++
	case resp.StatusCode >= 500:
		st.errors++
	}
	return resp.StatusCode, resp.Header.Get("Location")
}

// step performs one session step and reports whether the session is
// finished. Every navigation outcome is folded into the mirror so the
// back/forward predictions stay exact.
func (r *Runner) step(ctx context.Context, s *session, st *workerStats) bool {
	if ctx.Err() != nil {
		return true
	}
	st.steps++
	if s.cookie == "" || len(s.mirror.nav) == 0 {
		r.open(ctx, s, st)
		s.steps--
		return s.steps <= 0
	}
	switch action := s.drawAction(); action {
	case actNext, actPrev, actUp:
		r.traverse(ctx, s, st, map[int]string{actNext: "next", actPrev: "prev", actUp: "up"}[action])
	case actSelect:
		r.selectMember(ctx, s, st)
	case actJump:
		r.jump(ctx, s, st)
	case actBack:
		r.seekHistory(ctx, s, st, false)
	case actForward:
		r.seekHistory(ctx, s, st, true)
	case actReload:
		r.reload(ctx, s, st, 1)
	case actStorm:
		r.reload(ctx, s, st, 2+s.rng.Intn(4))
	}
	s.steps--
	return s.steps <= 0
}

const (
	actNext = iota
	actPrev
	actUp
	actSelect
	actJump
	actBack
	actForward
	actReload
	actStorm
)

// drawAction samples the Markov mix.
func (s *session) drawAction() int {
	m := s.cfg.Mix
	n := s.rng.Intn(m.total())
	for i, w := range [...]int{m.Next, m.Prev, m.Up, m.Select, m.Jump, m.Back, m.Forward, m.Reload, m.Storm} {
		if n < w {
			return i
		}
		n -= w
	}
	return actReload
}

// open starts the session at a random context's entry page.
func (r *Runner) open(ctx context.Context, s *session, st *workerStats) {
	sc := s.site.Contexts[s.rng.Intn(len(s.site.Contexts))]
	node := sc.Entry
	if node == "" {
		if sc.HasHub {
			node = hubNode
		} else {
			node = sc.Members[0]
		}
	}
	e := Entry{Context: sc.Name, NodeID: node}
	if code, _ := r.get(ctx, s, st, pagePath(e.Context, e.NodeID)); code == http.StatusOK {
		s.mirror.navigate(e)
	}
}

// traverse follows a relative edge (/go/next, /go/prev, /go/up). A 303
// is a navigation to the redirect target; a 409 means the edge does
// not exist from here — expected at tour boundaries, mirror untouched.
func (r *Runner) traverse(ctx context.Context, s *session, st *workerStats, action string) {
	code, loc := r.get(ctx, s, st, "/go/"+action)
	if code != http.StatusSeeOther {
		return
	}
	cn, node, err := parsePagePath(loc)
	if err != nil {
		st.errors++
		return
	}
	s.mirror.navigate(Entry{Context: cn, NodeID: node})
	r.land(ctx, s, st)
}

// selectMember picks a random member from the current context's hub
// (away from a hub the server answers 409, which the walker accepts).
func (r *Runner) selectMember(ctx context.Context, s *session, st *workerStats) {
	cur := s.mirror.current()
	sc := s.site.context(cur.Context)
	if sc == nil {
		return
	}
	node := sc.Members[s.rng.Intn(len(sc.Members))]
	code, loc := r.get(ctx, s, st, "/go/select?node="+node)
	if code != http.StatusSeeOther {
		return
	}
	cn, n, err := parsePagePath(loc)
	if err != nil {
		st.errors++
		return
	}
	s.mirror.navigate(Entry{Context: cn, NodeID: n})
	r.land(ctx, s, st)
}

// jump GETs a random page directly — entering a context sideways, the
// way a bookmark or external link would.
func (r *Runner) jump(ctx context.Context, s *session, st *workerStats) {
	sc := s.site.Contexts[s.rng.Intn(len(s.site.Contexts))]
	node := sc.Members[s.rng.Intn(len(sc.Members))]
	e := Entry{Context: sc.Name, NodeID: node}
	if code, _ := r.get(ctx, s, st, pagePath(e.Context, e.NodeID)); code == http.StatusOK {
		s.mirror.navigate(e)
	}
}

// seekHistory drives /go/back or /go/forward and holds the server to
// the mirror's prediction: the redirect must target exactly the entry
// the Brewster–Jeffrey semantics name, and a 409 is correct only when
// the mirror says the history has no entry in that direction.
func (r *Runner) seekHistory(ctx context.Context, s *session, st *workerStats, forward bool) {
	action, can := "back", s.mirror.canBack()
	var want Entry
	if forward {
		action, can = "forward", s.mirror.canForward()
		if can {
			want = s.mirror.peekForward()
		}
	} else if can {
		want = s.mirror.peekBack()
	}
	code, loc := r.get(ctx, s, st, "/go/"+action)
	switch code {
	case http.StatusSeeOther:
		if !can {
			st.mismatch(st.fmtMismatch(s, action, "server redirected but mirror has no history"))
			return
		}
		if got := pagePath(want.Context, want.NodeID); loc != got {
			st.mismatch(st.fmtMismatch(s, action, "redirect "+loc+", mirror predicts "+got))
			return
		}
		if forward {
			s.mirror.forward()
		} else {
			s.mirror.back()
		}
		r.land(ctx, s, st)
	case http.StatusConflict:
		if can {
			st.mismatch(st.fmtMismatch(s, action, "server 409 but mirror has history"))
		}
	}
}

// land loads the page a traversal redirected to — a browser follows its
// redirects — which per the semantics is a reload at the cursor and
// must not disturb the history.
func (r *Runner) land(ctx context.Context, s *session, st *workerStats) {
	cur := s.mirror.current()
	r.get(ctx, s, st, pagePath(cur.Context, cur.NodeID))
}

// reload re-GETs the current page n times (n>1 is a reload storm).
func (r *Runner) reload(ctx context.Context, s *session, st *workerStats, n int) {
	cur := s.mirror.current()
	path := pagePath(cur.Context, cur.NodeID)
	for i := 0; i < n; i++ {
		r.get(ctx, s, st, path)
	}
}

func (st *workerStats) mismatch(msg string) {
	st.mismatches++
	if st.mismatchMsg == "" {
		st.mismatchMsg = msg
	}
}

func (st *workerStats) fmtMismatch(s *session, action, detail string) string {
	return "session " + s.cookie + " /go/" + action + ": " + detail
}

// context finds a SiteContext by name.
func (s *Site) context(name string) *SiteContext {
	for i := range s.Contexts {
		if s.Contexts[i].Name == name {
			return &s.Contexts[i]
		}
	}
	return nil
}
