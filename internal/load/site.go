package load

import (
	"context"
	"fmt"
	"strings"

	"repro/client"
)

// hubNode is the node id of a context's entry page on the wire — the
// value the server's /session and /history reports for a hub visit.
const hubNode = "_index"

// SiteContext is one resolved context as the harness sees it: enough
// to pick entry points and members, nothing about its edges — the
// walker learns actual traversal targets from the server's redirects.
type SiteContext struct {
	Name    string
	HasHub  bool
	Entry   string
	Members []string
}

// Site is the set of contexts a scenario walks over.
type Site struct {
	Contexts []SiteContext
}

// FetchSite reads the resolved contexts from the server's control
// plane. It requires MemberIDs in the response (servers newer than the
// navload PR); a context without members is skipped.
func FetchSite(ctx context.Context, baseURL, token string) (*Site, error) {
	c, err := client.New(baseURL, token)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	ctxs, err := c.Contexts(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: fetching contexts: %w", err)
	}
	site := &Site{}
	for _, rc := range ctxs {
		if len(rc.MemberIDs) == 0 {
			continue
		}
		site.Contexts = append(site.Contexts, SiteContext{
			Name:    rc.Name,
			HasHub:  rc.HasHub,
			Entry:   rc.Entry,
			Members: append([]string(nil), rc.MemberIDs...),
		})
	}
	if len(site.Contexts) == 0 {
		return nil, fmt.Errorf("load: server reports no walkable contexts (MemberIDs missing — server too old?)")
	}
	return site, nil
}

// pagePath maps a (context, node) position to its page URL path, the
// inverse of the server's splitPagePath: context segments are ":"
// separated in names and "/" separated in paths, and the hub is
// index.html.
func pagePath(contextName, nodeID string) string {
	seg := strings.ReplaceAll(contextName, ":", "/")
	if nodeID == hubNode {
		return "/" + seg + "/index.html"
	}
	return "/" + seg + "/" + nodeID + ".html"
}

// parsePagePath inverts pagePath on a redirect Location.
func parsePagePath(path string) (contextName, nodeID string, err error) {
	p := strings.TrimPrefix(path, "/")
	p, ok := strings.CutSuffix(p, ".html")
	if !ok {
		return "", "", fmt.Errorf("load: %q is not a page path", path)
	}
	segs := strings.Split(p, "/")
	if len(segs) < 2 {
		return "", "", fmt.Errorf("load: page path %q too short", path)
	}
	nodeID = segs[len(segs)-1]
	if nodeID == "index" {
		nodeID = hubNode
	}
	return strings.Join(segs[:len(segs)-1], ":"), nodeID, nil
}
