package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
)

// Snapshot is one session's expected state, recorded by the harness
// before a chaos kill: the cookie that names the session on the wire
// and the navigation history the server must still hold for it after a
// restart.
type Snapshot struct {
	Cookie  string  `json:"cookie"`
	Entries []Entry `json:"entries"`
	Cursor  int     `json:"cursor"`
}

// WriteSnapshots persists snapshots for a later Verify run (typically
// across a server kill).
func WriteSnapshots(path string, snaps []Snapshot) error {
	raw, err := json.MarshalIndent(snaps, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ReadSnapshots loads a snapshot file.
func ReadSnapshots(path string) ([]Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snaps []Snapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return snaps, nil
}

// VerifyResult summarizes a zero-session-loss check.
type VerifyResult struct {
	Verified int      `json:"verified"`
	Lost     int      `json:"lost"`
	Details  []string `json:"details,omitempty"`
}

// historyWire is the GET /history payload.
type historyWire struct {
	Entries    []Entry `json:"entries"`
	Cursor     int     `json:"cursor"`
	CanBack    bool    `json:"can_back"`
	CanForward bool    `json:"can_forward"`
}

// Verify asserts, for every snapshot, that the server still serves the
// exact recorded navigation history for that cookie — entries, order
// and cursor — and that the session remains traversable (a Back or
// Forward from mid-history redirects where the history says it must,
// then the inverse traversal restores the cursor, so Verify is
// idempotent and the back/forward identity is checked on the way).
// Run it against a server that was SIGKILLed and restarted over the
// same store to prove zero session loss through the write-behind +
// recovery path.
func Verify(ctx context.Context, baseURL string, snaps []Snapshot) (*VerifyResult, error) {
	httpc := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	res := &VerifyResult{}
	for _, snap := range snaps {
		if detail := verifyOne(ctx, httpc, baseURL, snap); detail != "" {
			res.Lost++
			if len(res.Details) < 20 {
				res.Details = append(res.Details, detail)
			}
			continue
		}
		res.Verified++
	}
	return res, nil
}

func verifyOne(ctx context.Context, httpc *http.Client, baseURL string, snap Snapshot) string {
	h, err := fetchHistory(ctx, httpc, baseURL, snap.Cookie)
	if err != nil {
		return fmt.Sprintf("%s: %v", snap.Cookie, err)
	}
	if len(h.Entries) != len(snap.Entries) || h.Cursor != snap.Cursor {
		return fmt.Sprintf("%s: history %d entries@%d, recorded %d@%d",
			snap.Cookie, len(h.Entries), h.Cursor, len(snap.Entries), snap.Cursor)
	}
	for i := range h.Entries {
		if h.Entries[i] != snap.Entries[i] {
			return fmt.Sprintf("%s: entry %d is %+v, recorded %+v",
				snap.Cookie, i, h.Entries[i], snap.Entries[i])
		}
	}
	// The restored session must still traverse its history: drive one
	// Back or Forward and hold the redirect to the recorded entry, then
	// the inverse traversal back to the recorded cursor — Back and
	// Forward move the cursor without touching the entries, so the pair
	// leaves the session exactly as recorded (and a broken identity is
	// itself a finding).
	action, inverse, want := "", "", Entry{}
	switch {
	case snap.Cursor > 0:
		action, inverse, want = "back", "forward", snap.Entries[snap.Cursor-1]
	case snap.Cursor < len(snap.Entries)-1:
		action, inverse, want = "forward", "back", snap.Entries[snap.Cursor+1]
	default:
		return "" // single-entry history: nothing to traverse
	}
	if detail := traverse(ctx, httpc, baseURL, snap.Cookie, action, want); detail != "" {
		return detail
	}
	return traverse(ctx, httpc, baseURL, snap.Cookie, inverse, snap.Entries[snap.Cursor])
}

// traverse drives one /go/{action} for the session and holds the 303
// redirect to the expected entry's page.
func traverse(ctx context.Context, httpc *http.Client, baseURL, cookie, action string, want Entry) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/go/"+action, nil)
	if err != nil {
		return err.Error()
	}
	req.Header.Set("Cookie", "navsession="+cookie)
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Sprintf("%s: /go/%s: %v", cookie, action, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		return fmt.Sprintf("%s: /go/%s = %d, want 303", cookie, action, resp.StatusCode)
	}
	if loc, wantLoc := resp.Header.Get("Location"), pagePath(want.Context, want.NodeID); loc != wantLoc {
		return fmt.Sprintf("%s: /go/%s -> %s, history says %s", cookie, action, loc, wantLoc)
	}
	return ""
}

func fetchHistory(ctx context.Context, httpc *http.Client, baseURL, cookie string) (*historyWire, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/history", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Cookie", "navsession="+cookie)
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/history = %d", resp.StatusCode)
	}
	var h historyWire
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}
