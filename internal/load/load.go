// Package load is the navload traffic harness: it drives a live
// navserve over plain HTTP with large numbers of concurrent simulated
// visitor sessions — seedable Markov walks over the site's access
// structures, realistic back/forward usage, reload storms, think-time
// distributions and abandonment — and reports latency quantiles, error
// and shed rates, and the server's memory ceiling against configurable
// SLOs.
//
// The harness deliberately sees only what a browser sees: the package
// imports the wire client and nothing from the serving stack (the lint
// layering rules enforce it). Each simulated session keeps a local
// mirror of the Brewster–Jeffrey navigation-history semantics and
// checks every /go/back and /go/forward redirect against the mirror's
// prediction, so a load run doubles as an end-to-end property test of
// the server's history implementation: any disagreement is counted as
// a history mismatch and fails the run.
package load

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes one load scenario.
type Config struct {
	// BaseURL is the navserve under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Token is the control-plane bearer token, used once to fetch the
	// site's access structures from /api/v1.
	Token string
	// Sessions is the total number of simulated visitor sessions.
	Sessions int
	// Workers is the number of driver goroutines; each owns an equal
	// share of the sessions and schedules them on a time heap, so a
	// million sessions need not mean a million goroutines. 0 means 8.
	Workers int
	// Seed makes the walks reproducible: the same seed, site and mix
	// produce the same request sequence (timing aside).
	Seed int64
	// Steps is the mean number of steps a session takes before
	// abandoning the site (geometrically distributed around this).
	Steps int
	// Think is the mean think time between a session's steps
	// (exponentially distributed; zero means hammer).
	Think time.Duration
	// Duration caps the wall-clock run; 0 runs until every session
	// has finished its walk.
	Duration time.Duration
	// Mix is the Markov action mix; zero value means DefaultMix.
	Mix Mix
	// TrailLimit mirrors the server's -trail-limit so the local
	// history mirrors trim exactly like the server's (0 = unlimited).
	TrailLimit int
	// SnapshotEvery records every Nth session's final mirror state for
	// a later Verify pass (0 records none).
	SnapshotEvery int
}

// Mix is the Markov action distribution of a session step, as relative
// weights. Whatever action is drawn, a session that cannot perform it
// (Forward with no forward history, Select away from a hub) counts the
// server's 409 as an expected outcome, not an error.
type Mix struct {
	Next    int // follow the tour's next edge
	Prev    int // follow the tour's prev edge
	Up      int // to the context's entry page
	Select  int // from a hub, pick a random member
	Jump    int // direct GET of a random page (cross-context entry)
	Back    int // history back
	Forward int // history forward
	Reload  int // re-GET the current page
	Storm   int // reload storm: several rapid re-GETs
}

// DefaultMix approximates observed navigation behaviour: forward
// movement dominates, back is common (second most-used browser action),
// forward is rare, reloads happen.
var DefaultMix = Mix{
	Next: 30, Prev: 6, Up: 8, Select: 14, Jump: 10,
	Back: 16, Forward: 4, Reload: 8, Storm: 4,
}

func (m Mix) total() int {
	return m.Next + m.Prev + m.Up + m.Select + m.Jump + m.Back + m.Forward + m.Reload + m.Storm
}

// Runner executes one scenario.
type Runner struct {
	cfg   Config
	site  *Site
	httpc *http.Client
	mon   *monitor

	mu        sync.Mutex
	snapshots []Snapshot
}

// NewRunner validates the config and fetches the site model from the
// server's control plane.
func NewRunner(ctx context.Context, cfg Config) (*Runner, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("load: Sessions must be positive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Workers > cfg.Sessions {
		cfg.Workers = cfg.Sessions
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 20
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	site, err := FetchSite(ctx, cfg.BaseURL, cfg.Token)
	if err != nil {
		return nil, err
	}
	return &Runner{
		cfg:  cfg,
		site: site,
		httpc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 4,
				MaxIdleConnsPerHost: cfg.Workers * 4,
			},
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}, nil
}

// sessionHeap orders sessions by their next scheduled step.
type sessionHeap []*session

func (h sessionHeap) Len() int           { return len(h) }
func (h sessionHeap) Less(i, j int) bool { return h[i].nextAt.Before(h[j].nextAt) }
func (h sessionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sessionHeap) Push(x any)        { *h = append(*h, x.(*session)) }
func (h *sessionHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Run drives the scenario to completion (or the Duration cap) and
// returns the merged report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Duration)
		defer cancel()
	}
	r.mon = newMonitor(r.cfg.BaseURL, 250*time.Millisecond)
	r.mon.start()

	started := time.Now()
	var wg sync.WaitGroup
	stats := make([]*workerStats, r.cfg.Workers)
	for w := 0; w < r.cfg.Workers; w++ {
		stats[w] = newWorkerStats()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(ctx, w, stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)
	r.mon.stop()

	rep := mergeStats(stats, elapsed)
	rep.Sessions = r.cfg.Sessions
	rep.MaxHeapBytes = r.mon.maxHeap()
	return rep, nil
}

// worker drives its share of the sessions on a min-heap keyed by each
// session's next step time — thousands of sessions per goroutine.
func (r *Runner) worker(ctx context.Context, w int, st *workerStats) {
	h := sessionHeap{}
	now := time.Now()
	for i := w; i < r.cfg.Sessions; i += r.cfg.Workers {
		s := newSession(i, r.cfg, r.site)
		// Stagger openings across one mean think time so the ramp-up
		// is not a thundering herd.
		s.nextAt = now.Add(time.Duration(s.rng.Int63n(int64(r.cfg.Think) + 1)))
		h = append(h, s)
	}
	heap.Init(&h)
	timer := time.NewTimer(0)
	defer timer.Stop()
	for len(h) > 0 {
		s := h[0]
		if wait := time.Until(s.nextAt); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				r.finish(&h, st)
				return
			case <-timer.C:
			}
		}
		select {
		case <-ctx.Done():
			r.finish(&h, st)
			return
		default:
		}
		done := r.step(ctx, s, st)
		if done {
			heap.Pop(&h)
			r.retire(s, st)
			continue
		}
		s.nextAt = time.Now().Add(s.think())
		heap.Fix(&h, 0)
	}
	r.finish(&h, st)
}

// finish retires every remaining session (duration cap or cancel).
func (r *Runner) finish(h *sessionHeap, st *workerStats) {
	for _, s := range *h {
		r.retire(s, st)
	}
	*h = (*h)[:0]
}

// retire closes out one session, snapshotting it when sampled.
func (r *Runner) retire(s *session, st *workerStats) {
	st.completed++
	if r.cfg.SnapshotEvery > 0 && s.cookie != "" && s.id%r.cfg.SnapshotEvery == 0 {
		snap := s.snapshot()
		r.mu.Lock()
		r.snapshots = append(r.snapshots, snap)
		r.mu.Unlock()
	}
}

// Snapshots returns the recorded per-session mirror states (cookie plus
// expected history) from the last Run, for a later Verify.
func (r *Runner) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.snapshots...)
}

// Settle polls the server until its write-behind queue is empty —
// every session durably persisted — or the timeout expires. Chaos
// scenarios call this before killing the server so "zero session loss"
// is a fair assertion.
func (r *Runner) Settle(ctx context.Context, timeout time.Duration) error {
	return settle(ctx, r.cfg.BaseURL, timeout)
}

// rng returns a deterministic per-purpose source: the same seed always
// yields the same walks regardless of worker interleaving, because each
// session derives its stream from the scenario seed and its own id.
func sessionSource(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(id)))
}
