// Package xpointer implements the XPointer framework used in XLink href
// fragments: shorthand pointers, the element() scheme, the xmlns() scheme,
// and the xpointer() scheme backed by the xpath engine.
//
// A pointer is resolved against a document; multi-part pointers evaluate
// parts left to right and the first part that identifies at least one node
// wins, per the W3C XPointer framework's error-recovery rule. xmlns() parts
// contribute prefix bindings to all subsequent xpointer() parts.
package xpointer

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// ErrNoMatch is returned (wrapped) when a pointer resolves to no nodes.
var ErrNoMatch = errors.New("xpointer: no subresource matched")

// ErrSyntax is returned (wrapped) for malformed pointers.
var ErrSyntax = errors.New("xpointer: invalid pointer syntax")

// Part is one scheme-based pointer part, e.g. xpointer(//painting[1]).
type Part struct {
	// Scheme is the scheme name: "xpointer", "element" or "xmlns".
	Scheme string
	// Data is the unescaped scheme data between the parentheses.
	Data string
}

// Pointer is a parsed XPointer.
type Pointer struct {
	// Shorthand is the bare-NCName form; empty when Parts is used.
	Shorthand string
	// Parts are the scheme parts in order, for the full form.
	Parts []Part

	src string
}

// Source returns the original pointer text.
func (p *Pointer) Source() string { return p.src }

// String implements fmt.Stringer.
func (p *Pointer) String() string { return p.src }

// Parse parses an XPointer fragment (the part after '#' in a URI
// reference).
func Parse(s string) (*Pointer, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty pointer", ErrSyntax)
	}
	if !strings.ContainsAny(s, "()") {
		if !isNCName(s) {
			return nil, fmt.Errorf("%w: %q is not an NCName", ErrSyntax, s)
		}
		return &Pointer{Shorthand: s, src: s}, nil
	}
	p := &Pointer{src: s}
	rest := s
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		open := strings.IndexByte(rest, '(')
		if open <= 0 {
			return nil, fmt.Errorf("%w: expected scheme name in %q", ErrSyntax, rest)
		}
		scheme := rest[:open]
		if !isNCName(scheme) {
			return nil, fmt.Errorf("%w: bad scheme name %q", ErrSyntax, scheme)
		}
		data, remainder, err := scanSchemeData(rest[open+1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v in part %q", ErrSyntax, err, scheme)
		}
		p.Parts = append(p.Parts, Part{Scheme: scheme, Data: data})
		rest = remainder
	}
	if len(p.Parts) == 0 {
		return nil, fmt.Errorf("%w: no pointer parts in %q", ErrSyntax, s)
	}
	return p, nil
}

// scanSchemeData consumes scheme data up to the balancing ')', handling the
// ^-escapes defined by the framework (^( ^) ^^) and nested balanced parens.
func scanSchemeData(s string) (data, rest string, err error) {
	var sb strings.Builder
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '^':
			if i+1 >= len(s) {
				return "", "", errors.New("dangling '^' escape")
			}
			next := s[i+1]
			if next != '(' && next != ')' && next != '^' {
				return "", "", fmt.Errorf("invalid escape ^%c", next)
			}
			sb.WriteByte(next)
			i++
		case '(':
			depth++
			sb.WriteByte(c)
		case ')':
			if depth == 0 {
				return sb.String(), s[i+1:], nil
			}
			depth--
			sb.WriteByte(c)
		default:
			sb.WriteByte(c)
		}
	}
	return "", "", errors.New("unterminated scheme data")
}

// Resolve evaluates the pointer against doc and returns the identified
// nodes. A wrapped ErrNoMatch is returned when nothing matches.
func (p *Pointer) Resolve(doc *xmldom.Document) ([]xmldom.Node, error) {
	return p.ResolveFrom(doc, nil)
}

// ResolveFrom evaluates the pointer with an optional "here" node: inside
// xpointer() parts the XPointer here() function then returns it. XLink
// processors pass the linking element so linkbase-internal pointers like
// xpointer(here()/ancestor::links//loc[1]) can address relative to the
// link itself.
func (p *Pointer) ResolveFrom(doc *xmldom.Document, here xmldom.Node) ([]xmldom.Node, error) {
	if doc == nil {
		return nil, fmt.Errorf("xpointer: resolve %q: nil document", p.src)
	}
	if p.Shorthand != "" {
		if e := doc.GetElementByID(p.Shorthand); e != nil {
			return []xmldom.Node{e}, nil
		}
		return nil, fmt.Errorf("%w: no element with id %q", ErrNoMatch, p.Shorthand)
	}
	ns := map[string]string{}
	var lastErr error
	for _, part := range p.Parts {
		switch part.Scheme {
		case "xmlns":
			prefix, uri, ok := strings.Cut(part.Data, "=")
			if !ok {
				lastErr = fmt.Errorf("%w: xmlns part %q missing '='", ErrSyntax, part.Data)
				continue
			}
			ns[strings.TrimSpace(prefix)] = strings.TrimSpace(uri)
		case "xpointer":
			nodes, err := evalXPointerPart(doc, part.Data, ns, here)
			if err != nil {
				lastErr = err
				continue
			}
			if len(nodes) > 0 {
				return nodes, nil
			}
		case "element":
			if e, err := resolveElementScheme(doc, part.Data); err != nil {
				lastErr = err
			} else if e != nil {
				return []xmldom.Node{e}, nil
			}
		default:
			// Unknown schemes are skipped per the framework.
			lastErr = fmt.Errorf("xpointer: unsupported scheme %q", part.Scheme)
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last error: %v)", ErrNoMatch, lastErr)
	}
	return nil, ErrNoMatch
}

// ResolveElements is Resolve filtered to elements.
func (p *Pointer) ResolveElements(doc *xmldom.Document) ([]*xmldom.Element, error) {
	nodes, err := p.Resolve(doc)
	if err != nil {
		return nil, err
	}
	var out []*xmldom.Element
	for _, n := range nodes {
		if e, ok := n.(*xmldom.Element); ok {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: pointer %q selected no elements", ErrNoMatch, p.src)
	}
	return out, nil
}

func evalXPointerPart(doc *xmldom.Document, data string, ns map[string]string, here xmldom.Node) ([]xmldom.Node, error) {
	expr, err := xpath.Compile(data)
	if err != nil {
		return nil, err
	}
	fns := map[string]xpath.Function{
		// here() returns the element the pointer occurs in (XPointer
		// §4.1); without a context it is an error to call it.
		"here": func(_ *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			if len(args) != 0 {
				return nil, fmt.Errorf("xpointer: here() takes no arguments")
			}
			if here == nil {
				return nil, fmt.Errorf("xpointer: here() used without a context element")
			}
			return xpath.NodeSet{here}, nil
		},
	}
	v, err := expr.Eval(&xpath.Context{Node: doc, Namespaces: ns, Functions: fns})
	if err != nil {
		return nil, err
	}
	set, ok := v.(xpath.NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpointer: xpointer(%s) is not a node-set expression", data)
	}
	return set, nil
}

// resolveElementScheme implements element() scheme data: either an NCName,
// an NCName followed by /N child sequences, or a pure /N/M... sequence
// from the document root.
func resolveElementScheme(doc *xmldom.Document, data string) (*xmldom.Element, error) {
	if data == "" {
		return nil, fmt.Errorf("%w: empty element() data", ErrSyntax)
	}
	var cur *xmldom.Element
	rest := data
	if data[0] != '/' {
		id, tail, _ := strings.Cut(data, "/")
		cur = doc.GetElementByID(id)
		if cur == nil {
			return nil, fmt.Errorf("%w: element() id %q not found", ErrNoMatch, id)
		}
		if tail == "" {
			return cur, nil
		}
		rest = "/" + tail
	}
	for _, seg := range strings.Split(strings.TrimPrefix(rest, "/"), "/") {
		n, err := strconv.Atoi(seg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%w: bad child sequence step %q", ErrSyntax, seg)
		}
		var kids []*xmldom.Element
		if cur == nil {
			if r := doc.Root(); r != nil {
				kids = []*xmldom.Element{r}
			}
		} else {
			kids = cur.ChildElements()
		}
		if n > len(kids) {
			return nil, fmt.Errorf("%w: child sequence step %d exceeds %d children", ErrNoMatch, n, len(kids))
		}
		cur = kids[n-1]
	}
	return cur, nil
}

// isNCName reports whether s is a valid non-colonized XML name.
func isNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !(r == '_' || isLetter(r)) {
				return false
			}
			continue
		}
		if !(r == '_' || r == '-' || r == '.' || isLetter(r) || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

func isLetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 0x7F
}
