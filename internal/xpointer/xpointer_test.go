package xpointer

import (
	"errors"
	"testing"

	"repro/internal/xmldom"
)

const fixtureSrc = `<museum>
  <painter id="picasso">
    <name>Pablo Picasso</name>
    <painting id="guitar"><title>Guitar</title></painting>
    <painting id="guernica"><title>Guernica</title></painting>
  </painter>
  <ns xmlns:m="urn:meta"><m:note id="n1">hi</m:note></ns>
</museum>`

func fixture(t *testing.T) *xmldom.Document {
	t.Helper()
	doc, err := xmldom.ParseString(fixtureSrc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestShorthandPointer(t *testing.T) {
	doc := fixture(t)
	p, err := Parse("guitar")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shorthand != "guitar" {
		t.Errorf("Shorthand = %q", p.Shorthand)
	}
	nodes, err := p.Resolve(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("resolved %d nodes", len(nodes))
	}
	if e := nodes[0].(*xmldom.Element); e.AttrValue("id") != "guitar" {
		t.Errorf("wrong element: %s", e.Name.Local)
	}
}

func TestShorthandNoMatch(t *testing.T) {
	doc := fixture(t)
	p, err := Parse("nothing-here")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Resolve(doc)
	if !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v, want ErrNoMatch", err)
	}
}

func TestXPointerScheme(t *testing.T) {
	doc := fixture(t)
	tests := []struct {
		src  string
		want int
	}{
		{"xpointer(//painting)", 2},
		{"xpointer(//painting[@id='guitar'])", 1},
		{"xpointer(/museum/painter/painting[2])", 1},
		{"xpointer(//painting[title='Guitar'])", 1},
	}
	for _, tt := range tests {
		p, err := Parse(tt.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.src, err)
		}
		nodes, err := p.Resolve(doc)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", tt.src, err)
		}
		if len(nodes) != tt.want {
			t.Errorf("Resolve(%q) = %d nodes, want %d", tt.src, len(nodes), tt.want)
		}
	}
}

func TestMultiPartFallback(t *testing.T) {
	doc := fixture(t)
	// First part fails (no such id), second matches.
	p, err := Parse("xpointer(id('missing'))xpointer(//painting[1])")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := p.Resolve(doc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(nodes) != 1 {
		t.Errorf("fallback resolved %d nodes, want 1", len(nodes))
	}
}

func TestXmlnsSchemeBindsPrefixes(t *testing.T) {
	doc := fixture(t)
	p, err := Parse("xmlns(m=urn:meta) xpointer(//m:note)")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := p.Resolve(doc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(nodes) != 1 {
		t.Fatalf("resolved %d nodes, want 1", len(nodes))
	}
	// Without the binding the same expression matches nothing.
	p2 := mustParse(t, "xpointer(//m:note)")
	if _, err := p2.Resolve(doc); !errors.Is(err, ErrNoMatch) {
		t.Errorf("unbound prefix: err = %v, want ErrNoMatch", err)
	}
}

func mustParse(t *testing.T, s string) *Pointer {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

func TestElementScheme(t *testing.T) {
	doc := fixture(t)
	tests := []struct {
		src    string
		wantID string // expected id attr, or "" to expect local name match below
		local  string
	}{
		{"element(guitar)", "guitar", "painting"},
		{"element(picasso/2)", "guitar", "painting"},
		{"element(picasso/3)", "guernica", "painting"},
		{"element(/1)", "", "museum"},
		{"element(/1/1)", "picasso", "painter"},
		{"element(/1/1/2/1)", "", "title"},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		nodes, err := p.Resolve(doc)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", tt.src, err)
		}
		e := nodes[0].(*xmldom.Element)
		if e.Name.Local != tt.local {
			t.Errorf("Resolve(%q) = <%s>, want <%s>", tt.src, e.Name.Local, tt.local)
		}
		if tt.wantID != "" && e.AttrValue("id") != tt.wantID {
			t.Errorf("Resolve(%q) id = %q, want %q", tt.src, e.AttrValue("id"), tt.wantID)
		}
	}
}

func TestElementSchemeErrors(t *testing.T) {
	doc := fixture(t)
	for _, src := range []string{
		"element(missing)",
		"element(/1/99)",
		"element(/0)",
		"element(/x)",
		"element()",
	} {
		p, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := p.Resolve(doc); err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"  ",
		"not an ncname!",
		"9startsdigit",
		"xpointer(//a",           // unterminated
		"xpointer(//a) trailing", // garbage after parts
		"(no-scheme)",
		"xpointer(//a)^",
		"bad^escape(x)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) error %v is not ErrSyntax", src, err)
		}
	}
}

func TestCaretEscapes(t *testing.T) {
	// xpointer data containing ^-escaped parens.
	p, err := Parse("xpointer(//painting[contains(title,'a^)b')])")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Parts[0].Data != "//painting[contains(title,'a)b')]" {
		t.Errorf("unescaped data = %q", p.Parts[0].Data)
	}
	// Balanced nested parens need no escaping.
	p, err = Parse("xpointer(concat('a','b'))")
	if err != nil {
		t.Fatalf("Parse nested: %v", err)
	}
	if p.Parts[0].Data != "concat('a','b')" {
		t.Errorf("nested data = %q", p.Parts[0].Data)
	}
}

func TestUnsupportedSchemeSkipped(t *testing.T) {
	doc := fixture(t)
	p := mustParse(t, "strange(abc) xpointer(//painting[1])")
	nodes, err := p.Resolve(doc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(nodes) != 1 {
		t.Errorf("resolved %d, want 1", len(nodes))
	}
	// Only unsupported schemes → ErrNoMatch.
	p = mustParse(t, "strange(abc)")
	if _, err := p.Resolve(doc); !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v, want ErrNoMatch", err)
	}
}

func TestResolveElements(t *testing.T) {
	doc := fixture(t)
	p := mustParse(t, "xpointer(//painting)")
	els, err := p.ResolveElements(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 2 {
		t.Errorf("elements = %d, want 2", len(els))
	}
	// Attribute-only result yields no elements.
	p = mustParse(t, "xpointer(//@id)")
	if _, err := p.ResolveElements(doc); !errors.Is(err, ErrNoMatch) {
		t.Errorf("attr-only: err = %v, want ErrNoMatch", err)
	}
}

func TestResolveNilDocument(t *testing.T) {
	p := mustParse(t, "guitar")
	if _, err := p.Resolve(nil); err == nil {
		t.Error("nil document should error")
	}
}

func TestHereFunction(t *testing.T) {
	doc := fixture(t)
	guitar := doc.GetElementByID("guitar")
	// here() anchors the evaluation at the supplied element.
	p := mustParse(t, "xpointer(here()/title)")
	nodes, err := p.ResolveFrom(doc, guitar)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "Guitar" {
		t.Errorf("here()/title = %v", nodes)
	}
	// Relative addressing via ancestors.
	p = mustParse(t, "xpointer(here()/ancestor::painter/name)")
	nodes, err = p.ResolveFrom(doc, guitar)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "Pablo Picasso" {
		t.Errorf("ancestor name = %v", nodes)
	}
	// Without a context element, here() is an error -> ErrNoMatch.
	if _, err := p.Resolve(doc); !errors.Is(err, ErrNoMatch) {
		t.Errorf("here() without context: %v", err)
	}
	// here() with arguments is rejected.
	bad := mustParse(t, "xpointer(here(1))")
	if _, err := bad.ResolveFrom(doc, guitar); !errors.Is(err, ErrNoMatch) {
		t.Errorf("here(1): %v", err)
	}
}

func TestSourceAccessors(t *testing.T) {
	p := mustParse(t, "xpointer(//a)")
	if p.Source() != "xpointer(//a)" || p.String() != "xpointer(//a)" {
		t.Errorf("Source/String = %q/%q", p.Source(), p.String())
	}
}
