package navigation

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// encodableStructures enumerates every encodable structure shape:
// the four built-ins, their circular tour variants, and adaptive tours
// over each viable fallback with and without plans.
func encodableStructures() []AccessStructure {
	plans := map[string]TourPlan{
		"ByAuthor:picasso": {
			Order:     []string{"guernica", "avignon", "guitar"},
			Landmarks: []string{"guitar"},
			Dead:      []string{"avignon"},
		},
		"ByAuthor:dali": {Order: []string{"memory"}},
	}
	out := []AccessStructure{
		Index{},
		Menu{},
		GuidedTour{},
		GuidedTour{Circular: true},
		IndexedGuidedTour{},
		IndexedGuidedTour{Circular: true},
		AdaptiveTour{},
		AdaptiveTour{Circular: true, Plans: plans},
		&AdaptiveTour{Fallback: Menu{}, Plans: plans},
		AdaptiveTour{Fallback: GuidedTour{Circular: true}, Plans: plans},
		AdaptiveTour{Fallback: Index{}},
	}
	return out
}

// TestSpecRoundTripStable is the property test of the codec contract:
// for every structure kind, Encode→Decode→Encode is stable (the two
// specs are deeply equal, and so are their JSON serializations).
func TestSpecRoundTripStable(t *testing.T) {
	for _, as := range encodableStructures() {
		t.Run(AccessText(as), func(t *testing.T) {
			spec, err := EncodeSpec(as)
			if err != nil {
				t.Fatalf("EncodeSpec: %v", err)
			}
			decoded, err := DecodeSpec(spec)
			if err != nil {
				t.Fatalf("DecodeSpec: %v", err)
			}
			spec2, err := EncodeSpec(decoded)
			if err != nil {
				t.Fatalf("EncodeSpec after round trip: %v", err)
			}
			if !reflect.DeepEqual(spec, spec2) {
				t.Errorf("round trip unstable:\nfirst:  %+v\nsecond: %+v", spec, spec2)
			}
			j1, _ := json.Marshal(spec)
			j2, _ := json.Marshal(spec2)
			if string(j1) != string(j2) {
				t.Errorf("JSON round trip unstable:\nfirst:  %s\nsecond: %s", j1, j2)
			}
			// The decoded structure must render the same artifact text —
			// the control plane and E8 showing the same declaration.
			if got, want := AccessText(decoded), AccessText(as); got != want {
				t.Errorf("AccessText after round trip = %q, want %q", got, want)
			}
		})
	}
}

// TestSpecRoundTripRandomAdaptive drives the same property over a fleet
// of randomly generated adaptive tours: random fallbacks, plan counts
// and member rolls, all must re-encode to the identical spec.
func TestSpecRoundTripRandomAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fallbacks := []AccessStructure{
		nil, Index{}, Menu{}, GuidedTour{}, GuidedTour{Circular: true},
		IndexedGuidedTour{}, IndexedGuidedTour{Circular: true},
	}
	for i := 0; i < 200; i++ {
		tour := AdaptiveTour{
			Fallback: fallbacks[rng.Intn(len(fallbacks))],
			Circular: rng.Intn(2) == 0,
		}
		if n := rng.Intn(4); n > 0 {
			tour.Plans = make(map[string]TourPlan, n)
			for p := 0; p < n; p++ {
				name := fmt.Sprintf("Family%d:group%d", rng.Intn(3), p)
				var order, landmarks, dead []string
				for m := 0; m < rng.Intn(5); m++ {
					order = append(order, fmt.Sprintf("node%d", m))
				}
				if len(order) > 0 && rng.Intn(2) == 0 {
					landmarks = append(landmarks, order[rng.Intn(len(order))])
				}
				if len(order) > 1 && rng.Intn(3) == 0 {
					dead = append(dead, order[len(order)-1])
				}
				tour.Plans[name] = TourPlan{Order: order, Landmarks: landmarks, Dead: dead}
			}
		}
		spec, err := EncodeSpec(tour)
		if err != nil {
			t.Fatalf("case %d: EncodeSpec: %v", i, err)
		}
		decoded, err := DecodeSpec(spec)
		if err != nil {
			t.Fatalf("case %d: DecodeSpec: %v", i, err)
		}
		spec2, err := EncodeSpec(decoded)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("case %d: round trip unstable:\nfirst:  %+v\nsecond: %+v", i, spec, spec2)
		}
	}
}

// TestSpecAdaptiveBaseUnwrapping: encoding a tour whose fallback is
// itself adaptive must record the unwrapped base, exactly as BaseAccess
// would — re-derivation over the wire never stacks wrappers.
func TestSpecAdaptiveBaseUnwrapping(t *testing.T) {
	nested := AdaptiveTour{
		Fallback: AdaptiveTour{
			Fallback: GuidedTour{Circular: true},
			Plans:    map[string]TourPlan{"X": {Order: []string{"a"}}},
		},
	}
	spec, err := EncodeSpec(nested)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fallback == nil || spec.Fallback.Kind != "guided-tour" || !spec.Fallback.Circular {
		t.Errorf("nested fallback not unwrapped to the base: %+v", spec.Fallback)
	}
	// And the nil-fallback default encodes as the indexed guided tour
	// AdaptiveTour serves in its place.
	spec, err = EncodeSpec(AdaptiveTour{Circular: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fallback == nil || spec.Fallback.Kind != "indexed-guided-tour" || !spec.Fallback.Circular {
		t.Errorf("default fallback = %+v, want circular indexed-guided-tour", spec.Fallback)
	}
}

// TestDecodeSpecValidation: every malformed spec must be rejected whole
// (validate-then-mutate starts here — a bad spec never half-applies).
func TestDecodeSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec *StructureSpec
		want string
	}{
		{"nil spec", nil, "nil structure spec"},
		{"empty kind", &StructureSpec{}, "no kind"},
		{"unknown kind", &StructureSpec{Kind: "teleporter"}, "unknown structure kind"},
		{"circular index", &StructureSpec{Kind: "index", Circular: true}, "cannot be circular"},
		{"circular menu", &StructureSpec{Kind: "circular-menu"}, "cannot be circular"},
		{"plans on tour", &StructureSpec{Kind: "guided-tour",
			Plans: map[string]TourPlanSpec{"X": {}}}, "cannot carry plans"},
		{"fallback on index", &StructureSpec{Kind: "index",
			Fallback: &StructureSpec{Kind: "menu"}}, "cannot carry a fallback"},
		{"adaptive fallback adaptive", &StructureSpec{Kind: "adaptive-tour",
			Fallback: &StructureSpec{Kind: "adaptive-tour"}}, "cannot itself be adaptive"},
		{"adaptive bad fallback", &StructureSpec{Kind: "adaptive-tour",
			Fallback: &StructureSpec{Kind: "nope"}}, "unknown structure kind"},
		{"empty plan name", &StructureSpec{Kind: "adaptive-tour",
			Plans: map[string]TourPlanSpec{"": {}}}, "empty context name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("DecodeSpec = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestDecodeSpecCircularShorthand: the "circular-" kind prefix from the
// AccessByKind vocabulary decodes as Circular: true.
func TestDecodeSpecCircularShorthand(t *testing.T) {
	as, err := DecodeSpec(&StructureSpec{Kind: "circular-guided-tour"})
	if err != nil {
		t.Fatal(err)
	}
	gt, ok := as.(GuidedTour)
	if !ok || !gt.Circular {
		t.Errorf("DecodeSpec(circular-guided-tour) = %#v", as)
	}
	// The shorthand and the explicit flag encode identically.
	spec, err := EncodeSpec(gt)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "guided-tour" || !spec.Circular {
		t.Errorf("canonical spec = %+v", spec)
	}
}

// TestAccessTextGolden pins the artifact text for every structure shape
// — the satellite contract that E8 diffs and navctl model print the
// same declaration, down to the byte.
func TestAccessTextGolden(t *testing.T) {
	cases := []struct {
		as   AccessStructure
		want string
	}{
		{Index{}, "index"},
		{Menu{}, "menu"},
		{GuidedTour{}, "guided-tour"},
		{GuidedTour{Circular: true}, "circular-guided-tour"},
		{IndexedGuidedTour{}, "indexed-guided-tour"},
		{IndexedGuidedTour{Circular: true}, "circular-indexed-guided-tour"},
		{AdaptiveTour{}, "adaptive-tour(fallback=indexed-guided-tour)"},
		{&AdaptiveTour{Fallback: Menu{}}, "adaptive-tour(fallback=menu)"},
		{
			AdaptiveTour{
				Circular: true,
				Fallback: GuidedTour{Circular: true},
				Plans: map[string]TourPlan{
					"ByAuthor:picasso": {
						Order:     []string{"guernica", "avignon", "guitar"},
						Landmarks: []string{"guitar"},
						Dead:      []string{"avignon"},
					},
					"ByAuthor:dali": {Order: []string{"memory"}},
				},
			},
			"circular-adaptive-tour(fallback=circular-guided-tour" +
				" plans=[ByAuthor:dali{order=[memory]}" +
				" ByAuthor:picasso{order=[guernica avignon guitar]" +
				" landmarks=[guitar] dead=[avignon]}])",
		},
	}
	for _, tc := range cases {
		if got := AccessText(tc.as); got != tc.want {
			t.Errorf("AccessText = %q\nwant        %q", got, tc.want)
		}
	}
}

// TestSpecTextGolden pins the whole model artifact, access parameters
// included — the golden test for the SpecText extension.
func TestSpecTextGolden(t *testing.T) {
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	m.MustAddContext(&ContextDef{
		Name: "Tour", NodeClass: "PaintingNode", OrderBy: "year",
		Access: GuidedTour{Circular: true},
	})
	m.MustAddContext(&ContextDef{
		Name: "All", NodeClass: "PaintingNode",
		Access: &AdaptiveTour{
			Fallback: Index{},
			Plans:    map[string]TourPlan{"All": {Order: []string{"b", "a"}}},
		},
	})
	want := "# navigational model specification\n" +
		"node PaintingNode over Painting title=title\n" +
		"context Tour of PaintingNode groupby= orderby=year access=circular-guided-tour\n" +
		"context All of PaintingNode groupby= orderby= access=adaptive-tour(fallback=index plans=[All{order=[b a]}])\n"
	if got := SpecText(m); got != want {
		t.Errorf("SpecText:\n%s\nwant:\n%s", got, want)
	}
}
