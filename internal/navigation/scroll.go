package navigation

import "fmt"

// LinkPurpose classifies a link per the paper's §2: navigational links
// move the user between nodes of the information space; scrolling links
// (the "more results" links at the bottom of a search page) only page
// through a single logical resource and are not navigation.
type LinkPurpose int

// Link purposes.
const (
	Navigational LinkPurpose = iota + 1
	Scrolling
)

// String names the purpose.
func (p LinkPurpose) String() string {
	switch p {
	case Navigational:
		return "navigational"
	case Scrolling:
		return "scrolling"
	default:
		return "unknown"
	}
}

// Classify maps an edge kind to its purpose: member/up/next/prev edges
// traverse the information space, page edges only scroll within one
// resource.
func Classify(kind EdgeKind) LinkPurpose {
	if kind == EdgePage {
		return Scrolling
	}
	return Navigational
}

// ResultPage is one page of a paginated result set — the Google/AltaVista
// result list of the paper's example.
type ResultPage struct {
	// Number is the 1-based page number.
	Number int
	// Items are the result identifiers shown on this page.
	Items []string
}

// ID returns the page's pseudo-node identity.
func (p ResultPage) ID() string { return fmt.Sprintf("_page%d", p.Number) }

// Paginate splits items into pages of the given size and returns the pages
// together with the scrolling edges between them (each page links to every
// other page, like the numbered links under a search result).
func Paginate(items []string, pageSize int) ([]ResultPage, []Edge, error) {
	if pageSize <= 0 {
		return nil, nil, fmt.Errorf("navigation: page size must be positive, got %d", pageSize)
	}
	var pages []ResultPage
	for start := 0; start < len(items); start += pageSize {
		end := start + pageSize
		if end > len(items) {
			end = len(items)
		}
		pages = append(pages, ResultPage{Number: len(pages) + 1, Items: items[start:end]})
	}
	var edges []Edge
	for i := range pages {
		for j := range pages {
			if i == j {
				continue
			}
			edges = append(edges, Edge{
				From:  pages[i].ID(),
				To:    pages[j].ID(),
				Kind:  EdgePage,
				Label: fmt.Sprintf("%d", pages[j].Number),
			})
		}
	}
	return pages, edges, nil
}

// PurposeReport counts a context's (or any edge list's) links by purpose;
// the E13 experiment prints it for a mixed corpus.
type PurposeReport struct {
	Navigational int
	Scrolling    int
}

// ClassifyAll tallies edges by purpose.
func ClassifyAll(edges []Edge) PurposeReport {
	var r PurposeReport
	for _, e := range edges {
		switch Classify(e.Kind) {
		case Scrolling:
			r.Scrolling++
		default:
			r.Navigational++
		}
	}
	return r
}
