package navigation

import (
	"strings"
	"testing"
)

func TestCompileWhere(t *testing.T) {
	good := map[string]predicate{
		"year >= 1910":                {attr: "year", op: ">=", value: "1910"},
		"year<1910":                   {attr: "year", op: "<", value: "1910"},
		"technique = 'Oil on canvas'": {attr: "technique", op: "=", value: "Oil on canvas"},
		"title != ''":                 {attr: "title", op: "!=", value: ""},
		"name = unquoted":             {attr: "name", op: "=", value: "unquoted"},
	}
	for src, want := range good {
		p, err := compileWhere(src)
		if err != nil {
			t.Errorf("compileWhere(%q): %v", src, err)
			continue
		}
		if p.attr != want.attr || p.op != want.op || p.value != want.value {
			t.Errorf("compileWhere(%q) = %+v, want %+v", src, *p, want)
		}
	}
	if p, err := compileWhere("   "); err != nil || p != nil {
		t.Error("blank filter should compile to nil")
	}
	bad := []string{
		"no operator here",
		"= 1910",
		"year = 'unterminated",
		"a b = c",
	}
	for _, src := range bad {
		if _, err := compileWhere(src); err == nil {
			t.Errorf("compileWhere(%q) accepted", src)
		}
	}
}

func TestPredicateMatching(t *testing.T) {
	st := fixtureStore(t)
	nc := &NodeClass{Name: "P", Class: "Painting", TitleAttr: "title"}
	guitar := &Node{Class: nc, Instance: st.Get("guitar")}   // year 1913
	avignon := &Node{Class: nc, Instance: st.Get("avignon")} // year 1907
	tests := []struct {
		where string
		node  *Node
		want  bool
	}{
		{"year >= 1910", guitar, true},
		{"year >= 1910", avignon, false},
		{"year < 1910", avignon, true},
		{"year != 1913", guitar, false},
		{"year = 1913", guitar, true},
		{"year <= 1913", guitar, true},
		{"year > 1913", guitar, false},
		{"title = 'Guitar'", guitar, true},
		{"title != 'Guitar'", avignon, true},
		{"title > 'G'", guitar, true}, // lexicographic
		{"title < 'A'", guitar, false},
		{"title >= 'Guitar'", guitar, true},
		{"title <= 'Guitar'", guitar, true},
		{"missing = ''", guitar, true}, // unset attr reads as empty
	}
	for _, tt := range tests {
		p, err := compileWhere(tt.where)
		if err != nil {
			t.Fatalf("compileWhere(%q): %v", tt.where, err)
		}
		if got := p.matches(tt.node); got != tt.want {
			t.Errorf("%q on %s = %v, want %v", tt.where, tt.node.ID(), got, tt.want)
		}
	}
}

// TestFilteredContext reproduces an OOHDM context class: modern paintings
// by Picasso (year >= 1910), which excludes Les Demoiselles d'Avignon.
func TestFilteredContext(t *testing.T) {
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	m.MustAddContext(&ContextDef{
		Name: "ModernByAuthor", NodeClass: "PaintingNode",
		GroupBy: "paints", OrderBy: "year",
		Where:  "year >= 1910",
		Access: IndexedGuidedTour{},
	})
	rm, err := m.Resolve(fixtureStore(t))
	if err != nil {
		t.Fatal(err)
	}
	picasso := rm.Context("ModernByAuthor:picasso")
	if picasso == nil {
		t.Fatal("filtered context missing")
	}
	if len(picasso.Members) != 2 {
		t.Fatalf("members = %v, want guitar+guernica", picasso.Members)
	}
	if picasso.Members[0].ID() != "guitar" || picasso.Members[1].ID() != "guernica" {
		t.Errorf("member order = %v", picasso.Members)
	}
	// With the 1907 painting filtered out, guitar becomes the tour head.
	if picasso.Prev("guitar") != nil {
		t.Error("guitar should be first in the filtered tour")
	}
}

func TestFilterEmptiesContext(t *testing.T) {
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	m.MustAddContext(&ContextDef{
		Name: "Ancient", NodeClass: "PaintingNode",
		GroupBy: "paints", Where: "year < 1800", Access: Index{},
	})
	rm, err := m.Resolve(fixtureStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.ContextsOf("Ancient")) != 0 {
		t.Error("fully filtered contexts should not materialize")
	}
	// Ungrouped filtered context materializes (possibly empty).
	m2 := NewModel()
	m2.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	m2.MustAddContext(&ContextDef{
		Name: "All1913", NodeClass: "PaintingNode", Where: "year = 1913", Access: Index{},
	})
	rm2, err := m2.Resolve(fixtureStore(t))
	if err != nil {
		t.Fatal(err)
	}
	all := rm2.Context("All1913")
	if all == nil || len(all.Members) != 1 || all.Members[0].ID() != "guitar" {
		t.Errorf("All1913 = %v", all)
	}
}

func TestBadFilterFailsResolve(t *testing.T) {
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting"})
	m.MustAddContext(&ContextDef{
		Name: "Bad", NodeClass: "PaintingNode", Where: "no operator", Access: Index{},
	})
	if _, err := m.Resolve(fixtureStore(t)); err == nil {
		t.Error("bad filter accepted at resolve time")
	}
}

func TestSpecTextIncludesWhereAndShow(t *testing.T) {
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "P", Class: "Painting", TitleAttr: "title"})
	m.MustAddContext(&ContextDef{
		Name: "Modern", NodeClass: "P", Where: "year >= 1910", Show: "new", Access: Index{},
	})
	spec := SpecText(m)
	if !strings.Contains(spec, `where="year >= 1910"`) || !strings.Contains(spec, "show=new") {
		t.Errorf("spec missing filter/show:\n%s", spec)
	}
}
