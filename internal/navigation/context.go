package navigation

import (
	"fmt"
	"sync"

	"repro/internal/conceptual"
)

// ContextDef declares a navigational context (or a family of them):
// which nodes belong to it, how they are grouped and ordered, and which
// access structure traverses them. This is OOHDM's navigational-context
// primitive as the paper describes it — "a set of nodes, links, context
// classes and other navigational contexts ... traversed following a
// particular order".
type ContextDef struct {
	// Name identifies the context family, e.g. "ByAuthor".
	Name string
	// NodeClass names the member node class.
	NodeClass string
	// GroupBy, when set, names a relationship (or declared inverse) on
	// whose sources the family is partitioned: "paints" yields one
	// context per painter holding that painter's paintings. Empty
	// yields a single context over all instances of the class.
	GroupBy string
	// OrderBy names the member attribute that orders the context;
	// empty keeps store order.
	OrderBy string
	// Access is the traversal structure. Swapping it re-weaves every
	// page of the context — the paper's motivating change.
	Access AccessStructure
	// Show is the XLink behaviour for the context's links: "replace"
	// (default), "new" (open in a new presentation context) or "embed"
	// (inline the target where the link stands). The woven pages and
	// the generated linkbase both honour it.
	Show string
	// Where, when set, restricts membership to nodes satisfying one
	// comparison over an attribute (OOHDM's context classes), e.g.
	// "year >= 1910" or "technique = 'Oil on canvas'".
	Where string
}

// ShowOrDefault returns the declared behaviour, defaulting to "replace".
func (c *ContextDef) ShowOrDefault() string {
	if c.Show == "" {
		return "replace"
	}
	return c.Show
}

// ResolvedContext is one concrete navigational context: an ordered member
// list with its access structure, ready to answer traversal queries.
// Once resolved it is immutable, and all query methods are safe for
// concurrent use — request-time weaving hits the same context from many
// goroutines at once.
type ResolvedContext struct {
	// Def is the generating definition.
	Def *ContextDef
	// Name is the instance name: "ByAuthor:picasso" for grouped
	// families, or just the family name when ungrouped.
	Name string
	// Group is the grouping instance (the painter), nil when ungrouped.
	Group *conceptual.Instance
	// Members are the context's nodes in traversal order.
	Members []*Node

	edgesOnce sync.Once
	edges     []Edge
	indexOnce sync.Once
	index     map[string]int
}

// EntryNode returns the node a link into the context lands on: the hub
// when the access structure has one, otherwise the first member. Every
// renderer of a context-entry link (landmark bars, the site map, the
// cache's model signature) must agree on this rule.
func (rc *ResolvedContext) EntryNode() string {
	if !rc.Def.Access.HasHub() && len(rc.Members) > 0 {
		return rc.Members[0].ID()
	}
	return HubID
}

// Edges returns the context's navigation edges (computed once), stamped
// with the context's declared XLink show behaviour. A context-aware
// access structure (an adaptive tour with per-context plans) is asked
// for this instance's edges by name; every other structure sees only
// the ordered members.
func (rc *ResolvedContext) Edges() []Edge {
	rc.edgesOnce.Do(func() {
		var edges []Edge
		if ca, ok := rc.Def.Access.(ContextAwareAccess); ok {
			edges = ca.EdgesFor(rc.Name, rc.Members)
		} else {
			edges = rc.Def.Access.Edges(rc.Members)
		}
		show := rc.Def.ShowOrDefault()
		for i := range edges {
			edges[i].Show = show
		}
		rc.edges = edges
	})
	return rc.edges
}

// Position returns the 0-based position of the node in the context, or -1.
func (rc *ResolvedContext) Position(nodeID string) int {
	rc.indexOnce.Do(func() {
		rc.index = make(map[string]int, len(rc.Members))
		for i, m := range rc.Members {
			rc.index[m.ID()] = i
		}
	})
	if i, ok := rc.index[nodeID]; ok {
		return i
	}
	return -1
}

// Member returns the member node with the given ID, or nil.
func (rc *ResolvedContext) Member(nodeID string) *Node {
	if i := rc.Position(nodeID); i >= 0 {
		return rc.Members[i]
	}
	return nil
}

// OutEdges returns the edges leaving the given node (or HubID) in this
// context.
func (rc *ResolvedContext) OutEdges(fromID string) []Edge {
	var out []Edge
	for _, e := range rc.Edges() {
		if e.From == fromID {
			out = append(out, e)
		}
	}
	return out
}

// Next returns the member after nodeID in context order, or nil at the
// end (callers wanting ring semantics use a circular access structure,
// whose edges wrap; Next follows the edges, not raw order).
func (rc *ResolvedContext) Next(nodeID string) *Node {
	for _, e := range rc.OutEdges(nodeID) {
		if e.Kind == EdgeNext {
			return rc.Member(e.To)
		}
	}
	return nil
}

// Prev returns the member before nodeID per the context's edges, or nil.
func (rc *ResolvedContext) Prev(nodeID string) *Node {
	for _, e := range rc.OutEdges(nodeID) {
		if e.Kind == EdgePrev {
			return rc.Member(e.To)
		}
	}
	return nil
}

// String renders the context for diagnostics.
func (rc *ResolvedContext) String() string {
	return fmt.Sprintf("%s(%d members, %s)", rc.Name, len(rc.Members), rc.Def.Access.Kind())
}

// ResolvedModel holds every resolved context of a model over one store.
type ResolvedModel struct {
	// Model is the generating navigational model.
	Model *Model
	// Store is the conceptual instance store.
	Store *conceptual.Store
	// Contexts are the resolved contexts in definition order (and group
	// insertion order within a family).
	Contexts []*ResolvedContext
	// Landmarks are the resolved landmark contexts, reachable from
	// every page.
	Landmarks []*ResolvedContext

	byName map[string]*ResolvedContext
}

// Context returns the named resolved context, or nil.
func (rm *ResolvedModel) Context(name string) *ResolvedContext { return rm.byName[name] }

// ContextsOf returns the resolved contexts of one family.
func (rm *ResolvedModel) ContextsOf(family string) []*ResolvedContext {
	var out []*ResolvedContext
	for _, rc := range rm.Contexts {
		if rc.Def.Name == family {
			out = append(out, rc)
		}
	}
	return out
}

// ContextsContaining returns every resolved context that includes the node.
func (rm *ResolvedModel) ContextsContaining(nodeID string) []*ResolvedContext {
	var out []*ResolvedContext
	for _, rc := range rm.Contexts {
		if rc.Position(nodeID) >= 0 {
			out = append(out, rc)
		}
	}
	return out
}

// Resolve materializes every context family of the model against a store.
// Each resolved context carries a snapshot of its definition, not the
// live one: a later mutation of the model (SetAccessStructure swapping
// def.Access) must not reach into contexts that were resolved before it
// — sessions, renderers and the analytics deriver read their resolved
// model lock-free on the strength of that immutability.
func (m *Model) Resolve(store *conceptual.Store) (*ResolvedModel, error) {
	rm := &ResolvedModel{Model: m, Store: store, byName: map[string]*ResolvedContext{}}
	for _, live := range m.contexts {
		def := new(ContextDef)
		*def = *live
		nc := m.nodeClasses[def.NodeClass]
		where, err := compileWhere(def.Where)
		if err != nil {
			return nil, fmt.Errorf("navigation: context %q: %w", def.Name, err)
		}
		if def.GroupBy == "" {
			members := make([]*Node, 0)
			for _, inst := range store.InstancesOf(nc.Class) {
				members = append(members, nodeOf(nc, inst))
			}
			members = filterNodes(members, where)
			orderNodes(members, def.OrderBy)
			rc := &ResolvedContext{Def: def, Name: def.Name, Members: members}
			rm.Contexts = append(rm.Contexts, rc)
			rm.byName[rc.Name] = rc
			continue
		}
		rel := store.Schema().Relationship(def.GroupBy)
		if rel == nil {
			return nil, fmt.Errorf("navigation: context %q: unknown relationship %q", def.Name, def.GroupBy)
		}
		if rel.Target != nc.Class {
			return nil, fmt.Errorf("navigation: context %q: relationship %q targets %q, not member class %q",
				def.Name, def.GroupBy, rel.Target, nc.Class)
		}
		for _, group := range store.InstancesOf(rel.Source) {
			related := store.Related(group.ID, rel.Name)
			members := make([]*Node, 0, len(related))
			for _, inst := range related {
				members = append(members, nodeOf(nc, inst))
			}
			members = filterNodes(members, where)
			if len(members) == 0 {
				continue // empty contexts are not materialized
			}
			orderNodes(members, def.OrderBy)
			rc := &ResolvedContext{
				Def:     def,
				Name:    def.Name + ":" + group.ID,
				Group:   group,
				Members: members,
			}
			rm.Contexts = append(rm.Contexts, rc)
			rm.byName[rc.Name] = rc
		}
	}
	for _, name := range m.landmarks {
		rc := rm.byName[name]
		if rc == nil {
			return nil, fmt.Errorf("navigation: landmark %q did not resolve", name)
		}
		rm.Landmarks = append(rm.Landmarks, rc)
	}
	return rm, nil
}
