package navigation

import (
	"testing"
)

// limitSession builds a session over one circular tour so it can step
// forever.
func limitSession(t *testing.T) *Session {
	t.Helper()
	store := fixtureStore(t)
	model := fixtureModel(t, GuidedTour{Circular: true})
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(rm)
	if err := s.EnterContext("ByAuthor:picasso", ""); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrailLimitCapsHistory(t *testing.T) {
	s := limitSession(t)
	s.SetTrailLimit(4)
	for i := 0; i < 40; i++ {
		if err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	h := s.History()
	if len(h) != 4 {
		t.Fatalf("history = %d visits, want 4", len(h))
	}
	// The cap keeps the most-recent tail: the last visit is the
	// current position.
	_, node := s.Location()
	if h[len(h)-1].NodeID != node {
		t.Errorf("last visit = %q, current node = %q", h[len(h)-1].NodeID, node)
	}
	if st := s.State(); len(st.History) != 4 {
		t.Errorf("state history = %d visits, want 4", len(st.History))
	}
	// The internal buffer carries at most limit/4 slack.
	s.mu.Lock()
	buffered := len(s.history)
	s.mu.Unlock()
	if buffered > 5 {
		t.Errorf("buffered trail = %d visits, want <= limit+limit/4 = 5", buffered)
	}
}

func TestTrailLimitZeroKeepsEverything(t *testing.T) {
	s := limitSession(t)
	for i := 0; i < 40; i++ {
		if err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if h := s.History(); len(h) != 41 { // entry + 40 steps
		t.Errorf("unlimited history = %d visits, want 41", len(h))
	}
}

// TestTrailLimitTrimsOnSet: applying a cap to an existing (or
// restored) trail trims it immediately.
func TestTrailLimitTrimsOnSet(t *testing.T) {
	s := limitSession(t)
	for i := 0; i < 10; i++ {
		if err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.State()
	restored, err := RestoreSession(s.Model(), st)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetTrailLimit(3)
	h := restored.History()
	if len(h) != 3 {
		t.Fatalf("restored capped history = %d visits, want 3", len(h))
	}
	want := st.History[len(st.History)-3:]
	for i, v := range h {
		if v != want[i] {
			t.Errorf("visit %d = %+v, want %+v", i, v, want[i])
		}
	}
	// Navigation still works from the restored position.
	if err := restored.Next(); err != nil {
		t.Fatal(err)
	}
	if h := restored.History(); len(h) != 3 {
		t.Errorf("history after step = %d visits, want 3 (still capped)", len(h))
	}
}

// TestRebaseFollowsNewModel: a session rebased onto a re-resolved
// model traverses the new structure's edges from its old position,
// history intact.
func TestRebaseFollowsNewModel(t *testing.T) {
	store := fixtureStore(t)
	model := fixtureModel(t, GuidedTour{})
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(rm)
	if err := s.EnterContext("ByAuthor:picasso", "guitar"); err != nil { // year order: avignon guitar guernica
		t.Fatal(err)
	}

	// The model flips to a reversed adaptive tour and re-resolves.
	for _, def := range model.Contexts() {
		def.Access = AdaptiveTour{
			Fallback: GuidedTour{},
			Plans: map[string]TourPlan{
				"ByAuthor:picasso": {Order: []string{"guernica", "guitar", "avignon"}},
			},
		}
	}
	rm2, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Rebase(rm2); err != nil {
		t.Fatal(err)
	}
	if s.Model() != rm2 {
		t.Fatal("session not rebased")
	}
	if err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, node := s.Location(); node != "avignon" {
		t.Errorf("Next after rebase = %q, want avignon (the derived order)", node)
	}
	if h := s.History(); len(h) != 2 {
		t.Errorf("history = %d visits, want 2 (kept across rebase)", len(h))
	}
	// Rebasing onto the same model is a no-op.
	if err := s.Rebase(rm2); err != nil {
		t.Fatal(err)
	}
}

// TestRebaseFailsWhenPositionGone: a vanished context or node leaves
// the session untouched and errors.
func TestRebaseFailsWhenPositionGone(t *testing.T) {
	store := fixtureStore(t)
	model := fixtureModel(t, Index{})
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(rm)
	if err := s.EnterContext("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}

	// A narrower model without the picasso grouping.
	narrow := NewModel()
	narrow.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	narrow.MustAddContext(&ContextDef{Name: "All", NodeClass: "PaintingNode", Access: Index{}})
	rm2, err := narrow.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebase(rm2); err == nil {
		t.Fatal("rebase onto a model without the context succeeded")
	}
	if s.Model() != rm {
		t.Error("failed rebase moved the session's model")
	}
	// The session still answers traversals against its old model.
	if err := s.Up(); err != nil {
		t.Errorf("session unusable after failed rebase: %v", err)
	}
}
