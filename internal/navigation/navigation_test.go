package navigation

import (
	"strings"
	"testing"

	"repro/internal/conceptual"
)

// fixtureStore builds the paper's museum: Picasso's three paintings plus a
// Dali painting, grouped by painter and by movement.
func fixtureStore(t *testing.T) *conceptual.Store {
	t.Helper()
	s := conceptual.NewSchema()
	s.MustAddClass(conceptual.NewClass("Painter",
		conceptual.AttrDef{Name: "name", Type: conceptual.StringAttr, Required: true},
	))
	s.MustAddClass(conceptual.NewClass("Painting",
		conceptual.AttrDef{Name: "title", Type: conceptual.StringAttr, Required: true},
		conceptual.AttrDef{Name: "year", Type: conceptual.IntAttr},
	))
	s.MustAddClass(conceptual.NewClass("Movement",
		conceptual.AttrDef{Name: "name", Type: conceptual.StringAttr, Required: true},
	))
	s.MustAddRelationship(&conceptual.Relationship{
		Name: "paints", Source: "Painter", Target: "Painting", Card: conceptual.OneToMany,
	})
	s.MustAddRelationship(&conceptual.Relationship{
		Name: "includes", Source: "Movement", Target: "Painting", Card: conceptual.ManyToMany,
	})
	st := conceptual.NewStore(s)
	st.MustAdd("Painter", "picasso", map[string]string{"name": "Pablo Picasso"})
	st.MustAdd("Painter", "dali", map[string]string{"name": "Salvador Dali"})
	st.MustAdd("Painting", "guitar", map[string]string{"title": "Guitar", "year": "1913"})
	st.MustAdd("Painting", "guernica", map[string]string{"title": "Guernica", "year": "1937"})
	st.MustAdd("Painting", "avignon", map[string]string{"title": "Les Demoiselles d'Avignon", "year": "1907"})
	st.MustAdd("Painting", "memory", map[string]string{"title": "The Persistence of Memory", "year": "1931"})
	st.MustAdd("Movement", "cubism", map[string]string{"name": "Cubism"})
	st.MustAdd("Movement", "surrealism", map[string]string{"name": "Surrealism"})
	st.MustLink("paints", "picasso", "guitar")
	st.MustLink("paints", "picasso", "guernica")
	st.MustLink("paints", "picasso", "avignon")
	st.MustLink("paints", "dali", "memory")
	st.MustLink("includes", "cubism", "guitar")
	st.MustLink("includes", "cubism", "avignon")
	st.MustLink("includes", "surrealism", "memory")
	st.MustLink("includes", "surrealism", "guernica") // for the §2 crossing example
	return st
}

// fixtureModel defines the two context families of the paper's example.
func fixtureModel(t *testing.T, access AccessStructure) *Model {
	t.Helper()
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	m.MustAddNodeClass(&NodeClass{Name: "PainterNode", Class: "Painter", TitleAttr: "name"})
	m.MustAddLink(&NavLink{Name: "works", Rel: "paints", From: "PainterNode", To: "PaintingNode"})
	m.MustAddContext(&ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode", GroupBy: "paints", OrderBy: "year", Access: access,
	})
	m.MustAddContext(&ContextDef{
		Name: "ByMovement", NodeClass: "PaintingNode", GroupBy: "includes", OrderBy: "title", Access: access,
	})
	return m
}

func resolved(t *testing.T, access AccessStructure) *ResolvedModel {
	t.Helper()
	rm, err := fixtureModel(t, access).Resolve(fixtureStore(t))
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestNodeView(t *testing.T) {
	st := fixtureStore(t)
	nc := &NodeClass{Name: "P", Class: "Painting", TitleAttr: "title", AttrNames: []string{"title"}}
	n := &Node{Class: nc, Instance: st.Get("guitar")}
	if n.ID() != "guitar" || n.Title() != "Guitar" {
		t.Errorf("node = %s / %s", n.ID(), n.Title())
	}
	if n.Attr("title") != "Guitar" {
		t.Errorf("projected attr missing")
	}
	if n.Attr("year") != "" {
		t.Error("attribute outside projection leaked through")
	}
	if got := n.AttrNames(); len(got) != 1 || got[0] != "title" {
		t.Errorf("AttrNames = %v", got)
	}
	// Unprojected node exposes all attributes; title falls back to ID.
	plain := &Node{Class: &NodeClass{Name: "Q", Class: "Painting"}, Instance: st.Get("guitar")}
	if plain.Attr("year") != "1913" {
		t.Error("unprojected attr unavailable")
	}
	if plain.Title() != "guitar" {
		t.Errorf("fallback title = %q", plain.Title())
	}
	if !strings.Contains(n.String(), "guitar") {
		t.Errorf("String = %q", n.String())
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	if err := m.AddNodeClass(&NodeClass{}); err == nil {
		t.Error("empty node class accepted")
	}
	m.MustAddNodeClass(&NodeClass{Name: "A", Class: "Painting"})
	if err := m.AddNodeClass(&NodeClass{Name: "A", Class: "Painting"}); err == nil {
		t.Error("duplicate node class accepted")
	}
	if err := m.AddLink(&NavLink{Name: "l", From: "A", To: "Ghost"}); err == nil {
		t.Error("link to unknown node class accepted")
	}
	if err := m.AddLink(&NavLink{Name: "l", From: "Ghost", To: "A"}); err == nil {
		t.Error("link from unknown node class accepted")
	}
	if err := m.AddLink(&NavLink{Name: "", From: "A", To: "A"}); err == nil {
		t.Error("unnamed link accepted")
	}
	if err := m.AddContext(&ContextDef{Name: "c", NodeClass: "Ghost", Access: Index{}}); err == nil {
		t.Error("context over unknown node class accepted")
	}
	if err := m.AddContext(&ContextDef{Name: "c", NodeClass: "A"}); err == nil {
		t.Error("context without access structure accepted")
	}
	m.MustAddContext(&ContextDef{Name: "c", NodeClass: "A", Access: Index{}})
	if err := m.AddContext(&ContextDef{Name: "c", NodeClass: "A", Access: Index{}}); err == nil {
		t.Error("duplicate context accepted")
	}
	if got := len(m.NodeClasses()); got != 1 {
		t.Errorf("NodeClasses = %d", got)
	}
	if m.NodeClass("A") == nil {
		t.Error("NodeClass lookup failed")
	}
}

func TestIndexEdges(t *testing.T) {
	rm := resolved(t, Index{})
	rc := rm.Context("ByAuthor:picasso")
	if rc == nil {
		t.Fatal("ByAuthor:picasso missing")
	}
	// Ordered by year: avignon 1907, guitar 1913, guernica 1937.
	if rc.Members[0].ID() != "avignon" || rc.Members[1].ID() != "guitar" || rc.Members[2].ID() != "guernica" {
		t.Fatalf("member order = %v", rc.Members)
	}
	edges := rc.Edges()
	if len(edges) != 6 { // 3 member + 3 up
		t.Fatalf("index edges = %d, want 6", len(edges))
	}
	var members, ups int
	for _, e := range edges {
		switch e.Kind {
		case EdgeMember:
			members++
			if e.From != HubID {
				t.Errorf("member edge from %q", e.From)
			}
		case EdgeUp:
			ups++
			if e.To != HubID {
				t.Errorf("up edge to %q", e.To)
			}
		default:
			t.Errorf("unexpected edge kind %s in index", e.Kind)
		}
	}
	if members != 3 || ups != 3 {
		t.Errorf("members=%d ups=%d", members, ups)
	}
	// No Next edges in a pure index — the paper's Figure 3 page has no
	// Next link.
	if rc.Next("guitar") != nil {
		t.Error("index structure should not offer Next")
	}
}

func TestIndexedGuidedTourEdges(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})
	rc := rm.Context("ByAuthor:picasso")
	edges := rc.Edges()
	// 3 member + 3 up + 2 next + 2 prev = 10
	if len(edges) != 10 {
		t.Fatalf("IGT edges = %d, want 10", len(edges))
	}
	// The Figure 4 scenario: Guitar (middle of the year ordering) now has
	// Next and Previous.
	if n := rc.Next("guitar"); n == nil || n.ID() != "guernica" {
		t.Errorf("Next(guitar) = %v, want guernica", n)
	}
	if p := rc.Prev("guitar"); p == nil || p.ID() != "avignon" {
		t.Errorf("Prev(guitar) = %v, want avignon", p)
	}
	// Ends of the tour are open (non-circular).
	if rc.Next("guernica") != nil {
		t.Error("Next at end of open tour should be nil")
	}
	if rc.Prev("avignon") != nil {
		t.Error("Prev at start of open tour should be nil")
	}
}

func TestCircularTour(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{Circular: true})
	rc := rm.Context("ByAuthor:picasso")
	if n := rc.Next("guernica"); n == nil || n.ID() != "avignon" {
		t.Errorf("circular Next at end = %v, want wrap to avignon", n)
	}
	if p := rc.Prev("avignon"); p == nil || p.ID() != "guernica" {
		t.Errorf("circular Prev at start = %v, want wrap to guernica", p)
	}
}

func TestGuidedTourNoHub(t *testing.T) {
	rm := resolved(t, GuidedTour{})
	rc := rm.Context("ByAuthor:picasso")
	for _, e := range rc.Edges() {
		if e.Kind == EdgeMember || e.Kind == EdgeUp {
			t.Errorf("guided tour has hub edge %s", e)
		}
	}
	if (GuidedTour{}).Kind() != "guided-tour" || (GuidedTour{}).HasHub() {
		t.Error("guided tour metadata wrong")
	}
}

func TestMenuEdges(t *testing.T) {
	rm := resolved(t, Menu{})
	rc := rm.Context("ByAuthor:picasso")
	edges := rc.Edges()
	if len(edges) != 3 {
		t.Fatalf("menu edges = %d, want 3 (no up links)", len(edges))
	}
	for _, e := range edges {
		if e.Kind != EdgeMember {
			t.Errorf("menu edge kind = %s", e.Kind)
		}
	}
}

func TestAccessByKind(t *testing.T) {
	for _, kind := range []string{
		"index", "guided-tour", "circular-guided-tour",
		"indexed-guided-tour", "circular-indexed-guided-tour", "menu",
	} {
		as, err := AccessByKind(kind)
		if err != nil {
			t.Errorf("AccessByKind(%q): %v", kind, err)
			continue
		}
		want := strings.TrimPrefix(kind, "circular-")
		if as.Kind() != want {
			t.Errorf("AccessByKind(%q).Kind() = %q, want %q", kind, as.Kind(), want)
		}
	}
	if _, err := AccessByKind("teleport"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGroupedResolution(t *testing.T) {
	rm := resolved(t, Index{})
	byAuthor := rm.ContextsOf("ByAuthor")
	if len(byAuthor) != 2 { // picasso and dali
		t.Fatalf("ByAuthor contexts = %d, want 2", len(byAuthor))
	}
	byMovement := rm.ContextsOf("ByMovement")
	if len(byMovement) != 2 { // cubism and surrealism
		t.Fatalf("ByMovement contexts = %d, want 2", len(byMovement))
	}
	dali := rm.Context("ByAuthor:dali")
	if dali == nil || len(dali.Members) != 1 || dali.Members[0].ID() != "memory" {
		t.Errorf("ByAuthor:dali = %v", dali)
	}
	if dali.Group == nil || dali.Group.ID != "dali" {
		t.Errorf("group instance = %v", dali.Group)
	}
	// ContextsContaining: guitar appears in ByAuthor:picasso and
	// ByMovement:cubism.
	containing := rm.ContextsContaining("guitar")
	if len(containing) != 2 {
		t.Errorf("contexts containing guitar = %d, want 2", len(containing))
	}
	if rc := rm.Context("nothing"); rc != nil {
		t.Error("unknown context lookup should be nil")
	}
}

func TestUngroupedContext(t *testing.T) {
	m := fixtureModel(t, Index{})
	m.MustAddContext(&ContextDef{Name: "AllPaintings", NodeClass: "PaintingNode", OrderBy: "title", Access: Index{}})
	rm, err := m.Resolve(fixtureStore(t))
	if err != nil {
		t.Fatal(err)
	}
	all := rm.Context("AllPaintings")
	if all == nil || len(all.Members) != 4 {
		t.Fatalf("AllPaintings = %v", all)
	}
	// Ordered by title: Guernica, Guitar, Les Demoiselles..., The Persistence...
	if all.Members[0].ID() != "guernica" || all.Members[1].ID() != "guitar" {
		t.Errorf("title order = %v, %v", all.Members[0], all.Members[1])
	}
	if all.Group != nil {
		t.Error("ungrouped context has group instance")
	}
}

func TestResolveErrors(t *testing.T) {
	st := fixtureStore(t)
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "P", Class: "Painting"})
	m.MustAddContext(&ContextDef{Name: "bad", NodeClass: "P", GroupBy: "ghost", Access: Index{}})
	if _, err := m.Resolve(st); err == nil {
		t.Error("unknown GroupBy relationship accepted")
	}
	m2 := NewModel()
	m2.MustAddNodeClass(&NodeClass{Name: "M", Class: "Movement"})
	// paints targets Painting, not Movement.
	m2.MustAddContext(&ContextDef{Name: "bad2", NodeClass: "M", GroupBy: "paints", Access: Index{}})
	if _, err := m2.Resolve(st); err == nil {
		t.Error("GroupBy relationship with wrong target class accepted")
	}
}

func TestContextPositionAndMember(t *testing.T) {
	rm := resolved(t, Index{})
	rc := rm.Context("ByAuthor:picasso")
	if rc.Position("guitar") != 1 {
		t.Errorf("Position(guitar) = %d", rc.Position("guitar"))
	}
	if rc.Position("memory") != -1 {
		t.Error("non-member should be -1")
	}
	if rc.Member("guitar") == nil || rc.Member("ghost") != nil {
		t.Error("Member lookup wrong")
	}
	if !strings.Contains(rc.String(), "ByAuthor:picasso") {
		t.Errorf("String = %q", rc.String())
	}
}

// TestContextDependentNext reproduces the paper's §2 museum scenario: the
// same painting, reached through different contexts, answers Next
// differently.
func TestContextDependentNext(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})

	// Guernica via the author context (year order): next is nothing
	// (it is Picasso's latest), prev is Guitar.
	author := rm.Context("ByAuthor:picasso")
	if p := author.Prev("guernica"); p == nil || p.ID() != "guitar" {
		t.Errorf("ByAuthor Prev(guernica) = %v, want guitar", p)
	}

	// Guernica via the movement context (title order in surrealism:
	// Guernica, The Persistence of Memory): next is memory.
	movement := rm.Context("ByMovement:surrealism")
	if n := movement.Next("guernica"); n == nil || n.ID() != "memory" {
		t.Errorf("ByMovement Next(guernica) = %v, want memory", n)
	}
	// Same node, different contexts, different answers.
	if author.Next("guernica") != nil {
		t.Error("ByAuthor Next(guernica) should be nil (end of tour)")
	}
}

func TestSessionTraversal(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})
	s := NewSession(rm)
	if s.Model() != rm {
		t.Error("Model accessor wrong")
	}
	// Enter at the hub, select Guitar, walk the tour.
	if err := s.EnterContext("ByAuthor:picasso", ""); err != nil {
		t.Fatal(err)
	}
	if !s.AtHub() || s.Here() != nil {
		t.Error("session should start at hub")
	}
	if err := s.Select("guitar"); err != nil {
		t.Fatal(err)
	}
	if s.Here().ID() != "guitar" {
		t.Errorf("Here = %v", s.Here())
	}
	if err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.Here().ID() != "guernica" {
		t.Errorf("after Next: %v", s.Here())
	}
	if err := s.Prev(); err != nil {
		t.Fatal(err)
	}
	if err := s.Up(); err != nil {
		t.Fatal(err)
	}
	if !s.AtHub() {
		t.Error("Up should land on hub")
	}
	hist := s.History()
	want := []string{HubID, "guitar", "guernica", "guitar", HubID}
	if len(hist) != len(want) {
		t.Fatalf("history = %v", hist)
	}
	for i, v := range hist {
		if v.NodeID != want[i] {
			t.Errorf("history[%d] = %s, want %s", i, v.NodeID, want[i])
		}
	}
}

// TestSessionContextSwitch is the paper's example end to end: arrive at
// Guernica via the author, switch to the movement context, and Next now
// leads to a different painting.
func TestSessionContextSwitch(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})
	s := NewSession(rm)
	if err := s.EnterContext("ByAuthor:picasso", "guernica"); err != nil {
		t.Fatal(err)
	}
	if err := s.Next(); err == nil {
		t.Error("Next at end of author tour should fail")
	}
	if err := s.SwitchContext("ByMovement:surrealism"); err != nil {
		t.Fatal(err)
	}
	if err := s.Next(); err != nil {
		t.Fatalf("Next in movement context: %v", err)
	}
	if s.Here().ID() != "memory" {
		t.Errorf("after switch+Next: %v, want memory", s.Here())
	}
}

func TestSessionErrors(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})
	s := NewSession(rm)
	if err := s.Next(); err == nil {
		t.Error("Next before entering a context should fail")
	}
	if err := s.EnterContext("Ghost", ""); err == nil {
		t.Error("unknown context accepted")
	}
	if err := s.EnterContext("ByAuthor:picasso", "memory"); err == nil {
		t.Error("entering at non-member accepted")
	}
	if err := s.SwitchContext("ByMovement:cubism"); err == nil {
		t.Error("switch before being at a node accepted")
	}
	s2 := NewSession(rm)
	_ = s2.EnterContext("ByAuthor:picasso", "guitar")
	// guitar is not in surrealism.
	if err := s2.SwitchContext("ByMovement:surrealism"); err == nil {
		t.Error("switch to context not containing node accepted")
	}
	// Select only works from the hub.
	if err := s2.Select("guernica"); err == nil {
		t.Error("Select from a member node accepted")
	}
	// Entering a guided tour (no hub) with empty node lands on first member.
	gt := resolved(t, GuidedTour{})
	s3 := NewSession(gt)
	if err := s3.EnterContext("ByAuthor:picasso", ""); err != nil {
		t.Fatal(err)
	}
	if s3.Here() == nil || s3.Here().ID() != "avignon" {
		t.Errorf("tour entry = %v, want first member avignon", s3.Here())
	}
}

func TestPaginateAndClassify(t *testing.T) {
	items := []string{"r1", "r2", "r3", "r4", "r5"}
	pages, edges, err := Paginate(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("pages = %d, want 3", len(pages))
	}
	if pages[2].Number != 3 || len(pages[2].Items) != 1 {
		t.Errorf("last page = %+v", pages[2])
	}
	if len(edges) != 6 { // 3 pages fully connected: 3*2
		t.Errorf("page edges = %d, want 6", len(edges))
	}
	for _, e := range edges {
		if Classify(e.Kind) != Scrolling {
			t.Errorf("page edge classified as %s", Classify(e.Kind))
		}
	}
	if _, _, err := Paginate(items, 0); err == nil {
		t.Error("page size 0 accepted")
	}
	// Navigation edges classify as navigational.
	rm := resolved(t, IndexedGuidedTour{})
	report := ClassifyAll(rm.Context("ByAuthor:picasso").Edges())
	if report.Scrolling != 0 || report.Navigational != 10 {
		t.Errorf("report = %+v", report)
	}
	mixed := ClassifyAll(append(rm.Context("ByAuthor:picasso").Edges(), edges...))
	if mixed.Scrolling != 6 || mixed.Navigational != 10 {
		t.Errorf("mixed report = %+v", mixed)
	}
	if Navigational.String() != "navigational" || Scrolling.String() != "scrolling" || LinkPurpose(0).String() != "unknown" {
		t.Error("LinkPurpose strings wrong")
	}
}

func TestGenerateAndParseLinkbase(t *testing.T) {
	rm := resolved(t, IndexedGuidedTour{})
	doc := GenerateLinkbase(rm)
	out := doc.IndentedString()
	// The Figure 9 shape: xlink namespace, extended links, locators, arcs.
	for _, want := range []string{
		`xmlns:xlink="http://www.w3.org/1999/xlink"`,
		`xlink:type="extended"`,
		`xlink:type="locator"`,
		`xlink:type="arc"`,
		`xlink:href="guitar.xml"`,
		`xlink:arcrole="urn:repro:nav:next"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("linkbase missing %s:\n%s", want, out)
		}
	}

	// Round trip: parse contexts back out.
	contexts, err := ParseLinkbase(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(contexts) != 4 { // 2 authors + 2 movements
		t.Fatalf("parsed contexts = %d, want 4", len(contexts))
	}
	var picasso *LinkbaseContext
	for _, c := range contexts {
		if c.Name == "ByAuthor:picasso" {
			picasso = c
		}
	}
	if picasso == nil {
		t.Fatal("ByAuthor:picasso not round-tripped")
	}
	if picasso.AccessKind != "indexed-guided-tour" {
		t.Errorf("access kind = %q", picasso.AccessKind)
	}
	if len(picasso.Order) != 3 || picasso.Order[0] != "avignon" {
		t.Errorf("member order = %v", picasso.Order)
	}
	if picasso.NodeTitles["guitar"] != "Guitar" {
		t.Errorf("titles = %v", picasso.NodeTitles)
	}
	// Edge multiset must match the model's.
	want := rm.Context("ByAuthor:picasso").Edges()
	if len(picasso.Edges) != len(want) {
		t.Fatalf("edges = %d, want %d", len(picasso.Edges), len(want))
	}
	for i, e := range picasso.Edges {
		if e != want[i] {
			t.Errorf("edge[%d] = %v, want %v", i, e, want[i])
		}
	}
}

func TestArcroleMapping(t *testing.T) {
	kinds := []EdgeKind{EdgeMember, EdgeUp, EdgeNext, EdgePrev, EdgePage}
	for _, k := range kinds {
		if got := KindForArcrole(ArcroleFor(k)); got != k {
			t.Errorf("round trip %s -> %s", k, got)
		}
	}
	if KindForArcrole("urn:other:thing") != "" {
		t.Error("foreign arcrole should map to empty kind")
	}
	if ArcroleFor(EdgeKind("custom")) != "urn:repro:nav:custom" {
		t.Errorf("custom arcrole = %q", ArcroleFor(EdgeKind("custom")))
	}
	if KindForArcrole("urn:repro:nav:custom") != EdgeKind("custom") {
		t.Error("custom arcrole round trip failed")
	}
	if NodeHref("guitar") != "guitar.xml" {
		t.Errorf("NodeHref = %q", NodeHref("guitar"))
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{From: "a", To: "b", Kind: EdgeNext, Label: "Next"}
	s := e.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "next") {
		t.Errorf("Edge.String = %q", s)
	}
}
