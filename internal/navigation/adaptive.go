package navigation

// ContextAwareAccess is an AccessStructure whose edges may differ per
// resolved context instance. A family-wide structure like Index treats
// every context of the family identically; a structure derived from
// observed traffic (internal/analytics) orders each context by *its*
// visitors, so ResolvedContext.Edges gives it the instance name.
type ContextAwareAccess interface {
	AccessStructure
	// EdgesFor returns the edges for the named resolved context over
	// its ordered members. Structures fall back to Edges for contexts
	// they hold no specific plan for.
	EdgesFor(contextName string, members []*Node) []Edge
}

// TourPlan is one context's derived traversal plan.
type TourPlan struct {
	// Order lists member node IDs in derived (popularity) order;
	// members absent from it are appended in authored order.
	Order []string
	// Landmarks are members promoted to in-context landmarks: every
	// member page links to them directly.
	Landmarks []string
	// Dead lists members demoted out of the Next/Prev chain — no
	// visitor ever reached them. In a context with an entry page they
	// keep their hub and Up links, so nothing becomes unreachable;
	// they just stop costing tour steps. In a hubless context the
	// chain is the only road, so demotion there is ignored and dead
	// members ride at the end of the tour instead.
	Dead []string
}

// AdaptiveTour is an access structure learned from live traffic: an
// indexed guided tour whose per-context order, landmarks and demotions
// come from a TourPlan compiled by the analytics subsystem. It is the
// closing of the paper's loop — navigation is so separate from the
// conceptual model that the linkbase can be rewritten from telemetry
// while the application serves.
type AdaptiveTour struct {
	// Plans maps resolved context names to their derived plans.
	// Contexts without a plan keep the authored structure (Fallback)
	// over the authored member order — zero-traffic siblings of an
	// adapted context lose nothing.
	Plans map[string]TourPlan
	// Fallback is the structure the family was authored with; it
	// serves unplanned contexts verbatim and decides whether planned
	// ones keep an entry page. Nil means IndexedGuidedTour.
	Fallback AccessStructure
	// Circular closes each tour's Next/Prev ring.
	Circular bool
}

// Kind implements AccessStructure.
func (AdaptiveTour) Kind() string { return "adaptive-tour" }

// fallback returns the authored structure (IndexedGuidedTour when none
// was recorded). A nested adaptive tour is unwrapped so re-deriving
// over an already-adapted family never stacks wrappers.
func (a AdaptiveTour) fallback() AccessStructure {
	switch fb := a.Fallback.(type) {
	case nil:
		return IndexedGuidedTour{Circular: a.Circular}
	case AdaptiveTour:
		return fb.fallback()
	case *AdaptiveTour:
		return fb.fallback()
	}
	return a.Fallback
}

// BaseAccess returns the authored structure an adaptive tour replaced
// (the structure itself when as is not adaptive) — what a re-derivation
// must record as the fallback instead of nesting tours.
func BaseAccess(as AccessStructure) AccessStructure {
	switch at := as.(type) {
	case AdaptiveTour:
		return at.fallback()
	case *AdaptiveTour:
		return at.fallback()
	}
	return as
}

// HasHub implements AccessStructure: hubness is the authored
// structure's — adapting a hubless guided tour does not conjure an
// index page the model never declared.
func (a AdaptiveTour) HasHub() bool { return a.fallback().HasHub() }

// Edges implements AccessStructure: contexts the tour holds no plan
// for are served exactly as authored.
func (a AdaptiveTour) Edges(members []*Node) []Edge {
	return a.fallback().Edges(members)
}

// EdgesFor implements ContextAwareAccess: hub and Up edges (when the
// authored structure has a hub) over the derived order, a Next/Prev
// chain over the live (non-demoted) members, and a promotion edge from
// every member to each landmark.
func (a AdaptiveTour) EdgesFor(contextName string, members []*Node) []Edge {
	plan, ok := a.Plans[contextName]
	if !ok {
		return a.Edges(members)
	}
	ordered := reorderMembers(members, plan.Order)
	dead := make(map[string]bool, len(plan.Dead))
	if a.HasHub() {
		// Demotion needs an entry page to keep demoted members
		// reachable; a hubless tour's chain is the only road, so dead
		// members stay chained (at the end, where the plan put them).
		for _, id := range plan.Dead {
			dead[id] = true
		}
	}

	var out []Edge
	if a.HasHub() {
		for _, m := range ordered {
			out = append(out, Edge{From: HubID, To: m.ID(), Kind: EdgeMember, Label: m.Title()})
		}
		for _, m := range ordered {
			out = append(out, Edge{From: m.ID(), To: HubID, Kind: EdgeUp, Label: "Index"})
		}
	}

	var live []*Node
	for _, m := range ordered {
		if !dead[m.ID()] {
			live = append(live, m)
		}
	}
	for i := 0; i < len(live)-1; i++ {
		out = append(out, Edge{From: live[i].ID(), To: live[i+1].ID(), Kind: EdgeNext, Label: "Next"})
		out = append(out, Edge{From: live[i+1].ID(), To: live[i].ID(), Kind: EdgePrev, Label: "Previous"})
	}
	if a.Circular && len(live) > 1 {
		last, first := live[len(live)-1], live[0]
		out = append(out, Edge{From: last.ID(), To: first.ID(), Kind: EdgeNext, Label: "Next"})
		out = append(out, Edge{From: first.ID(), To: last.ID(), Kind: EdgePrev, Label: "Previous"})
	}

	// Landmark promotion: a member-kind edge from every other member to
	// the hot node, so the woven pages link it from everywhere in the
	// context and Select reaches it in one step.
	byID := make(map[string]*Node, len(ordered))
	for _, m := range ordered {
		byID[m.ID()] = m
	}
	for _, lm := range plan.Landmarks {
		target := byID[lm]
		if target == nil {
			continue
		}
		for _, m := range ordered {
			if m.ID() == lm {
				continue
			}
			out = append(out, Edge{From: m.ID(), To: lm, Kind: EdgeMember, Label: target.Title()})
		}
	}
	return out
}

// reorderMembers arranges members per the derived order: planned IDs
// first in plan order, then members the plan has never seen (added
// since derivation) in their authored order.
func reorderMembers(members []*Node, order []string) []*Node {
	byID := make(map[string]*Node, len(members))
	for _, m := range members {
		byID[m.ID()] = m
	}
	out := make([]*Node, 0, len(members))
	seen := make(map[string]bool, len(order))
	for _, id := range order {
		if m := byID[id]; m != nil && !seen[id] {
			out = append(out, m)
			seen[id] = true
		}
	}
	for _, m := range members {
		if !seen[m.ID()] {
			out = append(out, m)
		}
	}
	return out
}

// Interface compliance checks.
var (
	_ AccessStructure    = AdaptiveTour{}
	_ ContextAwareAccess = AdaptiveTour{}
)
