package navigation

import (
	"fmt"
	"testing"
	"testing/quick"
)

// histRef is a reference implementation of the Brewster–Jeffrey
// navigation-history semantics: a plain list with a cursor, written for
// obviousness rather than efficiency. The property tests drive a real
// Session and this model with the same operation sequence and demand
// they never disagree — the Session's trimming and in-place truncation
// tricks must be unobservable.
type histRef struct {
	nav   []Visit
	cur   int
	limit int
}

func (h *histRef) navigate(v Visit) {
	if len(h.nav) == 0 {
		h.nav, h.cur = []Visit{v}, 0
		return
	}
	if h.nav[h.cur] == v {
		return // reload
	}
	h.nav = append(append([]Visit(nil), h.nav[:h.cur+1]...), v)
	h.cur = len(h.nav) - 1
	if h.limit > 0 {
		for len(h.nav) > h.limit && h.cur > 0 {
			h.nav = h.nav[1:]
			h.cur--
		}
	}
}

func (h *histRef) canBack() bool    { return h.cur > 0 && len(h.nav) > 0 }
func (h *histRef) canForward() bool { return h.cur < len(h.nav)-1 }

// histAgree compares the session's exported history against the
// reference, including that the cursor entry is the current position.
func histAgree(t testing.TB, s *Session, ref *histRef) bool {
	t.Helper()
	nav, cur := s.NavHistory()
	if cur != ref.cur || len(nav) != len(ref.nav) {
		t.Logf("history: session %d entries cursor %d, reference %d entries cursor %d",
			len(nav), cur, len(ref.nav), ref.cur)
		return false
	}
	for i := range nav {
		if nav[i] != ref.nav[i] {
			t.Logf("history[%d]: session %+v, reference %+v", i, nav[i], ref.nav[i])
			return false
		}
	}
	if len(nav) > 0 {
		rc, node := s.Location()
		if nav[cur] != (Visit{Context: rc.Name, NodeID: node}) {
			t.Logf("cursor entry %+v != position %s/%s", nav[cur], rc.Name, node)
			return false
		}
	}
	if s.CanBack() != ref.canBack() || s.CanForward() != ref.canForward() {
		t.Logf("CanBack/CanForward = %v/%v, reference %v/%v",
			s.CanBack(), s.CanForward(), ref.canBack(), ref.canForward())
		return false
	}
	return true
}

// TestQuickHistoryModel property-tests the Session history against the
// reference model over randomized interleavings of navigate (Next,
// Prev, Up, Select, reload) and Back/Forward, with and without a trail
// limit.
func TestQuickHistoryModel(t *testing.T) {
	f := func(raw uint8, limRaw uint8, ops []byte) bool {
		n := clampSize(raw)
		store, model := tourFixture(t, n)
		model.Contexts()[0].Access = IndexedGuidedTour{}
		rm, err := model.Resolve(store)
		if err != nil {
			t.Log(err)
			return false
		}
		s := NewSession(rm)
		ref := &histRef{}
		if limRaw%2 == 0 { // half the runs exercise the trail-limit interaction
			ref.limit = int(limRaw%8) + 2
			s.SetTrailLimit(ref.limit)
		}
		if err := s.EnterContext("All", ""); err != nil {
			t.Log(err)
			return false
		}
		ref.navigate(Visit{Context: "All", NodeID: HubID})
		for _, op := range ops {
			switch op % 7 {
			case 0:
				if s.Next() == nil {
					_, node := s.Location()
					ref.navigate(Visit{Context: "All", NodeID: node})
				}
			case 1:
				if s.Prev() == nil {
					_, node := s.Location()
					ref.navigate(Visit{Context: "All", NodeID: node})
				}
			case 2:
				if s.Up() == nil {
					ref.navigate(Visit{Context: "All", NodeID: HubID})
				}
			case 3:
				id := fmt.Sprintf("n%03d", int(op)%n)
				if s.Select(id) == nil {
					ref.navigate(Visit{Context: "All", NodeID: id})
				}
			case 4:
				want := ref.canBack()
				if err := s.Back(); (err == nil) != want {
					t.Logf("Back err=%v, reference canBack=%v", err, want)
					return false
				}
				if want {
					ref.cur--
				}
			case 5:
				want := ref.canForward()
				if err := s.Forward(); (err == nil) != want {
					t.Logf("Forward err=%v, reference canForward=%v", err, want)
					return false
				}
				if want {
					ref.cur++
				}
			case 6:
				// Reload: re-entering the current position must leave
				// the history — including forward entries — untouched.
				rc, node := s.Location()
				if err := s.EnterContext(rc.Name, node); err != nil {
					t.Log(err)
					return false
				}
				ref.navigate(Visit{Context: rc.Name, NodeID: node})
			}
			if !histAgree(t, s, ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBackForwardIdentity property-tests the inverse laws: after a
// successful Back, Forward restores the exact position (and vice
// versa), with the history list unchanged by either.
func TestQuickBackForwardIdentity(t *testing.T) {
	f := func(raw uint8, steps uint8, backs uint8) bool {
		n := clampSize(raw)
		store, model := tourFixture(t, n)
		model.Contexts()[0].Access = IndexedGuidedTour{}
		rm, err := model.Resolve(store)
		if err != nil {
			t.Log(err)
			return false
		}
		s := NewSession(rm)
		if err := s.EnterContext("All", ""); err != nil {
			t.Log(err)
			return false
		}
		if err := s.Select("n000"); err != nil { // off the hub, onto the tour
			t.Log(err)
			return false
		}
		for i := 0; i < int(steps%12); i++ {
			if s.Next() != nil {
				break
			}
		}
		for i := 0; i < int(backs%12); i++ {
			if s.Back() != nil {
				break
			}
		}
		navBefore, curBefore := s.NavHistory()
		_, nodeBefore := s.Location()
		if s.CanBack() {
			if err := s.Back(); err != nil {
				t.Logf("CanBack but Back failed: %v", err)
				return false
			}
			if err := s.Forward(); err != nil {
				t.Logf("Forward after Back failed: %v", err)
				return false
			}
			if _, node := s.Location(); node != nodeBefore {
				t.Logf("forward∘back moved %q to %q", nodeBefore, node)
				return false
			}
		}
		if s.CanForward() {
			if err := s.Forward(); err != nil {
				t.Logf("CanForward but Forward failed: %v", err)
				return false
			}
			if err := s.Back(); err != nil {
				t.Logf("Back after Forward failed: %v", err)
				return false
			}
			if _, node := s.Location(); node != nodeBefore {
				t.Logf("back∘forward moved %q to %q", nodeBefore, node)
				return false
			}
		}
		navAfter, curAfter := s.NavHistory()
		if curAfter != curBefore || len(navAfter) != len(navBefore) {
			t.Logf("back/forward changed the history: %d@%d -> %d@%d",
				len(navBefore), curBefore, len(navAfter), curAfter)
			return false
		}
		for i := range navAfter {
			if navAfter[i] != navBefore[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHistoryTruncateOnNavigate: navigating from mid-history discards
// the forward entries — the defining Brewster–Jeffrey truncation.
func TestHistoryTruncateOnNavigate(t *testing.T) {
	store, model := tourFixture(t, 5)
	model.Contexts()[0].Access = IndexedGuidedTour{}
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(rm)
	if err := s.EnterContext("All", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Select("n000"); err != nil { // hub -> n000
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // n000 -> n001 -> n002
		if err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Back(); err != nil { // back to n001
		t.Fatal(err)
	}
	if err := s.Back(); err != nil { // back to n000
		t.Fatal(err)
	}
	if !s.CanForward() {
		t.Fatal("mid-history session should have forward entries")
	}
	if err := s.Up(); err != nil { // navigate away: truncates n001, n002
		t.Fatal(err)
	}
	if s.CanForward() {
		t.Error("navigate did not truncate the forward history")
	}
	nav, cur := s.NavHistory()
	want := []Visit{
		{Context: "All", NodeID: HubID},
		{Context: "All", NodeID: "n000"},
		{Context: "All", NodeID: HubID},
	}
	if cur != 2 || len(nav) != len(want) {
		t.Fatalf("nav = %+v cursor %d", nav, cur)
	}
	for i := range want {
		if nav[i] != want[i] {
			t.Errorf("nav[%d] = %+v, want %+v", i, nav[i], want[i])
		}
	}
	// Forward past the end still fails.
	if err := s.Forward(); err == nil {
		t.Error("Forward past the end succeeded")
	}
}

// TestHistoryTrailLimitBounds: with a trail limit the history list
// never outgrows the limit (except to protect the cursor's forward
// entries), so a million-step crawler keeps bounded memory.
func TestHistoryTrailLimitBounds(t *testing.T) {
	store, model := tourFixture(t, 40)
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(rm)
	s.SetTrailLimit(5)
	if err := s.EnterContext("All", ""); err != nil {
		t.Fatal(err)
	}
	for s.Next() == nil {
	}
	nav, cur := s.NavHistory()
	if len(nav) != 5 {
		t.Fatalf("nav length = %d, want trail limit 5", len(nav))
	}
	if cur != len(nav)-1 {
		t.Fatalf("cursor = %d, want tip", cur)
	}
	// Back bottoms out after limit-1 steps, not at the walk's origin.
	backs := 0
	for s.Back() == nil {
		backs++
	}
	if backs != 4 {
		t.Errorf("back steps = %d, want 4", backs)
	}
}
