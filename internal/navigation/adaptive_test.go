package navigation

import (
	"reflect"
	"testing"

	"repro/internal/conceptual"
)

// tourNodes builds standalone member nodes a..d titled A..D.
func tourNodes(t *testing.T) []*Node {
	t.Helper()
	s := conceptual.NewSchema()
	s.MustAddClass(conceptual.NewClass("Thing",
		conceptual.AttrDef{Name: "title", Type: conceptual.StringAttr, Required: true},
	))
	st := conceptual.NewStore(s)
	nc := &NodeClass{Name: "ThingNode", Class: "Thing", TitleAttr: "title"}
	var nodes []*Node
	for _, id := range []string{"a", "b", "c", "d"} {
		st.MustAdd("Thing", id, map[string]string{"title": "Title " + id})
		nodes = append(nodes, nodeOf(nc, st.Get(id)))
	}
	return nodes
}

// edgeTargets collects the To fields of edges of one kind leaving from.
func edgeTargets(edges []Edge, from string, kind EdgeKind) []string {
	var out []string
	for _, e := range edges {
		if e.From == from && e.Kind == kind {
			out = append(out, e.To)
		}
	}
	return out
}

func TestAdaptiveTourEdgesFor(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{Plans: map[string]TourPlan{
		"Fam:one": {
			Order:     []string{"c", "b", "a", "d"},
			Landmarks: []string{"c"},
			Dead:      []string{"d"},
		},
	}}
	edges := tour.EdgesFor("Fam:one", nodes)

	// Hub roll follows the derived order, every member included.
	if got := edgeTargets(edges, HubID, EdgeMember); !reflect.DeepEqual(got, []string{"c", "b", "a", "d"}) {
		t.Errorf("hub roll = %v, want derived order c b a d", got)
	}
	// The Next chain walks the derived order and skips the dead d.
	if got := edgeTargets(edges, "c", EdgeNext); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("next(c) = %v, want [b]", got)
	}
	if got := edgeTargets(edges, "a", EdgeNext); len(got) != 0 {
		t.Errorf("next(a) = %v, want none (d is demoted)", got)
	}
	if got := edgeTargets(edges, "d", EdgeNext); len(got) != 0 {
		t.Errorf("next(d) = %v, want none", got)
	}
	// Demoted nodes keep their Up link — reachable, just not toured.
	if got := edgeTargets(edges, "d", EdgeUp); !reflect.DeepEqual(got, []string{HubID}) {
		t.Errorf("up(d) = %v, want hub", got)
	}
	// Landmark promotion: every other member links to c.
	for _, from := range []string{"a", "b", "d"} {
		if got := edgeTargets(edges, from, EdgeMember); !reflect.DeepEqual(got, []string{"c"}) {
			t.Errorf("landmark links from %s = %v, want [c]", from, got)
		}
	}
	// ... with the landmark's title as label.
	for _, e := range edges {
		if e.Kind == EdgeMember && e.From != HubID && e.Label != "Title c" {
			t.Errorf("landmark edge %v label = %q, want %q", e, e.Label, "Title c")
		}
	}
	// The landmark itself does not link to itself.
	for _, e := range edges {
		if e.From == e.To {
			t.Errorf("self edge %v", e)
		}
	}
}

func TestAdaptiveTourFallback(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{Plans: map[string]TourPlan{"Fam:other": {Order: []string{"d"}}}}
	got := tour.EdgesFor("Fam:unplanned", nodes)
	want := IndexedGuidedTour{}.Edges(nodes)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unplanned context edges = %v, want plain IGT %v", got, want)
	}
	if tour.Kind() != "adaptive-tour" || !tour.HasHub() {
		t.Errorf("kind/hub = %q/%v", tour.Kind(), tour.HasHub())
	}
}

// TestAdaptiveTourNewMembers: members the plan has never seen (added
// after derivation) join the tour at the end instead of vanishing.
func TestAdaptiveTourNewMembers(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{Plans: map[string]TourPlan{
		"Fam:one": {Order: []string{"b", "a", "gone"}}, // c, d unseen; "gone" no longer a member
	}}
	edges := tour.EdgesFor("Fam:one", nodes)
	if got := edgeTargets(edges, HubID, EdgeMember); !reflect.DeepEqual(got, []string{"b", "a", "c", "d"}) {
		t.Errorf("hub roll = %v, want planned b a then authored c d", got)
	}
	if got := edgeTargets(edges, "a", EdgeNext); !reflect.DeepEqual(got, []string{"c"}) {
		t.Errorf("next(a) = %v, want [c] (new members chained)", got)
	}
}

// TestAdaptiveTourKeepsAuthoredFallback: adapting one context of a
// family must not rewrite its zero-traffic siblings' semantics — they
// are served exactly as authored, and the family's hubness stays the
// authored structure's.
func TestAdaptiveTourKeepsAuthoredFallback(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{
		Fallback: GuidedTour{},
		Plans:    map[string]TourPlan{"Fam:one": {Order: []string{"c", "b", "a", "d"}}},
	}
	// A hubless authored structure keeps the family hubless.
	if tour.HasHub() {
		t.Error("adaptive tour over a GuidedTour family reports a hub")
	}
	// Unplanned siblings get the authored edges verbatim.
	if got, want := tour.EdgesFor("Fam:quiet", nodes), (GuidedTour{}).Edges(nodes); !reflect.DeepEqual(got, want) {
		t.Errorf("unplanned context = %v, want authored guided tour %v", got, want)
	}
	// The planned context reorders, but conjures no index page.
	edges := tour.EdgesFor("Fam:one", nodes)
	for _, e := range edges {
		if e.From == HubID || e.To == HubID {
			t.Fatalf("hubless family grew hub edge %v", e)
		}
	}
	if got := edgeTargets(edges, "c", EdgeNext); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("next(c) = %v, want derived [b]", got)
	}
}

// TestAdaptiveTourHublessKeepsDeadChained: with no entry page the
// Next/Prev chain is the only road to a member, so demotion is ignored
// there — every member stays reachable by walking the tour.
func TestAdaptiveTourHublessKeepsDeadChained(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{
		Fallback: GuidedTour{},
		Plans: map[string]TourPlan{
			"Fam:one": {Order: []string{"c", "b", "a", "d"}, Dead: []string{"d"}},
		},
	}
	edges := tour.EdgesFor("Fam:one", nodes)
	reachable := map[string]bool{}
	for _, e := range edges {
		reachable[e.To] = true
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if id != "c" && !reachable[id] { // c is the tour entry
			t.Errorf("member %s unreachable in hubless adapted tour: %v", id, edges)
		}
	}
	if got := edgeTargets(edges, "a", EdgeNext); !reflect.DeepEqual(got, []string{"d"}) {
		t.Errorf("next(a) = %v, want [d] (dead rides at the end of a hubless chain)", got)
	}
}

// TestBaseAccessUnwraps: re-deriving over an already-adapted family
// recovers the originally authored structure instead of nesting tours.
func TestBaseAccessUnwraps(t *testing.T) {
	authored := Menu{}
	once := &AdaptiveTour{Fallback: authored}
	if got := BaseAccess(once); got != AccessStructure(authored) {
		t.Errorf("BaseAccess(adapted) = %#v, want the authored Menu", got)
	}
	twice := AdaptiveTour{Fallback: once}
	if got := BaseAccess(twice); got != AccessStructure(authored) {
		t.Errorf("BaseAccess(nested) = %#v, want the authored Menu", got)
	}
	if got := BaseAccess(authored); got != AccessStructure(authored) {
		t.Errorf("BaseAccess(plain) = %#v, want identity", got)
	}
	if got := BaseAccess(AdaptiveTour{}); got != AccessStructure(IndexedGuidedTour{}) {
		t.Errorf("BaseAccess(no fallback) = %#v, want the IGT default", got)
	}
}

func TestAdaptiveTourCircular(t *testing.T) {
	nodes := tourNodes(t)
	tour := AdaptiveTour{
		Circular: true,
		Plans:    map[string]TourPlan{"Fam:one": {Order: []string{"a", "b", "c"}, Dead: []string{"d"}}},
	}
	// Careful: Dead only lists d, so the live chain is a b c and wraps.
	edges := tour.EdgesFor("Fam:one", nodes)
	if got := edgeTargets(edges, "c", EdgeNext); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("next(last live) = %v, want wrap to [a]", got)
	}
}

// TestResolvedContextDispatchesEdgesFor: a context-aware structure
// resolved through the normal model pipeline gets its instance name.
func TestResolvedContextDispatchesEdgesFor(t *testing.T) {
	store := fixtureStore(t)
	tour := AdaptiveTour{Plans: map[string]TourPlan{
		// Authored order (by year) is avignon guitar guernica; the
		// derived plan reverses it.
		"ByAuthor:picasso": {Order: []string{"guernica", "guitar", "avignon"}},
	}}
	model := fixtureModel(t, tour)
	rm, err := model.Resolve(store)
	if err != nil {
		t.Fatal(err)
	}
	rc := rm.Context("ByAuthor:picasso")
	if got := edgeTargets(rc.Edges(), HubID, EdgeMember); !reflect.DeepEqual(got, []string{"guernica", "guitar", "avignon"}) {
		t.Errorf("resolved hub roll = %v, want derived order", got)
	}
	if n := rc.Next("guernica"); n == nil || n.ID() != "guitar" {
		t.Errorf("Next(guernica) = %v, want guitar", n)
	}
	// The unplanned dali context falls back to the authored IGT shape.
	dali := rm.Context("ByAuthor:dali")
	if got := edgeTargets(dali.Edges(), HubID, EdgeMember); !reflect.DeepEqual(got, []string{"memory"}) {
		t.Errorf("fallback hub roll = %v", got)
	}
	// Edges still carry the context's declared show behaviour.
	for _, e := range rc.Edges() {
		if e.Show != "replace" {
			t.Errorf("edge %v show = %q, want replace", e, e.Show)
		}
	}
}
