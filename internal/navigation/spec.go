package navigation

import (
	"fmt"
	"strings"
)

// SpecText renders the navigational model as the hand-maintained
// declaration text a developer edits in the separated approach: one line
// per node class, link view and context. The change-cost experiment (E8)
// diffs this artifact to measure the separated approach's edit cost — for
// an access-structure change it is exactly one line. The access field
// carries the structure's full parameters (AccessText), not just its
// kind, so a circular tour or an adaptive tour's plans are part of the
// artifact — navctl model prints this same text over the control plane.
func SpecText(m *Model) string {
	var sb strings.Builder
	sb.WriteString("# navigational model specification\n")
	for _, nc := range m.NodeClasses() {
		fmt.Fprintf(&sb, "node %s over %s title=%s\n", nc.Name, nc.Class, nc.TitleAttr)
	}
	for _, l := range m.Links() {
		fmt.Fprintf(&sb, "link %s via %s: %s -> %s\n", l.Name, l.Rel, l.From, l.To)
	}
	for _, c := range m.Contexts() {
		fmt.Fprintf(&sb, "context %s of %s groupby=%s orderby=%s access=%s",
			c.Name, c.NodeClass, c.GroupBy, c.OrderBy, AccessText(c.Access))
		if c.Where != "" {
			fmt.Fprintf(&sb, " where=%q", c.Where)
		}
		if c.Show != "" {
			fmt.Fprintf(&sb, " show=%s", c.Show)
		}
		sb.WriteString("\n")
	}
	for _, l := range m.Landmarks() {
		fmt.Fprintf(&sb, "landmark %s\n", l)
	}
	return sb.String()
}
