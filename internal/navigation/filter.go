package navigation

import (
	"fmt"
	"strconv"
	"strings"
)

// predicate is a compiled member filter: attribute OP literal.
type predicate struct {
	attr  string
	op    string
	value string
}

// compileWhere parses a ContextDef.Where expression. The grammar is one
// comparison — `attr OP literal` — with OP one of = != < <= > >= and the
// literal optionally single-quoted. Comparisons are numeric when both
// sides parse as integers, lexicographic otherwise. Examples:
//
//	year >= 1910
//	technique = 'Oil on canvas'
//	title != ''
func compileWhere(src string) (*predicate, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, nil
	}
	for _, op := range []string{"!=", ">=", "<=", "=", ">", "<"} {
		i := strings.Index(s, op)
		if i <= 0 {
			continue
		}
		attr := strings.TrimSpace(s[:i])
		val := strings.TrimSpace(s[i+len(op):])
		if attr == "" {
			return nil, fmt.Errorf("navigation: filter %q: missing attribute", src)
		}
		if strings.ContainsAny(attr, " \t'\"<>=!") {
			return nil, fmt.Errorf("navigation: filter %q: bad attribute %q", src, attr)
		}
		if strings.HasPrefix(val, "'") {
			if !strings.HasSuffix(val, "'") || len(val) < 2 {
				return nil, fmt.Errorf("navigation: filter %q: unterminated quote", src)
			}
			val = val[1 : len(val)-1]
		}
		return &predicate{attr: attr, op: op, value: val}, nil
	}
	return nil, fmt.Errorf("navigation: filter %q: no comparison operator", src)
}

// matches evaluates the predicate against a node's attribute.
func (p *predicate) matches(n *Node) bool {
	got := n.Instance.Attr(p.attr)
	gi, gerr := strconv.Atoi(got)
	wi, werr := strconv.Atoi(p.value)
	if gerr == nil && werr == nil {
		switch p.op {
		case "=":
			return gi == wi
		case "!=":
			return gi != wi
		case "<":
			return gi < wi
		case "<=":
			return gi <= wi
		case ">":
			return gi > wi
		case ">=":
			return gi >= wi
		}
		return false
	}
	switch p.op {
	case "=":
		return got == p.value
	case "!=":
		return got != p.value
	case "<":
		return got < p.value
	case "<=":
		return got <= p.value
	case ">":
		return got > p.value
	case ">=":
		return got >= p.value
	}
	return false
}

// filterNodes applies the predicate, keeping order.
func filterNodes(nodes []*Node, p *predicate) []*Node {
	if p == nil {
		return nodes
	}
	out := nodes[:0:0]
	for _, n := range nodes {
		if p.matches(n) {
			out = append(out, n)
		}
	}
	return out
}
