package navigation

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/conceptual"
)

// makeMembers builds n synthetic nodes for structural property tests.
func makeMembers(t testing.TB, n int) []*Node {
	t.Helper()
	s := conceptual.NewSchema()
	s.MustAddClass(conceptual.NewClass("Thing",
		conceptual.AttrDef{Name: "title", Type: conceptual.StringAttr},
	))
	st := conceptual.NewStore(s)
	nc := &NodeClass{Name: "ThingNode", Class: "Thing", TitleAttr: "title"}
	out := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%03d", i)
		inst := st.MustAdd("Thing", id, map[string]string{"title": "Thing " + id})
		out = append(out, &Node{Class: nc, Instance: inst})
	}
	return out
}

func clampSize(raw uint8) int { return int(raw%50) + 1 }

// TestQuickEdgeCounts property-tests the edge-count formulas of every
// access structure for arbitrary context sizes.
func TestQuickEdgeCounts(t *testing.T) {
	f := func(raw uint8, circular bool) bool {
		n := clampSize(raw)
		members := makeMembers(t, n)

		if got := len((Index{}).Edges(members)); got != 2*n {
			t.Logf("Index: %d edges for n=%d", got, n)
			return false
		}
		if got := len((Menu{}).Edges(members)); got != n {
			t.Logf("Menu: %d edges for n=%d", got, n)
			return false
		}
		tourWant := 2 * (n - 1)
		if circular && n > 1 {
			tourWant += 2
		}
		if got := len((GuidedTour{Circular: circular}).Edges(members)); got != tourWant {
			t.Logf("GuidedTour(circ=%v): %d edges for n=%d", circular, got, n)
			return false
		}
		igtWant := 2*n + tourWant
		if got := len((IndexedGuidedTour{Circular: circular}).Edges(members)); got != igtWant {
			t.Logf("IGT(circ=%v): %d edges for n=%d", circular, got, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickHubReachability property-tests that in hub-bearing structures
// every member is reachable from the hub and (for Index/IGT) can return.
func TestQuickHubReachability(t *testing.T) {
	f := func(raw uint8) bool {
		n := clampSize(raw)
		members := makeMembers(t, n)
		for _, as := range []AccessStructure{Index{}, IndexedGuidedTour{}} {
			edges := as.Edges(members)
			out := map[string][]string{}
			for _, e := range edges {
				out[e.From] = append(out[e.From], e.To)
			}
			reach := map[string]bool{}
			stack := []string{HubID}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[cur] {
					continue
				}
				reach[cur] = true
				stack = append(stack, out[cur]...)
			}
			for _, m := range members {
				if !reach[m.ID()] {
					t.Logf("%s: member %s unreachable from hub", as.Kind(), m.ID())
					return false
				}
				backsUp := false
				for _, to := range out[m.ID()] {
					if to == HubID {
						backsUp = true
					}
				}
				if !backsUp {
					t.Logf("%s: member %s cannot return to hub", as.Kind(), m.ID())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNextPrevInverse property-tests that every next edge has the
// inverse prev edge in tour structures.
func TestQuickNextPrevInverse(t *testing.T) {
	f := func(raw uint8, circular bool) bool {
		n := clampSize(raw)
		members := makeMembers(t, n)
		edges := (IndexedGuidedTour{Circular: circular}).Edges(members)
		prev := map[[2]string]bool{}
		for _, e := range edges {
			if e.Kind == EdgePrev {
				prev[[2]string{e.From, e.To}] = true
			}
		}
		for _, e := range edges {
			if e.Kind == EdgeNext && !prev[[2]string{e.To, e.From}] {
				t.Logf("next %s->%s lacks inverse prev", e.From, e.To)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTourWalkRoundTrip property-tests that walking a session to the
// tour's end and back returns to the start node.
func TestQuickTourWalkRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		n := clampSize(raw)
		store, model := tourFixture(t, n)
		rm, err := model.Resolve(store)
		if err != nil {
			t.Log(err)
			return false
		}
		s := NewSession(rm)
		if err := s.EnterContext("All", ""); err != nil {
			t.Log(err)
			return false
		}
		start := s.Here().ID()
		steps := 0
		for s.Next() == nil {
			steps++
			if steps > n {
				t.Log("tour longer than member count")
				return false
			}
		}
		for s.Prev() == nil {
		}
		return s.Here().ID() == start && steps == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func tourFixture(t testing.TB, n int) (*conceptual.Store, *Model) {
	t.Helper()
	s := conceptual.NewSchema()
	s.MustAddClass(conceptual.NewClass("Thing",
		conceptual.AttrDef{Name: "title", Type: conceptual.StringAttr},
	))
	st := conceptual.NewStore(s)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%03d", i)
		st.MustAdd("Thing", id, map[string]string{"title": id})
	}
	m := NewModel()
	m.MustAddNodeClass(&NodeClass{Name: "ThingNode", Class: "Thing", TitleAttr: "title"})
	m.MustAddContext(&ContextDef{Name: "All", NodeClass: "ThingNode", Access: GuidedTour{}})
	return st, m
}

// TestQuickLinkbaseRoundTrip property-tests that generate->parse preserves
// contexts for arbitrary sizes and access structures.
func TestQuickLinkbaseRoundTrip(t *testing.T) {
	structures := []AccessStructure{Index{}, GuidedTour{}, IndexedGuidedTour{}, Menu{}}
	f := func(raw uint8, which uint8) bool {
		n := clampSize(raw)
		access := structures[int(which)%len(structures)]
		store, model := tourFixture(t, n)
		model.Contexts()[0].Access = access
		rm, err := model.Resolve(store)
		if err != nil {
			t.Log(err)
			return false
		}
		parsed, err := ParseLinkbase(GenerateLinkbase(rm))
		if err != nil {
			t.Log(err)
			return false
		}
		if len(parsed) != 1 {
			return false
		}
		lc := parsed[0]
		rc := rm.Contexts[0]
		if lc.AccessKind != access.Kind() || lc.HasHub != access.HasHub() {
			return false
		}
		if len(lc.Order) != len(rc.Members) || len(lc.Edges) != len(rc.Edges()) {
			return false
		}
		for i, e := range lc.Edges {
			if e != rc.Edges()[i] {
				t.Logf("edge %d: %v != %v", i, e, rc.Edges()[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
