package navigation

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotInContext is returned when a traversal is attempted from a node
// that is not a member of the session's current context.
var ErrNotInContext = errors.New("navigation: node not in current context")

// ErrNoSuchEdge is returned when the current context offers no edge of the
// requested kind from the current position.
var ErrNoSuchEdge = errors.New("navigation: no such traversal from here")

// ErrNoHistory is returned by Back and Forward when the session's
// navigation history has no entry in the requested direction.
var ErrNoHistory = errors.New("navigation: no history in that direction")

// Visit records one step of a session's history.
type Visit struct {
	// Context is the resolved context name ("" for the hub of none).
	Context string
	// NodeID is the visited node ("_index" for a hub page).
	NodeID string
}

// Session tracks a user's position in the navigation space: the current
// node and, crucially, the context through which it was reached. This is
// the paper's §2 museum semantics — the same painting answers "Next"
// differently when entered via its author than via its movement.
//
// Besides the append-only trail (the analytics log of every position the
// session occupied), a Session keeps a genuine navigation history in the
// sense of Brewster & Jeffrey's "A Model of Navigation History": a list
// of entries with a current cursor. Navigating somewhere new truncates
// the forward part of the list and appends; Back and Forward move the
// cursor without growing the list; revisiting the current position is a
// reload and leaves the history untouched. Traversals (Next, Prev, Up,
// Select) always act from the cursor's position — a session that went
// Back is mid-history, and its Next is the next of where it stands, not
// of the trail tip.
//
// A Session is safe for concurrent use: one visitor may have several
// in-flight requests (tabs, prefetching agents) mutating the same trail.
type Session struct {
	model *ResolvedModel

	mu      sync.Mutex
	context *ResolvedContext
	nodeID  string // current node, or HubID when on the entry page
	history []Visit
	// nav is the navigation-history list and cur the cursor into it;
	// nav[cur] is always the current position once the session entered a
	// context. Back/forward move cur; a navigation truncates nav[cur+1:]
	// and appends. The front is capped at the trail limit by advancing
	// the slice start (the append realloc compacts the backing array
	// once per ~limit steps, so the cap is amortized O(1) per step).
	nav []Visit
	cur int
	// limit caps the trail at its most-recent limit visits (0 keeps
	// everything). The internal buffer trims with a little slack so the
	// cap costs one copy per limit/4 steps, not one per step; History
	// and State always expose exactly the most-recent limit.
	limit int
}

// SetTrailLimit caps the session's trail at its most-recent n visits
// (0 restores unlimited growth) and trims immediately. Long-lived
// sessions — a crawler walking a million pages on one cookie — keep
// bounded memory and bounded persistence records; navigation semantics
// never read the trimmed tail, so traversal behaviour is unchanged.
func (s *Session) SetTrailLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
	if n > 0 && len(s.history) > n {
		s.history = trimTrail(s.history, n)
	}
	s.trimNavLocked()
}

// trimNavLocked caps the navigation-history list at the trail limit by
// dropping its oldest entries — but never the current one or anything
// forward of it, so Back simply bottoms out earlier and Forward is
// unaffected. Dropping advances the slice start; the next append that
// outgrows the (shrunken) capacity reallocates and compacts, so the
// amortized cost per navigation is O(1) and the backing array stays
// within a small constant of the limit.
func (s *Session) trimNavLocked() {
	if s.limit <= 0 {
		return
	}
	for len(s.nav) > s.limit && s.cur > 0 {
		s.nav = s.nav[1:]
		s.cur--
	}
}

// navigateLocked applies one navigation to the history list, per the
// Brewster–Jeffrey semantics: navigating to the current position is a
// reload and changes nothing; navigating anywhere else discards the
// forward history (the entries a Back had stepped away from), appends
// the new position, and moves the cursor to it.
func (s *Session) navigateLocked(v Visit) {
	if len(s.nav) == 0 {
		s.nav = append(s.nav, v)
		s.cur = 0
		return
	}
	if s.nav[s.cur] == v {
		return // reload: history is untouched
	}
	// Discarded forward entries may be overwritten in place: every
	// exported view of the history (State, NavHistory) is a copy.
	s.nav = append(s.nav[:s.cur+1], v)
	s.cur = len(s.nav) - 1
	s.trimNavLocked()
}

// recordVisitLocked appends a visit, trimming the trail once it
// overruns the cap by a quarter (amortized O(1) per step).
func (s *Session) recordVisitLocked(v Visit) {
	s.history = append(s.history, v)
	if s.limit > 0 && len(s.history) > s.limit+s.limit/4 {
		s.history = trimTrail(s.history, s.limit)
	}
}

// trailLocked is the externally visible trail: the most-recent limit
// visits (the buffer may briefly hold up to limit/4 more).
func (s *Session) trailLocked() []Visit {
	h := s.history
	if s.limit > 0 && len(h) > s.limit {
		h = h[len(h)-s.limit:]
	}
	return h
}

// trimTrail copies the most-recent limit visits into a fresh slice
// (with trim slack), releasing the old backing array.
func trimTrail(h []Visit, limit int) []Visit {
	trimmed := make([]Visit, limit, limit+limit/4+1)
	copy(trimmed, h[len(h)-limit:])
	return trimmed
}

// NewSession starts a session over a resolved model.
func NewSession(model *ResolvedModel) *Session {
	return &Session{model: model}
}

// Model returns the session's resolved model (the one the session was
// created with, or last rebased onto).
func (s *Session) Model() *ResolvedModel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// EnterContext moves the session into the named context at the given node
// (or at the hub when nodeID is HubID or empty and the structure has one).
func (s *Session) EnterContext(contextName, nodeID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enterLocked(contextName, nodeID)
}

// enterLocked is EnterContext with s.mu held.
func (s *Session) enterLocked(contextName, nodeID string) error {
	rc := s.model.Context(contextName)
	if rc == nil {
		return fmt.Errorf("navigation: unknown context %q", contextName)
	}
	if nodeID == "" {
		if rc.Def.Access.HasHub() {
			nodeID = HubID
		} else if len(rc.Members) > 0 {
			nodeID = rc.Members[0].ID()
		} else {
			return fmt.Errorf("navigation: context %q is empty", contextName)
		}
	}
	if nodeID != HubID && rc.Position(nodeID) < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNotInContext, nodeID, contextName)
	}
	s.context = rc
	s.nodeID = nodeID
	v := Visit{Context: contextName, NodeID: nodeID}
	s.recordVisitLocked(v)
	s.navigateLocked(v)
	return nil
}

// Context returns the current context, or nil before EnterContext.
func (s *Session) Context() *ResolvedContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context
}

// Location returns the current context and node id as one consistent
// snapshot. Callers that need both must use this rather than separate
// Context/Here calls, which could interleave with a concurrent
// traversal on the same session.
func (s *Session) Location() (*ResolvedContext, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context, s.nodeID
}

// Here returns the current node, or nil when on a hub page.
func (s *Session) Here() *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil || s.nodeID == HubID {
		return nil
	}
	return s.context.Member(s.nodeID)
}

// AtHub reports whether the session is on the context's entry page.
func (s *Session) AtHub() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context != nil && s.nodeID == HubID
}

// History returns the visit trail in order (capped at the trail limit).
func (s *Session) History() []Visit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Visit(nil), s.trailLocked()...)
}

// follow moves along the first out-edge of the given kind.
func (s *Session) follow(kind EdgeKind) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil {
		return fmt.Errorf("navigation: no current context")
	}
	for _, e := range s.context.OutEdges(s.nodeID) {
		if e.Kind == kind {
			s.nodeID = e.To
			v := Visit{Context: s.context.Name, NodeID: e.To}
			s.recordVisitLocked(v)
			s.navigateLocked(v)
			return nil
		}
	}
	return fmt.Errorf("%w: %s from %q in %q", ErrNoSuchEdge, kind, s.nodeID, s.context.Name)
}

// Next moves to the following member of the current context.
func (s *Session) Next() error { return s.follow(EdgeNext) }

// Prev moves to the preceding member of the current context.
func (s *Session) Prev() error { return s.follow(EdgePrev) }

// Up moves to the context's entry page.
func (s *Session) Up() error { return s.follow(EdgeUp) }

// Select moves from a hub page to the named member.
func (s *Session) Select(nodeID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil {
		return fmt.Errorf("navigation: no current context")
	}
	for _, e := range s.context.OutEdges(s.nodeID) {
		if e.Kind == EdgeMember && e.To == nodeID {
			s.nodeID = nodeID
			v := Visit{Context: s.context.Name, NodeID: nodeID}
			s.recordVisitLocked(v)
			s.navigateLocked(v)
			return nil
		}
	}
	return fmt.Errorf("%w: member %q from %q in %q", ErrNoSuchEdge, nodeID, s.nodeID, s.context.Name)
}

// Back moves the cursor one entry toward the start of the navigation
// history — the browser's Back button over the session's traversal
// history. The history list itself is unchanged, so a later Forward
// returns here; a later navigation discards the forward part instead
// (truncate-on-new-navigation). Back fails with ErrNoHistory at the
// start of the history, and with a resolution error when the target
// entry no longer exists in the session's (possibly rebased) model —
// the session then stays where it is.
func (s *Session) Back() error { return s.seek(-1) }

// Forward moves the cursor one entry toward the end of the navigation
// history — it undoes a Back, and only a Back: after a new navigation
// there is no forward history. It fails with ErrNoHistory at the end
// of the history.
func (s *Session) Forward() error { return s.seek(+1) }

// seek moves the history cursor by delta (±1), re-resolving the target
// entry against the current model before committing.
func (s *Session) seek(delta int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.cur + delta
	if len(s.nav) == 0 || target < 0 || target >= len(s.nav) {
		return fmt.Errorf("%w (cursor %d of %d)", ErrNoHistory, s.cur, len(s.nav))
	}
	v := s.nav[target]
	rc := s.model.Context(v.Context)
	if rc == nil {
		return fmt.Errorf("navigation: history entry context %q no longer exists", v.Context)
	}
	switch {
	case v.NodeID == HubID:
		if !rc.Def.Access.HasHub() {
			return fmt.Errorf("navigation: history entry: context %q no longer has an entry page", v.Context)
		}
	case rc.Position(v.NodeID) < 0:
		return fmt.Errorf("%w: history entry %q in %q", ErrNotInContext, v.NodeID, v.Context)
	}
	s.cur = target
	s.context = rc
	s.nodeID = v.NodeID
	// Re-arriving via history is still a visit the trail logs — the
	// analytics view of "where has this visitor been" includes the
	// positions reached by going back.
	s.recordVisitLocked(v)
	return nil
}

// CanBack reports whether the history has an entry before the cursor.
func (s *Session) CanBack() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur > 0 && len(s.nav) > 0
}

// CanForward reports whether the history has an entry past the cursor.
func (s *Session) CanForward() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur < len(s.nav)-1
}

// NavHistory returns a copy of the navigation-history list and the
// cursor into it (nav[cursor] is the current position). Before any
// EnterContext the list is empty and the cursor 0.
func (s *Session) NavHistory() ([]Visit, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Visit(nil), s.nav...), s.cur
}

// SessionState is the serializable snapshot of a Session: the current
// position plus the full context trail. It is what the server's
// persistence layer writes through a storage.Store so a visitor's
// navigation survives a process restart.
type SessionState struct {
	// Context is the current resolved context name ("" before any
	// EnterContext).
	Context string `json:"context,omitempty"`
	// NodeID is the current node (HubID on an entry page).
	NodeID string `json:"node,omitempty"`
	// History is the visit trail in order.
	History []Visit `json:"history,omitempty"`
	// Nav is the navigation-history list (back/forward entries) and
	// Cursor the index of the current position within it. Records
	// written before histories existed carry neither; restore
	// synthesizes a single-entry history from the position.
	Nav    []Visit `json:"nav,omitempty"`
	Cursor int     `json:"cursor,omitempty"`
}

// State returns a consistent snapshot of the session for serialization.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionState{NodeID: s.nodeID, Cursor: s.cur}
	if s.context != nil {
		st.Context = s.context.Name
	}
	st.History = append([]Visit(nil), s.trailLocked()...)
	st.Nav = append([]Visit(nil), s.nav...)
	return st
}

// RestoreSession rebuilds a session from a snapshot over the given
// model: the history is restored verbatim (no new visit is appended) and
// the position is re-resolved against the current model. It fails when
// the snapshot's position no longer exists — the model changed under the
// stored trail — in which case the caller should start a fresh session.
func RestoreSession(model *ResolvedModel, state SessionState) (*Session, error) {
	s := NewSession(model)
	s.history = append([]Visit(nil), state.History...)
	if state.Context == "" {
		return s, nil
	}
	rc := model.Context(state.Context)
	if rc == nil {
		return nil, fmt.Errorf("navigation: restore: unknown context %q", state.Context)
	}
	switch {
	case state.NodeID == HubID:
		if !rc.Def.Access.HasHub() {
			return nil, fmt.Errorf("navigation: restore: context %q no longer has an entry page", state.Context)
		}
	case rc.Position(state.NodeID) < 0:
		return nil, fmt.Errorf("%w: restore: %q in %q", ErrNotInContext, state.NodeID, state.Context)
	}
	s.context = rc
	s.nodeID = state.NodeID
	switch {
	case len(state.Nav) == 0:
		// Pre-history record: the position is the whole known history.
		s.nav = []Visit{{Context: state.Context, NodeID: state.NodeID}}
		s.cur = 0
	case state.Cursor < 0 || state.Cursor >= len(state.Nav):
		return nil, fmt.Errorf("navigation: restore: cursor %d outside history of %d", state.Cursor, len(state.Nav))
	case state.Nav[state.Cursor] != (Visit{Context: state.Context, NodeID: state.NodeID}):
		return nil, fmt.Errorf("navigation: restore: history cursor disagrees with position %s/%s", state.Context, state.NodeID)
	default:
		s.nav = append([]Visit(nil), state.Nav...)
		s.cur = state.Cursor
	}
	return s, nil
}

// Rebase re-resolves the session's position against a newer resolved
// model, so a live visitor follows the navigation structure the pages
// are currently woven with — without it, a session created before a
// model mutation (an access-structure swap, an adaptation cycle) would
// keep answering Next per the old edges while freshly woven pages
// display the new ones. The history is kept verbatim. Rebase fails
// when the position no longer exists in the new model (the context is
// gone, the node left it, the entry page vanished); the session is
// then unchanged and the caller should start a fresh one.
func (s *Session) Rebase(rm *ResolvedModel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.model == rm {
		return nil
	}
	if s.context == nil {
		s.model = rm
		return nil
	}
	rc := rm.Context(s.context.Name)
	if rc == nil {
		return fmt.Errorf("navigation: rebase: unknown context %q", s.context.Name)
	}
	switch {
	case s.nodeID == HubID:
		if !rc.Def.Access.HasHub() {
			return fmt.Errorf("navigation: rebase: context %q no longer has an entry page", rc.Name)
		}
	case rc.Position(s.nodeID) < 0:
		return fmt.Errorf("%w: rebase: %q in %q", ErrNotInContext, s.nodeID, rc.Name)
	}
	s.model = rm
	s.context = rc
	return nil
}

// SwitchContext re-enters the current node through another context that
// contains it — the museum visitor turning from the author tour to the
// movement tour at the same painting.
func (s *Session) SwitchContext(contextName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil || s.nodeID == HubID {
		return fmt.Errorf("navigation: can only switch contexts at a member node")
	}
	return s.enterLocked(contextName, s.nodeID)
}
