package navigation

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotInContext is returned when a traversal is attempted from a node
// that is not a member of the session's current context.
var ErrNotInContext = errors.New("navigation: node not in current context")

// ErrNoSuchEdge is returned when the current context offers no edge of the
// requested kind from the current position.
var ErrNoSuchEdge = errors.New("navigation: no such traversal from here")

// Visit records one step of a session's history.
type Visit struct {
	// Context is the resolved context name ("" for the hub of none).
	Context string
	// NodeID is the visited node ("_index" for a hub page).
	NodeID string
}

// Session tracks a user's position in the navigation space: the current
// node and, crucially, the context through which it was reached. This is
// the paper's §2 museum semantics — the same painting answers "Next"
// differently when entered via its author than via its movement.
//
// A Session is safe for concurrent use: one visitor may have several
// in-flight requests (tabs, prefetching agents) mutating the same trail.
type Session struct {
	model *ResolvedModel

	mu      sync.Mutex
	context *ResolvedContext
	nodeID  string // current node, or HubID when on the entry page
	history []Visit
	// limit caps the trail at its most-recent limit visits (0 keeps
	// everything). The internal buffer trims with a little slack so the
	// cap costs one copy per limit/4 steps, not one per step; History
	// and State always expose exactly the most-recent limit.
	limit int
}

// SetTrailLimit caps the session's trail at its most-recent n visits
// (0 restores unlimited growth) and trims immediately. Long-lived
// sessions — a crawler walking a million pages on one cookie — keep
// bounded memory and bounded persistence records; navigation semantics
// never read the trimmed tail, so traversal behaviour is unchanged.
func (s *Session) SetTrailLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
	if n > 0 && len(s.history) > n {
		s.history = trimTrail(s.history, n)
	}
}

// recordVisitLocked appends a visit, trimming the trail once it
// overruns the cap by a quarter (amortized O(1) per step).
func (s *Session) recordVisitLocked(v Visit) {
	s.history = append(s.history, v)
	if s.limit > 0 && len(s.history) > s.limit+s.limit/4 {
		s.history = trimTrail(s.history, s.limit)
	}
}

// trailLocked is the externally visible trail: the most-recent limit
// visits (the buffer may briefly hold up to limit/4 more).
func (s *Session) trailLocked() []Visit {
	h := s.history
	if s.limit > 0 && len(h) > s.limit {
		h = h[len(h)-s.limit:]
	}
	return h
}

// trimTrail copies the most-recent limit visits into a fresh slice
// (with trim slack), releasing the old backing array.
func trimTrail(h []Visit, limit int) []Visit {
	trimmed := make([]Visit, limit, limit+limit/4+1)
	copy(trimmed, h[len(h)-limit:])
	return trimmed
}

// NewSession starts a session over a resolved model.
func NewSession(model *ResolvedModel) *Session {
	return &Session{model: model}
}

// Model returns the session's resolved model (the one the session was
// created with, or last rebased onto).
func (s *Session) Model() *ResolvedModel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// EnterContext moves the session into the named context at the given node
// (or at the hub when nodeID is HubID or empty and the structure has one).
func (s *Session) EnterContext(contextName, nodeID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enterLocked(contextName, nodeID)
}

// enterLocked is EnterContext with s.mu held.
func (s *Session) enterLocked(contextName, nodeID string) error {
	rc := s.model.Context(contextName)
	if rc == nil {
		return fmt.Errorf("navigation: unknown context %q", contextName)
	}
	if nodeID == "" {
		if rc.Def.Access.HasHub() {
			nodeID = HubID
		} else if len(rc.Members) > 0 {
			nodeID = rc.Members[0].ID()
		} else {
			return fmt.Errorf("navigation: context %q is empty", contextName)
		}
	}
	if nodeID != HubID && rc.Position(nodeID) < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNotInContext, nodeID, contextName)
	}
	s.context = rc
	s.nodeID = nodeID
	s.recordVisitLocked(Visit{Context: contextName, NodeID: nodeID})
	return nil
}

// Context returns the current context, or nil before EnterContext.
func (s *Session) Context() *ResolvedContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context
}

// Location returns the current context and node id as one consistent
// snapshot. Callers that need both must use this rather than separate
// Context/Here calls, which could interleave with a concurrent
// traversal on the same session.
func (s *Session) Location() (*ResolvedContext, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context, s.nodeID
}

// Here returns the current node, or nil when on a hub page.
func (s *Session) Here() *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil || s.nodeID == HubID {
		return nil
	}
	return s.context.Member(s.nodeID)
}

// AtHub reports whether the session is on the context's entry page.
func (s *Session) AtHub() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context != nil && s.nodeID == HubID
}

// History returns the visit trail in order (capped at the trail limit).
func (s *Session) History() []Visit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Visit(nil), s.trailLocked()...)
}

// follow moves along the first out-edge of the given kind.
func (s *Session) follow(kind EdgeKind) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil {
		return fmt.Errorf("navigation: no current context")
	}
	for _, e := range s.context.OutEdges(s.nodeID) {
		if e.Kind == kind {
			s.nodeID = e.To
			s.recordVisitLocked(Visit{Context: s.context.Name, NodeID: e.To})
			return nil
		}
	}
	return fmt.Errorf("%w: %s from %q in %q", ErrNoSuchEdge, kind, s.nodeID, s.context.Name)
}

// Next moves to the following member of the current context.
func (s *Session) Next() error { return s.follow(EdgeNext) }

// Prev moves to the preceding member of the current context.
func (s *Session) Prev() error { return s.follow(EdgePrev) }

// Up moves to the context's entry page.
func (s *Session) Up() error { return s.follow(EdgeUp) }

// Select moves from a hub page to the named member.
func (s *Session) Select(nodeID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil {
		return fmt.Errorf("navigation: no current context")
	}
	for _, e := range s.context.OutEdges(s.nodeID) {
		if e.Kind == EdgeMember && e.To == nodeID {
			s.nodeID = nodeID
			s.recordVisitLocked(Visit{Context: s.context.Name, NodeID: nodeID})
			return nil
		}
	}
	return fmt.Errorf("%w: member %q from %q in %q", ErrNoSuchEdge, nodeID, s.nodeID, s.context.Name)
}

// SessionState is the serializable snapshot of a Session: the current
// position plus the full context trail. It is what the server's
// persistence layer writes through a storage.Store so a visitor's
// navigation survives a process restart.
type SessionState struct {
	// Context is the current resolved context name ("" before any
	// EnterContext).
	Context string `json:"context,omitempty"`
	// NodeID is the current node (HubID on an entry page).
	NodeID string `json:"node,omitempty"`
	// History is the visit trail in order.
	History []Visit `json:"history,omitempty"`
}

// State returns a consistent snapshot of the session for serialization.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionState{NodeID: s.nodeID}
	if s.context != nil {
		st.Context = s.context.Name
	}
	st.History = append([]Visit(nil), s.trailLocked()...)
	return st
}

// RestoreSession rebuilds a session from a snapshot over the given
// model: the history is restored verbatim (no new visit is appended) and
// the position is re-resolved against the current model. It fails when
// the snapshot's position no longer exists — the model changed under the
// stored trail — in which case the caller should start a fresh session.
func RestoreSession(model *ResolvedModel, state SessionState) (*Session, error) {
	s := NewSession(model)
	s.history = append([]Visit(nil), state.History...)
	if state.Context == "" {
		return s, nil
	}
	rc := model.Context(state.Context)
	if rc == nil {
		return nil, fmt.Errorf("navigation: restore: unknown context %q", state.Context)
	}
	switch {
	case state.NodeID == HubID:
		if !rc.Def.Access.HasHub() {
			return nil, fmt.Errorf("navigation: restore: context %q no longer has an entry page", state.Context)
		}
	case rc.Position(state.NodeID) < 0:
		return nil, fmt.Errorf("%w: restore: %q in %q", ErrNotInContext, state.NodeID, state.Context)
	}
	s.context = rc
	s.nodeID = state.NodeID
	return s, nil
}

// Rebase re-resolves the session's position against a newer resolved
// model, so a live visitor follows the navigation structure the pages
// are currently woven with — without it, a session created before a
// model mutation (an access-structure swap, an adaptation cycle) would
// keep answering Next per the old edges while freshly woven pages
// display the new ones. The history is kept verbatim. Rebase fails
// when the position no longer exists in the new model (the context is
// gone, the node left it, the entry page vanished); the session is
// then unchanged and the caller should start a fresh one.
func (s *Session) Rebase(rm *ResolvedModel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.model == rm {
		return nil
	}
	if s.context == nil {
		s.model = rm
		return nil
	}
	rc := rm.Context(s.context.Name)
	if rc == nil {
		return fmt.Errorf("navigation: rebase: unknown context %q", s.context.Name)
	}
	switch {
	case s.nodeID == HubID:
		if !rc.Def.Access.HasHub() {
			return fmt.Errorf("navigation: rebase: context %q no longer has an entry page", rc.Name)
		}
	case rc.Position(s.nodeID) < 0:
		return fmt.Errorf("%w: rebase: %q in %q", ErrNotInContext, s.nodeID, rc.Name)
	}
	s.model = rm
	s.context = rc
	return nil
}

// SwitchContext re-enters the current node through another context that
// contains it — the museum visitor turning from the author tour to the
// movement tour at the same painting.
func (s *Session) SwitchContext(contextName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.context == nil || s.nodeID == HubID {
		return fmt.Errorf("navigation: can only switch contexts at a member node")
	}
	return s.enterLocked(contextName, s.nodeID)
}
