package navigation

import (
	"fmt"
	"sort"
	"strings"
)

// StructureSpec is the wire form of an access structure: a declarative,
// addressable JSON artifact carrying the whole navigational aspect of
// one context family — what "Semantic Navigation on the Web of Data"
// asks of navigation specifications, and what the control plane moves
// between processes. EncodeSpec and DecodeSpec are inverses: a spec
// round-trips bit-for-bit, so an operator can GET a family's structure,
// edit one field and PUT it back.
type StructureSpec struct {
	// Kind is the structure identifier AccessByKind understands
	// ("index", "menu", "guided-tour", "indexed-guided-tour") plus
	// "adaptive-tour". The "circular-" prefix is accepted on decode as
	// shorthand for Circular: true.
	Kind string `json:"kind"`
	// Circular closes a tour's Next/Prev ring. Only tours may set it.
	Circular bool `json:"circular,omitempty"`
	// Fallback is the authored structure an adaptive tour serves to
	// unplanned contexts. Only "adaptive-tour" may carry one, and it
	// must not itself be adaptive — the codec keeps the invariant
	// BaseAccess enforces in memory.
	Fallback *StructureSpec `json:"fallback,omitempty"`
	// Plans are an adaptive tour's per-context derived plans, keyed by
	// resolved context name.
	Plans map[string]TourPlanSpec `json:"plans,omitempty"`
}

// TourPlanSpec is the wire form of one context's TourPlan.
type TourPlanSpec struct {
	Order     []string `json:"order,omitempty"`
	Landmarks []string `json:"landmarks,omitempty"`
	Dead      []string `json:"dead,omitempty"`
}

// EncodeSpec renders an access structure as its wire spec. Adaptive
// tours encode their *base* structure as the fallback (a nested
// adaptive fallback is unwrapped, mirroring BaseAccess), so encoding is
// stable: Encode∘Decode∘Encode is the identity on every encodable
// structure. Structures outside the built-in vocabulary (a custom
// AccessStructure implementation) are not encodable.
func EncodeSpec(as AccessStructure) (*StructureSpec, error) {
	switch s := as.(type) {
	case Index:
		return &StructureSpec{Kind: s.Kind()}, nil
	case Menu:
		return &StructureSpec{Kind: s.Kind()}, nil
	case GuidedTour:
		return &StructureSpec{Kind: s.Kind(), Circular: s.Circular}, nil
	case IndexedGuidedTour:
		return &StructureSpec{Kind: s.Kind(), Circular: s.Circular}, nil
	case AdaptiveTour:
		return encodeAdaptive(s)
	case *AdaptiveTour:
		return encodeAdaptive(*s)
	case nil:
		return nil, fmt.Errorf("navigation: cannot encode a nil access structure")
	}
	return nil, fmt.Errorf("navigation: access structure kind %q has no wire form", as.Kind())
}

// encodeAdaptive encodes an adaptive tour: the unwrapped base structure
// as the fallback, and a deep copy of every plan (the spec must not
// alias the live tour's slices — a caller mutating the spec before a
// PUT must not reach into the serving model).
func encodeAdaptive(a AdaptiveTour) (*StructureSpec, error) {
	fb, err := EncodeSpec(a.fallback())
	if err != nil {
		return nil, fmt.Errorf("navigation: adaptive tour fallback: %w", err)
	}
	spec := &StructureSpec{Kind: a.Kind(), Circular: a.Circular, Fallback: fb}
	if len(a.Plans) > 0 {
		spec.Plans = make(map[string]TourPlanSpec, len(a.Plans))
		for name, p := range a.Plans {
			spec.Plans[name] = TourPlanSpec{
				Order:     append([]string(nil), p.Order...),
				Landmarks: append([]string(nil), p.Landmarks...),
				Dead:      append([]string(nil), p.Dead...),
			}
		}
	}
	return spec, nil
}

// DecodeSpec validates a wire spec and constructs the access structure
// it describes. Validation is strict so the control plane's
// validate-then-mutate contract holds: a field the named kind cannot
// carry (circular on an index, plans on a menu, an adaptive fallback
// that is itself adaptive) is an error, never silently dropped.
func DecodeSpec(spec *StructureSpec) (AccessStructure, error) {
	if spec == nil {
		return nil, fmt.Errorf("navigation: nil structure spec")
	}
	kind := spec.Kind
	circular := spec.Circular
	if strings.HasPrefix(kind, "circular-") {
		kind = strings.TrimPrefix(kind, "circular-")
		circular = true
	}
	if kind != "adaptive-tour" {
		if len(spec.Plans) > 0 {
			return nil, fmt.Errorf("navigation: structure kind %q cannot carry plans", kind)
		}
		if spec.Fallback != nil {
			return nil, fmt.Errorf("navigation: structure kind %q cannot carry a fallback", kind)
		}
	}
	switch kind {
	case "index", "menu":
		if circular {
			return nil, fmt.Errorf("navigation: structure kind %q cannot be circular", kind)
		}
		if kind == "index" {
			return Index{}, nil
		}
		return Menu{}, nil
	case "guided-tour":
		return GuidedTour{Circular: circular}, nil
	case "indexed-guided-tour":
		return IndexedGuidedTour{Circular: circular}, nil
	case "adaptive-tour":
		return decodeAdaptive(spec, circular)
	case "":
		return nil, fmt.Errorf("navigation: structure spec has no kind")
	}
	return nil, fmt.Errorf("navigation: unknown structure kind %q", spec.Kind)
}

// decodeAdaptive builds an adaptive tour from its spec. The result is a
// *AdaptiveTour, the same shape the analytics deriver installs, so a
// spec PUT through the control plane and a derived tour are
// indistinguishable to the serving stack.
func decodeAdaptive(spec *StructureSpec, circular bool) (AccessStructure, error) {
	tour := &AdaptiveTour{Circular: circular}
	if spec.Fallback != nil {
		fb, err := DecodeSpec(spec.Fallback)
		if err != nil {
			return nil, fmt.Errorf("navigation: adaptive tour fallback: %w", err)
		}
		if fb.Kind() == (AdaptiveTour{}).Kind() {
			return nil, fmt.Errorf("navigation: adaptive tour fallback cannot itself be adaptive")
		}
		tour.Fallback = fb
	}
	if len(spec.Plans) > 0 {
		tour.Plans = make(map[string]TourPlan, len(spec.Plans))
		for name, p := range spec.Plans {
			if name == "" {
				return nil, fmt.Errorf("navigation: adaptive tour plan with empty context name")
			}
			tour.Plans[name] = TourPlan{
				Order:     append([]string(nil), p.Order...),
				Landmarks: append([]string(nil), p.Landmarks...),
				Dead:      append([]string(nil), p.Dead...),
			}
		}
	}
	return tour, nil
}

// AccessText renders an access structure with its full parameters on
// one line — the form SpecText declares and navctl prints, so the E8
// change-cost diff and the control plane show the same artifact. For
// the built-in structures the text is exactly the AccessByKind
// identifier ("circular-guided-tour"), making the declaration
// executable; adaptive tours append their fallback and sorted
// per-context plans.
func AccessText(as AccessStructure) string {
	switch s := as.(type) {
	case Index, Menu:
		return s.Kind()
	case GuidedTour:
		return circularPrefix(s.Circular) + s.Kind()
	case IndexedGuidedTour:
		return circularPrefix(s.Circular) + s.Kind()
	case AdaptiveTour:
		return adaptiveText(s)
	case *AdaptiveTour:
		return adaptiveText(*s)
	case nil:
		return "<nil>"
	}
	return as.Kind()
}

func circularPrefix(circular bool) string {
	if circular {
		return "circular-"
	}
	return ""
}

// adaptiveText renders an adaptive tour deterministically: plans sorted
// by context name, each with its order, landmarks and demotions.
func adaptiveText(a AdaptiveTour) string {
	var sb strings.Builder
	sb.WriteString(circularPrefix(a.Circular))
	sb.WriteString(a.Kind())
	sb.WriteString("(fallback=")
	sb.WriteString(AccessText(a.fallback()))
	if len(a.Plans) > 0 {
		names := make([]string, 0, len(a.Plans))
		for name := range a.Plans {
			names = append(names, name)
		}
		sort.Strings(names)
		sb.WriteString(" plans=[")
		for i, name := range names {
			if i > 0 {
				sb.WriteString(" ")
			}
			p := a.Plans[name]
			fmt.Fprintf(&sb, "%s{order=[%s]", name, strings.Join(p.Order, " "))
			if len(p.Landmarks) > 0 {
				fmt.Fprintf(&sb, " landmarks=[%s]", strings.Join(p.Landmarks, " "))
			}
			if len(p.Dead) > 0 {
				fmt.Fprintf(&sb, " dead=[%s]", strings.Join(p.Dead, " "))
			}
			sb.WriteString("}")
		}
		sb.WriteString("]")
	}
	sb.WriteString(")")
	return sb.String()
}
