package navigation

import "fmt"

// EdgeKind classifies a navigation edge by its traversal meaning.
type EdgeKind string

// Edge kinds. Member/Up come from index-style structures, Next/Prev from
// tours, Page from pagination (which §2 of the paper classifies as
// scrolling, not navigation).
const (
	EdgeMember EdgeKind = "member" // hub (index page) -> member node
	EdgeUp     EdgeKind = "up"     // member node -> hub
	EdgeNext   EdgeKind = "next"   // member -> following member
	EdgePrev   EdgeKind = "prev"   // member -> preceding member
	EdgePage   EdgeKind = "page"   // result page -> result page (scrolling)
)

// HubID is the pseudo-node identity of an access structure's entry page
// (the index page of Figure 3) within a resolved context.
const HubID = "_index"

// Edge is one directed navigation edge between nodes of a context. From
// or To may be HubID for the structure's entry page.
type Edge struct {
	From  string
	To    string
	Kind  EdgeKind
	Label string
	// Show is the XLink behaviour requested for traversing the edge
	// ("replace", "new" or "embed"); ResolvedContext.Edges stamps the
	// context's declared behaviour, defaulting to "replace".
	Show string
}

// String renders the edge for diagnostics and experiment output.
func (e Edge) String() string {
	return fmt.Sprintf("%s -> %s [%s %q]", e.From, e.To, e.Kind, e.Label)
}

// AccessStructure computes the link topology over an ordered member list.
// It is the navigational primitive whose replacement (Index -> Indexed
// Guided Tour) drives the paper's motivating change scenario.
type AccessStructure interface {
	// Kind returns the structure's identifier, e.g. "index".
	Kind() string
	// HasHub reports whether the structure has an entry (index) page.
	HasHub() bool
	// Edges returns the structure's edges over the given ordered member
	// node IDs, with labels holding member titles for hub edges.
	Edges(members []*Node) []Edge
}

// Index is the access structure of Figure 2(a): an entry page linking to
// every member, and each member linking back up to the entry page.
type Index struct{}

// Kind implements AccessStructure.
func (Index) Kind() string { return "index" }

// HasHub implements AccessStructure.
func (Index) HasHub() bool { return true }

// Edges implements AccessStructure.
func (Index) Edges(members []*Node) []Edge {
	var out []Edge
	for _, m := range members {
		out = append(out, Edge{From: HubID, To: m.ID(), Kind: EdgeMember, Label: m.Title()})
	}
	for _, m := range members {
		out = append(out, Edge{From: m.ID(), To: HubID, Kind: EdgeUp, Label: "Index"})
	}
	return out
}

// GuidedTour is a pure sequential tour: Next/Prev between consecutive
// members, no entry page (entry is the first member).
type GuidedTour struct {
	// Circular closes the tour: the last member's Next is the first.
	Circular bool
}

// Kind implements AccessStructure.
func (g GuidedTour) Kind() string { return "guided-tour" }

// HasHub implements AccessStructure.
func (GuidedTour) HasHub() bool { return false }

// Edges implements AccessStructure.
func (g GuidedTour) Edges(members []*Node) []Edge {
	var out []Edge
	for i := 0; i < len(members)-1; i++ {
		out = append(out, Edge{From: members[i].ID(), To: members[i+1].ID(), Kind: EdgeNext, Label: "Next"})
		out = append(out, Edge{From: members[i+1].ID(), To: members[i].ID(), Kind: EdgePrev, Label: "Previous"})
	}
	if g.Circular && len(members) > 1 {
		last, first := members[len(members)-1], members[0]
		out = append(out, Edge{From: last.ID(), To: first.ID(), Kind: EdgeNext, Label: "Next"})
		out = append(out, Edge{From: first.ID(), To: last.ID(), Kind: EdgePrev, Label: "Previous"})
	}
	return out
}

// IndexedGuidedTour is the access structure of Figure 2(b), the one the
// paper's customer asked for: an Index plus a Guided Tour — the entry page
// links every member, members link back up, and consecutive members are
// joined by Next/Prev. In the tangled implementation (Figure 4) adopting
// it meant editing every page of the context; as an aspect it is one
// declaration.
type IndexedGuidedTour struct {
	// Circular closes the tour ring.
	Circular bool
}

// Kind implements AccessStructure.
func (IndexedGuidedTour) Kind() string { return "indexed-guided-tour" }

// HasHub implements AccessStructure.
func (IndexedGuidedTour) HasHub() bool { return true }

// Edges implements AccessStructure.
func (t IndexedGuidedTour) Edges(members []*Node) []Edge {
	out := Index{}.Edges(members)
	out = append(out, GuidedTour{Circular: t.Circular}.Edges(members)...)
	return out
}

// Menu is a flat entry page linking to members without back-links; the
// global navigation bar of most sites. Unlike Index it adds no Up edges,
// so member pages are not coupled to it.
type Menu struct{}

// Kind implements AccessStructure.
func (Menu) Kind() string { return "menu" }

// HasHub implements AccessStructure.
func (Menu) HasHub() bool { return true }

// Edges implements AccessStructure.
func (Menu) Edges(members []*Node) []Edge {
	var out []Edge
	for _, m := range members {
		out = append(out, Edge{From: HubID, To: m.ID(), Kind: EdgeMember, Label: m.Title()})
	}
	return out
}

// AccessByKind constructs an access structure from its kind identifier,
// the inverse of Kind(). It supports the four built-ins; circular tour
// variants use the "circular-" prefix.
func AccessByKind(kind string) (AccessStructure, error) {
	switch kind {
	case "index":
		return Index{}, nil
	case "guided-tour":
		return GuidedTour{}, nil
	case "circular-guided-tour":
		return GuidedTour{Circular: true}, nil
	case "indexed-guided-tour":
		return IndexedGuidedTour{}, nil
	case "circular-indexed-guided-tour":
		return IndexedGuidedTour{Circular: true}, nil
	case "menu":
		return Menu{}, nil
	default:
		return nil, fmt.Errorf("navigation: unknown access structure kind %q", kind)
	}
}

// Interface compliance checks.
var (
	_ AccessStructure = Index{}
	_ AccessStructure = GuidedTour{}
	_ AccessStructure = IndexedGuidedTour{}
	_ AccessStructure = Menu{}
)
