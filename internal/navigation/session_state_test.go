package navigation_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

func resolvedPaperModel(t *testing.T) *navigation.ResolvedModel {
	t.Helper()
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestSessionStateRoundTrip(t *testing.T) {
	rm := resolvedPaperModel(t)
	sess := navigation.NewSession(rm)
	if err := sess.EnterContext("ByAuthor:picasso", "avignon"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Next(); err != nil {
		t.Fatal(err)
	}

	state := sess.State()
	if state.Context != "ByAuthor:picasso" || state.NodeID != "guitar" {
		t.Fatalf("state = %+v", state)
	}
	// Through JSON, as the server's persistence layer stores it.
	raw, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var decoded navigation.SessionState
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	restored, err := navigation.RestoreSession(rm, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.History(), sess.History()) {
		t.Errorf("history: %+v != %+v", restored.History(), sess.History())
	}
	rc, node := restored.Location()
	if rc.Name != "ByAuthor:picasso" || node != "guitar" {
		t.Errorf("location = %s/%s", rc.Name, node)
	}
	// The restored session must keep navigating: next from guitar is
	// guernica (ByAuthor is ordered by year).
	if err := restored.Next(); err != nil {
		t.Fatal(err)
	}
	if _, node := restored.Location(); node != "guernica" {
		t.Errorf("Next after restore = %s, want guernica", node)
	}
	// Restoring must not have appended a visit of its own.
	if got := len(restored.History()); got != 3 {
		t.Errorf("history length after restore+Next = %d, want 3", got)
	}
}

func TestRestoreSessionAtHub(t *testing.T) {
	rm := resolvedPaperModel(t)
	sess := navigation.NewSession(rm)
	if err := sess.EnterContext("ByAuthor:picasso", navigation.HubID); err != nil {
		t.Fatal(err)
	}
	restored, err := navigation.RestoreSession(rm, sess.State())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.AtHub() {
		t.Error("restored session not at hub")
	}
}

func TestRestoreFreshSession(t *testing.T) {
	rm := resolvedPaperModel(t)
	restored, err := navigation.RestoreSession(rm, navigation.SessionState{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Context() != nil || len(restored.History()) != 0 {
		t.Errorf("restored empty state = %+v", restored.State())
	}
}

func TestRestoreSessionErrors(t *testing.T) {
	rm := resolvedPaperModel(t)
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByDecade:1930s", NodeID: "guernica",
	}); err == nil {
		t.Error("unknown context accepted")
	}
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: "memory", // dali's painting
	}); !errors.Is(err, navigation.ErrNotInContext) {
		t.Errorf("foreign node err = %v, want ErrNotInContext", err)
	}
	// A hub position in a context whose access structure lost its hub.
	rmNoHub, err := museum.Model(navigation.GuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := navigation.RestoreSession(rmNoHub, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: navigation.HubID,
	}); err == nil {
		t.Error("hub position accepted in hub-less context")
	}
}
