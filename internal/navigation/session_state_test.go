package navigation_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

func resolvedPaperModel(t *testing.T) *navigation.ResolvedModel {
	t.Helper()
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestSessionStateRoundTrip(t *testing.T) {
	rm := resolvedPaperModel(t)
	sess := navigation.NewSession(rm)
	if err := sess.EnterContext("ByAuthor:picasso", "avignon"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Next(); err != nil {
		t.Fatal(err)
	}

	state := sess.State()
	if state.Context != "ByAuthor:picasso" || state.NodeID != "guitar" {
		t.Fatalf("state = %+v", state)
	}
	// Through JSON, as the server's persistence layer stores it.
	raw, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var decoded navigation.SessionState
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	restored, err := navigation.RestoreSession(rm, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.History(), sess.History()) {
		t.Errorf("history: %+v != %+v", restored.History(), sess.History())
	}
	rc, node := restored.Location()
	if rc.Name != "ByAuthor:picasso" || node != "guitar" {
		t.Errorf("location = %s/%s", rc.Name, node)
	}
	// The restored session must keep navigating: next from guitar is
	// guernica (ByAuthor is ordered by year).
	if err := restored.Next(); err != nil {
		t.Fatal(err)
	}
	if _, node := restored.Location(); node != "guernica" {
		t.Errorf("Next after restore = %s, want guernica", node)
	}
	// Restoring must not have appended a visit of its own.
	if got := len(restored.History()); got != 3 {
		t.Errorf("history length after restore+Next = %d, want 3", got)
	}
}

// TestSessionStateHistoryRoundTrip: the navigation history — the list
// Back and Forward traverse, with its cursor — survives the JSON
// persist→rehydrate cycle, including a mid-history cursor.
func TestSessionStateHistoryRoundTrip(t *testing.T) {
	rm := resolvedPaperModel(t)
	sess := navigation.NewSession(rm)
	for _, step := range []func() error{
		func() error { return sess.EnterContext("ByAuthor:picasso", "avignon") },
		sess.Next, // guitar
		sess.Next, // guernica
		sess.Back, // back to guitar: mid-history, forward entry live
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := json.Marshal(sess.State())
	if err != nil {
		t.Fatal(err)
	}
	var decoded navigation.SessionState
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := navigation.RestoreSession(rm, decoded)
	if err != nil {
		t.Fatal(err)
	}

	wantNav, wantCur := sess.NavHistory()
	gotNav, gotCur := restored.NavHistory()
	if gotCur != wantCur || !reflect.DeepEqual(gotNav, wantNav) {
		t.Fatalf("restored history %+v@%d, want %+v@%d", gotNav, gotCur, wantNav, wantCur)
	}
	// The restored session resumes mid-history: Forward reaches the
	// entry the pre-restart Back stepped away from, and a further Back
	// retraces the walk.
	if err := restored.Forward(); err != nil {
		t.Fatal(err)
	}
	if _, node := restored.Location(); node != "guernica" {
		t.Errorf("Forward after restore = %s, want guernica", node)
	}
	if err := restored.Back(); err != nil {
		t.Fatal(err)
	}
	if err := restored.Back(); err != nil {
		t.Fatal(err)
	}
	if _, node := restored.Location(); node != "avignon" {
		t.Errorf("Back×2 after restore = %s, want avignon", node)
	}
}

// TestRestoreSessionLegacyRecord: a record persisted before histories
// existed (no nav, no cursor) synthesizes a single-entry history at the
// stored position, so old cookies keep working after an upgrade.
func TestRestoreSessionLegacyRecord(t *testing.T) {
	rm := resolvedPaperModel(t)
	restored, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByAuthor:picasso",
		NodeID:  "guitar",
		History: []navigation.Visit{
			{Context: "ByAuthor:picasso", NodeID: "avignon"},
			{Context: "ByAuthor:picasso", NodeID: "guitar"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nav, cur := restored.NavHistory()
	if len(nav) != 1 || cur != 0 || nav[0] != (navigation.Visit{Context: "ByAuthor:picasso", NodeID: "guitar"}) {
		t.Fatalf("synthesized history = %+v@%d", nav, cur)
	}
	if restored.CanBack() || restored.CanForward() {
		t.Error("legacy record should have no back/forward entries")
	}
	// The trail is still the stored one.
	if got := len(restored.History()); got != 2 {
		t.Errorf("trail length = %d, want 2", got)
	}
}

// TestRestoreSessionCorruptHistory: a cursor outside the list, or a
// cursor entry disagreeing with the stored position, marks the record
// corrupt — restore refuses rather than resuming somewhere wrong.
func TestRestoreSessionCorruptHistory(t *testing.T) {
	rm := resolvedPaperModel(t)
	nav := []navigation.Visit{
		{Context: "ByAuthor:picasso", NodeID: "avignon"},
		{Context: "ByAuthor:picasso", NodeID: "guitar"},
	}
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: "guitar", Nav: nav, Cursor: 5,
	}); err == nil {
		t.Error("out-of-range cursor accepted")
	}
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: "guitar", Nav: nav, Cursor: 0,
	}); err == nil {
		t.Error("cursor/position disagreement accepted")
	}
}

func TestRestoreSessionAtHub(t *testing.T) {
	rm := resolvedPaperModel(t)
	sess := navigation.NewSession(rm)
	if err := sess.EnterContext("ByAuthor:picasso", navigation.HubID); err != nil {
		t.Fatal(err)
	}
	restored, err := navigation.RestoreSession(rm, sess.State())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.AtHub() {
		t.Error("restored session not at hub")
	}
}

func TestRestoreFreshSession(t *testing.T) {
	rm := resolvedPaperModel(t)
	restored, err := navigation.RestoreSession(rm, navigation.SessionState{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Context() != nil || len(restored.History()) != 0 {
		t.Errorf("restored empty state = %+v", restored.State())
	}
}

func TestRestoreSessionErrors(t *testing.T) {
	rm := resolvedPaperModel(t)
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByDecade:1930s", NodeID: "guernica",
	}); err == nil {
		t.Error("unknown context accepted")
	}
	if _, err := navigation.RestoreSession(rm, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: "memory", // dali's painting
	}); !errors.Is(err, navigation.ErrNotInContext) {
		t.Errorf("foreign node err = %v, want ErrNotInContext", err)
	}
	// A hub position in a context whose access structure lost its hub.
	rmNoHub, err := museum.Model(navigation.GuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := navigation.RestoreSession(rmNoHub, navigation.SessionState{
		Context: "ByAuthor:picasso", NodeID: navigation.HubID,
	}); err == nil {
		t.Error("hub position accepted in hub-less context")
	}
}
