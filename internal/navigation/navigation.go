// Package navigation implements the navigational model of the paper's §4:
// the primitives the web-design methodologies (HDM, RMM, OOHDM) use to
// describe navigation separately from the conceptual model.
//
//   - NodeClass: a node type, defined as a view over a conceptual class.
//   - NavLink: a link type, defined as a view over a relationship.
//   - AccessStructure: alternative ways to traverse a set of nodes —
//     Index, Guided Tour, Indexed Guided Tour (paper Figure 2) and Menu.
//   - ContextDef / ResolvedContext: OOHDM's navigational context, the
//     primitive that organizes the navigation space into consistent sets
//     traversable in a particular order.
//   - Session: the paper's §2 semantics — what "Next" means depends on
//     the context through which the current node was reached.
//
// Nothing in this package renders HTML or stores data; it is purely the
// navigational aspect, which packages core and aspect weave into pages.
package navigation

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/conceptual"
)

// NodeClass is a navigational node type: a named view (projection) over a
// conceptual class.
type NodeClass struct {
	// Name is the node class name, e.g. "PaintingNode".
	Name string
	// Class is the underlying conceptual class name.
	Class string
	// AttrNames selects which attributes the node exposes; empty means
	// all attributes.
	AttrNames []string
	// TitleAttr names the attribute used as the node's display title;
	// the instance ID is used when empty.
	TitleAttr string
}

// Node is an instance-level navigational node: one conceptual instance
// seen through a node class.
type Node struct {
	// Class is the node's node class.
	Class *NodeClass
	// Instance is the underlying conceptual instance.
	Instance *conceptual.Instance
}

// ID returns the node's identity (the instance ID).
func (n *Node) ID() string { return n.Instance.ID }

// Title returns the display title per the node class's TitleAttr.
func (n *Node) Title() string {
	if n.Class.TitleAttr != "" {
		if v := n.Instance.Attr(n.Class.TitleAttr); v != "" {
			return v
		}
	}
	return n.Instance.ID
}

// Attr returns an exposed attribute value; attributes outside the node
// class's projection read as empty.
func (n *Node) Attr(name string) string {
	if len(n.Class.AttrNames) > 0 {
		found := false
		for _, a := range n.Class.AttrNames {
			if a == name {
				found = true
				break
			}
		}
		if !found {
			return ""
		}
	}
	return n.Instance.Attr(name)
}

// AttrNames returns the node's exposed attribute names, sorted.
func (n *Node) AttrNames() []string {
	if len(n.Class.AttrNames) > 0 {
		out := append([]string(nil), n.Class.AttrNames...)
		sort.Strings(out)
		return out
	}
	return n.Instance.AttrNames()
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("%s[%s]", n.Class.Name, n.ID())
}

// NavLink is a navigational link type: a named view over a conceptual
// relationship, connecting two node classes.
type NavLink struct {
	// Name is the link name shown to users, e.g. "works".
	Name string
	// Rel is the underlying relationship (or declared inverse) name.
	Rel string
	// From and To are node class names.
	From string
	To   string
}

// Model is a complete navigational schema: node classes, link views and
// context definitions over one conceptual schema. Like OOHDM, several
// Models may view the same conceptual schema differently.
type Model struct {
	nodeClasses map[string]*NodeClass
	classOrder  []string
	links       []*NavLink
	contexts    []*ContextDef
	landmarks   []string
}

// NewModel returns an empty navigational model.
func NewModel() *Model {
	return &Model{nodeClasses: map[string]*NodeClass{}}
}

// AddNodeClass registers a node class.
func (m *Model) AddNodeClass(nc *NodeClass) error {
	if nc == nil || nc.Name == "" {
		return fmt.Errorf("navigation: node class must have a name")
	}
	if _, dup := m.nodeClasses[nc.Name]; dup {
		return fmt.Errorf("navigation: node class %q already defined", nc.Name)
	}
	m.nodeClasses[nc.Name] = nc
	m.classOrder = append(m.classOrder, nc.Name)
	return nil
}

// MustAddNodeClass is AddNodeClass that panics.
func (m *Model) MustAddNodeClass(nc *NodeClass) {
	if err := m.AddNodeClass(nc); err != nil {
		panic(err)
	}
}

// NodeClass returns the named node class, or nil.
func (m *Model) NodeClass(name string) *NodeClass { return m.nodeClasses[name] }

// NodeClasses returns the node classes in declaration order.
func (m *Model) NodeClasses() []*NodeClass {
	out := make([]*NodeClass, 0, len(m.classOrder))
	for _, n := range m.classOrder {
		out = append(out, m.nodeClasses[n])
	}
	return out
}

// AddLink registers a navigational link view.
func (m *Model) AddLink(l *NavLink) error {
	if l == nil || l.Name == "" {
		return fmt.Errorf("navigation: link must have a name")
	}
	if m.nodeClasses[l.From] == nil {
		return fmt.Errorf("navigation: link %q: unknown node class %q", l.Name, l.From)
	}
	if m.nodeClasses[l.To] == nil {
		return fmt.Errorf("navigation: link %q: unknown node class %q", l.Name, l.To)
	}
	m.links = append(m.links, l)
	return nil
}

// MustAddLink is AddLink that panics.
func (m *Model) MustAddLink(l *NavLink) {
	if err := m.AddLink(l); err != nil {
		panic(err)
	}
}

// Links returns the link views in declaration order.
func (m *Model) Links() []*NavLink { return m.links }

// AddContext registers a navigational context definition.
func (m *Model) AddContext(c *ContextDef) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("navigation: context must have a name")
	}
	if m.nodeClasses[c.NodeClass] == nil {
		return fmt.Errorf("navigation: context %q: unknown node class %q", c.Name, c.NodeClass)
	}
	if c.Access == nil {
		return fmt.Errorf("navigation: context %q: access structure required", c.Name)
	}
	for _, existing := range m.contexts {
		if existing.Name == c.Name {
			return fmt.Errorf("navigation: context %q already defined", c.Name)
		}
	}
	m.contexts = append(m.contexts, c)
	return nil
}

// MustAddContext is AddContext that panics.
func (m *Model) MustAddContext(c *ContextDef) {
	if err := m.AddContext(c); err != nil {
		panic(err)
	}
}

// Contexts returns the context definitions in declaration order.
func (m *Model) Contexts() []*ContextDef { return m.contexts }

// AddLandmark marks an ungrouped context as a landmark: an entry point
// reachable from every page of the application (OOHDM's landmark
// primitive — the global navigation bar). The named context must already
// be declared and must not be grouped (a grouped family has no single
// entry page).
func (m *Model) AddLandmark(contextName string) error {
	var def *ContextDef
	for _, c := range m.contexts {
		if c.Name == contextName {
			def = c
			break
		}
	}
	if def == nil {
		return fmt.Errorf("navigation: landmark %q: no such context", contextName)
	}
	if def.GroupBy != "" {
		return fmt.Errorf("navigation: landmark %q: grouped context families cannot be landmarks", contextName)
	}
	for _, l := range m.landmarks {
		if l == contextName {
			return fmt.Errorf("navigation: landmark %q already declared", contextName)
		}
	}
	m.landmarks = append(m.landmarks, contextName)
	return nil
}

// MustAddLandmark is AddLandmark that panics.
func (m *Model) MustAddLandmark(contextName string) {
	if err := m.AddLandmark(contextName); err != nil {
		panic(err)
	}
}

// Landmarks returns the landmark context names in declaration order.
func (m *Model) Landmarks() []string { return append([]string(nil), m.landmarks...) }

// nodeOf wraps an instance in its node class view.
func nodeOf(nc *NodeClass, inst *conceptual.Instance) *Node {
	return &Node{Class: nc, Instance: inst}
}

// orderNodes sorts nodes by the given attribute (numeric when both values
// parse as integers, else lexicographic), stably; an empty attr keeps the
// incoming order.
func orderNodes(nodes []*Node, attr string) {
	if attr == "" {
		return
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		a, b := nodes[i].Instance.Attr(attr), nodes[j].Instance.Attr(attr)
		ai, aerr := strconv.Atoi(a)
		bi, berr := strconv.Atoi(b)
		if aerr == nil && berr == nil {
			return ai < bi
		}
		return a < b
	})
}
