// Package experiments implements the per-figure reproduction harness of
// EXPERIMENTS.md: each function regenerates one artifact or table of the
// paper (Figures 1–9 and the quantified §5 claims) and returns it as
// printable text. cmd/navbench is the CLI front end.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"text/tabwriter"

	"repro/internal/aspect"
	"repro/internal/core"
	"repro/internal/difflib"
	"repro/internal/lift"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/tangled"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the experiment identifier, e.g. "e1".
	ID string
	// Title summarizes what is reproduced.
	Title string
	// Run produces the experiment's printable output.
	Run func() (string, error)
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"e1", "Fig 1/6 — aspect weaving trace", E1WeaveTrace},
		{"e2", "Fig 2(a) — Index topology", E2IndexTopology},
		{"e3", "Fig 2(b) — Indexed Guided Tour topology", E3IGTTopology},
		{"e4", "Fig 3 — Guitar page under Index", E4GuitarIndexPage},
		{"e5", "Fig 4 — Guitar page under IGT (+diff vs Fig 3)", E5GuitarIGTPage},
		{"e6", "Fig 5 — implementation class inventory", E6ClassInventory},
		{"e7", "Figs 7–9 — picasso.xml, avignon.xml, links.xml", E7DataAndLinkbase},
		{"e8", "§5 claim — change-cost table (tangled vs separated)", E8ChangeCostTable},
		{"e9", "§2 — context-dependent Next traces", E9ContextTraces},
		{"e10", "§6 — weaving throughput", E10WeaveThroughput},
		{"e11", "§3 ablation — advice dispatch overhead", E11AdviceOverhead},
		{"e12", "§6 — XLink arc-resolution scaling", E12XLinkScaling},
		{"e13", "§2 — navigation vs scrolling classification", E13Classification},
		{"e14", "scale — parallel weave & cached request-time serving", E14ConcurrentServing},
		{"x1", "extension — lifting a tangled site into a linkbase", X1LiftMigration},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func paperApp(access navigation.AccessStructure) (*core.App, error) {
	return core.NewApp(museum.PaperStore(), museum.Model(access))
}

// E1WeaveTrace reproduces Figure 1/Figure 6: the weaver composing the
// base page pipeline with the navigation aspect, shown as the advice
// trace over one context's pages.
func E1WeaveTrace() (string, error) {
	app, err := paperApp(navigation.IndexedGuidedTour{})
	if err != nil {
		return "", err
	}
	app.Weaver().EnableTrace()
	if _, err := app.WeaveSite(); err != nil {
		return "", err
	}
	trace := app.Weaver().Trace()
	var sb strings.Builder
	sb.WriteString("base program: page pipeline   |   aspect: navigation   |   weaver output\n")
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, e := range trace {
		fmt.Fprintf(&sb, "%-34s %s advice %q from aspect %q\n", e.JoinPoint, e.When, e.Advice, e.Aspect)
	}
	fmt.Fprintf(&sb, "%d join points advised; aspects registered: %v\n",
		len(trace), app.Weaver().Aspects())
	return sb.String(), nil
}

func topology(access navigation.AccessStructure, caption string) (string, error) {
	rm, err := museum.Model(access).Resolve(museum.PaperStore())
	if err != nil {
		return "", err
	}
	rc := rm.Context("ByAuthor:picasso")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\ncontext %s, members in traversal order:\n", caption, rc.Name)
	for i, m := range rc.Members {
		fmt.Fprintf(&sb, "  %d. %s (%s)\n", i+1, m.ID(), m.Title())
	}
	sb.WriteString("edges:\n")
	for _, e := range rc.Edges() {
		fmt.Fprintf(&sb, "  %s\n", e)
	}
	return sb.String(), nil
}

// E2IndexTopology reproduces Figure 2(a).
func E2IndexTopology() (string, error) {
	return topology(navigation.Index{}, "Figure 2(a): Index access structure")
}

// E3IGTTopology reproduces Figure 2(b).
func E3IGTTopology() (string, error) {
	return topology(navigation.IndexedGuidedTour{},
		"Figure 2(b): Indexed Guided Tour access structure")
}

func guitarPage(access navigation.AccessStructure) (string, error) {
	app, err := paperApp(access)
	if err != nil {
		return "", err
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		return "", err
	}
	return page.HTML, nil
}

// E4GuitarIndexPage reproduces Figure 3: the Guitar node page woven with
// the Index access structure.
func E4GuitarIndexPage() (string, error) {
	html, err := guitarPage(navigation.Index{})
	if err != nil {
		return "", err
	}
	return "Figure 3: Guitar page, Index access structure\n\n" + html, nil
}

// E5GuitarIGTPage reproduces Figure 4 and prints the diff against the
// Figure 3 page — the paper bolds exactly these added navigation lines.
func E5GuitarIGTPage() (string, error) {
	before, err := guitarPage(navigation.Index{})
	if err != nil {
		return "", err
	}
	after, err := guitarPage(navigation.IndexedGuidedTour{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 4: Guitar page, Indexed Guided Tour access structure\n\n")
	sb.WriteString(after)
	sb.WriteString("\nDelta versus Figure 3 (the paper's bolded additions):\n")
	sb.WriteString(difflib.Unified(difflib.Lines(before), difflib.Lines(after), 1))
	st := difflib.DiffStrings(before, after)
	fmt.Fprintf(&sb, "lines added: %d, removed: %d\n", st.Added, st.Removed)
	return sb.String(), nil
}

// E6ClassInventory reproduces Figure 5: the implementation classes of the
// two access structures, as realized in this library.
func E6ClassInventory() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 5: implementation classes\n\n")
	sb.WriteString("(a) Index implementation:\n")
	sb.WriteString("  navigation.Index            — access structure (hub + member/up edges)\n")
	sb.WriteString("  navigation.ContextDef       — context declaration holding the structure\n")
	sb.WriteString("  navigation.ResolvedContext  — materialized member list + edges\n")
	sb.WriteString("  core.NavigationAspect       — advice injecting the Index anchors\n")
	sb.WriteString("\n(b) Indexed Guided Tour implementation:\n")
	sb.WriteString("  navigation.IndexedGuidedTour — access structure (Index ∪ GuidedTour)\n")
	sb.WriteString("  navigation.GuidedTour        — the tour half (next/prev edges)\n")
	sb.WriteString("  navigation.ContextDef        — unchanged\n")
	sb.WriteString("  navigation.ResolvedContext   — unchanged\n")
	sb.WriteString("  core.NavigationAspect        — unchanged\n")
	sb.WriteString("\nThe swap replaces one value of the AccessStructure interface;\n")
	sb.WriteString("every other class is untouched, unlike Figure 5's tangled classes.\n")
	return sb.String(), nil
}

// E7DataAndLinkbase reproduces Figures 7–9: the separated data documents
// and the XLink linkbase.
func E7DataAndLinkbase() (string, error) {
	app, err := paperApp(navigation.IndexedGuidedTour{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, name := range []string{"picasso.xml", "avignon.xml"} {
		doc, err := app.Repository().Get(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "=== %s (Figure %s) ===\n%s\n",
			name, map[string]string{"picasso.xml": "7", "avignon.xml": "8"}[name],
			doc.IndentedString())
	}
	sb.WriteString("=== links.xml (Figure 9, ByAuthor:picasso extended link) ===\n")
	lb := app.Linkbase()
	// Print only the picasso context to keep the figure readable.
	for _, el := range lb.Root().ChildElements() {
		if el.AttrValue("name") == "ByAuthor:picasso" {
			fmt.Fprintf(&sb, "%s\n", indentElement(el))
			break
		}
	}
	stats, err := linkbaseStats(app)
	if err != nil {
		return "", err
	}
	sb.WriteString(stats)
	return sb.String(), nil
}

// indentElement pretty-prints one element subtree (used to excerpt the
// picasso context from links.xml). The detached clone needs the xlink
// prefix re-declared, since the declaration lives on the document root.
func indentElement(el *xmldom.Element) string {
	clone := el.Clone()
	clone.SetAttrNS("xmlns", "xlink", xlink.Namespace)
	doc := xmldom.NewDocument(clone)
	var sb strings.Builder
	_ = doc.Write(&sb, xmldom.WriteOptions{Indent: "  "})
	return sb.String()
}

func linkbaseStats(app *core.App) (string, error) {
	lb := xlink.NewLinkbase()
	if err := lb.AddDocument(app.Linkbase()); err != nil {
		return "", err
	}
	st := lb.Stats()
	return fmt.Sprintf("linkbase totals: %d extended links, %d arcs\n", st.Extended, st.Arcs), nil
}

// E8ChangeCostTable quantifies the paper's §5 claim across context sizes.
func E8ChangeCostTable() (string, error) {
	var sb strings.Builder
	sb.WriteString("Change cost of Index -> Indexed Guided Tour (the paper's §5 scenario)\n\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "members\ttangled files\ttangled lines\tseparated files\tseparated lines\tlinks.xml lines (generated)")
	for _, n := range []int{3, 10, 50, 100, 500} {
		store := museum.Synthetic(museum.SyntheticSpec{Painters: 1, PaintingsPerPainter: n, Seed: 11})
		r, err := tangled.MeasureAccessChange(store, museum.Model, "ByAuthor",
			navigation.Index{}, navigation.IndexedGuidedTour{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
			n,
			r.Tangled.FilesChanged, r.Tangled.TotalLineEdits(),
			r.Separated.FilesChanged, r.Separated.TotalLineEdits(),
			r.GeneratedLinkbase.TotalLineEdits())
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	sb.WriteString("\ntangled cost grows with the context size; the separated, hand-edited\n")
	sb.WriteString("artifact (the navigation declaration) changes one line regardless of N.\n")
	return sb.String(), nil
}

// E9ContextTraces reproduces the §2 museum semantics as session traces.
func E9ContextTraces() (string, error) {
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("The same painting answers Next differently per entry context (§2):\n\n")

	s1 := navigation.NewSession(rm)
	if err := s1.EnterContext("ByAuthor:picasso", "guitar"); err != nil {
		return "", err
	}
	if err := s1.Next(); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "guitar entered via ByAuthor:picasso  -> Next = %s\n", s1.Here().ID())

	s2 := navigation.NewSession(rm)
	if err := s2.EnterContext("ByMovement:cubism", "guitar"); err != nil {
		return "", err
	}
	if err := s2.Next(); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "guitar entered via ByMovement:cubism -> Next = %s\n", s2.Here().ID())

	sb.WriteString("\nfull walk with a context switch at guernica:\n")
	s3 := navigation.NewSession(rm)
	steps := []func() error{
		func() error { return s3.EnterContext("ByAuthor:picasso", navigation.HubID) },
		func() error { return s3.Select("avignon") },
		func() error { return s3.Next() },
		func() error { return s3.Next() },
		func() error { return s3.SwitchContext("ByMovement:surrealism") },
		func() error { return s3.Next() },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return "", err
		}
	}
	for i, v := range s3.History() {
		fmt.Fprintf(&sb, "  step %d: %s @ %s\n", i+1, v.Context, v.NodeID)
	}
	return sb.String(), nil
}

// E10WeaveThroughput measures static and dynamic weaving with
// testing.Benchmark so navbench prints real numbers.
func E10WeaveThroughput() (string, error) {
	store := museum.Synthetic(museum.SyntheticSpec{
		Painters: 10, PaintingsPerPainter: 10, Movements: 4, Seed: 1,
	})
	app, err := core.NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		return "", err
	}
	site, err := app.WeaveSite()
	if err != nil {
		return "", err
	}
	pages := site.Len()

	static := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := app.WeaveSite(); err != nil {
				b.Fatal(err)
			}
		}
	})
	dynamic := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPage("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "site: %d pages\n", pages)
	fmt.Fprintf(&sb, "static weave (whole site): %s  (%.1f pages/ms)\n",
		static, float64(pages)/(float64(static.NsPerOp())/1e6))
	fmt.Fprintf(&sb, "dynamic weave (one page):  %s\n", dynamic)
	return sb.String(), nil
}

// E11AdviceOverhead measures the AOP-simulation dispatch cost ablation.
func E11AdviceOverhead() (string, error) {
	jp := &aspect.JoinPoint{Kind: "op", Name: "x"}
	body := func(*aspect.JoinPoint) (any, error) { return nil, nil }
	var sb strings.Builder
	sb.WriteString("join-point dispatch cost (interface-based AOP simulation):\n")
	direct := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = body(jp)
		}
	})
	fmt.Fprintf(&sb, "  direct call:        %s\n", direct)
	for _, advices := range []int{0, 1, 4, 16} {
		w := aspect.NewWeaver()
		a := aspect.NewAspect("bench")
		pc := aspect.MustCompilePointcut("kind(op)")
		for i := 0; i < advices; i++ {
			a.AroundAdvice(fmt.Sprintf("a%d", i), pc, i, func(inv *aspect.Invocation) (any, error) {
				return inv.Proceed()
			})
		}
		w.Use(a)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = w.Execute(jp, body)
			}
		})
		fmt.Fprintf(&sb, "  woven, %2d advice:   %s\n", advices, r)
	}
	return sb.String(), nil
}

// E12XLinkScaling measures arc-query cost against linkbase size.
func E12XLinkScaling() (string, error) {
	var sb strings.Builder
	sb.WriteString("XLink arc resolution vs linkbase size:\n")
	for _, painters := range []int{5, 25, 100} {
		store := museum.Synthetic(museum.SyntheticSpec{
			Painters: painters, PaintingsPerPainter: 10, Seed: 4,
		})
		rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(store)
		if err != nil {
			return "", err
		}
		lb := xlink.NewLinkbase()
		if err := lb.AddDocument(navigation.GenerateLinkbase(rm)); err != nil {
			return "", err
		}
		ref := xlink.Ref{URI: "painting000_005.xml"}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = lb.ArcsFromRef(ref)
			}
		})
		st := lb.Stats()
		fmt.Fprintf(&sb, "  %4d arcs (%3d links): %s per query\n", st.Arcs, st.Extended, r)
	}
	return sb.String(), nil
}

// E14ConcurrentServing measures the serving-path scaling work beyond the
// paper: the bounded-worker parallel site weave and the woven-page cache
// behind request-time serving, with the cache's invalidation-correctness
// check (the §5 change scenario must not serve stale pages).
func E14ConcurrentServing() (string, error) {
	store := museum.Synthetic(museum.SyntheticSpec{
		Painters: 10, PaintingsPerPainter: 10, Movements: 4, Seed: 1,
	})
	app, err := core.NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		return "", err
	}
	site, err := app.WeaveSite()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "site: %d pages\n", site.Len())
	sb.WriteString("parallel static weave (bounded worker pool):\n")
	for _, workers := range []int{1, 2, 4, 8} {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := app.WeaveSiteWorkers(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Fprintf(&sb, "  workers=%d: %s\n", workers, r)
	}
	uncached := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPage("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
	cached := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := app.RenderPageCached("ByAuthor:painter000", "painting000_005"); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Fprintf(&sb, "request-time serve, uncached: %s\n", uncached)
	fmt.Fprintf(&sb, "request-time serve, cached:   %s\n", cached)
	if u, c := uncached.NsPerOp(), cached.NsPerOp(); c > 0 {
		fmt.Fprintf(&sb, "cache speedup: %.0fx\n", float64(u)/float64(c))
	}
	// Invalidation correctness: the §5 change must evict cached pages.
	if _, err := app.RenderPageCached("ByAuthor:painter000", "painting000_001"); err != nil {
		return "", err
	}
	if err := app.SetAccessStructure("ByAuthor", navigation.Index{}); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "after SetAccessStructure: %d cached pages (cache invalidated)\n",
		app.CachedPages())
	return sb.String(), nil
}

// X1LiftMigration demonstrates the migration path beyond the paper:
// a tangled site's navigation is extracted into a linkbase and the pages
// are stripped to pure content; the recovered edge sets match the model
// the site was generated from.
func X1LiftMigration() (string, error) {
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		return "", err
	}
	site := tangled.GenerateSite(rm)
	result, err := lift.Site(site)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "input: tangled site of %d pages (navigation embedded everywhere)\n",
		result.Stats.PagesIn)
	fmt.Fprintf(&sb, "lifted: %d contexts, %d anchors moved into links.xml, %d hub pages dropped\n",
		result.Stats.Contexts, result.Stats.AnchorsLifted, result.Stats.HubPages)
	sb.WriteString("\nrecovered contexts:\n")
	for _, c := range result.Contexts {
		model := rm.Context(c.Name)
		match := "EDGES DIFFER"
		if model != nil && len(model.Edges()) == len(c.Edges) {
			match = "edges match model"
		}
		fmt.Fprintf(&sb, "  %-24s %-22s %2d members %3d edges  (%s)\n",
			c.Name, c.AccessKind, len(c.Order), len(c.Edges), match)
	}
	fmt.Fprintf(&sb, "\nstripped pages carry no anchors; content preserved (%d pages)\n",
		len(result.Pages))
	return sb.String(), nil
}

// E13Classification reproduces the §2 distinction on a mixed corpus.
func E13Classification() (string, error) {
	rm, err := museum.Model(navigation.IndexedGuidedTour{}).Resolve(museum.PaperStore())
	if err != nil {
		return "", err
	}
	var navEdges []navigation.Edge
	for _, rc := range rm.Contexts {
		navEdges = append(navEdges, rc.Edges()...)
	}
	items := make([]string, 40)
	for i := range items {
		items[i] = fmt.Sprintf("result%02d", i)
	}
	pages, pageEdges, err := navigation.Paginate(items, 10)
	if err != nil {
		return "", err
	}
	all := append(append([]navigation.Edge{}, navEdges...), pageEdges...)
	report := navigation.ClassifyAll(all)
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus: %d museum navigation edges + %d search-result paging edges (%d pages)\n",
		len(navEdges), len(pageEdges), len(pages))
	fmt.Fprintf(&sb, "classified navigational: %d\n", report.Navigational)
	fmt.Fprintf(&sb, "classified scrolling:    %d\n", report.Scrolling)
	sb.WriteString("\nper-kind ruling:\n")
	kinds := map[navigation.EdgeKind]bool{}
	for _, e := range all {
		kinds[e.Kind] = true
	}
	var kindList []string
	for k := range kinds {
		kindList = append(kindList, string(k))
	}
	sort.Strings(kindList)
	for _, k := range kindList {
		fmt.Fprintf(&sb, "  %-8s -> %s\n", k, navigation.Classify(navigation.EdgeKind(k)))
	}
	return sb.String(), nil
}
