package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		// The benchmark-driven experiments (e10-e12, e14) take seconds;
		// exercise them in TestBenchmarkBackedExperiments with -short
		// awareness instead.
		if e.ID == "e10" || e.ID == "e11" || e.ID == "e12" || e.ID == "e14" {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if strings.TrimSpace(out) == "" {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e4"); !ok {
		t.Error("e4 missing")
	}
	if _, ok := ByID("e99"); ok {
		t.Error("e99 should not exist")
	}
	if len(All()) != 15 {
		t.Errorf("experiments = %d, want 15 (e1-e14 plus x1)", len(All()))
	}
}

func TestE2E3TopologiesDiffer(t *testing.T) {
	index, err := E2IndexTopology()
	if err != nil {
		t.Fatal(err)
	}
	igt, err := E3IGTTopology()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(index, "member") || strings.Contains(index, "[next") {
		t.Errorf("index topology wrong:\n%s", index)
	}
	if !strings.Contains(igt, "[next") || !strings.Contains(igt, "[prev") {
		t.Errorf("IGT topology missing tour edges:\n%s", igt)
	}
}

func TestE4E5FigureShape(t *testing.T) {
	fig3, err := E4GuitarIndexPage()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig3, "<h1>Guitar</h1>") {
		t.Errorf("Figure 3 content missing:\n%s", fig3)
	}
	if strings.Contains(fig3, "nav-next") {
		t.Error("Figure 3 must not contain Next")
	}
	fig4, err := E5GuitarIGTPage()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nav-next", "nav-prev", "lines added: 2, removed: 0"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("Figure 4 output missing %q:\n%s", want, fig4)
		}
	}
}

func TestE7ContainsFigures(t *testing.T) {
	out, err := E7DataAndLinkbase()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"picasso.xml",
		"<name>Pablo Picasso</name>",
		"avignon.xml",
		"Les Demoiselles",
		"links.xml",
		"xlink:type=\"locator\"",
		"linkbase totals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 missing %q", want)
		}
	}
	// Figures 7-8 property: data files carry no link markup.
	picassoSection := out[strings.Index(out, "picasso.xml"):strings.Index(out, "avignon.xml")]
	if strings.Contains(picassoSection, "xlink") {
		t.Error("data document leaked link markup (violates the separation)")
	}
}

func TestE8TableShape(t *testing.T) {
	out, err := E8ChangeCostTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "members") || !strings.Contains(out, "500") {
		t.Errorf("table missing rows:\n%s", out)
	}
	// Every row's separated cost is the constant 2 line edits.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[0] != "members" {
			if fields[3] != "1" || fields[4] != "2" {
				t.Errorf("separated cost not constant in row: %q", line)
			}
		}
	}
}

func TestE9Traces(t *testing.T) {
	out, err := E9ContextTraces()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Next = guernica") {
		t.Errorf("ByAuthor Next wrong:\n%s", out)
	}
	if !strings.Contains(out, "Next = avignon") {
		t.Errorf("ByMovement Next wrong (title order in cubism):\n%s", out)
	}
	if !strings.Contains(out, "ByMovement:surrealism @ memory") {
		t.Errorf("context-switch walk missing:\n%s", out)
	}
}

func TestX1LiftReport(t *testing.T) {
	out, err := X1LiftMigration()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4 contexts", "edges match model", "hub pages dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("x1 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "EDGES DIFFER") {
		t.Errorf("lift did not recover model edges:\n%s", out)
	}
}

func TestE13Report(t *testing.T) {
	out, err := E13Classification()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scrolling") || !strings.Contains(out, "page") {
		t.Errorf("classification report:\n%s", out)
	}
}

// TestBenchmarkBackedExperiments smoke-tests the timing experiments; they
// run real benchmarks, so skip in -short mode.
func TestBenchmarkBackedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed experiments skipped in -short mode")
	}
	for _, id := range []string{"e10", "e11", "e12", "e14"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "ns/op") {
			t.Errorf("%s output lacks measurements:\n%s", id, out)
		}
	}
}
