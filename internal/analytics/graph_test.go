package analytics

import (
	"reflect"
	"testing"
)

func TestBuildGraphFolds(t *testing.T) {
	g := BuildGraph([]Hop{
		{Context: "C", From: EntryFrom, To: "a", Count: 5},
		{Context: "C", From: "a", To: "b", Count: 3},
		{Context: "C", From: "a", To: "b", Count: 2}, // duplicate slot entry
		{Context: "C", From: "a", To: "c", Count: 1},
		{Context: "C", From: "b", To: "a", Count: 1},
		{Context: "D", From: EntryFrom, To: "x", Count: 7},
		{Context: "D", From: "zero", To: "x", Count: 0}, // empty counts are skipped
	})
	if g.Hops != 19 {
		t.Errorf("total hops = %d, want 19", g.Hops)
	}
	cg := g.Contexts["C"]
	if cg.Hops != 12 {
		t.Errorf("C hops = %d, want 12", cg.Hops)
	}
	if got := cg.NextCount("a", "b"); got != 5 {
		t.Errorf("a->b = %d, want 5 (duplicates folded)", got)
	}
	if got := cg.Visits["a"]; got != 6 { // 5 entries + 1 from b
		t.Errorf("visits(a) = %d, want 6", got)
	}
	if got := cg.Entries["a"]; got != 5 {
		t.Errorf("entries(a) = %d, want 5", got)
	}
	if got := cg.Outgoing("a"); got != 6 {
		t.Errorf("outgoing(a) = %d, want 6", got)
	}
	if got := cg.Exits("a"); got != 0 {
		t.Errorf("exits(a) = %d, want 0 (more out than in)", got)
	}
	// b: 5 in, 1 out -> 4 trails ended there.
	if got := cg.Exits("b"); got != 4 {
		t.Errorf("exits(b) = %d, want 4", got)
	}
	if cg := g.Contexts["D"]; cg.Hops != 7 || len(cg.next) != 0 {
		t.Errorf("D = %+v, want 7 entry hops and no transitions", cg)
	}
}

func TestTopQueries(t *testing.T) {
	g := BuildGraph([]Hop{
		{Context: "C", From: "a", To: "b", Count: 10},
		{Context: "C", From: "a", To: "c", Count: 10}, // tie with b
		{Context: "C", From: "a", To: "d", Count: 3},
		{Context: "C", From: "a", To: "e", Count: 7},
		{Context: "C", From: "b", To: "c", Count: 20},
		{Context: "C", From: EntryFrom, To: "a", Count: 9},
	})
	cg := g.Contexts["C"]

	// Ties break lexicographically, so results are deterministic.
	want := []Transition{{From: "a", To: "b", Count: 10}, {From: "a", To: "c", Count: 10}, {From: "a", To: "e", Count: 7}}
	if got := cg.TopNext("a", 3); !reflect.DeepEqual(got, want) {
		t.Errorf("TopNext(a, 3) = %+v, want %+v", got, want)
	}
	if got := cg.TopNext("a", 100); len(got) != 4 {
		t.Errorf("TopNext(a, 100) = %d entries, want all 4", len(got))
	}
	if got := cg.TopNext("nowhere", 3); len(got) != 0 {
		t.Errorf("TopNext(nowhere) = %+v, want empty", got)
	}
	if got := cg.TopNext("a", 0); len(got) != 0 {
		t.Errorf("TopNext(a, 0) = %+v, want empty", got)
	}

	edges := cg.TopEdges(2)
	wantEdges := []Transition{{From: "b", To: "c", Count: 20}, {From: "a", To: "b", Count: 10}}
	if !reflect.DeepEqual(edges, wantEdges) {
		t.Errorf("TopEdges(2) = %+v, want %+v", edges, wantEdges)
	}

	// c: 10 (from a) + 20 (from b) = 30; b: 10; a: 9 entries.
	nodes := cg.TopNodes(2)
	wantNodes := []NodeCount{{Node: "c", Count: 30}, {Node: "b", Count: 10}}
	if !reflect.DeepEqual(nodes, wantNodes) {
		t.Errorf("TopNodes(2) = %+v, want %+v", nodes, wantNodes)
	}
	entries := cg.TopEntries(5)
	if len(entries) != 1 || entries[0] != (NodeCount{Node: "a", Count: 9}) {
		t.Errorf("TopEntries = %+v, want just a:9", entries)
	}
}
