// Package analytics is the telemetry half of the paper's separation
// argument turned around: if navigation really is a separately-woven
// aspect, then the access structures need not be hand-authored at all —
// they can be *derived* from how visitors actually move and swapped in
// at runtime without touching the conceptual model.
//
// The subsystem has three layers, each usable alone:
//
//   - Recorder: a near-zero-overhead trail recorder the serving path
//     calls once per navigation hop. Sharded lock-free hash tables of
//     atomic counters; no locks and no allocations on the hot path.
//   - Graph (BuildGraph): folds recorded hops into a per-context
//     transition graph — node visit counts, edge counts, entry/exit
//     frequencies, top-k queries over a small bounded heap. This is the
//     trail/transition model of "A Model of Navigation History"
//     (arXiv:1608.05444): a set of per-context trails summarized into
//     first-order transitions.
//   - Derive: compiles the graph into real navigation access structures
//     (navigation.AdaptiveTour) — a "popular next" guided tour per
//     context, landmark promotion for high-traffic nodes following
//     Vinson's landmark design guidelines (arXiv:cs/0304001), and
//     demotion of never-traversed nodes out of the tour chain.
//
// internal/server wires the three into a live adaptation loop;
// cmd/navstats runs the same pipeline offline over persisted trails.
package analytics

import (
	"runtime"
	"sync/atomic"
)

// EntryFrom is the pseudo-source of an entry hop: a visitor arriving in
// a context from outside it (a fresh session, a context switch, a
// cross-context link) is recorded as EntryFrom -> node.
const EntryFrom = ""

// Recorder defaults; override through Config.
const (
	// DefaultSlotsPerShard is each shard's hop-table capacity. A slot
	// holds one distinct (context, from, to) triple, so the recorder
	// tracks up to shards*slots distinct edges before dropping.
	DefaultSlotsPerShard = 1024
	// maxProbes bounds the linear probe of one Record call; a table
	// region that full makes the recorder drop the hop (counted) rather
	// than degrade the request path.
	maxProbes = 64
)

// Slot states. A slot moves empty -> claiming -> ready exactly once;
// counts are only added to ready slots.
const (
	slotEmpty uint32 = iota
	slotClaiming
	slotReady
)

// RecorderConfig sizes a Recorder.
type RecorderConfig struct {
	// SampleRate records one hop in every SampleRate (1 or less records
	// everything). Sampling trades graph fidelity for one fewer shared
	// counter increment per skipped hop under extreme load.
	SampleRate int
	// Shards is the number of independent hop tables (rounded up to a
	// power of two; 0 picks a GOMAXPROCS-proportional default).
	Shards int
	// SlotsPerShard is each table's slot count (rounded up to a power
	// of two; 0 means DefaultSlotsPerShard).
	SlotsPerShard int
}

// Stats is a Recorder's counter snapshot.
type Stats struct {
	// Recorded counts hops that landed in a slot.
	Recorded uint64 `json:"recorded"`
	// SampledOut counts hops skipped by the sampling knob.
	SampledOut uint64 `json:"sampled_out"`
	// Dropped counts hops lost because a table region was full.
	Dropped uint64 `json:"dropped"`
}

// Hop is one observed transition: a visitor moved From -> To inside
// Context (From is EntryFrom when they arrived from outside), Count
// times.
type Hop struct {
	Context string `json:"context"`
	From    string `json:"from"`
	To      string `json:"to"`
	Count   uint64 `json:"count"`
}

// slot is one hop counter. The strings are written exactly once, by the
// goroutine that wins the claiming CAS, before the slot becomes ready;
// every later access only loads atomics and compares strings.
type slot struct {
	state atomic.Uint32
	count atomic.Uint64
	ctx   string
	from  string
	to    string
}

// shard is one independent hop table with its own overflow counters.
// The pad keeps neighbouring shards' hot counters off one cache line.
type shard struct {
	slots      []slot
	mask       uint64
	recorded   atomic.Uint64
	sampledOut atomic.Uint64
	dropped    atomic.Uint64
	ticks      atomic.Uint64
	_          [24]byte
}

// Recorder counts navigation hops with no locks and no allocations on
// the record path: the hop key is hashed inline (FNV-1a over the three
// strings, no concatenation), the hash picks a shard and a slot, and
// the count is one atomic increment. Distinct hops spread over
// GOMAXPROCS-proportional shards, so concurrent recording of different
// edges contends on nothing; recording the same hot edge from many
// CPUs meets at a single atomic add, still lock-free.
//
// The table is insert-only and bounded: once a probe region fills, new
// distinct hops are dropped (and counted as such) instead of growing.
// Aggregation (Snapshot) is read-only and can run concurrently with
// recording; it observes each counter at some point during its pass.
type Recorder struct {
	shards     []*shard
	shardMask  uint64
	sampleRate uint64
}

// NewRecorder builds a recorder from cfg (zero value = record every
// hop, GOMAXPROCS-proportional shards, DefaultSlotsPerShard slots).
func NewRecorder(cfg RecorderConfig) *Recorder {
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	shards = nextPow2(shards)
	slots := cfg.SlotsPerShard
	if slots <= 0 {
		slots = DefaultSlotsPerShard
	}
	slots = nextPow2(slots)
	rate := cfg.SampleRate
	if rate < 1 {
		rate = 1
	}
	r := &Recorder{
		shards:     make([]*shard, shards),
		shardMask:  uint64(shards - 1),
		sampleRate: uint64(rate),
	}
	for i := range r.shards {
		r.shards[i] = &shard{slots: make([]slot, slots), mask: uint64(slots - 1)}
	}
	return r
}

// SampleRate reports the configured sampling rate (1 = every hop).
func (r *Recorder) SampleRate() int { return int(r.sampleRate) }

// Record counts one hop. It never blocks, never allocates, and costs a
// hash, a short probe and two atomic increments — cheap enough to sit
// directly on the serve path. Hops beyond the table's capacity are
// dropped and counted, never queued.
//
//repro:hotpath
func (r *Recorder) Record(ctx, from, to string) {
	h := hashHop(ctx, from, to)
	sh := r.shards[(h>>48)&r.shardMask]
	if r.sampleRate > 1 {
		if sh.ticks.Add(1)%r.sampleRate != 0 {
			sh.sampledOut.Add(1)
			return
		}
	}
	i := h & sh.mask
	for probe := 0; probe < maxProbes; probe++ {
		s := &sh.slots[i]
		switch s.state.Load() {
		case slotReady:
			if s.ctx == ctx && s.from == from && s.to == to {
				s.count.Add(1)
				sh.recorded.Add(1)
				return
			}
		case slotEmpty:
			if s.state.CompareAndSwap(slotEmpty, slotClaiming) {
				s.ctx, s.from, s.to = ctx, from, to
				s.state.Store(slotReady)
				s.count.Add(1)
				sh.recorded.Add(1)
				return
			}
			// Lost the claim race. The winner may be inserting this very
			// key, but waiting on it would block the request path; move
			// on and let a duplicate slot absorb the hop — Snapshot
			// readers fold duplicates back together by key.
		case slotClaiming:
			// A claim is in flight a few instructions away from ready.
			// Same policy: never wait on the hot path, probe onward.
		}
		i = (i + 1) & sh.mask
	}
	sh.dropped.Add(1)
}

// Stats sums the per-shard counters.
func (r *Recorder) Stats() Stats {
	var st Stats
	for _, sh := range r.shards {
		st.Recorded += sh.recorded.Load()
		st.SampledOut += sh.sampledOut.Load()
		st.Dropped += sh.dropped.Load()
	}
	return st
}

// Snapshot collects every counted hop. It is safe against concurrent
// recording: each count is read at some instant during the pass, so the
// result is a slightly-stale but internally consistent view — exactly
// what a periodic aggregation wants. Hops that landed in duplicate
// slots (a lost claim race) appear as separate entries; BuildGraph sums
// them by key.
func (r *Recorder) Snapshot() []Hop {
	var out []Hop
	for _, sh := range r.shards {
		for i := range sh.slots {
			s := &sh.slots[i]
			if s.state.Load() != slotReady {
				continue
			}
			c := s.count.Load()
			if c == 0 {
				continue
			}
			out = append(out, Hop{Context: s.ctx, From: s.from, To: s.to, Count: c})
		}
	}
	return out
}

// hashHop is FNV-1a over the three key strings with a separator fold
// between them, computed without concatenating (no allocation).
func hashHop(ctx, from, to string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ctx); i++ {
		h = (h ^ uint64(ctx[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64
	for i := 0; i < len(from); i++ {
		h = (h ^ uint64(from[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64
	for i := 0; i < len(to); i++ {
		h = (h ^ uint64(to[i])) * prime64
	}
	return h
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
