//go:build !race

package analytics

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
