package analytics

import (
	"fmt"
	"testing"
)

// BenchmarkRecordHotEdge is the tentpole's hot path: everyone pressing
// Next on the same edge. Budget: 0 allocs, well under 50ns per hop.
func BenchmarkRecordHotEdge(b *testing.B) {
	r := NewRecorder(RecorderConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record("ByAuthor:picasso", "guitar", "guernica")
	}
}

// BenchmarkRecordSpread records over many distinct edges — the probe
// cost with a realistically populated table.
func BenchmarkRecordSpread(b *testing.B) {
	r := NewRecorder(RecorderConfig{})
	nodes := make([]string, 256)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%03d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record("C", nodes[i%256], nodes[(i+1)%256])
	}
}

// BenchmarkRecordParallel is the hot edge under every CPU at once: the
// worst-case cache-line contention the lock-free design bounds at one
// atomic add.
func BenchmarkRecordParallel(b *testing.B) {
	r := NewRecorder(RecorderConfig{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record("ByAuthor:picasso", "guitar", "guernica")
		}
	})
}

// BenchmarkRecordSampled measures the sampling fast-out (rate 16).
func BenchmarkRecordSampled(b *testing.B) {
	r := NewRecorder(RecorderConfig{SampleRate: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record("ByAuthor:picasso", "guitar", "guernica")
	}
}

// populatedRecorder simulates traffic over a synthetic site: sites
// contexts, walks members each, a dominant chain plus entry scatter.
func populatedRecorder(contexts, members int) *Recorder {
	r := NewRecorder(RecorderConfig{})
	for c := 0; c < contexts; c++ {
		ctx := fmt.Sprintf("Fam:ctx%03d", c)
		for m := 0; m < members; m++ {
			from := fmt.Sprintf("n%03d", m)
			to := fmt.Sprintf("n%03d", (m+1)%members)
			for i := 0; i < 1+m%3; i++ {
				r.Record(ctx, from, to)
			}
			r.Record(ctx, EntryFrom, from)
		}
	}
	return r
}

// BenchmarkGraphBuild folds a populated recorder's snapshot — the
// aggregation half of an adapt cycle.
func BenchmarkGraphBuild(b *testing.B) {
	r := populatedRecorder(16, 64)
	hops := r.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(hops)
	}
}

// BenchmarkDeriveTours compiles graphs into adaptive tours — the
// derivation half of an adapt cycle (16 contexts x 64 members).
func BenchmarkDeriveTours(b *testing.B) {
	r := populatedRecorder(16, 64)
	g := BuildGraph(r.Snapshot())
	ctxs := make([]ContextInfo, 16)
	for c := range ctxs {
		members := make([]string, 64)
		for m := range members {
			members[m] = fmt.Sprintf("n%03d", m)
		}
		ctxs[c] = ContextInfo{Name: fmt.Sprintf("Fam:ctx%03d", c), Family: "Fam", Members: members}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tours := Derive(g, ctxs, Config{MinHops: 1}); len(tours) == 0 {
			b.Fatal("derived nothing")
		}
	}
}
