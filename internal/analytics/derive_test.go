package analytics

import (
	"reflect"
	"testing"

	"repro/internal/navigation"
)

// trafficGraph builds a graph where visitors dominantly enter context
// "Fam:one" at c, then walk c -> b -> a; d is never reached.
func trafficGraph() *Graph {
	return BuildGraph([]Hop{
		{Context: "Fam:one", From: EntryFrom, To: "c", Count: 40},
		{Context: "Fam:one", From: "c", To: "b", Count: 35},
		{Context: "Fam:one", From: "b", To: "a", Count: 30},
		{Context: "Fam:one", From: EntryFrom, To: "a", Count: 2},
	})
}

// infos declares the authored context: members a..d in that order.
func infos() []ContextInfo {
	return []ContextInfo{{Name: "Fam:one", Family: "Fam", Members: []string{"a", "b", "c", "d"}}}
}

func TestDeriveDominantPath(t *testing.T) {
	tours := Derive(trafficGraph(), infos(), Config{MinHops: 10})
	tour := tours["Fam"]
	if tour == nil {
		t.Fatal("no tour derived for family Fam")
	}
	plan, ok := tour.Plans["Fam:one"]
	if !ok {
		t.Fatal("no plan for Fam:one")
	}
	// The popular-next walk starts at the top entry and follows the
	// dominant trail; the never-visited d is demoted to the end.
	if want := []string{"c", "b", "a", "d"}; !reflect.DeepEqual(plan.Order, want) {
		t.Errorf("order = %v, want %v", plan.Order, want)
	}
	if want := []string{"d"}; !reflect.DeepEqual(plan.Dead, want) {
		t.Errorf("dead = %v, want %v", plan.Dead, want)
	}
}

func TestDeriveLandmarkPromotion(t *testing.T) {
	// Visits: c=40, b=35, a=32 of 107 — all above a 25% share.
	tours := Derive(trafficGraph(), infos(), Config{MinHops: 10, LandmarkShare: 0.25, MaxLandmarks: 2})
	plan := tours["Fam"].Plans["Fam:one"]
	if want := []string{"c", "b"}; !reflect.DeepEqual(plan.Landmarks, want) {
		t.Errorf("landmarks = %v, want %v (hottest two)", plan.Landmarks, want)
	}

	// A share threshold of 1 or more disables promotion entirely.
	tours = Derive(trafficGraph(), infos(), Config{MinHops: 10, LandmarkShare: 1})
	if lm := tours["Fam"].Plans["Fam:one"].Landmarks; len(lm) != 0 {
		t.Errorf("landmarks = %v, want none at share >= 1", lm)
	}
}

func TestDeriveMinHopsFloor(t *testing.T) {
	if tours := Derive(trafficGraph(), infos(), Config{MinHops: 1000}); len(tours) != 0 {
		t.Errorf("tours below the sample floor = %v, want none", tours)
	}
	// Contexts with no traffic at all derive nothing either.
	quiet := []ContextInfo{{Name: "Quiet", Family: "Quiet", Members: []string{"x"}}}
	if tours := Derive(trafficGraph(), quiet, Config{MinHops: 1}); len(tours) != 0 {
		t.Errorf("tours for traffic-free context = %v, want none", tours)
	}
}

func TestDeriveGroupsFamilies(t *testing.T) {
	g := BuildGraph([]Hop{
		{Context: "Fam:one", From: EntryFrom, To: "a", Count: 60},
		{Context: "Fam:two", From: EntryFrom, To: "y", Count: 60},
		{Context: "Fam:two", From: "y", To: "x", Count: 50},
	})
	ctxs := []ContextInfo{
		{Name: "Fam:one", Family: "Fam", Members: []string{"a", "b"}},
		{Name: "Fam:two", Family: "Fam", Members: []string{"x", "y"}},
	}
	tours := Derive(g, ctxs, Config{MinHops: 10})
	if len(tours) != 1 || tours["Fam"] == nil {
		t.Fatalf("tours = %v, want one family", tours)
	}
	if got := len(tours["Fam"].Plans); got != 2 {
		t.Errorf("plans = %d, want 2 (both contexts qualified)", got)
	}
	if order := tours["Fam"].Plans["Fam:two"].Order; !reflect.DeepEqual(order, []string{"y", "x"}) {
		t.Errorf("Fam:two order = %v, want [y x]", order)
	}
}

// TestDeriveIgnoresHub: hub hops count as traffic, but the hub
// pseudo-node never appears in a derived member order.
func TestDeriveIgnoresHub(t *testing.T) {
	g := BuildGraph([]Hop{
		{Context: "Fam:one", From: EntryFrom, To: navigation.HubID, Count: 30},
		{Context: "Fam:one", From: navigation.HubID, To: "b", Count: 25},
		{Context: "Fam:one", From: "b", To: navigation.HubID, Count: 5},
		{Context: "Fam:one", From: "b", To: "a", Count: 10},
	})
	plan := Derive(g, infos(), Config{MinHops: 10})["Fam"].Plans["Fam:one"]
	for _, id := range plan.Order {
		if id == navigation.HubID {
			t.Fatalf("hub leaked into derived order %v", plan.Order)
		}
	}
	if want := []string{"b", "a", "c", "d"}; !reflect.DeepEqual(plan.Order, want) {
		t.Errorf("order = %v, want %v", plan.Order, want)
	}
}

// TestDeriveRecordsAuthoredFallback: the derived tour carries the
// family's authored structure, so unadapted siblings keep it.
func TestDeriveRecordsAuthoredFallback(t *testing.T) {
	ctxs := infos()
	ctxs[0].Access = navigation.Menu{}
	tour := Derive(trafficGraph(), ctxs, Config{MinHops: 10})["Fam"]
	if tour.Fallback != navigation.AccessStructure(navigation.Menu{}) {
		t.Errorf("fallback = %#v, want the authored Menu", tour.Fallback)
	}
	if tour.HasHub() != (navigation.Menu{}).HasHub() {
		t.Error("derived tour hubness differs from the authored structure's")
	}
}

func TestInfosFromLinkbase(t *testing.T) {
	lcs := []*navigation.LinkbaseContext{
		{Name: "ByAuthor:picasso", Order: []string{"avignon", "guitar"}},
		{Name: "All", Order: []string{"x"}},
	}
	got := InfosFromLinkbase(lcs)
	want := []ContextInfo{
		{Name: "ByAuthor:picasso", Family: "ByAuthor", Members: []string{"avignon", "guitar"}},
		{Name: "All", Family: "All", Members: []string{"x"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("infos = %+v, want %+v", got, want)
	}
}
