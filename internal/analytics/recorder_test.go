package analytics

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	for i := 0; i < 3; i++ {
		r.Record("ByAuthor:picasso", "guitar", "guernica")
	}
	r.Record("ByAuthor:picasso", EntryFrom, "guitar")
	r.Record("ByMovement:cubism", "guitar", "avignon")

	st := r.Stats()
	if st.Recorded != 5 || st.SampledOut != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 5 recorded, none sampled or dropped", st)
	}

	g := BuildGraph(r.Snapshot())
	if g.Hops != 5 {
		t.Errorf("graph hops = %d, want 5", g.Hops)
	}
	cg := g.Contexts["ByAuthor:picasso"]
	if cg == nil {
		t.Fatal("no ByAuthor:picasso context in graph")
	}
	if got := cg.NextCount("guitar", "guernica"); got != 3 {
		t.Errorf("guitar->guernica = %d, want 3", got)
	}
	if got := cg.Entries["guitar"]; got != 1 {
		t.Errorf("entries at guitar = %d, want 1", got)
	}
	if other := g.Contexts["ByMovement:cubism"]; other == nil || other.Hops != 1 {
		t.Errorf("ByMovement:cubism = %+v, want 1 hop", other)
	}
}

func TestRecordSampling(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleRate: 4})
	for i := 0; i < 100; i++ {
		r.Record("C", "a", "b") // one key, so one shard's tick counter
	}
	st := r.Stats()
	if st.Recorded != 25 || st.SampledOut != 75 {
		t.Errorf("stats = %+v, want 25 recorded / 75 sampled out", st)
	}
	g := BuildGraph(r.Snapshot())
	if got := g.Contexts["C"].NextCount("a", "b"); got != 25 {
		t.Errorf("sampled count = %d, want 25", got)
	}
}

func TestRecordTableOverflowDrops(t *testing.T) {
	r := NewRecorder(RecorderConfig{Shards: 1, SlotsPerShard: 1})
	r.Record("C", "a", "b")
	r.Record("C", "a", "c") // no slot left anywhere in the single shard
	st := r.Stats()
	if st.Recorded != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 recorded / 1 dropped", st)
	}
	if hops := r.Snapshot(); len(hops) != 1 || hops[0].To != "b" {
		t.Errorf("snapshot = %+v, want only the first hop", hops)
	}
}

// TestRecordZeroAllocs is the hot-path guard the tentpole demands:
// recording a hop — new or hot — allocates nothing.
func TestRecordZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	r := NewRecorder(RecorderConfig{})
	r.Record("ByAuthor:picasso", "guitar", "guernica")
	if avg := testing.AllocsPerRun(1000, func() {
		r.Record("ByAuthor:picasso", "guitar", "guernica")
	}); avg != 0 {
		t.Errorf("hot-edge record = %.2f allocs/op, want 0", avg)
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("node%02d", i)
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		r.Record("C", keys[i%64], keys[(i+1)%64])
		i++
	}); avg != 0 {
		t.Errorf("varied record = %.2f allocs/op, want 0", avg)
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines —
// hot edges, distinct edges and concurrent snapshots — and checks no
// hop is lost or double-counted (run under -race for the memory-model
// guarantee).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := fmt.Sprintf("mine%d", g)
			for i := 0; i < perG; i++ {
				r.Record("C", "hot", "edge") // contended slot
				r.Record("C", mine, "edge")  // per-goroutine slot
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { // concurrent reader
		defer close(done)
		for i := 0; i < 50; i++ {
			BuildGraph(r.Snapshot())
			_ = r.Stats()
		}
	}()
	wg.Wait()
	<-done

	if st := r.Stats(); st.Recorded != 2*goroutines*perG {
		t.Errorf("recorded = %d, want %d", st.Recorded, 2*goroutines*perG)
	}
	g := BuildGraph(r.Snapshot())
	if got := g.Contexts["C"].NextCount("hot", "edge"); got != goroutines*perG {
		t.Errorf("hot edge = %d, want %d", got, goroutines*perG)
	}
}
