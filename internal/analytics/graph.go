package analytics

import "sort"

// Transition is one aggregated edge of a context's transition graph.
type Transition struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count uint64 `json:"count"`
}

// NodeCount pairs a node with an aggregated count.
type NodeCount struct {
	Node  string `json:"node"`
	Count uint64 `json:"count"`
}

// ContextGraph is the folded traffic of one navigational context: who
// was visited, where visitors came in, and which transitions they took.
// Nodes include navigation.HubID when visitors touched the entry page.
type ContextGraph struct {
	// Name is the resolved context name, e.g. "ByAuthor:picasso".
	Name string
	// Hops is the total recorded hops in this context (entries included).
	Hops uint64
	// Visits counts incoming hops per node — how often each node was
	// arrived at, whether by traversal or by entry.
	Visits map[string]uint64
	// Entries counts hops from EntryFrom per node — how often the
	// context was entered at that node.
	Entries map[string]uint64

	next map[string]map[string]uint64
}

// Graph is the transition graph over every context that saw traffic.
type Graph struct {
	Contexts map[string]*ContextGraph
	// Hops is the total recorded hops across all contexts.
	Hops uint64
}

// BuildGraph folds recorded hops into per-context transition graphs,
// summing duplicate entries (the recorder may emit the same key twice
// after a claim race).
func BuildGraph(hops []Hop) *Graph {
	g := &Graph{Contexts: map[string]*ContextGraph{}}
	for _, h := range hops {
		if h.Count == 0 {
			continue
		}
		cg := g.Contexts[h.Context]
		if cg == nil {
			cg = &ContextGraph{
				Name:    h.Context,
				Visits:  map[string]uint64{},
				Entries: map[string]uint64{},
				next:    map[string]map[string]uint64{},
			}
			g.Contexts[h.Context] = cg
		}
		cg.Hops += h.Count
		g.Hops += h.Count
		cg.Visits[h.To] += h.Count
		if h.From == EntryFrom {
			cg.Entries[h.To] += h.Count
			continue
		}
		m := cg.next[h.From]
		if m == nil {
			m = map[string]uint64{}
			cg.next[h.From] = m
		}
		m[h.To] += h.Count
	}
	return g
}

// NextCount reports how often from -> to was traversed.
func (cg *ContextGraph) NextCount(from, to string) uint64 { return cg.next[from][to] }

// Outgoing sums the traversals leaving a node (entries never leave
// EntryFrom, so it reads as zero).
func (cg *ContextGraph) Outgoing(from string) uint64 {
	var n uint64
	for _, c := range cg.next[from] {
		n += c
	}
	return n
}

// Exits estimates how often visitors' trails ended at a node: visits in
// minus traversals out, clamped at zero (concurrent tabs can make the
// difference momentarily negative).
func (cg *ContextGraph) Exits(node string) uint64 {
	in, out := cg.Visits[node], cg.Outgoing(node)
	if out >= in {
		return 0
	}
	return in - out
}

// TopNext returns the k most-traversed transitions leaving from,
// strongest first (ties broken toward the lexicographically smaller
// target, so results are deterministic).
func (cg *ContextGraph) TopNext(from string, k int) []Transition {
	t := newTopK(k)
	for to, c := range cg.next[from] {
		t.push(counted{key: to, count: c})
	}
	out := make([]Transition, 0, k)
	for _, c := range t.sorted() {
		out = append(out, Transition{From: from, To: c.key, Count: c.count})
	}
	return out
}

// TopEdges returns the k most-traversed transitions of the whole
// context, strongest first (deterministic tie-break on "from\x1fto").
func (cg *ContextGraph) TopEdges(k int) []Transition {
	t := newTopK(k)
	for from, m := range cg.next {
		for to, c := range m {
			t.push(counted{key: from + "\x1f" + to, from: from, to: to, count: c})
		}
	}
	out := make([]Transition, 0, k)
	for _, c := range t.sorted() {
		out = append(out, Transition{From: c.from, To: c.to, Count: c.count})
	}
	return out
}

// Edges returns every transition of the context sorted by (from, to) —
// the full graph export the control plane serves, where the bounded
// TopEdges heap would truncate.
func (cg *ContextGraph) Edges() []Transition {
	var out []Transition
	for from, m := range cg.next {
		for to, c := range m {
			out = append(out, Transition{From: from, To: to, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TopNodes returns the k most-visited nodes, strongest first.
func (cg *ContextGraph) TopNodes(k int) []NodeCount {
	return topCounts(cg.Visits, k)
}

// TopEntries returns the k most-frequent entry nodes, strongest first.
func (cg *ContextGraph) TopEntries(k int) []NodeCount {
	return topCounts(cg.Entries, k)
}

// topCounts selects the top k of a count map.
func topCounts(counts map[string]uint64, k int) []NodeCount {
	t := newTopK(k)
	for n, c := range counts {
		t.push(counted{key: n, count: c})
	}
	out := make([]NodeCount, 0, k)
	for _, c := range t.sorted() {
		out = append(out, NodeCount{Node: c.key, Count: c.count})
	}
	return out
}

// counted is one candidate in a bounded top-k selection; from/to carry
// edge endpoints when the key is composite.
type counted struct {
	key      string
	from, to string
	count    uint64
}

// weaker orders candidates for the min-heap: lower count is weaker, and
// on equal counts the lexicographically larger key is weaker, so the
// surviving top-k (and its final ordering) is deterministic.
func weaker(a, b counted) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.key > b.key
}

// topK is a bounded selection over a stream of counted candidates: a
// size-k min-heap whose root is the weakest survivor, so each push is
// O(log k) and selecting the top k of n candidates is O(n log k) — the
// "small heap" that keeps per-context top-next queries cheap even for
// high-degree nodes.
type topK struct {
	k int
	h []counted
}

func newTopK(k int) *topK {
	if k < 0 {
		k = 0
	}
	return &topK{k: k, h: make([]counted, 0, k)}
}

// push offers a candidate, evicting the weakest survivor when full.
func (t *topK) push(c counted) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		t.siftUp(len(t.h) - 1)
		return
	}
	if weaker(c, t.h[0]) || c == t.h[0] {
		return
	}
	t.h[0] = c
	t.siftDown(0)
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !weaker(t.h[i], t.h[parent]) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	for {
		weakest := i
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(t.h) && weaker(t.h[child], t.h[weakest]) {
				weakest = child
			}
		}
		if weakest == i {
			return
		}
		t.h[i], t.h[weakest] = t.h[weakest], t.h[i]
		i = weakest
	}
}

// sorted returns the survivors strongest first.
func (t *topK) sorted() []counted {
	out := append([]counted(nil), t.h...)
	sort.Slice(out, func(i, j int) bool { return weaker(out[j], out[i]) })
	return out
}
