package analytics

import (
	"sort"
	"strings"

	"repro/internal/navigation"
)

// Derivation defaults; override through Config.
const (
	// DefaultMinHops is the per-context sample floor: contexts with
	// fewer recorded hops keep their authored structure rather than
	// adapt to noise.
	DefaultMinHops = 50
	// DefaultLandmarkShare is the visit share above which a node is
	// promoted to an in-context landmark. Vinson's guidelines ask for a
	// small set of highly salient landmarks, so the threshold is high
	// enough that only genuinely dominant nodes qualify.
	DefaultLandmarkShare = 0.25
	// DefaultMaxLandmarks caps promotions per context — a landmark bar
	// with a dozen entries distinguishes nothing.
	DefaultMaxLandmarks = 3
)

// Config tunes the derivation layer. Zero values mean "use the
// default", so the sentinels for turning a knob all the way down are
// explicit: MinHops 1 is the lowest real floor (a zero-hop context
// never derives anyway), a negative LandmarkShare promotes every
// visited node, a negative MaxLandmarks lifts the promotion cap, and
// LandmarkShare of 1 or more disables promotion.
type Config struct {
	// MinHops is the per-context sample floor (0 = DefaultMinHops;
	// use 1 for no effective floor).
	MinHops uint64
	// LandmarkShare is the visit-share promotion threshold
	// (0 = DefaultLandmarkShare; negative promotes everything visited;
	// 1 or more disables promotion).
	LandmarkShare float64
	// MaxLandmarks caps promotions per context
	// (0 = DefaultMaxLandmarks; negative = no cap).
	MaxLandmarks int
	// Circular closes each derived tour's Next/Prev ring.
	Circular bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MinHops == 0 {
		c.MinHops = DefaultMinHops
	}
	if c.LandmarkShare == 0 {
		c.LandmarkShare = DefaultLandmarkShare
	}
	if c.MaxLandmarks == 0 {
		c.MaxLandmarks = DefaultMaxLandmarks
	}
	return c
}

// ContextInfo names one resolvable context the deriver may compile a
// plan for: its instance name, the family SetAccessStructure swaps, the
// authored member order (the fallback ordering for unseen nodes), and
// the authored access structure (served verbatim to zero-traffic
// siblings of an adapted context).
type ContextInfo struct {
	Name    string
	Family  string
	Members []string
	// Access is the family's authored structure (nil when unknown —
	// the derived tour then falls back to an indexed guided tour).
	Access navigation.AccessStructure
}

// Infos lists the derivable contexts of a live resolved model. An
// already-adapted family reports the structure it was originally
// authored with, so repeated derivation cycles never nest tours.
func Infos(rm *navigation.ResolvedModel) []ContextInfo {
	out := make([]ContextInfo, 0, len(rm.Contexts))
	for _, rc := range rm.Contexts {
		members := make([]string, len(rc.Members))
		for i, m := range rc.Members {
			members[i] = m.ID()
		}
		out = append(out, ContextInfo{
			Name:    rc.Name,
			Family:  rc.Def.Name,
			Members: members,
			Access:  navigation.BaseAccess(rc.Def.Access),
		})
	}
	return out
}

// InfosFromLinkbase lists derivable contexts from parsed linkbase
// contexts — the offline path (cmd/navstats), where the site definition
// comes out of a stored snapshot rather than a live model. The family
// is the instance name's prefix before ":" (grouped families encode
// their group that way; ungrouped names are their own family).
func InfosFromLinkbase(lcs []*navigation.LinkbaseContext) []ContextInfo {
	out := make([]ContextInfo, 0, len(lcs))
	for _, lc := range lcs {
		family := lc.Name
		if i := strings.IndexByte(family, ':'); i >= 0 {
			family = family[:i]
		}
		// The linkbase names the access kind; kinds it cannot rebuild
		// (including "adaptive-tour" from an already-adapted snapshot)
		// leave Access nil and the derived tour uses its default.
		access, err := navigation.AccessByKind(lc.AccessKind)
		if err != nil {
			access = nil
		}
		out = append(out, ContextInfo{
			Name:    lc.Name,
			Family:  family,
			Members: append([]string(nil), lc.Order...),
			Access:  access,
		})
	}
	return out
}

// Derive compiles the transition graph into adaptive access structures,
// one per context family that has at least one context with enough
// traffic, keyed by family name — ready to hand to SetAccessStructure,
// whose rebuild diff then computes the invalidation radius of the swap.
//
// Per qualifying context the plan holds:
//
//   - a "popular next" order: starting from the most frequent entry
//     node, repeatedly follow the most-traversed outgoing transition to
//     an unplaced member (falling back to the most-visited unplaced
//     member when a trail goes cold) — the guided tour visitors were
//     already taking;
//   - landmark promotion: members whose visit share clears
//     Config.LandmarkShare become in-context landmarks, linked from
//     every member page;
//   - dead-link demotion: members no visitor ever reached are dropped
//     from the Next/Prev chain (they stay reachable from the hub).
func Derive(g *Graph, ctxs []ContextInfo, cfg Config) map[string]*navigation.AdaptiveTour {
	cfg = cfg.withDefaults()
	tours := map[string]*navigation.AdaptiveTour{}
	for _, info := range ctxs {
		cg := g.Contexts[info.Name]
		if cg == nil || cg.Hops < cfg.MinHops {
			continue
		}
		plan, ok := derivePlan(cg, info.Members, cfg)
		if !ok {
			continue
		}
		tour := tours[info.Family]
		if tour == nil {
			tour = &navigation.AdaptiveTour{
				Plans:    map[string]navigation.TourPlan{},
				Fallback: info.Access,
				Circular: cfg.Circular,
			}
			tours[info.Family] = tour
		}
		tour.Plans[info.Name] = plan
	}
	return tours
}

// derivePlan compiles one context's plan. members is the authored
// order; only observed member nodes shape the derived order, and the
// hub pseudo-node never appears in it.
func derivePlan(cg *ContextGraph, members []string, cfg Config) (navigation.TourPlan, bool) {
	pos := make(map[string]int, len(members))
	for i, m := range members {
		pos[m] = i
	}
	var alive []string
	for _, m := range members {
		if cg.Visits[m] > 0 {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return navigation.TourPlan{}, false
	}

	// Walk the popular-next chain: enter where visitors enter, follow
	// what they follow, restart at the hottest unplaced member when the
	// observed trail goes cold.
	placed := make(map[string]bool, len(alive))
	order := make([]string, 0, len(members))
	cur := pickMax(alive, placed, cg.Entries, pos)
	if cg.Entries[cur] == 0 {
		cur = pickMax(alive, placed, cg.Visits, pos)
	}
	for cur != "" {
		order = append(order, cur)
		placed[cur] = true
		next := ""
		var best uint64
		for to, c := range cg.next[cur] {
			if placed[to] || to == navigation.HubID {
				continue
			}
			if _, member := pos[to]; !member {
				continue
			}
			if c > best || (c == best && next != "" && pos[to] < pos[next]) {
				next, best = to, c
			}
		}
		if next == "" {
			next = pickMax(alive, placed, cg.Visits, pos)
		}
		cur = next
	}

	// Demote the never-visited to the end of the roll, out of the chain.
	var dead []string
	for _, m := range members {
		if cg.Visits[m] == 0 {
			order = append(order, m)
			dead = append(dead, m)
		}
	}

	return navigation.TourPlan{
		Order:     order,
		Landmarks: promote(alive, cg, cfg, pos),
		Dead:      dead,
	}, true
}

// pickMax returns the unplaced candidate with the highest count (ties
// to the earlier authored position), or "" when none remain.
func pickMax(candidates []string, placed map[string]bool, counts map[string]uint64, pos map[string]int) string {
	best := ""
	var bestCount uint64
	for _, c := range candidates {
		if placed[c] {
			continue
		}
		n := counts[c]
		if best == "" || n > bestCount || (n == bestCount && pos[c] < pos[best]) {
			best, bestCount = c, n
		}
	}
	return best
}

// promote selects the members whose visit share clears the landmark
// threshold, hottest first, capped at MaxLandmarks.
func promote(alive []string, cg *ContextGraph, cfg Config, pos map[string]int) []string {
	if cfg.LandmarkShare >= 1 {
		return nil
	}
	var total uint64
	for _, m := range alive {
		total += cg.Visits[m]
	}
	if total == 0 {
		return nil
	}
	var out []string
	for _, m := range alive {
		if float64(cg.Visits[m])/float64(total) >= cfg.LandmarkShare {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := cg.Visits[out[i]], cg.Visits[out[j]]
		if vi != vj {
			return vi > vj
		}
		return pos[out[i]] < pos[out[j]]
	})
	if cfg.MaxLandmarks > 0 && len(out) > cfg.MaxLandmarks {
		out = out[:cfg.MaxLandmarks]
	}
	return out
}
