package core

import (
	"strings"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

// landmarkModel declares the museum contexts plus an ungrouped
// AllPaintings landmark.
func landmarkModel(t *testing.T) *navigation.Model {
	t.Helper()
	m := museum.Model(navigation.IndexedGuidedTour{})
	m.MustAddContext(&navigation.ContextDef{
		Name: "AllPaintings", NodeClass: "PaintingNode",
		OrderBy: "title", Access: navigation.Index{},
	})
	m.MustAddLandmark("AllPaintings")
	return m
}

func TestLandmarkOnEveryPage(t *testing.T) {
	app, err := NewApp(museum.PaperStore(), landmarkModel(t))
	if err != nil {
		t.Fatal(err)
	}
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range site.Paths() {
		html := site.Page(path).HTML
		if !strings.Contains(html, `class="nav-landmark"`) {
			t.Errorf("%s missing landmark bar", path)
		}
		if !strings.Contains(html, `href="/AllPaintings/index.html"`) {
			t.Errorf("%s landmark href wrong", path)
		}
	}
}

func TestLandmarkValidation(t *testing.T) {
	m := museum.Model(navigation.Index{})
	if err := m.AddLandmark("Nowhere"); err == nil {
		t.Error("unknown landmark accepted")
	}
	// Grouped families cannot be landmarks.
	if err := m.AddLandmark("ByAuthor"); err == nil {
		t.Error("grouped landmark accepted")
	}
	m.MustAddContext(&navigation.ContextDef{
		Name: "All", NodeClass: "PaintingNode", Access: navigation.Index{},
	})
	if err := m.AddLandmark("All"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLandmark("All"); err == nil {
		t.Error("duplicate landmark accepted")
	}
	if got := m.Landmarks(); len(got) != 1 || got[0] != "All" {
		t.Errorf("Landmarks = %v", got)
	}
}

func TestLandmarkInSpecText(t *testing.T) {
	spec := navigation.SpecText(landmarkModel(t))
	if !strings.Contains(spec, "landmark AllPaintings") {
		t.Errorf("spec missing landmark:\n%s", spec)
	}
}

func TestHublessLandmarkEntry(t *testing.T) {
	m := museum.Model(navigation.Index{})
	m.MustAddContext(&navigation.ContextDef{
		Name: "Tour", NodeClass: "PaintingNode",
		OrderBy: "year", Access: navigation.GuidedTour{},
	})
	m.MustAddLandmark("Tour")
	app, err := NewApp(museum.PaperStore(), m)
	if err != nil {
		t.Fatal(err)
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	// A guided tour's entry is its first member, not a hub.
	if !strings.Contains(page.HTML, `href="/Tour/avignon.html"`) {
		t.Errorf("hubless landmark entry wrong:\n%s", page.HTML)
	}
}
