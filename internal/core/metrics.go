package core

import (
	"time"

	"repro/internal/obs"
)

// Package-level instrumentation for the weave/cache layer. Counters are
// registered once in the default registry; the record calls on the
// serve path are zero-alloc atomic adds (see internal/obs).
var (
	cacheHits = obs.Default.Counter("navcore_page_cache_hits_total",
		"Woven-page cache lookups served from cache.")
	cacheMisses = obs.Default.Counter("navcore_page_cache_misses_total",
		"Woven-page cache lookups that led a fresh weave.")
	cacheJoins = obs.Default.Counter("navcore_page_cache_joins_total",
		"Woven-page cache lookups coalesced onto another caller's in-flight weave.")

	rebuildDuration = obs.Default.Histogram("navcore_rebuild_duration_seconds",
		"Time one model rebuild took: resolve, export, linkbase, diff, invalidate.")
	rebuildsByVerdict = map[string]*obs.Counter{
		verdictFull:  obs.Default.Counter("navcore_rebuilds_total", "Model rebuilds by invalidation verdict.", "verdict", verdictFull),
		verdictLocal: obs.Default.Counter("navcore_rebuilds_total", "Model rebuilds by invalidation verdict.", "verdict", verdictLocal),
		verdictNone:  obs.Default.Counter("navcore_rebuilds_total", "Model rebuilds by invalidation verdict.", "verdict", verdictNone),
	}
	pagesInvalidated = obs.Default.Counter("navcore_pages_invalidated_total",
		"Cached pages dropped by mutations, summed over their blast radii.")
)

// Invalidation verdicts: what a mutation's dependency diff concluded.
const (
	verdictFull  = "full"
	verdictLocal = "local"
	verdictNone  = "none"
)

// eventRingCapacity bounds the mutation-trace ring; 256 recent
// mutations is hours of control-plane history at realistic rates.
const eventRingCapacity = 256

// Events returns the app's mutation-trace ring: one record per model
// mutation with its duration, diff verdict and invalidation blast
// radius. The server's /api/v1/events reads it.
func (app *App) Events() *obs.EventRing { return app.events }

// recordMutation appends one mutation event to the trace ring and rolls
// its blast radius into the invalidation counter. Called on the
// control-plane (mutation) path only — never on a serve path — so the
// clock reads and the ring's mutex are fine here.
func (app *App) recordMutation(kind, target string, start time.Time, dropped int, verdict string) {
	pagesInvalidated.Add(uint64(dropped))
	app.events.Record(obs.MutationEvent{
		Time:             time.Now(),
		Kind:             kind,
		Target:           target,
		Duration:         time.Since(start),
		PagesInvalidated: dropped,
		Verdict:          verdict,
		CacheGeneration:  app.cache.generation(),
	})
}
