// Package core implements the paper's primary contribution: separating the
// navigational aspect of a web application from its data and presentation,
// and weaving the three back together mechanically (Figure 6).
//
// The pieces, each authored independently:
//
//   - Data: conceptual instances exported to per-node XML documents
//     (picasso.xml, avignon.xml — Figures 7–8), containing no links.
//   - Navigation: the navigational model, serialized to an XLink linkbase
//     (links.xml — Figure 9). All link structure lives here.
//   - Presentation: a template stylesheet producing each node's base page,
//     oblivious to navigation.
//
// An App exposes the page-production pipeline as join points
// (KindPageRender, KindSiteWeave) and installs a navigation aspect whose
// around advice reads the linkbase and injects the access-structure markup
// into each page. Changing the access structure — the paper's §5
// requirements change that forced edits to every page of the tangled
// implementation (Figures 3–4) — becomes a one-line re-declaration here:
// SetAccessStructure re-resolves, regenerates links.xml and re-weaves.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/conceptual"
	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/presentation"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// Join point kinds exposed by the weaving pipeline.
const (
	// KindSiteWeave wraps the whole static weave of a site.
	KindSiteWeave = "site.weave"
	// KindPageRender wraps the production of one page; the navigation
	// aspect advises it. Attrs: context, access, node (or "_index"),
	// class.
	KindPageRender = "page.render"
)

// App is a woven web application: one conceptual store, one navigational
// model, optional custom presentation, and an aspect weaver.
//
// An App is safe for concurrent use: any number of goroutines may render
// pages (RenderPage, RenderPageCached, WeaveSite) while others mutate the
// model (SetAccessStructure, SetStylesheet). Renders see either the old
// or the new model, never a mix, and the page cache is invalidated
// atomically with every mutation.
type App struct {
	store *conceptual.Store
	model *navigation.Model

	weaver *aspect.Weaver
	cache  *pageCache
	docs   *docCache
	// events traces recent mutations: duration, diff verdict and
	// invalidation blast radius per model change (see Events).
	events *obs.EventRing

	// mu guards the model-derived state below: renders hold the read
	// lock for the whole pipeline; rebuilds hold the write lock.
	mu         sync.RWMutex
	stylesheet *presentation.Stylesheet
	// stylesheetSrc is the XML source of the stylesheet when it was
	// installed through SetStylesheetXML (the control plane's PUT), so
	// GET /api/v1/stylesheet can serve back the exact artifact. Empty
	// when the built-in presentation or a programmatic stylesheet is in
	// effect.
	stylesheetSrc string
	resolved      *navigation.ResolvedModel
	repo          xlink.MapRepository
	linkbase      *xmldom.Document
	lbContexts    map[string]*navigation.LinkbaseContext
	sig           modelSig
}

// contextSig fingerprints the parts of one linkbase context that woven
// pages display: the member roll with its titles (order matters — it is
// traversal order) and the traversal edges.
type contextSig struct {
	members string
	edges   string
}

// modelSig fingerprints the navigational surface of the whole model.
// rebuild diffs the signature before and after a mutation to decide
// which cached pages the mutation actually touched: changed edges stay
// local to their context, while changed membership, titles or landmarks
// leak into every page (the "Also in" links and the landmark bar), so
// those force a full invalidation.
type modelSig struct {
	contexts  map[string]contextSig
	landmarks string
}

// NewApp assembles an application: it resolves the navigational model,
// exports the data documents, generates the linkbase and installs the
// navigation aspect.
func NewApp(store *conceptual.Store, model *navigation.Model) (*App, error) {
	app := &App{
		store:  store,
		model:  model,
		weaver: aspect.NewWeaver(),
		cache:  newPageCache(),
		docs:   newDocCache(),
		events: obs.NewEventRing(eventRingCapacity),
	}
	if _, _, err := app.rebuild(); err != nil {
		return nil, err
	}
	app.weaver.Use(NavigationAspect(app))
	return app, nil
}

// rebuild re-derives everything that depends on the model: resolved
// contexts, data repository and linkbase. Callers other than NewApp must
// hold app.mu for writing. It returns how many cached pages were
// dropped and the diff's verdict (verdictFull, verdictLocal or
// verdictNone) — the blast-radius classification the mutation trace
// records.
//
// Invalidation is dependency-aware: rebuild diffs the navigational
// signature and the serialized documents before and after, and drops
// only the cached pages the mutation actually touched — the paper's
// separation applied to the cache. A change that stays inside one
// context family (the §5 access-structure swap) costs that family's
// pages, not the site's.
func (app *App) rebuild() (int, string, error) {
	start := time.Now()
	oldSig := app.sig
	rm, err := app.model.Resolve(app.store)
	if err != nil {
		return 0, "", fmt.Errorf("core: resolving navigation model: %w", err)
	}
	app.resolved = rm

	app.repo = xlink.MapRepository{}
	for name, doc := range conceptual.ExportAll(app.store) {
		app.repo[name] = doc
	}
	app.linkbase = navigation.GenerateLinkbase(rm)
	app.repo["links.xml"] = app.linkbase

	// The weaving pipeline reads navigation back OUT of the linkbase —
	// not out of the in-memory model — proving links.xml carries the
	// whole navigational aspect, as the paper proposes.
	contexts, err := navigation.ParseLinkbase(app.linkbase)
	if err != nil {
		return 0, "", fmt.Errorf("core: reading generated linkbase: %w", err)
	}
	app.lbContexts = make(map[string]*navigation.LinkbaseContext, len(contexts))
	for _, c := range contexts {
		app.lbContexts[c.Name] = c
	}
	app.sig = app.modelSigLocked()

	// Serialize every repository document once, at mutation time: the
	// bytes seed the serialized-document cache the server hands out
	// (no per-request serialization), and diffing them against the
	// previous serialization reveals which data documents changed.
	serialized := make(map[string][]byte, len(app.repo))
	for uri, doc := range app.repo {
		serialized[uri] = []byte(doc.IndentedString())
	}
	changedDocs := app.docs.diff(serialized)

	// Decide what the mutation touched. The generation advances with
	// any invalidation, so weaves in flight across the mutation are
	// discarded rather than cached against the new model.
	changedCtxs := map[string]bool{}
	full := oldSig.contexts == nil || oldSig.landmarks != app.sig.landmarks ||
		len(oldSig.contexts) != len(app.sig.contexts)
	if !full {
		for name, nc := range app.sig.contexts {
			oc, ok := oldSig.contexts[name]
			if !ok || oc.members != nc.members {
				// A context appeared or its member roll (or titles)
				// changed: the "Also in" links and embeds of pages in
				// *other* contexts may name it, so stay conservative.
				full = true
				break
			}
			if oc.edges != nc.edges {
				changedCtxs[name] = true
			}
		}
	}
	dropped, verdict := 0, verdictNone
	switch {
	case full:
		dropped = app.cache.invalidate()
		verdict = verdictFull
	case len(changedCtxs) > 0 || len(changedDocs) > 0:
		dropped = app.cache.invalidateMatching(func(p *Page) bool {
			if changedCtxs[p.deps.context] {
				return true
			}
			for _, d := range p.deps.docs {
				if changedDocs[d] {
					return true
				}
			}
			return false
		})
		verdict = verdictLocal
	}
	// Unchanged documents keep their ETags (and cached pages their
	// entries): a rebuild that changes nothing observable costs nothing.
	app.docs.reseed(serialized, changedDocs, app.cache.generation())
	rebuildDuration.Observe(time.Since(start))
	rebuildsByVerdict[verdict].Inc()
	return dropped, verdict, nil
}

// modelSigLocked fingerprints the current linkbase contexts and
// landmarks. Callers must hold app.mu (NewApp's first rebuild runs
// before the App escapes).
func (app *App) modelSigLocked() modelSig {
	sig := modelSig{contexts: make(map[string]contextSig, len(app.lbContexts))}
	for name, lbc := range app.lbContexts {
		var m, e strings.Builder
		for _, id := range lbc.Order {
			m.WriteString(id)
			m.WriteByte(0)
			m.WriteString(lbc.NodeTitles[id])
			m.WriteByte(0)
		}
		// Hub-ness rides the edges signature, not the member roll: only
		// the context's own pages render its hub (the index page, Up
		// links), so a swap that drops or gains one stays family-local.
		// Cross-context consumers of an entry node — the landmark bar —
		// are covered by the landmarks signature, which records every
		// landmark's entry.
		if lbc.HasHub {
			e.WriteString("\x00hub")
		}
		e.WriteString(lbc.AccessKind)
		e.WriteByte(0)
		for _, ed := range lbc.Edges {
			e.WriteString(string(ed.Kind))
			e.WriteByte(0)
			e.WriteString(ed.From)
			e.WriteByte(0)
			e.WriteString(ed.To)
			e.WriteByte(0)
			e.WriteString(ed.Label)
			e.WriteByte(0)
			e.WriteString(ed.Show)
			e.WriteByte(0)
		}
		sig.contexts[name] = contextSig{members: m.String(), edges: e.String()}
	}
	var l strings.Builder
	for _, lm := range app.resolved.Landmarks {
		l.WriteString(lm.Name)
		l.WriteByte(0)
		l.WriteString(lm.EntryNode())
		l.WriteByte(0)
	}
	sig.landmarks = l.String()
	return sig
}

// Store returns the conceptual store.
func (app *App) Store() *conceptual.Store { return app.store }

// Model returns the navigational model.
func (app *App) Model() *navigation.Model { return app.model }

// Resolved returns the resolved navigation model.
func (app *App) Resolved() *navigation.ResolvedModel {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.resolved
}

// Weaver returns the aspect weaver, so callers can register further
// aspects (logging, access control) beside navigation.
func (app *App) Weaver() *aspect.Weaver { return app.weaver }

// Linkbase returns the generated links.xml document.
func (app *App) Linkbase() *xmldom.Document {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.linkbase
}

// Repository returns the data-document repository (node XML files plus
// links.xml), the input an XLink-aware agent works from.
func (app *App) Repository() xlink.MapRepository {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.repo
}

// SetStylesheet installs a custom presentation stylesheet for node pages.
// It must transform a node data document (e.g. Figure 7's painter XML)
// into a single html element. A nil stylesheet restores the built-in
// presentation. Only the cached pages woven through the stylesheet slot
// — member pages — are invalidated; hub shells and the serialized
// documents never consult it and stay cached.
func (app *App) SetStylesheet(ss *presentation.Stylesheet) {
	start := time.Now()
	app.mu.Lock()
	defer app.mu.Unlock()
	app.stylesheet = ss
	app.stylesheetSrc = ""
	dropped := app.cache.invalidateMatching(func(p *Page) bool { return p.deps.stylesheet })
	app.recordMutation("stylesheet", "stylesheet", start, dropped, verdictLocal)
}

// SetStylesheetXML parses the XML form of a presentation stylesheet and
// installs it, retaining the source text so the control plane can serve
// the exact artifact back (StylesheetXML). A blank source restores the
// built-in presentation. The parse happens before any state moves —
// validate-then-mutate: a malformed stylesheet changes nothing.
func (app *App) SetStylesheetXML(src string) error {
	if strings.TrimSpace(src) == "" {
		app.SetStylesheet(nil)
		return nil
	}
	ss, err := presentation.ParseStylesheetString(src)
	if err != nil {
		return err
	}
	start := time.Now()
	app.mu.Lock()
	defer app.mu.Unlock()
	app.stylesheet = ss
	app.stylesheetSrc = src
	dropped := app.cache.invalidateMatching(func(p *Page) bool { return p.deps.stylesheet })
	app.recordMutation("stylesheet", "stylesheet", start, dropped, verdictLocal)
	return nil
}

// StylesheetXML returns the XML source of the stylesheet installed
// through SetStylesheetXML, and whether one is in effect. The built-in
// presentation and programmatically installed stylesheets have no XML
// source, so they report false.
func (app *App) StylesheetXML() (string, bool) {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.stylesheetSrc, app.stylesheetSrc != ""
}

// SpecText renders the current navigational model as its declaration
// artifact (navigation.SpecText), read under the model lock so a
// concurrent access-structure swap cannot tear the text mid-render.
func (app *App) SpecText() string {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return navigation.SpecText(app.model)
}

// ModelView is one consistent read of everything the control plane's
// model endpoint serves: the declaration artifact, each family's access
// structure, the resolved model and the cache generation, all taken
// under a single acquisition of the model lock — a concurrent swap
// yields either the before or the after view, never a mix.
type ModelView struct {
	SpecText   string
	Access     map[string]navigation.AccessStructure
	Resolved   *navigation.ResolvedModel
	Generation uint64
}

// View snapshots a ModelView.
func (app *App) View() ModelView {
	app.mu.RLock()
	defer app.mu.RUnlock()
	access := make(map[string]navigation.AccessStructure, len(app.model.Contexts()))
	for _, c := range app.model.Contexts() {
		access[c.Name] = c.Access
	}
	return ModelView{
		SpecText:   navigation.SpecText(app.model),
		Access:     access,
		Resolved:   app.resolved,
		Generation: app.cache.generation(),
	}
}

// ErrUnknownFamily reports a structure swap naming a context family the
// model does not declare; callers (the control plane) test for it with
// errors.Is to answer 404 rather than 500.
var ErrUnknownFamily = errors.New("unknown context family")

// SetAccessStructure swaps the access structure of one context family and
// re-derives the linkbase — the paper's requirements change (Index to
// Indexed Guided Tour), reduced from editing every page to one call.
// Cached pages are invalidated atomically with the swap, so the paper's
// motivating change-cost scenario stays correct under cached serving.
func (app *App) SetAccessStructure(family string, as navigation.AccessStructure) error {
	_, err := app.SetAccessStructures(map[string]navigation.AccessStructure{family: as})
	return err
}

// SetAccessStructures swaps the access structures of several context
// families atomically, with one re-derivation and one invalidation diff
// for the whole batch — what the adaptation loop wants when a derive
// cycle updates every family at once, where per-family calls would cost
// a full rebuild each. All families are validated before any is
// mutated; an empty map is a no-op. It returns how many cached pages
// the batch invalidated — the blast radius the dependency-aware diff
// decided on, which the control plane reports back to the operator.
func (app *App) SetAccessStructures(swaps map[string]navigation.AccessStructure) (int, error) {
	if len(swaps) == 0 {
		return 0, nil
	}
	defs := make(map[string]*navigation.ContextDef, len(swaps))
	for _, c := range app.model.Contexts() {
		if _, wanted := swaps[c.Name]; wanted {
			defs[c.Name] = c
		}
	}
	families := make([]string, 0, len(swaps))
	for family := range swaps {
		if defs[family] == nil {
			return 0, fmt.Errorf("core: %w %q", ErrUnknownFamily, family)
		}
		families = append(families, family)
	}
	sort.Strings(families)
	start := time.Now()
	app.mu.Lock()
	defer app.mu.Unlock()
	for family, as := range swaps {
		defs[family].Access = as
	}
	dropped, verdict, err := app.rebuild()
	if err != nil {
		return dropped, err
	}
	app.recordMutation("structure-swap", strings.Join(families, ","), start, dropped, verdict)
	return dropped, nil
}

// InvalidateDocument re-derives the model after an edit to the data
// behind the named document (conceptual.Store.SetAttr) and drops
// exactly the cached pages the edit touched, returning how many. The
// uri is the document's repository name (navigation.NodeHref of the
// node, e.g. "guitar.xml"); naming a document the repository does not
// hold is an error.
//
// The rebuild diff — not the caller — decides the blast radius. A
// caption-only edit changes just the document's bytes, so only the
// pages woven from it (in every context containing its node) drop and
// every other validator keeps serving 304s. An edit that reaches the
// navigational surface — a title that anchors and the linkbase
// display, an attribute a tour is ordered by — changes the signature
// and invalidates as widely as it must. Getting that radius right
// costs a full re-derivation at mutation time; the request path stays
// untouched either way.
func (app *App) InvalidateDocument(uri string) (int, error) {
	start := time.Now()
	app.mu.Lock()
	defer app.mu.Unlock()
	dropped, verdict, err := app.rebuild()
	if err != nil {
		return dropped, err
	}
	if _, ok := app.repo[uri]; !ok {
		return dropped, fmt.Errorf("core: no document %q", uri)
	}
	app.recordMutation("document", uri, start, dropped, verdict)
	return dropped, nil
}

// DocBytes returns the serialized form of repository document uri with
// its precomputed strong validator and Content-Length. The bytes are
// produced once, at mutation time (rebuild and InvalidateDocument keep
// the cache seeded for the whole repository), so the request path
// neither serializes, hashes nor formats. The returned slice is shared:
// callers must not modify it.
//
//repro:hotpath
func (app *App) DocBytes(uri string) (body []byte, etag, contentLength string, err error) {
	if e, ok := app.docs.get(uri); ok {
		return e.body, e.etag, e.clen, nil
	}
	//repro:allow(miss path: unknown document, request fails with 404)
	return nil, "", "", fmt.Errorf("core: no document %q", uri)
}

// strongETag builds the validator for a body serialized under gen:
// "g<generation>-<hash>". Either a model change (new generation for
// changed content) or a content change produces a new tag, while
// untouched content keeps validating across unrelated mutations.
func strongETag(gen uint64, body []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return fmt.Sprintf(`"g%d-%x"`, gen, h.Sum64())
}

// CachedPages reports how many woven pages the request-time cache
// currently holds (diagnostics and tests).
func (app *App) CachedPages() int { return app.cache.size() }

// CacheGeneration returns the woven-page cache's current generation.
// Every model mutation (SetAccessStructure, SetStylesheet) advances it,
// so it doubles as the HTTP validator: the server folds it into ETags,
// making every cached response self-invalidate on the next mutation.
func (app *App) CacheGeneration() uint64 { return app.cache.generation() }

// PagePath returns the site-relative path of a page: the hub page of a
// context is <context>/index.html, a member page <context>/<node>.html,
// with ':' in context names becoming a directory separator.
func PagePath(contextName, nodeID string) string {
	dir := strings.ReplaceAll(contextName, ":", "/")
	if nodeID == navigation.HubID || nodeID == "" {
		return dir + "/index.html"
	}
	return dir + "/" + nodeID + ".html"
}

// href renders a root-relative link target for an edge destination.
func href(contextName, nodeID string) string {
	return "/" + PagePath(contextName, nodeID)
}
