// Package core implements the paper's primary contribution: separating the
// navigational aspect of a web application from its data and presentation,
// and weaving the three back together mechanically (Figure 6).
//
// The pieces, each authored independently:
//
//   - Data: conceptual instances exported to per-node XML documents
//     (picasso.xml, avignon.xml — Figures 7–8), containing no links.
//   - Navigation: the navigational model, serialized to an XLink linkbase
//     (links.xml — Figure 9). All link structure lives here.
//   - Presentation: a template stylesheet producing each node's base page,
//     oblivious to navigation.
//
// An App exposes the page-production pipeline as join points
// (KindPageRender, KindSiteWeave) and installs a navigation aspect whose
// around advice reads the linkbase and injects the access-structure markup
// into each page. Changing the access structure — the paper's §5
// requirements change that forced edits to every page of the tangled
// implementation (Figures 3–4) — becomes a one-line re-declaration here:
// SetAccessStructure re-resolves, regenerates links.xml and re-weaves.
package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/aspect"
	"repro/internal/conceptual"
	"repro/internal/navigation"
	"repro/internal/presentation"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// Join point kinds exposed by the weaving pipeline.
const (
	// KindSiteWeave wraps the whole static weave of a site.
	KindSiteWeave = "site.weave"
	// KindPageRender wraps the production of one page; the navigation
	// aspect advises it. Attrs: context, access, node (or "_index"),
	// class.
	KindPageRender = "page.render"
)

// App is a woven web application: one conceptual store, one navigational
// model, optional custom presentation, and an aspect weaver.
//
// An App is safe for concurrent use: any number of goroutines may render
// pages (RenderPage, RenderPageCached, WeaveSite) while others mutate the
// model (SetAccessStructure, SetStylesheet). Renders see either the old
// or the new model, never a mix, and the page cache is invalidated
// atomically with every mutation.
type App struct {
	store *conceptual.Store
	model *navigation.Model

	weaver *aspect.Weaver
	cache  *pageCache

	// mu guards the model-derived state below: renders hold the read
	// lock for the whole pipeline; rebuilds hold the write lock.
	mu         sync.RWMutex
	stylesheet *presentation.Stylesheet
	resolved   *navigation.ResolvedModel
	repo       xlink.MapRepository
	linkbase   *xmldom.Document
	lbContexts map[string]*navigation.LinkbaseContext
}

// NewApp assembles an application: it resolves the navigational model,
// exports the data documents, generates the linkbase and installs the
// navigation aspect.
func NewApp(store *conceptual.Store, model *navigation.Model) (*App, error) {
	app := &App{
		store:  store,
		model:  model,
		weaver: aspect.NewWeaver(),
		cache:  newPageCache(),
	}
	if err := app.rebuild(); err != nil {
		return nil, err
	}
	app.weaver.Use(NavigationAspect(app))
	return app, nil
}

// rebuild re-derives everything that depends on the model: resolved
// contexts, data repository and linkbase. Callers other than NewApp must
// hold app.mu for writing. Every rebuild invalidates the page cache.
func (app *App) rebuild() error {
	rm, err := app.model.Resolve(app.store)
	if err != nil {
		return fmt.Errorf("core: resolving navigation model: %w", err)
	}
	app.resolved = rm

	app.repo = xlink.MapRepository{}
	for name, doc := range conceptual.ExportAll(app.store) {
		app.repo[name] = doc
	}
	app.linkbase = navigation.GenerateLinkbase(rm)
	app.repo["links.xml"] = app.linkbase

	// The weaving pipeline reads navigation back OUT of the linkbase —
	// not out of the in-memory model — proving links.xml carries the
	// whole navigational aspect, as the paper proposes.
	contexts, err := navigation.ParseLinkbase(app.linkbase)
	if err != nil {
		return fmt.Errorf("core: reading generated linkbase: %w", err)
	}
	app.lbContexts = make(map[string]*navigation.LinkbaseContext, len(contexts))
	for _, c := range contexts {
		app.lbContexts[c.Name] = c
	}
	app.cache.invalidate()
	return nil
}

// Store returns the conceptual store.
func (app *App) Store() *conceptual.Store { return app.store }

// Model returns the navigational model.
func (app *App) Model() *navigation.Model { return app.model }

// Resolved returns the resolved navigation model.
func (app *App) Resolved() *navigation.ResolvedModel {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.resolved
}

// Weaver returns the aspect weaver, so callers can register further
// aspects (logging, access control) beside navigation.
func (app *App) Weaver() *aspect.Weaver { return app.weaver }

// Linkbase returns the generated links.xml document.
func (app *App) Linkbase() *xmldom.Document {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.linkbase
}

// Repository returns the data-document repository (node XML files plus
// links.xml), the input an XLink-aware agent works from.
func (app *App) Repository() xlink.MapRepository {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.repo
}

// SetStylesheet installs a custom presentation stylesheet for node pages.
// It must transform a node data document (e.g. Figure 7's painter XML)
// into a single html element. A nil stylesheet restores the built-in
// presentation. Installing a stylesheet invalidates the page cache.
func (app *App) SetStylesheet(ss *presentation.Stylesheet) {
	app.mu.Lock()
	defer app.mu.Unlock()
	app.stylesheet = ss
	app.cache.invalidate()
}

// SetAccessStructure swaps the access structure of one context family and
// re-derives the linkbase — the paper's requirements change (Index to
// Indexed Guided Tour), reduced from editing every page to one call.
// Cached pages are invalidated atomically with the swap, so the paper's
// motivating change-cost scenario stays correct under cached serving.
func (app *App) SetAccessStructure(family string, as navigation.AccessStructure) error {
	var def *navigation.ContextDef
	for _, c := range app.model.Contexts() {
		if c.Name == family {
			def = c
			break
		}
	}
	if def == nil {
		return fmt.Errorf("core: unknown context family %q", family)
	}
	app.mu.Lock()
	defer app.mu.Unlock()
	def.Access = as
	return app.rebuild()
}

// CachedPages reports how many woven pages the request-time cache
// currently holds (diagnostics and tests).
func (app *App) CachedPages() int { return app.cache.size() }

// CacheGeneration returns the woven-page cache's current generation.
// Every model mutation (SetAccessStructure, SetStylesheet) advances it,
// so it doubles as the HTTP validator: the server folds it into ETags,
// making every cached response self-invalidate on the next mutation.
func (app *App) CacheGeneration() uint64 { return app.cache.generation() }

// PagePath returns the site-relative path of a page: the hub page of a
// context is <context>/index.html, a member page <context>/<node>.html,
// with ':' in context names becoming a directory separator.
func PagePath(contextName, nodeID string) string {
	dir := strings.ReplaceAll(contextName, ":", "/")
	if nodeID == navigation.HubID || nodeID == "" {
		return dir + "/index.html"
	}
	return dir + "/" + nodeID + ".html"
}

// href renders a root-relative link target for an edge destination.
func href(contextName, nodeID string) string {
	return "/" + PagePath(contextName, nodeID)
}
