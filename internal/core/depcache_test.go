package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/navigation"
)

// weaveCounter counts page weaves per (context, node) through an around
// advice on the render join point, so tests can assert which pages a
// mutation actually re-wove.
type weaveCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newWeaveCounter(app *App) *weaveCounter {
	wc := &weaveCounter{counts: map[string]int{}}
	a := aspect.NewAspect("weave-counter")
	pc := aspect.MustCompilePointcut("kind(page.render)")
	a.AroundAdvice("count", pc, 0, func(inv *aspect.Invocation) (any, error) {
		wc.mu.Lock()
		wc.counts[inv.JP.Attr("context")+"/"+inv.JP.Name]++
		wc.mu.Unlock()
		return inv.Proceed()
	})
	app.Weaver().Use(a)
	return wc
}

func (wc *weaveCounter) count(contextName, nodeID string) int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.counts[contextName+"/"+nodeID]
}

// TestInvalidationSparesOtherFamilies is the acceptance scenario of the
// dependency-aware cache: after SetAccessStructure on one context
// family, cached pages of the other families are served without
// re-weaving (the weave counter stays put), while the mutated family's
// pages are re-woven with the new structure.
func TestInvalidationSparesOtherFamilies(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	wc := newWeaveCounter(app)

	warm := func(ctx, node string) *Page {
		t.Helper()
		p, err := app.RenderPageCached(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cubismGuitar := warm("ByMovement:cubism", "guitar")
	warm("ByMovement:surrealism", "memory")
	warm("ByAuthor:picasso", "guitar")
	if n := wc.count("ByMovement:cubism", "guitar"); n != 1 {
		t.Fatalf("warmup weaves = %d, want 1", n)
	}

	if err := app.SetAccessStructure("ByAuthor", navigation.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}

	// Untouched family: served from cache, the very same page object,
	// zero additional weaves.
	again := warm("ByMovement:cubism", "guitar")
	if again != cubismGuitar {
		t.Error("ByMovement page re-woven after a ByAuthor-only mutation")
	}
	if n := wc.count("ByMovement:cubism", "guitar"); n != 1 {
		t.Errorf("ByMovement weaves after ByAuthor mutation = %d, want 1", n)
	}
	if n := wc.count("ByMovement:surrealism", "memory"); n != 1 {
		t.Errorf("surrealism weaves after ByAuthor mutation = %d, want 1", n)
	}

	// Mutated family: re-woven, with the new structure's markup.
	after := warm("ByAuthor:picasso", "guitar")
	if !strings.Contains(after.HTML, "nav-next") {
		t.Error("re-woven ByAuthor page lacks the IGT Next link")
	}
	if n := wc.count("ByAuthor:picasso", "guitar"); n != 2 {
		t.Errorf("ByAuthor weaves = %d, want 2 (warmup + post-mutation)", n)
	}
}

// TestSetStylesheetSparesHubPages: only member pages are woven through
// the stylesheet slot, so installing one drops them but leaves hub
// shells cached.
// TestHubSwapSparesOtherFamilies: a swap that changes hub-ness (an
// indexed guided tour becoming a pure guided tour) is still a
// family-local mutation — hub pages render only inside their own
// context, so other families keep their cached pages. The control
// plane's PUT relies on this: swapping one family must rotate only
// that family's ETags even when the index page disappears.
func TestHubSwapSparesOtherFamilies(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	wc := newWeaveCounter(app)

	warm := func(ctx, node string) *Page {
		t.Helper()
		p, err := app.RenderPageCached(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cubism := warm("ByMovement:cubism", "guitar")
	warm("ByAuthor:picasso", navigation.HubID)
	warm("ByAuthor:picasso", "guitar")

	if err := app.SetAccessStructure("ByAuthor", navigation.GuidedTour{}); err != nil {
		t.Fatal(err)
	}

	// Untouched family: same cached page object, no re-weave.
	if again := warm("ByMovement:cubism", "guitar"); again != cubism {
		t.Error("ByMovement page re-woven by a hub-dropping ByAuthor swap")
	}
	if n := wc.count("ByMovement:cubism", "guitar"); n != 1 {
		t.Errorf("ByMovement weaves = %d, want 1", n)
	}
	// The mutated family re-weaves without the hub: no Up link, and the
	// index page is gone.
	page := warm("ByAuthor:picasso", "guitar")
	if strings.Contains(page.HTML, `class="nav-up"`) {
		t.Errorf("guided-tour page still has an Up link:\n%s", page.HTML)
	}
	if _, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID); err == nil {
		t.Error("hub page still renders after the structure lost it")
	}
}

func TestSetStylesheetSparesHubPages(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	wc := newWeaveCounter(app)
	hub, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}

	app.SetStylesheet(nil) // even a no-op install must re-weave member pages

	if app.CachedPages() != 1 {
		t.Errorf("cached pages after SetStylesheet = %d, want 1 (the hub)", app.CachedPages())
	}
	hubAgain, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	if hubAgain != hub {
		t.Error("hub page re-woven by a stylesheet change it does not depend on")
	}
	if n := wc.count("ByAuthor:picasso", navigation.HubID); n != 1 {
		t.Errorf("hub weaves = %d, want 1", n)
	}
	if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}
	if n := wc.count("ByAuthor:picasso", "guitar"); n != 2 {
		t.Errorf("member weaves = %d, want 2 (dropped by the stylesheet install)", n)
	}
}

// TestInvalidateDocumentDropsOnlyDependents: a content edit to one data
// document re-weaves exactly the pages woven from it — in every context
// containing the node — and no others.
func TestInvalidateDocumentDropsOnlyDependents(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	warm := func(ctx, node string) *Page {
		t.Helper()
		p, err := app.RenderPageCached(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	warm("ByAuthor:picasso", "guitar")
	warm("ByMovement:cubism", "guitar")
	memory := warm("ByMovement:surrealism", "memory")

	if err := app.Store().SetAttr("guitar", "technique", "Sheet metal and wire"); err != nil {
		t.Fatal(err)
	}
	if dropped, err := app.InvalidateDocument("guitar.xml"); err != nil || dropped != 2 {
		t.Errorf("InvalidateDocument = (%d, %v), want (2, nil) — guitar's page in each containing context", dropped, err)
	}
	if app.CachedPages() != 1 {
		t.Errorf("cached pages = %d, want 1 (memory untouched)", app.CachedPages())
	}
	if again := warm("ByMovement:surrealism", "memory"); again != memory {
		t.Error("memory page re-woven by an edit to guitar.xml")
	}
	after := warm("ByAuthor:picasso", "guitar")
	if !strings.Contains(after.HTML, "Sheet metal and wire") {
		t.Error("re-woven page does not show the edited attribute")
	}

	// Re-invalidating without a content change is free: same bytes,
	// nothing dropped.
	if dropped, err := app.InvalidateDocument("guitar.xml"); err != nil || dropped != 0 {
		t.Errorf("no-op invalidation = (%d, %v), want (0, nil)", dropped, err)
	}

	// An unknown document is an error.
	if _, err := app.InvalidateDocument("nonesuch.xml"); err == nil {
		t.Error("InvalidateDocument accepted an unknown document")
	}
}

// TestInvalidateDocumentTitleEditReachesNavigation: a title is not
// caption-only — anchors on other pages and the linkbase display it —
// so editing one must invalidate wide, not just the node's own pages.
func TestInvalidateDocumentTitleEditReachesNavigation(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	hub, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hub.HTML, ">Guitar<") {
		t.Fatalf("hub page does not anchor Guitar:\n%s", hub.HTML)
	}
	_, linksBefore, _, err := app.DocBytes("links.xml")
	if err != nil {
		t.Fatal(err)
	}

	if err := app.Store().SetAttr("guitar", "title", "Guitar (1913)"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvalidateDocument("guitar.xml"); err != nil {
		t.Fatal(err)
	}

	if app.CachedPages() != 0 {
		t.Errorf("cached pages = %d, want 0 (a title edit reaches every anchor)", app.CachedPages())
	}
	hubAfter, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hubAfter.HTML, "Guitar (1913)") {
		t.Error("hub anchor still shows the old title")
	}
	_, linksAfter, _, err := app.DocBytes("links.xml")
	if err != nil {
		t.Fatal(err)
	}
	if linksAfter == linksBefore {
		t.Error("links.xml validator unchanged though locator titles changed")
	}
}

// TestSetAttrDuringRenderRace: a live content edit (Store.SetAttr) may
// land while a weave is reading the same instance's attributes; the
// instance guards its map so neither side corrupts the other. Run with
// -race.
func TestSetAttrDuringRenderRace(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// RenderPage (uncached) forces a weave that reads guitar's
			// attributes on every call.
			if _, err := app.RenderPage("ByAuthor:picasso", "guitar"); err != nil {
				t.Errorf("RenderPage: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := app.Store().SetAttr("guitar", "technique", "edit"); err != nil {
			t.Fatal(err)
		}
		if _, err := app.InvalidateDocument("guitar.xml"); err != nil {
			t.Fatal(err)
		}
		if err := app.Store().SetAttr("guitar", "technique", "Construction"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestInvalidationRace hammers cached reads on one context family while
// another family's access structure is swapped repeatedly. Untouched
// pages must stay cached (no re-weave beyond warmup) and the mutated
// family must never serve stale markup once the final swap completes.
// Run with -race.
func TestInvalidationRace(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	wc := newWeaveCounter(app)
	if _, err := app.RenderPageCached("ByMovement:cubism", "guitar"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RenderPageCached("ByMovement:surrealism", "memory"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pairs := [][2]string{
				{"ByMovement:cubism", "guitar"},
				{"ByMovement:surrealism", "memory"},
				{"ByAuthor:picasso", "guitar"},
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := pairs[(g+i)%len(pairs)]
				if _, err := app.RenderPageCached(p[0], p[1]); err != nil {
					t.Errorf("RenderPageCached(%s,%s): %v", p[0], p[1], err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var as navigation.AccessStructure = navigation.IndexedGuidedTour{}
		if i%2 == 1 {
			as = navigation.Index{}
		}
		if err := app.SetAccessStructure("ByAuthor", as); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The warmed ByMovement pages were never dependent on the mutation:
	// twenty swaps later they still have their single warmup weave.
	if n := wc.count("ByMovement:cubism", "guitar"); n != 1 {
		t.Errorf("cubism/guitar weaves = %d, want 1 (page must stay cached)", n)
	}
	if n := wc.count("ByMovement:surrealism", "memory"); n != 1 {
		t.Errorf("surrealism/memory weaves = %d, want 1 (page must stay cached)", n)
	}
	// The final swap installed Index: stale IGT markup must be gone.
	page, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page.HTML, "nav-next") {
		t.Error("stale IGT page served after final swap back to Index")
	}
}
