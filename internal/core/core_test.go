package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/aspect"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/presentation"
)

func paperApp(t *testing.T, access navigation.AccessStructure) *App {
	t.Helper()
	app, err := NewApp(museum.PaperStore(), museum.Model(access))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestWeaveSitePageInventory(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	// Contexts: ByAuthor:picasso(3), ByAuthor:dali(1), ByMovement:cubism(2),
	// ByMovement:surrealism(2) — members 8 + 4 hubs = 12 pages.
	if site.Len() != 12 {
		t.Fatalf("pages = %d, want 12: %v", site.Len(), site.Paths())
	}
	for _, want := range []string{
		"ByAuthor/picasso/index.html",
		"ByAuthor/picasso/guitar.html",
		"ByAuthor/dali/memory.html",
		"ByMovement/cubism/index.html",
		"ByMovement/surrealism/guernica.html",
	} {
		if site.Page(want) == nil {
			t.Errorf("missing page %s in %v", want, site.Paths())
		}
	}
	files := site.Files()
	if len(files) != 12 {
		t.Errorf("Files = %d entries", len(files))
	}
}

// TestFigure3IndexPage verifies the woven Guitar page under the Index
// access structure matches the shape of the paper's Figure 3: content plus
// an Index anchor, but no Next/Previous.
func TestFigure3IndexPage(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	html := page.HTML
	for _, want := range []string{
		"<h1>Guitar</h1>",
		`class="nav-up"`,
		`href="/ByAuthor/picasso/index.html"`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("Figure 3 page missing %q:\n%s", want, html)
		}
	}
	for _, banned := range []string{"nav-next", "nav-prev"} {
		if strings.Contains(html, banned) {
			t.Errorf("Index page must not contain %q:\n%s", banned, html)
		}
	}
}

// TestFigure4IGTPage verifies the woven Guitar page under the Indexed
// Guided Tour gains exactly the Next and Previous anchors of Figure 4.
func TestFigure4IGTPage(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	html := page.HTML
	for _, want := range []string{
		"<h1>Guitar</h1>",
		`class="nav-up"`,
		// Year order: avignon (1907) < guitar (1913) < guernica (1937).
		`class="nav-prev" href="/ByAuthor/picasso/avignon.html"`,
		`class="nav-next" href="/ByAuthor/picasso/guernica.html"`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("Figure 4 page missing %q:\n%s", want, html)
		}
	}
}

func TestHubPageListsMembers(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	page, err := app.RenderPage("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	html := page.HTML
	for _, want := range []string{
		"Index of ByAuthor:picasso",
		`href="/ByAuthor/picasso/guitar.html"`,
		">Guitar</a>",
		">Guernica</a>",
		">Les Demoiselles d'Avignon</a>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("hub page missing %q:\n%s", want, html)
		}
	}
	if page.Path != "ByAuthor/picasso/index.html" {
		t.Errorf("hub path = %s", page.Path)
	}
}

func TestContextSwitchLinks(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	page, err := app.RenderPage("ByAuthor:picasso", "guernica")
	if err != nil {
		t.Fatal(err)
	}
	// Guernica is also in ByMovement:surrealism.
	if !strings.Contains(page.HTML, `href="/ByMovement/surrealism/guernica.html"`) {
		t.Errorf("context switch link missing:\n%s", page.HTML)
	}
	if strings.Contains(page.HTML, `href="/ByMovement/cubism/guernica.html"`) {
		t.Errorf("bogus context link (guernica is not cubist here):\n%s", page.HTML)
	}
}

// TestAccessStructureSwap is the paper's requirements change end to end:
// one SetAccessStructure call turns every page of the family from Figure 3
// into Figure 4.
func TestAccessStructureSwap(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	before, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.HTML, "nav-next") {
		t.Fatal("index page already has Next")
	}
	if err := app.SetAccessStructure("ByAuthor", navigation.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}
	after, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.HTML, "nav-next") || !strings.Contains(after.HTML, "nav-prev") {
		t.Errorf("IGT page missing tour anchors:\n%s", after.HTML)
	}
	// The other family is untouched.
	cubism, err := app.RenderPage("ByMovement:cubism", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cubism.HTML, "nav-next") {
		t.Error("swap leaked into ByMovement family")
	}
	if err := app.SetAccessStructure("Ghost", navigation.Index{}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestSeparationBySubtraction removes the navigation aspect: the site
// still weaves, pages keep their content, and no navigation markup
// remains — the separation demonstrated the way the paper argues it.
func TestSeparationBySubtraction(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	if !app.Weaver().Remove(AspectName) {
		t.Fatal("navigation aspect not registered")
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML, "<h1>Guitar</h1>") {
		t.Errorf("content lost without navigation aspect:\n%s", page.HTML)
	}
	for _, banned := range []string{"nav-up", "nav-next", "nav-prev", "class=\"navigation\""} {
		if strings.Contains(page.HTML, banned) {
			t.Errorf("navigation markup %q present without the aspect:\n%s", banned, page.HTML)
		}
	}
}

func TestCustomStylesheet(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	ss, err := presentation.ParseStylesheetString(`<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="Painting">
	    <html><head><title><s:value-of select="title"/></title></head>
	    <body><h2 class="custom"><s:value-of select="title"/> (<s:value-of select="year"/>)</h2></body></html>
	  </s:template>
	</s:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	app.SetStylesheet(ss)
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML, `<h2 class="custom">Guitar (1913)</h2>`) {
		t.Errorf("custom presentation not applied:\n%s", page.HTML)
	}
	// Navigation is still injected: presentation and navigation compose.
	if !strings.Contains(page.HTML, "nav-up") {
		t.Errorf("navigation lost under custom stylesheet:\n%s", page.HTML)
	}
	// A stylesheet that does not produce <html> errors.
	bad, _ := presentation.ParseStylesheetString(`<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="Painting"><div/></s:template>
	</s:stylesheet>`)
	app.SetStylesheet(bad)
	if _, err := app.RenderPage("ByAuthor:picasso", "guitar"); err == nil {
		t.Error("non-html stylesheet output accepted")
	}
}

func TestRenderPageErrors(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	if _, err := app.RenderPage("Nowhere", "guitar"); err == nil {
		t.Error("unknown context accepted")
	}
	if _, err := app.RenderPage("ByAuthor:picasso", "memory"); err == nil {
		t.Error("non-member node accepted")
	}
	// Guided tour has no hub page.
	tour := paperApp(t, navigation.GuidedTour{})
	if _, err := tour.RenderPage("ByAuthor:picasso", navigation.HubID); err == nil {
		t.Error("hub page of hubless structure accepted")
	}
}

func TestPagePath(t *testing.T) {
	tests := []struct {
		ctx, node, want string
	}{
		{"ByAuthor:picasso", "guitar", "ByAuthor/picasso/guitar.html"},
		{"ByAuthor:picasso", navigation.HubID, "ByAuthor/picasso/index.html"},
		{"ByAuthor:picasso", "", "ByAuthor/picasso/index.html"},
		{"AllPaintings", "guitar", "AllPaintings/guitar.html"},
	}
	for _, tt := range tests {
		if got := PagePath(tt.ctx, tt.node); got != tt.want {
			t.Errorf("PagePath(%q,%q) = %q, want %q", tt.ctx, tt.node, got, tt.want)
		}
	}
}

func TestLinkbaseRoundTripThroughApp(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	lb := app.Linkbase()
	if lb == nil {
		t.Fatal("no linkbase")
	}
	out := lb.String()
	for _, want := range []string{"guitar.xml", "urn:repro:nav:next", "xlink"} {
		if !strings.Contains(out, want) {
			t.Errorf("linkbase missing %q", want)
		}
	}
	// The repository serves data docs and links.xml.
	repo := app.Repository()
	if _, err := repo.Get("links.xml"); err != nil {
		t.Error("links.xml not in repository")
	}
	if _, err := repo.Get("guitar.xml"); err != nil {
		t.Error("guitar.xml not in repository")
	}
	if app.Store() == nil || app.Model() == nil || app.Resolved() == nil {
		t.Error("accessors returned nil")
	}
}

// TestWeaveTrace reproduces E1: the weaver's trace shows base production
// advised by the navigation aspect at every page join point.
func TestWeaveTrace(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	app.Weaver().EnableTrace()
	if _, err := app.WeaveSite(); err != nil {
		t.Fatal(err)
	}
	trace := app.Weaver().Trace()
	if len(trace) != 12 { // one around-advice execution per page
		t.Fatalf("trace = %d entries, want 12", len(trace))
	}
	for _, e := range trace {
		if e.Aspect != AspectName || e.When != aspect.Around {
			t.Errorf("unexpected trace entry %+v", e)
		}
	}
}

// TestAdditionalAspectComposes registers a second (auditing) aspect beside
// navigation and checks both advise the same join points.
func TestAdditionalAspectComposes(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	var audited []string
	audit := aspect.NewAspect("audit")
	audit.AfterAdvice("log", aspect.MustCompilePointcut("kind(page.render)"), 10,
		func(jp *aspect.JoinPoint, _ any, err error) {
			if err == nil {
				audited = append(audited, jp.Attr("context")+"/"+jp.Name)
			}
		})
	app.Weaver().Use(audit)
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	if len(audited) != site.Len() {
		t.Errorf("audited %d pages, site has %d", len(audited), site.Len())
	}
	// Navigation still present.
	if !strings.Contains(site.Page("ByAuthor/picasso/guitar.html").HTML, "nav-up") {
		t.Error("navigation lost when composing with audit aspect")
	}
}

func TestSiteWriteTo(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := site.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ByAuthor", "picasso", "guitar.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<h1>Guitar</h1>") {
		t.Error("written page content wrong")
	}
	if err := site.WriteTo("/proc/not/writable"); err == nil {
		t.Error("unwritable target accepted")
	}
}

// TestTwoModelsOneStore checks OOHDM's premise that several navigational
// models can view the same conceptual model: two apps over one store with
// different context families weave disjoint page sets without interfering.
func TestTwoModelsOneStore(t *testing.T) {
	store := museum.PaperStore()

	authorOnly := navigation.NewModel()
	authorOnly.MustAddNodeClass(&navigation.NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	authorOnly.MustAddContext(&navigation.ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode", GroupBy: "paints", OrderBy: "year",
		Access: navigation.Index{},
	})
	movementOnly := navigation.NewModel()
	movementOnly.MustAddNodeClass(&navigation.NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	movementOnly.MustAddContext(&navigation.ContextDef{
		Name: "ByMovement", NodeClass: "PaintingNode", GroupBy: "includes", OrderBy: "title",
		Access: navigation.GuidedTour{},
	})

	appA, err := NewApp(store, authorOnly)
	if err != nil {
		t.Fatal(err)
	}
	appB, err := NewApp(store, movementOnly)
	if err != nil {
		t.Fatal(err)
	}
	siteA, err := appA.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := appB.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	if siteA.Len() != 6 { // 4 members + 2 hubs
		t.Errorf("author site = %d pages", siteA.Len())
	}
	if siteB.Len() != 4 { // 4 members, tours have no hubs
		t.Errorf("movement site = %d pages", siteB.Len())
	}
	for _, p := range siteA.Paths() {
		if strings.HasPrefix(p, "ByMovement") {
			t.Errorf("author model wove movement page %s", p)
		}
	}
	// The two linkbases are independent views of the same data.
	if appA.Linkbase().String() == appB.Linkbase().String() {
		t.Error("different models produced identical linkbases")
	}
}

func TestDeterministicWeave(t *testing.T) {
	a := paperApp(t, navigation.IndexedGuidedTour{})
	b := paperApp(t, navigation.IndexedGuidedTour{})
	siteA, err := a.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := b.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	if len(siteA.Paths()) != len(siteB.Paths()) {
		t.Fatal("page sets differ")
	}
	for _, p := range siteA.Paths() {
		if siteA.Page(p).HTML != siteB.Page(p).HTML {
			t.Errorf("page %s differs between identical weaves", p)
		}
	}
}
