package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

// TestWeaveSiteParallelMatchesSequential checks the tentpole determinism
// contract: the parallel weave produces byte-identical pages to the
// sequential one, at every worker count.
func TestWeaveSiteParallelMatchesSequential(t *testing.T) {
	store := museum.Synthetic(museum.SyntheticSpec{
		Painters: 6, PaintingsPerPainter: 5, Movements: 3, Seed: 7,
	})
	app, err := NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := app.WeaveSiteWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := app.WeaveSiteWorkers(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d: %d pages, want %d", workers, par.Len(), seq.Len())
		}
		for _, path := range seq.Paths() {
			sp, pp := seq.Page(path), par.Page(path)
			if pp == nil {
				t.Fatalf("workers=%d: missing page %s", workers, path)
			}
			if sp.HTML != pp.HTML {
				t.Errorf("workers=%d: page %s differs from sequential weave", workers, path)
			}
		}
	}
}

// TestConcurrentRenderPage hammers RenderPage and WeaveSite from many
// goroutines; run with -race to check the join-point pipeline's
// concurrency contract.
func TestConcurrentRenderPage(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	pairs := [][2]string{
		{"ByAuthor:picasso", "guitar"},
		{"ByAuthor:picasso", "guernica"},
		{"ByAuthor:picasso", navigation.HubID},
		{"ByMovement:cubism", "avignon"},
		{"ByMovement:surrealism", "memory"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := pairs[(g+i)%len(pairs)]
				if _, err := app.RenderPage(p[0], p[1]); err != nil {
					t.Errorf("RenderPage(%s,%s): %v", p[0], p[1], err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := app.WeaveSite(); err != nil {
				t.Errorf("WeaveSite: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestRenderPageCached checks the cache serves hits and stays coherent.
func TestRenderPageCached(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	first, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if app.CachedPages() != 1 {
		t.Errorf("cached pages = %d, want 1", app.CachedPages())
	}
	second, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second cached render returned a different page object")
	}
	fresh, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.HTML != first.HTML {
		t.Error("cached page HTML differs from a fresh render")
	}
	// The empty node id normalizes to the hub, sharing one cache slot.
	if _, err := app.RenderPageCached("ByAuthor:picasso", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RenderPageCached("ByAuthor:picasso", navigation.HubID); err != nil {
		t.Fatal(err)
	}
	if app.CachedPages() != 2 {
		t.Errorf("cached pages = %d, want 2 (member + hub)", app.CachedPages())
	}
}

// TestCachedRenderCoalescesMisses checks concurrent misses for the same
// page share one weave: every caller gets the same *Page object.
func TestCachedRenderCoalescesMisses(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	const callers = 16
	pages := make([]*Page, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
			if err != nil {
				t.Errorf("RenderPageCached: %v", err)
				return
			}
			pages[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if pages[i] != pages[0] {
			t.Fatalf("caller %d got a different page object; misses not coalesced", i)
		}
	}
}

// TestCacheInvalidationOnSetAccessStructure asserts no stale page is
// served after the paper's requirements change: pages woven under Index
// must not survive the swap to IndexedGuidedTour.
func TestCacheInvalidationOnSetAccessStructure(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	before, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.HTML, "nav-next") {
		t.Fatal("Index page should not carry Next links")
	}
	if err := app.SetAccessStructure("ByAuthor", navigation.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}
	if app.CachedPages() != 0 {
		t.Errorf("cache not invalidated: %d pages", app.CachedPages())
	}
	after, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.HTML, "nav-next") {
		t.Error("stale page served: IGT page lacks Next link after access-structure swap")
	}
}

// TestCacheInvalidationOnSetStylesheet asserts stylesheet installation
// also drops cached pages (nil restores built-in presentation).
func TestCacheInvalidationOnSetStylesheet(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}
	if app.CachedPages() == 0 {
		t.Fatal("expected a cached page")
	}
	app.SetStylesheet(nil)
	if app.CachedPages() != 0 {
		t.Errorf("cache not invalidated by SetStylesheet: %d pages", app.CachedPages())
	}
}

// TestConcurrentCachedRenderWithMutation races cached renders against
// access-structure swaps: every returned page must be consistent with
// either the old or the new structure, and once the swap completes no
// render may return the old markup. Run with -race.
func TestConcurrentCachedRenderWithMutation(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
					t.Errorf("RenderPageCached: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		var as navigation.AccessStructure = navigation.IndexedGuidedTour{}
		if i%2 == 1 {
			as = navigation.Index{}
		}
		if err := app.SetAccessStructure("ByAuthor", as); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The last swap installed Index; the cache must never serve IGT.
	page, err := app.RenderPageCached("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page.HTML, "nav-next") {
		t.Error("stale IGT page served after final swap back to Index")
	}
}
