package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/xmldom"
)

// collectHrefs walks a woven page tree for anchor targets.
func collectHrefs(doc *xmldom.Document) []string {
	var out []string
	doc.Root().Descendants(func(e *xmldom.Element) bool {
		if e.Name.Local == "a" {
			if href := e.AttrValue("href"); href != "" {
				out = append(out, href)
			}
		}
		return true
	})
	return out
}

// TestSiteLinkIntegrity checks that every anchor in every woven page
// points at a page that exists in the same site — no dangling navigation.
func TestSiteLinkIntegrity(t *testing.T) {
	for _, access := range []navigation.AccessStructure{
		navigation.Index{},
		navigation.IndexedGuidedTour{},
		navigation.IndexedGuidedTour{Circular: true},
		navigation.Menu{},
	} {
		app := paperApp(t, access)
		site, err := app.WeaveSite()
		if err != nil {
			t.Fatal(err)
		}
		exists := map[string]bool{}
		for _, p := range site.Paths() {
			exists[p] = true
		}
		for _, p := range site.Paths() {
			for _, href := range collectHrefs(site.Page(p).Doc) {
				target := strings.TrimPrefix(href, "/")
				if !exists[target] {
					t.Errorf("%s (%s): dangling link %s", p, access.Kind(), href)
				}
			}
		}
	}
}

// TestQuickSitePageCount property-tests the woven page-count invariant
// over random synthetic dataset sizes: pages = members-with-context +
// one hub per non-empty context.
func TestQuickSitePageCount(t *testing.T) {
	f := func(rawPainters, rawPaintings uint8) bool {
		painters := int(rawPainters%5) + 1
		paintings := int(rawPaintings%6) + 1
		store := museum.Synthetic(museum.SyntheticSpec{
			Painters: painters, PaintingsPerPainter: paintings, Movements: 2, Seed: 5,
		})
		app, err := NewApp(store, museum.Model(navigation.IndexedGuidedTour{}))
		if err != nil {
			t.Log(err)
			return false
		}
		site, err := app.WeaveSite()
		if err != nil {
			t.Log(err)
			return false
		}
		want := 0
		for _, rc := range app.Resolved().Contexts {
			want += len(rc.Members)
			if rc.Def.Access.HasHub() {
				want++
			}
		}
		if site.Len() != want {
			t.Logf("painters=%d paintings=%d: pages=%d want=%d", painters, paintings, site.Len(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickSiteLinkIntegrity property-tests link integrity over random
// synthetic sites.
func TestQuickSiteLinkIntegrity(t *testing.T) {
	f := func(rawPainters, rawPaintings uint8, circular bool) bool {
		painters := int(rawPainters%4) + 1
		paintings := int(rawPaintings%5) + 1
		store := museum.Synthetic(museum.SyntheticSpec{
			Painters: painters, PaintingsPerPainter: paintings, Movements: 3, Seed: 9,
		})
		app, err := NewApp(store, museum.Model(navigation.IndexedGuidedTour{Circular: circular}))
		if err != nil {
			t.Log(err)
			return false
		}
		site, err := app.WeaveSite()
		if err != nil {
			t.Log(err)
			return false
		}
		exists := map[string]bool{}
		for _, p := range site.Paths() {
			exists[p] = true
		}
		for _, p := range site.Paths() {
			for _, href := range collectHrefs(site.Page(p).Doc) {
				if !exists[strings.TrimPrefix(href, "/")] {
					t.Logf("dangling %s in %s", href, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
