package core

import (
	"fmt"
	"sort"

	"repro/internal/aspect"
	"repro/internal/navigation"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// AspectName is the registered name of the navigation aspect.
const AspectName = "navigation"

// NavigationAspect builds the aspect that carries the whole navigational
// concern: around advice on every page render that reads the traversal
// graph out of the app's linkbase (links.xml) and injects the access-
// structure markup — the index lists, Index/Next/Previous anchors and
// context-switch links of the paper's Figures 3–4 — into the woven page.
//
// The base program never mentions navigation; delete this aspect and the
// site still builds, just without links (the paper's "separation"
// demonstrated by subtraction).
func NavigationAspect(app *App) *aspect.Aspect {
	a := aspect.NewAspect(AspectName)
	pc := aspect.MustCompilePointcut("kind(page.render)")
	a.AroundAdvice("inject-navigation", pc, 0, func(inv *aspect.Invocation) (any, error) {
		result, err := inv.Proceed()
		if err != nil {
			return nil, err
		}
		doc, ok := result.(*xmldom.Document)
		if !ok {
			return nil, fmt.Errorf("core: navigation aspect: unexpected page type %T", result)
		}
		ctxName := inv.JP.Attr("context")
		nodeID := inv.JP.Name
		if err := app.injectNavigation(doc, ctxName, nodeID); err != nil {
			return nil, err
		}
		return doc, nil
	})
	return a
}

// findBody locates the page's body element.
func findBody(doc *xmldom.Document) *xmldom.Element {
	root := doc.Root()
	if root == nil {
		return nil
	}
	if root.Name.Local == "body" {
		return root
	}
	return root.FirstChildElement("body")
}

// injectNavigation appends the navigation markup for (context, node) to
// the page body, driven entirely by the linkbase.
func (app *App) injectNavigation(doc *xmldom.Document, ctxName, nodeID string) error {
	lbc := app.lbContexts[ctxName]
	if lbc == nil {
		return fmt.Errorf("core: linkbase has no context %q", ctxName)
	}
	body := findBody(doc)
	if body == nil {
		return fmt.Errorf("core: page for %s/%s has no body element", ctxName, nodeID)
	}

	nav := xmldom.NewElement("div")
	nav.SetAttr("class", "navigation")

	if nodeID == navigation.HubID {
		// Index page: the member list (Figure 3's set of anchors).
		// Edges with xlink:show="embed" inline the member where the
		// link would stand, per XLink behaviour semantics — turning
		// the index into a gallery wall.
		ul := nav.AddElement("ul")
		ul.SetAttr("class", "nav-index")
		for _, e := range lbc.Edges {
			if e.Kind != navigation.EdgeMember || e.From != navigation.HubID {
				continue
			}
			li := ul.AddElement("li")
			if e.Show == string(xlink.ShowEmbed) {
				app.embedMember(li, ctxName, e.To)
				continue
			}
			anchor := li.AddElement("a")
			anchor.SetAttr("class", "nav-member")
			anchor.SetAttr("href", href(ctxName, e.To))
			applyShow(anchor, e.Show)
			anchor.AppendText(e.Label)
		}
	} else {
		// Member page: Index / Previous / Next anchors in a fixed,
		// deterministic order (the two bold lines of Figure 4 are the
		// Next/Previous pair the IGT adds).
		appendEdgeAnchor(nav, lbc, ctxName, nodeID, navigation.EdgeUp, "nav-up")
		appendEdgeAnchor(nav, lbc, ctxName, nodeID, navigation.EdgePrev, "nav-prev")
		appendEdgeAnchor(nav, lbc, ctxName, nodeID, navigation.EdgeNext, "nav-next")
		// Member-kind edges leaving a member node are promoted
		// landmarks (an adaptive tour's hot nodes): linked from every
		// page of the context, per Vinson's landmark guidelines. The
		// hand-authored structures never emit these.
		for _, e := range lbc.Edges {
			if e.From == nodeID && e.Kind == navigation.EdgeMember {
				appendAnchor(nav, "nav-hot", ctxName, e)
			}
		}
	}
	body.AppendChild(nav)

	if nodeID != navigation.HubID {
		if others := app.otherContexts(ctxName, nodeID); len(others) > 0 {
			div := xmldom.NewElement("div")
			div.SetAttr("class", "contexts")
			div.AddElement("span").AppendText("Also in:")
			for _, other := range others {
				anchor := div.AddElement("a")
				anchor.SetAttr("class", "nav-context")
				anchor.SetAttr("href", href(other, nodeID))
				anchor.AppendText(other)
			}
			body.AppendChild(div)
		}
	}

	// Landmarks: entry points reachable from every page (OOHDM's
	// landmark primitive — the global navigation bar).
	if landmarks := app.resolved.Landmarks; len(landmarks) > 0 {
		div := xmldom.NewElement("div")
		div.SetAttr("class", "landmarks")
		for _, lm := range landmarks {
			anchor := div.AddElement("a")
			anchor.SetAttr("class", "nav-landmark")
			anchor.SetAttr("href", href(lm.Name, lm.EntryNode()))
			anchor.AppendText(lm.Name)
		}
		body.AppendChild(div)
	}
	return nil
}

// appendEdgeAnchor appends one anchor for the first edge of the given
// kind leaving nodeID, if any, honouring the edge's show behaviour.
func appendEdgeAnchor(nav *xmldom.Element, lbc *navigation.LinkbaseContext, ctxName, nodeID string, kind navigation.EdgeKind, class string) {
	for _, e := range lbc.Edges {
		if e.From == nodeID && e.Kind == kind {
			appendAnchor(nav, class, ctxName, e)
			return
		}
	}
}

// appendAnchor renders one edge as an anchor of the given class,
// honouring the edge's show behaviour.
func appendAnchor(nav *xmldom.Element, class, ctxName string, e navigation.Edge) {
	anchor := nav.AddElement("a")
	anchor.SetAttr("class", class)
	anchor.SetAttr("href", href(ctxName, e.To))
	applyShow(anchor, e.Show)
	anchor.AppendText(e.Label)
}

// applyShow maps an XLink show value onto HTML anchor behaviour:
// "new" opens a separate presentation context.
func applyShow(anchor *xmldom.Element, show string) {
	if show == string(xlink.ShowNew) {
		anchor.SetAttr("target", "_blank")
	}
}

// embedMember inlines a member node's content where its link would be —
// the agent-side realization of xlink:show="embed".
func (app *App) embedMember(parent *xmldom.Element, ctxName, nodeID string) {
	div := parent.AddElement("div")
	div.SetAttr("class", "embed")
	div.SetAttr("data-node", nodeID)
	rc := app.resolved.Context(ctxName)
	if rc == nil {
		return
	}
	node := rc.Member(nodeID)
	if node == nil {
		return
	}
	div.AddElement("h2").AppendText(node.Title())
	dl := div.AddElement("dl")
	for _, attr := range node.AttrNames() {
		dl.AddElement("dt").AppendText(attr)
		dl.AddElement("dd").AppendText(node.Attr(attr))
	}
}

// otherContexts lists the other linkbase contexts containing the node,
// sorted for deterministic output — the paper's §2 context switch ("the
// same painting through the pictorial movement").
func (app *App) otherContexts(current, nodeID string) []string {
	var out []string
	for name, lbc := range app.lbContexts {
		if name == current {
			continue
		}
		for _, id := range lbc.Order {
			if id == nodeID {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
