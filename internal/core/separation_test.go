package core

import (
	"strings"
	"testing"

	"repro/internal/navigation"
	"repro/internal/xlink"
)

// TestSeparationInvariants checks the paper's artifact split at the app
// level: data documents carry no link markup, links.xml carries no
// content, and pages derive from both only through the weaver.
func TestSeparationInvariants(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	repo := app.Repository()

	for _, uri := range repo.URIs() {
		doc, err := repo.Get(uri)
		if err != nil {
			t.Fatal(err)
		}
		serialized := doc.String()
		if uri == "links.xml" {
			// The linkbase holds structure, never content values.
			for _, content := range []string{"1913", "Oil on canvas", "1881"} {
				if strings.Contains(serialized, content) {
					t.Errorf("links.xml leaked content %q", content)
				}
			}
			continue
		}
		// Data documents hold content, never link markup.
		if strings.Contains(serialized, xlink.Namespace) || strings.Contains(serialized, "href") {
			t.Errorf("%s leaked link markup:\n%s", uri, serialized)
		}
		// And they round-trip through the XLink scanner as link-free.
		ls, err := xlink.FindLinks(doc)
		if err != nil {
			t.Fatalf("%s: %v", uri, err)
		}
		if len(ls.Simples)+len(ls.Extendeds) != 0 {
			t.Errorf("%s contains %d links", uri, len(ls.Simples)+len(ls.Extendeds))
		}
	}

	// Every data document referenced by the linkbase exists in the repo.
	lb := xlink.NewLinkbase()
	if err := lb.AddDocument(app.Linkbase()); err != nil {
		t.Fatal(err)
	}
	for _, arc := range lb.Arcs() {
		for _, ep := range []xlink.Endpoint{arc.From, arc.To} {
			if !ep.Remote() {
				continue
			}
			ref := xlink.SplitRef(ep.Href)
			if _, err := repo.Get(ref.URI); err != nil {
				t.Errorf("linkbase references missing document %s", ref.URI)
			}
		}
	}
}
