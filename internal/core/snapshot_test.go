package core_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/conceptual"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

func paperApp(t *testing.T) *core.App {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestSnapshotRoundTripFileBackend is the linkbase export→reload round
// trip through the file backend: one process exports its woven site
// definition, a second process (a fresh store handle on the same
// directory) reloads it and sees the identical navigational aspect.
func TestSnapshotRoundTripFileBackend(t *testing.T) {
	dir := t.TempDir()
	app := paperApp(t)

	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.ExportSnapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Second process": nothing shared but the directory.
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	repo, err := core.LoadSnapshotRepository(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repo.URIs(), app.Repository().URIs()) {
		t.Errorf("reloaded URIs = %v, want %v", repo.URIs(), app.Repository().URIs())
	}
	// Every reloaded data document must serialize identically to the
	// original — the snapshot carries the documents, not approximations.
	for _, uri := range repo.URIs() {
		orig, _ := app.Repository().Get(uri)
		loaded, _ := repo.Get(uri)
		if orig.IndentedString() != loaded.IndentedString() {
			t.Errorf("document %s changed across the round trip", uri)
		}
	}

	// The navigational aspect itself survives: contexts parsed from the
	// reloaded links.xml match those parsed from the live one.
	want, err := navigation.ParseLinkbase(app.Linkbase())
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadSnapshotContexts(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reloaded contexts differ:\n got %+v\nwant %+v", got, want)
	}

	// The generation stamp rode along.
	gen, err := st2.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if gen != app.CacheGeneration() {
		t.Errorf("snapshot generation = %d, app = %d", gen, app.CacheGeneration())
	}

	// And the data documents really are conceptual instances: they
	// import back into a fresh store under the same schema.
	fresh := conceptual.NewStore(museum.Schema())
	for _, uri := range repo.URIs() {
		if uri == "links.xml" {
			continue
		}
		doc, _ := repo.Get(uri)
		inst, err := conceptual.ImportInstance(fresh, doc)
		if err != nil {
			t.Fatalf("re-importing %s: %v", uri, err)
		}
		orig := app.Store().Get(inst.ID)
		if orig == nil {
			t.Fatalf("imported unknown instance %q", inst.ID)
		}
		for _, attr := range orig.AttrNames() {
			if inst.Attr(attr) != orig.Attr(attr) {
				t.Errorf("%s.%s = %q, want %q", inst.ID, attr, inst.Attr(attr), orig.Attr(attr))
			}
		}
	}
	if fresh.Len() != app.Store().Len() {
		t.Errorf("imported %d instances, want %d", fresh.Len(), app.Store().Len())
	}
}

// TestSnapshotTracksModelMutation: re-exporting after a requirements
// change replaces the stored site definition — stale documents go away
// and the new linkbase lands.
func TestSnapshotTracksModelMutation(t *testing.T) {
	app := paperApp(t)
	st := storage.NewMem()
	if err := app.ExportSnapshot(st); err != nil {
		t.Fatal(err)
	}
	genBefore, _ := st.Generation()

	if err := app.SetAccessStructure("ByAuthor", navigation.Index{}); err != nil {
		t.Fatal(err)
	}
	if err := app.ExportSnapshot(st); err != nil {
		t.Fatal(err)
	}
	genAfter, _ := st.Generation()
	if genAfter == genBefore {
		t.Errorf("generation stamp did not move with the model: %d", genAfter)
	}
	ctxs, err := core.LoadSnapshotContexts(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctxs {
		if strings.HasPrefix(c.Name, "ByAuthor") && c.AccessKind != "index" {
			t.Errorf("context %s access = %s, want index", c.Name, c.AccessKind)
		}
	}
}

// TestSnapshotStaleKeysRemoved: a document that exists only in an older
// export is deleted by the next one.
func TestSnapshotStaleKeysRemoved(t *testing.T) {
	app := paperApp(t)
	st := storage.NewMem()
	if err := st.Put(core.SnapshotPrefix+"ghost.xml", []byte("<ghost/>")); err != nil {
		t.Fatal(err)
	}
	if err := app.ExportSnapshot(st); err != nil {
		t.Fatal(err)
	}
	repo, err := core.LoadSnapshotRepository(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, uri := range repo.URIs() {
		if uri == "ghost.xml" {
			t.Error("stale snapshot key survived re-export")
		}
	}
}

func TestLoadSnapshotEmptyStore(t *testing.T) {
	if _, err := core.LoadSnapshotRepository(storage.NewMem()); err == nil {
		t.Error("empty store produced a repository")
	}
}
