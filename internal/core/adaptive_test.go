package core

import (
	"strings"
	"testing"

	"repro/internal/navigation"
)

// adaptiveTour is the derived structure the analytics subsystem would
// compile for the picasso context: visitors enter at guernica, walk the
// year order backwards, and concentrate on guitar.
func adaptiveTour() *navigation.AdaptiveTour {
	return &navigation.AdaptiveTour{Plans: map[string]navigation.TourPlan{
		"ByAuthor:picasso": {
			Order:     []string{"guernica", "guitar", "avignon"},
			Landmarks: []string{"guitar"},
		},
	}}
}

// TestAdaptiveSwapWeavesDerivedStructure: swapping a family to a
// derived adaptive tour re-weaves its pages with the learned order and
// the promoted landmark, while the untouched family's cached pages
// survive — the dependency-aware invalidation the adaptation loop
// leans on.
func TestAdaptiveSwapWeavesDerivedStructure(t *testing.T) {
	app := paperApp(t, navigation.IndexedGuidedTour{})
	wc := newWeaveCounter(app)
	warm := func(ctx, node string) *Page {
		t.Helper()
		p, err := app.RenderPageCached(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cubism := warm("ByMovement:cubism", "guitar")
	warm("ByAuthor:picasso", "guernica")

	if _, err := app.SetAccessStructures(map[string]navigation.AccessStructure{
		"ByAuthor": adaptiveTour(),
	}); err != nil {
		t.Fatal(err)
	}

	// Untouched family: same cached page object, no re-weave.
	if again := warm("ByMovement:cubism", "guitar"); again != cubism {
		t.Error("ByMovement page re-woven by a ByAuthor-only adaptation")
	}
	if n := wc.count("ByMovement:cubism", "guitar"); n != 1 {
		t.Errorf("ByMovement weaves = %d, want 1", n)
	}

	// The derived tour is live: guernica now opens the tour (no Prev,
	// Next goes to guitar) and carries a promoted-landmark link.
	page := warm("ByAuthor:picasso", "guernica")
	if !strings.Contains(page.HTML, `class="nav-next"`) ||
		!strings.Contains(page.HTML, "/ByAuthor/picasso/guitar.html") {
		t.Errorf("derived page lacks the learned Next edge:\n%s", page.HTML)
	}
	if strings.Contains(page.HTML, `class="nav-prev"`) {
		t.Error("tour entry page has a Prev link; derived order should start at guernica")
	}
	if !strings.Contains(page.HTML, `class="nav-hot"`) {
		t.Errorf("derived page lacks the promoted-landmark link:\n%s", page.HTML)
	}
	// The hub lists members in derived, not authored, order.
	hub := warm("ByAuthor:picasso", navigation.HubID)
	if g, a := strings.Index(hub.HTML, "guernica"), strings.Index(hub.HTML, "avignon"); g < 0 || a < 0 || g > a {
		t.Errorf("hub roll not in derived order (guernica@%d avignon@%d):\n%s", g, a, hub.HTML)
	}
}

// TestSetAccessStructuresValidatesBeforeMutating: one unknown family
// fails the whole batch and leaves every structure untouched.
func TestSetAccessStructuresValidatesBeforeMutating(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	_, err := app.SetAccessStructures(map[string]navigation.AccessStructure{
		"ByAuthor": navigation.IndexedGuidedTour{},
		"Nope":     navigation.Menu{},
	})
	if err == nil || !strings.Contains(err.Error(), "Nope") {
		t.Fatalf("err = %v, want unknown family error", err)
	}
	if kind := app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "index" {
		t.Errorf("ByAuthor access = %q after failed batch, want untouched index", kind)
	}
	if _, err := app.SetAccessStructures(nil); err != nil {
		t.Errorf("empty batch = %v, want no-op", err)
	}
}

// TestSetAccessStructuresBatch swaps both families with one rebuild.
func TestSetAccessStructuresBatch(t *testing.T) {
	app := paperApp(t, navigation.Index{})
	if _, err := app.SetAccessStructures(map[string]navigation.AccessStructure{
		"ByAuthor":   navigation.IndexedGuidedTour{},
		"ByMovement": navigation.Menu{},
	}); err != nil {
		t.Fatal(err)
	}
	if kind := app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "indexed-guided-tour" {
		t.Errorf("ByAuthor = %q", kind)
	}
	if kind := app.Resolved().Context("ByMovement:cubism").Def.Access.Kind(); kind != "menu" {
		t.Errorf("ByMovement = %q", kind)
	}
}
