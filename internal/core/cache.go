package core

import "sync"

// pageKey identifies one woven page: the resolved context and the member
// node (or navigation.HubID for the index page).
type pageKey struct {
	context string
	node    string
}

// flight is one in-progress weave of a page that concurrent misses for
// the same key wait on instead of weaving redundantly.
type flight struct {
	wg   sync.WaitGroup
	page *Page
	err  error
	gen  uint64 // cache generation the weave was rendered under
}

// pageCache memoizes woven pages for the request-time serving path. It is
// generation-stamped: invalidate bumps the generation and drops every
// entry, and a result carrying a stale generation is discarded, so a
// render that started before a model mutation can never resurrect a
// stale page. Concurrent misses for the same key are coalesced into one
// weave (single-flight), so a cache invalidation under heavy traffic
// does not stampede the pipeline.
//
// Cached *Page values are shared between callers; treat them as immutable
// (serve Page.HTML, do not mutate Page.Doc).
type pageCache struct {
	mu       sync.Mutex
	gen      uint64
	pages    map[pageKey]*Page
	inflight map[pageKey]*flight
}

func newPageCache() *pageCache {
	return &pageCache{
		pages:    map[pageKey]*Page{},
		inflight: map[pageKey]*flight{},
	}
}

// beginOrJoin resolves a lookup three ways: a cached page (returned
// directly), an in-flight weave to wait on (leader false), or leadership
// of a new flight (leader true) that the caller must complete with
// finish.
func (c *pageCache) beginOrJoin(k pageKey) (page *Page, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pages[k]; ok {
		return p, nil, false
	}
	if f, ok := c.inflight[k]; ok {
		return nil, f, false
	}
	f = &flight{}
	f.wg.Add(1)
	c.inflight[k] = f
	return nil, f, true
}

// finish completes a flight begun with beginOrJoin: it publishes the
// result to waiters and caches the page unless the generation moved
// (an invalidation raced the weave).
func (c *pageCache) finish(k pageKey, f *flight, page *Page, err error, gen uint64) {
	c.mu.Lock()
	f.page, f.err, f.gen = page, err, gen
	if c.inflight[k] == f {
		delete(c.inflight, k)
	}
	if err == nil && c.gen == gen {
		c.pages[k] = page
	}
	c.mu.Unlock()
	f.wg.Done()
}

// generation returns the current cache generation.
func (c *pageCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// invalidate drops every entry and starts a new generation. In-flight
// weaves are left to finish; their stale generation keeps their result
// out of the cache and makes waiters re-weave.
func (c *pageCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.pages = map[pageKey]*Page{}
}

// size returns the number of cached pages.
func (c *pageCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}
