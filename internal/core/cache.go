package core

import (
	"sync"
	"sync/atomic"
)

// pageKey identifies one woven page: the resolved context and the member
// node (or navigation.HubID for the index page).
type pageKey struct {
	context string
	node    string
}

// pageDeps records what a woven page was woven *from*, so a model
// mutation can drop exactly the dependent entries instead of the whole
// cache — the cache-side expression of the paper's separation: content,
// navigation and presentation change independently, so their cached
// compositions invalidate independently.
type pageDeps struct {
	// context is the resolved context the page renders the structure of.
	context string
	// docs are the repository URIs whose content is woven into the page
	// (the member's own data document; embedded members' documents on a
	// gallery-wall hub).
	docs []string
	// stylesheet marks pages produced through the presentation
	// stylesheet slot (member pages; hub shells never consult it).
	stylesheet bool
}

// flight is one in-progress weave of a page that concurrent misses for
// the same key wait on instead of weaving redundantly.
type flight struct {
	wg   sync.WaitGroup
	page *Page
	err  error
	gen  uint64 // cache generation the weave was rendered under
}

// cacheShard is one lock domain of the page cache.
type cacheShard struct {
	mu       sync.Mutex
	pages    map[pageKey]*Page
	inflight map[pageKey]*flight
}

// pageCacheShards is the fixed shard count; a power of two so the shard
// index is a mask, sized to keep lock collisions rare at request-serving
// concurrency without wasting maps on small sites.
const pageCacheShards = 32

// pageCache memoizes woven pages for the request-time serving path. It
// is sharded — each key hashes onto one of pageCacheShards lock domains,
// so concurrent hits on different pages never contend on one mutex —
// and generation-stamped: every invalidation bumps the atomic
// generation, and a weave result carrying a stale generation is
// discarded, so a render that started before a model mutation can never
// resurrect a stale page.
//
// Invalidation is dependency-aware: invalidateMatching drops only the
// entries whose recorded dependencies (pageDeps) a mutation touched,
// while invalidate drops everything. Both bump the generation.
// Concurrent misses for the same key are coalesced into one weave
// (single-flight, per key), so an invalidation under heavy traffic does
// not stampede the pipeline.
//
// Cached *Page values are shared between callers; treat them as
// immutable (serve Page.Body, do not mutate Page.Doc).
type pageCache struct {
	gen    atomic.Uint64
	shards [pageCacheShards]cacheShard
}

func newPageCache() *pageCache {
	c := &pageCache{}
	for i := range c.shards {
		c.shards[i].pages = map[pageKey]*Page{}
		c.shards[i].inflight = map[pageKey]*flight{}
	}
	return c
}

// shard maps a key onto its lock domain with an inline FNV-1a hash (the
// stdlib hash would allocate on this per-request path).
func (c *pageCache) shard(k pageKey) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.context); i++ {
		h ^= uint32(k.context[i])
		h *= prime32
	}
	h ^= 0 // separator between the two key halves
	h *= prime32
	for i := 0; i < len(k.node); i++ {
		h ^= uint32(k.node[i])
		h *= prime32
	}
	return &c.shards[h&(pageCacheShards-1)]
}

// beginOrJoin resolves a lookup three ways: a cached page (returned
// directly), an in-flight weave to wait on (leader false), or leadership
// of a new flight (leader true) that the caller must complete with
// finish.
func (c *pageCache) beginOrJoin(k pageKey) (page *Page, f *flight, leader bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p, ok := sh.pages[k]; ok {
		return p, nil, false
	}
	if f, ok := sh.inflight[k]; ok {
		return nil, f, false
	}
	f = &flight{}
	f.wg.Add(1)
	sh.inflight[k] = f
	return nil, f, true
}

// finish completes a flight begun with beginOrJoin: it publishes the
// result to waiters and caches the page unless the generation moved (an
// invalidation raced the weave).
func (c *pageCache) finish(k pageKey, f *flight, page *Page, err error, gen uint64) {
	sh := c.shard(k)
	sh.mu.Lock()
	f.page, f.err, f.gen = page, err, gen
	if sh.inflight[k] == f {
		delete(sh.inflight, k)
	}
	if err == nil && c.gen.Load() == gen {
		sh.pages[k] = page
	}
	sh.mu.Unlock()
	f.wg.Done()
}

// generation returns the current cache generation.
func (c *pageCache) generation() uint64 { return c.gen.Load() }

// invalidate drops every entry and starts a new generation, returning
// how many entries were dropped. In-flight weaves are left to finish;
// their stale generation keeps their result out of the cache and makes
// waiters re-weave.
func (c *pageCache) invalidate() int {
	c.gen.Add(1)
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		dropped += len(sh.pages)
		sh.pages = map[pageKey]*Page{}
		sh.mu.Unlock()
	}
	return dropped
}

// invalidateMatching drops only the entries whose page matches pred and
// returns how many were dropped. The generation still advances — a
// weave in flight across the mutation cannot tell whether it depends on
// the mutated input, so its result must not be cached either way (its
// waiters re-weave against the new model).
func (c *pageCache) invalidateMatching(pred func(*Page) bool) int {
	c.gen.Add(1)
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, p := range sh.pages {
			if pred(p) {
				delete(sh.pages, k)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// size returns the number of cached pages.
func (c *pageCache) size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.pages)
		sh.mu.Unlock()
	}
	return n
}
