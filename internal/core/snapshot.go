package core

import (
	"fmt"
	"strings"

	"repro/internal/navigation"
	"repro/internal/storage"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// SnapshotPrefix is the key prefix an application's site snapshot lives
// under in a storage.Store.
const SnapshotPrefix = "site/"

// ExportSnapshot writes the application's separated artifacts — every
// data document plus links.xml, the complete woven site definition — into
// st under SnapshotPrefix, and stamps the store with the page-cache
// generation. Stale snapshot keys (documents a model change removed) are
// deleted, so the snapshot always mirrors the current repository exactly.
// Two navserve processes pointed at one durable store thereby share one
// site definition: either can export, the other reloads.
func (app *App) ExportSnapshot(st storage.Store) error {
	app.mu.RLock()
	defer app.mu.RUnlock()
	current := make(map[string]bool, len(app.repo))
	for uri, doc := range app.repo {
		key := SnapshotPrefix + uri
		current[key] = true
		if err := st.Put(key, []byte(doc.IndentedString())); err != nil {
			return fmt.Errorf("core: exporting snapshot: %w", err)
		}
	}
	var stale []string
	if err := st.Scan(SnapshotPrefix, func(k string, _ []byte) error {
		if !current[k] {
			stale = append(stale, k)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("core: exporting snapshot: %w", err)
	}
	for _, k := range stale {
		if err := st.Delete(k); err != nil {
			return fmt.Errorf("core: exporting snapshot: %w", err)
		}
	}
	if err := st.SetGeneration(app.cache.generation()); err != nil {
		return fmt.Errorf("core: stamping snapshot generation: %w", err)
	}
	return nil
}

// LoadSnapshotRepository reads a site snapshot back out of st into a
// document repository — the same shape App.Repository() serves, so an
// XLink-aware agent in another process can work from the stored site
// definition without rebuilding the conceptual model.
func LoadSnapshotRepository(st storage.Store) (xlink.MapRepository, error) {
	repo := xlink.MapRepository{}
	err := st.Scan(SnapshotPrefix, func(k string, v []byte) error {
		uri := strings.TrimPrefix(k, SnapshotPrefix)
		doc, err := xmldom.ParseString(string(v))
		if err != nil {
			return fmt.Errorf("core: snapshot document %q: %w", uri, err)
		}
		doc.BaseURI = uri
		repo[uri] = doc
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(repo) == 0 {
		return nil, fmt.Errorf("core: store holds no site snapshot")
	}
	return repo, nil
}

// LoadSnapshotContexts reloads the navigational aspect itself: it parses
// the snapshot's links.xml into navigation contexts, proving the stored
// artifact carries the whole navigation structure across processes just
// as the paper argues it carries it across files.
func LoadSnapshotContexts(st storage.Store) ([]*navigation.LinkbaseContext, error) {
	repo, err := LoadSnapshotRepository(st)
	if err != nil {
		return nil, err
	}
	lb, err := repo.Get("links.xml")
	if err != nil {
		return nil, fmt.Errorf("core: snapshot has no linkbase: %w", err)
	}
	return navigation.ParseLinkbase(lb)
}
