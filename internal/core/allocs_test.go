package core

import (
	"testing"

	"repro/internal/navigation"
)

// Allocation budgets for the //repro:hotpath functions this package
// exports to the serve path. A cache hit returns shared precomputed
// state — the page pointer, the document bytes with their ETag and
// Content-Length — so both lookups stay allocation-free; navlint's
// hotpath analyzer enforces the same statically.
func TestRenderPageCachedHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	app := paperApp(t, navigation.GuidedTour{})
	if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := app.RenderPageCached("ByAuthor:picasso", "guitar"); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("cached render = %.2f allocs/op, want 0", avg)
	}
}

func TestDocBytesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	app := paperApp(t, navigation.Index{})
	if _, _, _, err := app.DocBytes("links.xml"); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, _, err := app.DocBytes("links.xml"); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("doc lookup = %.2f allocs/op, want 0", avg)
	}
}
