package core

import (
	"bytes"
	"strconv"
	"sync"
)

// docEntry is one serialized repository document with its precomputed
// validator and Content-Length, so the serve path writes headers
// without formatting anything.
type docEntry struct {
	body []byte
	etag string
	clen string
}

// docCache holds the serialized form of every repository document
// (links.xml and the node data files) with its strong ETag, so serving a
// document costs a map lookup instead of a tree serialization and a body
// hash per request. rebuild reseeds it wholesale; InvalidateDocument
// replaces single entries.
type docCache struct {
	mu      sync.RWMutex
	entries map[string]docEntry
}

func newDocCache() *docCache { return &docCache{entries: map[string]docEntry{}} }

// get returns the cached serialization of uri.
func (dc *docCache) get(uri string) (docEntry, bool) {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	e, ok := dc.entries[uri]
	return e, ok
}

// diff reports which documents of the incoming serialization differ from
// the cached one — new, changed or deleted uris.
func (dc *docCache) diff(serialized map[string][]byte) map[string]bool {
	dc.mu.RLock()
	defer dc.mu.RUnlock()
	changed := map[string]bool{}
	for uri, body := range serialized {
		if e, ok := dc.entries[uri]; !ok || !bytes.Equal(e.body, body) {
			changed[uri] = true
		}
	}
	for uri := range dc.entries {
		if _, ok := serialized[uri]; !ok {
			changed[uri] = true
		}
	}
	return changed
}

// reseed replaces the cache with the given serialization. Entries whose
// bytes did not change keep their previous ETag — an unchanged document
// keeps validating across model mutations — while changed ones are
// stamped under gen.
func (dc *docCache) reseed(serialized map[string][]byte, changed map[string]bool, gen uint64) {
	entries := make(map[string]docEntry, len(serialized))
	dc.mu.Lock()
	defer dc.mu.Unlock()
	for uri, body := range serialized {
		if !changed[uri] {
			if e, ok := dc.entries[uri]; ok {
				entries[uri] = e
				continue
			}
		}
		entries[uri] = docEntry{body: body, etag: strongETag(gen, body), clen: strconv.Itoa(len(body))}
	}
	dc.entries = entries
}
