package core

import (
	"strings"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

// behaviorApp builds an app whose ByAuthor context declares the given
// XLink show behaviour.
func behaviorApp(t *testing.T, show string) *App {
	t.Helper()
	model := navigation.NewModel()
	model.MustAddNodeClass(&navigation.NodeClass{Name: "PaintingNode", Class: "Painting", TitleAttr: "title"})
	model.MustAddContext(&navigation.ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode",
		GroupBy: "paints", OrderBy: "year",
		Access: navigation.IndexedGuidedTour{}, Show: show,
	})
	app, err := NewApp(museum.PaperStore(), model)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestShowDefaultIsReplace(t *testing.T) {
	app := behaviorApp(t, "")
	// The linkbase carries xlink:show="replace" on every arc.
	if !strings.Contains(app.Linkbase().String(), `show="replace"`) {
		t.Error("default show not emitted as replace")
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page.HTML, "_blank") {
		t.Error("replace behaviour produced target=_blank")
	}
}

func TestShowNewOpensBlankTarget(t *testing.T) {
	app := behaviorApp(t, "new")
	if !strings.Contains(app.Linkbase().String(), `show="new"`) {
		t.Error("show=new not in linkbase")
	}
	page, err := app.RenderPage("ByAuthor:picasso", "guitar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML, `target="_blank"`) {
		t.Errorf("show=new did not produce target=_blank:\n%s", page.HTML)
	}
	hub, err := app.RenderPage("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hub.HTML, `target="_blank"`) {
		t.Errorf("hub anchors missing target=_blank:\n%s", hub.HTML)
	}
}

// TestShowEmbedInlinesMembers: with xlink:show="embed" the index page
// embeds each member's content where its link would stand — the XLink
// behaviour the paper could not demonstrate for lack of an agent.
func TestShowEmbedInlinesMembers(t *testing.T) {
	app := behaviorApp(t, "embed")
	hub, err := app.RenderPage("ByAuthor:picasso", navigation.HubID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`class="embed"`,
		`data-node="guitar"`,
		"<h2>Guitar</h2>",
		"<h2>Guernica</h2>",
		"<dt>year</dt>",
		"<dd>1913</dd>",
	} {
		if !strings.Contains(hub.HTML, want) {
			t.Errorf("embedded hub missing %q:\n%s", want, hub.HTML)
		}
	}
	// Embedded entries replace the member anchors.
	if strings.Contains(hub.HTML, `class="nav-member"`) {
		t.Errorf("embed left plain member anchors:\n%s", hub.HTML)
	}
}

// TestInvalidShowRejected: a bogus show value reaches the generated
// linkbase, and the XLink processor rejects it when the app reads the
// linkbase back — invalid behaviour declarations cannot slip through.
func TestInvalidShowRejected(t *testing.T) {
	model := navigation.NewModel()
	model.MustAddNodeClass(&navigation.NodeClass{Name: "P", Class: "Painting"})
	model.MustAddContext(&navigation.ContextDef{
		Name: "X", NodeClass: "P", Access: navigation.Index{}, Show: "explode",
	})
	if _, err := NewApp(museum.PaperStore(), model); err == nil {
		t.Error("invalid show value accepted by NewApp")
	}
}
