package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/aspect"
	"repro/internal/navigation"
	"repro/internal/presentation"
	"repro/internal/xmldom"
)

// Page is one woven page of the site.
type Page struct {
	// Path is the site-relative output path, e.g.
	// "ByAuthor/picasso/guitar.html".
	Path string
	// Context is the resolved context the page belongs to.
	Context string
	// NodeID is the member node, or navigation.HubID for an index page.
	NodeID string
	// Doc is the woven page tree.
	Doc *xmldom.Document
	// HTML is the serialized page.
	HTML string
}

// Site is a complete woven static site.
type Site struct {
	pages map[string]*Page
}

// Page returns the page at the given path, or nil.
func (s *Site) Page(path string) *Page { return s.pages[path] }

// Paths returns all page paths, sorted.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.pages))
	for p := range s.pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of pages.
func (s *Site) Len() int { return len(s.pages) }

// Files returns path -> HTML for writing the site out.
func (s *Site) Files() map[string]string {
	out := make(map[string]string, len(s.pages))
	for p, pg := range s.pages {
		out[p] = pg.HTML
	}
	return out
}

// WriteTo writes every page under dir, creating directories as needed.
func (s *Site) WriteTo(dir string) error {
	for _, rel := range s.Paths() {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("core: writing site: %w", err)
		}
		if err := os.WriteFile(path, []byte(s.pages[rel].HTML), 0o644); err != nil {
			return fmt.Errorf("core: writing site: %w", err)
		}
	}
	return nil
}

// WeaveSite statically weaves every page of every resolved context,
// running the full aspect pipeline per page — the build-time flavour of
// the paper's Figure 6 composition.
func (app *App) WeaveSite() (*Site, error) {
	site := &Site{pages: map[string]*Page{}}
	jp := &aspect.JoinPoint{Kind: KindSiteWeave, Name: "site", Target: app}
	_, err := app.weaver.Execute(jp, func(*aspect.JoinPoint) (any, error) {
		for _, rc := range app.resolved.Contexts {
			if rc.Def.Access.HasHub() {
				page, err := app.RenderPage(rc.Name, navigation.HubID)
				if err != nil {
					return nil, err
				}
				site.pages[page.Path] = page
			}
			for _, m := range rc.Members {
				page, err := app.RenderPage(rc.Name, m.ID())
				if err != nil {
					return nil, err
				}
				site.pages[page.Path] = page
			}
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return site, nil
}

// RenderPage weaves a single page on demand — the request-time flavour
// used by the XLink-aware server.
func (app *App) RenderPage(contextName, nodeID string) (*Page, error) {
	rc := app.resolved.Context(contextName)
	if rc == nil {
		return nil, fmt.Errorf("core: unknown context %q", contextName)
	}
	if nodeID == "" {
		nodeID = navigation.HubID
	}
	if nodeID == navigation.HubID {
		if !rc.Def.Access.HasHub() {
			return nil, fmt.Errorf("core: context %q has no index page (%s)", contextName, rc.Def.Access.Kind())
		}
	} else if rc.Position(nodeID) < 0 {
		return nil, fmt.Errorf("core: node %q is not a member of context %q", nodeID, contextName)
	}

	var class string
	if nodeID != navigation.HubID {
		class = rc.Member(nodeID).Class.Name
	}
	jp := &aspect.JoinPoint{
		Kind: KindPageRender,
		Name: nodeID,
		Attrs: map[string]string{
			"context": rc.Name,
			"family":  rc.Def.Name,
			"access":  rc.Def.Access.Kind(),
			"class":   class,
		},
		Target: app,
	}
	result, err := app.weaver.Execute(jp, func(jp *aspect.JoinPoint) (any, error) {
		return app.basePage(rc, nodeID)
	})
	if err != nil {
		return nil, fmt.Errorf("core: weaving %s/%s: %w", contextName, nodeID, err)
	}
	doc, ok := result.(*xmldom.Document)
	if !ok {
		return nil, fmt.Errorf("core: page pipeline produced %T, want *xmldom.Document", result)
	}
	return &Page{
		Path:    PagePath(rc.Name, nodeID),
		Context: rc.Name,
		NodeID:  nodeID,
		Doc:     doc,
		HTML:    presentation.WriteHTML(doc.Root(), presentation.HTMLOptions{Doctype: true, Indent: "  "}),
	}, nil
}

// basePage produces the page's base content — the "basic functionality"
// of the paper's step 1, knowing nothing about navigation. Member pages
// render the node's data document (through the custom stylesheet when one
// is installed); hub pages render an empty titled shell that the
// navigation aspect fills.
func (app *App) basePage(rc *navigation.ResolvedContext, nodeID string) (*xmldom.Document, error) {
	if nodeID == navigation.HubID {
		title := "Index of " + rc.Name
		html := xmldom.NewElement("html")
		head := html.AddElement("head")
		head.AddElement("title").AppendText(title)
		body := html.AddElement("body")
		body.AddElement("h1").AppendText(title)
		return xmldom.NewDocument(html), nil
	}

	node := rc.Member(nodeID)
	dataDoc, err := app.repo.Get(navigation.NodeHref(nodeID))
	if err != nil {
		return nil, err
	}
	if app.stylesheet != nil {
		out, err := app.stylesheet.ApplyToDocument(dataDoc)
		if err != nil {
			return nil, fmt.Errorf("core: stylesheet on %s: %w", nodeID, err)
		}
		if out.Root().Name.Local != "html" {
			return nil, fmt.Errorf("core: stylesheet produced <%s>, want <html>", out.Root().Name.Local)
		}
		return out, nil
	}

	// Built-in presentation: title plus attribute table.
	html := xmldom.NewElement("html")
	head := html.AddElement("head")
	head.AddElement("title").AppendText(node.Title())
	body := html.AddElement("body")
	body.AddElement("h1").AppendText(node.Title())
	table := body.AddElement("table")
	table.SetAttr("class", "attributes")
	for _, attr := range node.AttrNames() {
		tr := table.AddElement("tr")
		tr.AddElement("td").AppendText(attr)
		tr.AddElement("td").AppendText(node.Attr(attr))
	}
	return xmldom.NewDocument(html), nil
}
