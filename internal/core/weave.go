package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/aspect"
	"repro/internal/navigation"
	"repro/internal/presentation"
	"repro/internal/xlink"
	"repro/internal/xmldom"
)

// Page is one woven page of the site. A page is serialized, measured and
// validator-hashed exactly once, at weave time: the request path serves
// Body with ETag and ContentLength as-is, copying and hashing nothing.
type Page struct {
	// Path is the site-relative output path, e.g.
	// "ByAuthor/picasso/guitar.html".
	Path string
	// Context is the resolved context the page belongs to.
	Context string
	// NodeID is the member node, or navigation.HubID for an index page.
	NodeID string
	// Doc is the woven page tree.
	Doc *xmldom.Document
	// HTML is the serialized page.
	HTML string
	// Body is the serialized page as bytes, shared by every caller:
	// serve it, do not modify it.
	Body []byte
	// ETag is the page's strong HTTP validator,
	// "g<generation>-<hash>", precomputed from the exact body.
	ETag string
	// ContentLength is len(Body) in decimal, precomputed for the
	// Content-Length header.
	ContentLength string

	// deps records the inputs the page was woven from, for
	// dependency-aware cache invalidation.
	deps pageDeps
}

// Site is a complete woven static site.
type Site struct {
	pages map[string]*Page
}

// Page returns the page at the given path, or nil.
func (s *Site) Page(path string) *Page { return s.pages[path] }

// Paths returns all page paths, sorted.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.pages))
	for p := range s.pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of pages.
func (s *Site) Len() int { return len(s.pages) }

// Files returns path -> HTML for writing the site out.
func (s *Site) Files() map[string]string {
	out := make(map[string]string, len(s.pages))
	for p, pg := range s.pages {
		out[p] = pg.HTML
	}
	return out
}

// WriteTo writes every page under dir, creating directories as needed.
func (s *Site) WriteTo(dir string) error {
	for _, rel := range s.Paths() {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("core: writing site: %w", err)
		}
		if err := os.WriteFile(path, []byte(s.pages[rel].HTML), 0o644); err != nil {
			return fmt.Errorf("core: writing site: %w", err)
		}
	}
	return nil
}

// weaveTask is one (context, node) pair of a site weave.
type weaveTask struct {
	rc     *navigation.ResolvedContext
	nodeID string
}

// WeaveSite statically weaves every page of every resolved context,
// running the full aspect pipeline per page — the build-time flavour of
// the paper's Figure 6 composition. Pages are woven by a bounded worker
// pool sized to GOMAXPROCS; use WeaveSiteWorkers to pick the size. The
// woven output is deterministic regardless of worker count: every page's
// content depends only on its own (context, node) pair.
func (app *App) WeaveSite() (*Site, error) {
	return app.WeaveSiteWorkers(0)
}

// WeaveSiteWorkers weaves the site with the given number of concurrent
// page workers. workers <= 0 selects GOMAXPROCS. While the weaver is
// tracing, weaving is forced sequential so the recorded advice trace
// stays deterministic (the E1 figure's contract).
func (app *App) WeaveSiteWorkers(workers int) (*Site, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if app.weaver.Tracing() {
		workers = 1
	}
	app.mu.RLock()
	defer app.mu.RUnlock()
	site := &Site{pages: map[string]*Page{}}
	jp := &aspect.JoinPoint{Kind: KindSiteWeave, Name: "site", Target: app}
	_, err := app.weaver.Execute(jp, func(*aspect.JoinPoint) (any, error) {
		var tasks []weaveTask
		for _, rc := range app.resolved.Contexts {
			if rc.Def.Access.HasHub() {
				tasks = append(tasks, weaveTask{rc, navigation.HubID})
			}
			for _, m := range rc.Members {
				tasks = append(tasks, weaveTask{rc, m.ID()})
			}
		}
		pages, err := app.renderAll(tasks, workers)
		if err != nil {
			return nil, err
		}
		for _, page := range pages {
			site.pages[page.Path] = page
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return site, nil
}

// renderAll weaves every task's page, fanning out over a bounded worker
// pool. Results are assembled by task index and the first error in task
// order wins, so output and error reporting are deterministic.
// Callers must hold app.mu for reading.
func (app *App) renderAll(tasks []weaveTask, workers int) ([]*Page, error) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	out := make([]*Page, len(tasks))
	if workers <= 1 {
		for i, t := range tasks {
			page, err := app.renderPageLocked(t.rc.Name, t.nodeID)
			if err != nil {
				return nil, err
			}
			out[i] = page
		}
		return out, nil
	}
	errs := make([]error, len(tasks))
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				out[i], errs[i] = app.renderPageLocked(tasks[i].rc.Name, tasks[i].nodeID)
			}
		}()
	}
	for i := range tasks {
		feed <- i
	}
	close(feed)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderPage weaves a single page on demand — the request-time flavour
// used by the XLink-aware server.
func (app *App) RenderPage(contextName, nodeID string) (*Page, error) {
	app.mu.RLock()
	defer app.mu.RUnlock()
	return app.renderPageLocked(contextName, nodeID)
}

// CacheOutcome classifies how RenderPageCachedStat satisfied a
// request, so the serving layer can attribute the render phase without
// reaching into the cache.
type CacheOutcome uint8

const (
	// CacheHit served the previously woven page.
	CacheHit CacheOutcome = iota
	// CacheJoin coalesced onto another request's in-flight weave.
	CacheJoin
	// CacheMiss led the weave and cached the result.
	CacheMiss
)

// RenderPageCached is RenderPage behind the woven-page cache: a hit
// returns the previously woven page, a miss weaves and caches it, and
// concurrent misses for the same page coalesce into one weave. The
// cache is invalidated by SetAccessStructure and SetStylesheet, so a
// visitor can never be served a page woven from a superseded model.
// The returned page is shared: serve its HTML, do not mutate its Doc.
//
//repro:hotpath
func (app *App) RenderPageCached(contextName, nodeID string) (*Page, error) {
	page, _, err := app.RenderPageCachedStat(contextName, nodeID)
	return page, err
}

// RenderPageCachedStat is RenderPageCached reporting how the cache
// satisfied the request (hit, single-flight join, or leading miss).
// A join that has to retry against a moved generation reports the
// outcome of its final round.
//
//repro:hotpath
func (app *App) RenderPageCachedStat(contextName, nodeID string) (*Page, CacheOutcome, error) {
	if nodeID == "" {
		nodeID = navigation.HubID
	}
	key := pageKey{context: contextName, node: nodeID}
	for {
		page, f, leader := app.cache.beginOrJoin(key)
		if page != nil {
			cacheHits.Inc()
			return page, CacheHit, nil
		}
		if !leader {
			cacheJoins.Inc()
			f.wg.Wait()
			if f.err != nil {
				return nil, CacheJoin, f.err
			}
			if app.cache.generation() == f.gen {
				return f.page, CacheJoin, nil
			}
			// The model changed while that weave was in flight; its
			// result would be stale here. Weave again.
			continue
		}
		cacheMisses.Inc()
		// The generation is read under the same read lock as the
		// render, so a concurrent rebuild (which holds the write lock
		// and bumps the generation) makes finish discard the entry
		// rather than cache a stale page.
		app.mu.RLock()
		gen := app.cache.generation()
		//repro:allow(cold miss: the one weave the cache exists to amortize)
		p, err := app.renderPageLocked(contextName, nodeID)
		app.mu.RUnlock()
		app.cache.finish(key, f, p, err, gen)
		return p, CacheMiss, err
	}
}

// renderPageLocked weaves one page. Callers must hold app.mu for reading.
func (app *App) renderPageLocked(contextName, nodeID string) (*Page, error) {
	rc := app.resolved.Context(contextName)
	if rc == nil {
		return nil, fmt.Errorf("core: unknown context %q", contextName)
	}
	if nodeID == "" {
		nodeID = navigation.HubID
	}
	if nodeID == navigation.HubID {
		if !rc.Def.Access.HasHub() {
			return nil, fmt.Errorf("core: context %q has no index page (%s)", contextName, rc.Def.Access.Kind())
		}
	} else if rc.Position(nodeID) < 0 {
		return nil, fmt.Errorf("core: node %q is not a member of context %q", nodeID, contextName)
	}

	var class string
	if nodeID != navigation.HubID {
		class = rc.Member(nodeID).Class.Name
	}
	jp := &aspect.JoinPoint{
		Kind: KindPageRender,
		Name: nodeID,
		Attrs: map[string]string{
			"context": rc.Name,
			"family":  rc.Def.Name,
			"access":  rc.Def.Access.Kind(),
			"class":   class,
		},
		Target: app,
	}
	result, err := app.weaver.Execute(jp, func(jp *aspect.JoinPoint) (any, error) {
		return app.basePage(rc, nodeID)
	})
	if err != nil {
		return nil, fmt.Errorf("core: weaving %s/%s: %w", contextName, nodeID, err)
	}
	doc, ok := result.(*xmldom.Document)
	if !ok {
		return nil, fmt.Errorf("core: page pipeline produced %T, want *xmldom.Document", result)
	}
	html := presentation.WriteHTML(doc.Root(), presentation.HTMLOptions{Doctype: true, Indent: "  "})
	body := []byte(html)
	return &Page{
		Path:          PagePath(rc.Name, nodeID),
		Context:       rc.Name,
		NodeID:        nodeID,
		Doc:           doc,
		HTML:          html,
		Body:          body,
		ETag:          strongETag(app.cache.generation(), body),
		ContentLength: strconv.Itoa(len(body)),
		deps:          app.pageDepsLocked(rc, nodeID),
	}, nil
}

// pageDepsLocked records what a woven (context, node) page reads: its
// context's structure, the data documents woven into its body, and —
// for member pages — the presentation stylesheet slot. Callers must
// hold app.mu for reading.
func (app *App) pageDepsLocked(rc *navigation.ResolvedContext, nodeID string) pageDeps {
	deps := pageDeps{context: rc.Name}
	if nodeID != navigation.HubID {
		deps.stylesheet = true
		deps.docs = []string{navigation.NodeHref(nodeID)}
		return deps
	}
	// A hub page embeds the data of members linked with
	// xlink:show="embed" (the gallery wall), so it depends on their
	// documents too.
	if lbc := app.lbContexts[rc.Name]; lbc != nil {
		for _, e := range lbc.Edges {
			if e.Kind == navigation.EdgeMember && e.From == navigation.HubID && e.Show == string(xlink.ShowEmbed) {
				deps.docs = append(deps.docs, navigation.NodeHref(e.To))
			}
		}
	}
	return deps
}

// basePage produces the page's base content — the "basic functionality"
// of the paper's step 1, knowing nothing about navigation. Member pages
// render the node's data document (through the custom stylesheet when one
// is installed); hub pages render an empty titled shell that the
// navigation aspect fills.
func (app *App) basePage(rc *navigation.ResolvedContext, nodeID string) (*xmldom.Document, error) {
	if nodeID == navigation.HubID {
		title := "Index of " + rc.Name
		html := xmldom.NewElement("html")
		head := html.AddElement("head")
		head.AddElement("title").AppendText(title)
		body := html.AddElement("body")
		body.AddElement("h1").AppendText(title)
		return xmldom.NewDocument(html), nil
	}

	node := rc.Member(nodeID)
	dataDoc, err := app.repo.Get(navigation.NodeHref(nodeID))
	if err != nil {
		return nil, err
	}
	if app.stylesheet != nil {
		out, err := app.stylesheet.ApplyToDocument(dataDoc)
		if err != nil {
			return nil, fmt.Errorf("core: stylesheet on %s: %w", nodeID, err)
		}
		if out.Root().Name.Local != "html" {
			return nil, fmt.Errorf("core: stylesheet produced <%s>, want <html>", out.Root().Name.Local)
		}
		return out, nil
	}

	// Built-in presentation: title plus attribute table.
	html := xmldom.NewElement("html")
	head := html.AddElement("head")
	head.AddElement("title").AppendText(node.Title())
	body := html.AddElement("body")
	body.AddElement("h1").AppendText(node.Title())
	table := body.AddElement("table")
	table.SetAttr("class", "attributes")
	for _, attr := range node.AttrNames() {
		tr := table.AddElement("tr")
		tr.AddElement("td").AppendText(attr)
		tr.AddElement("td").AppendText(node.Attr(attr))
	}
	return xmldom.NewDocument(html), nil
}
