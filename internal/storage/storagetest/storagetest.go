// Package storagetest is the conformance suite every storage.Store
// backend must pass. Backend test files call Run with a Factory; the
// suite exercises the whole interface contract — value copy semantics,
// sorted scans, generation stamping, concurrency under -race — and, for
// durable backends that provide Reopen, persistence across a simulated
// process restart.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// Factory opens stores for the suite.
type Factory struct {
	// Open returns a fresh, empty store. Called once per subtest; the
	// suite closes the store itself.
	Open func(t testing.TB) storage.Store
	// Reopen, when non-nil, closes st and returns a new handle onto the
	// same underlying data — a simulated process restart. Durable
	// backends provide it; leaving it nil skips the durability cases.
	Reopen func(t testing.TB, st storage.Store) storage.Store
}

// Run drives the conformance suite against the factory's backend.
func Run(t *testing.T, f Factory) {
	t.Run("PutGetRoundTrip", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		if err := st.Put("a", []byte("alpha")); err != nil {
			t.Fatal(err)
		}
		got, err := st.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "alpha" {
			t.Errorf("Get(a) = %q, want alpha", got)
		}
		// Overwrite replaces.
		if err := st.Put("a", []byte("beta")); err != nil {
			t.Fatal(err)
		}
		if got, _ := st.Get("a"); string(got) != "beta" {
			t.Errorf("Get(a) after overwrite = %q, want beta", got)
		}
	})

	t.Run("MissingKey", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		if _, err := st.Get("nope"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("Get(missing) err = %v, want ErrNotFound", err)
		}
	})

	t.Run("Delete", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		if err := st.Put("a", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := st.Delete("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get("a"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("Get after Delete err = %v, want ErrNotFound", err)
		}
		// Deleting an absent key is not an error.
		if err := st.Delete("never-existed"); err != nil {
			t.Errorf("Delete(absent) = %v, want nil", err)
		}
	})

	t.Run("ValueCopySemantics", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		in := []byte("original")
		if err := st.Put("k", in); err != nil {
			t.Fatal(err)
		}
		copy(in, "XXXXXXXX") // caller reuses its slice
		out, err := st.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "original" {
			t.Errorf("store aliased the caller's Put slice: %q", out)
		}
		copy(out, "YYYYYYYY") // caller scribbles on the returned slice
		again, _ := st.Get("k")
		if string(again) != "original" {
			t.Errorf("store aliased its Get result: %q", again)
		}
	})

	t.Run("BinaryValues", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		val := []byte("line1\nline2\x00\xff\n")
		if err := st.Put("bin\n0", val); err != nil {
			t.Fatal(err)
		}
		got, err := st.Get("bin\n0")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Errorf("binary value mangled: %q != %q", got, val)
		}
		if err := st.Put("empty", nil); err != nil {
			t.Fatal(err)
		}
		if got, err := st.Get("empty"); err != nil || len(got) != 0 {
			t.Errorf("empty value: %q, %v", got, err)
		}
	})

	t.Run("ScanPrefixSorted", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		for _, k := range []string{"b/2", "a/3", "a/1", "a/2", "c"} {
			if err := st.Put(k, []byte("v:"+k)); err != nil {
				t.Fatal(err)
			}
		}
		var keys []string
		err := st.Scan("a/", func(k string, v []byte) error {
			keys = append(keys, k)
			if string(v) != "v:"+k {
				t.Errorf("Scan value for %s = %q", k, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"a/1", "a/2", "a/3"}
		if fmt.Sprint(keys) != fmt.Sprint(want) {
			t.Errorf("Scan(a/) keys = %v, want %v", keys, want)
		}
		// A scan error from fn stops the scan and propagates.
		sentinel := errors.New("stop")
		calls := 0
		err = st.Scan("a/", func(string, []byte) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) || calls != 1 {
			t.Errorf("Scan error propagation: err=%v calls=%d", err, calls)
		}
	})

	t.Run("Generation", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		g, err := st.Generation()
		if err != nil || g != 0 {
			t.Errorf("initial Generation = %d, %v; want 0, nil", g, err)
		}
		if err := st.SetGeneration(42); err != nil {
			t.Fatal(err)
		}
		if g, _ := st.Generation(); g != 42 {
			t.Errorf("Generation = %d, want 42", g)
		}
	})

	t.Run("Closed", func(t *testing.T) {
		st := f.Open(t)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("second Close = %v, want nil", err)
		}
		if _, err := st.Get("k"); !errors.Is(err, storage.ErrClosed) {
			t.Errorf("Get after Close err = %v, want ErrClosed", err)
		}
		if err := st.Put("k", nil); !errors.Is(err, storage.ErrClosed) {
			t.Errorf("Put after Close err = %v, want ErrClosed", err)
		}
	})

	t.Run("Concurrency", func(t *testing.T) {
		st := f.Open(t)
		defer st.Close()
		const workers = 8
		const perWorker = 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					key := fmt.Sprintf("w%d/k%d", w, i)
					if err := st.Put(key, []byte(key)); err != nil {
						t.Error(err)
						return
					}
					if v, err := st.Get(key); err != nil || string(v) != key {
						t.Errorf("Get(%s) = %q, %v", key, v, err)
						return
					}
					if i%3 == 0 {
						_ = st.Delete(key)
					}
					_ = st.SetGeneration(uint64(i))
					_, _ = st.Generation()
					_ = st.Scan(fmt.Sprintf("w%d/", w), func(string, []byte) error { return nil })
				}
			}(w)
		}
		wg.Wait()
	})

	if f.Reopen == nil {
		return
	}

	t.Run("DurableAcrossReopen", func(t *testing.T) {
		st := f.Open(t)
		for i := 0; i < 20; i++ {
			if err := st.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Delete("k07"); err != nil {
			t.Fatal(err)
		}
		if err := st.SetGeneration(9); err != nil {
			t.Fatal(err)
		}
		st = f.Reopen(t, st)
		defer st.Close()
		if g, _ := st.Generation(); g != 9 {
			t.Errorf("Generation after reopen = %d, want 9", g)
		}
		if _, err := st.Get("k07"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("deleted key survived reopen: %v", err)
		}
		n := 0
		_ = st.Scan("k", func(k string, v []byte) error {
			n++
			return nil
		})
		if n != 19 {
			t.Errorf("keys after reopen = %d, want 19", n)
		}
		if v, err := st.Get("k13"); err != nil || string(v) != "v13" {
			t.Errorf("Get(k13) after reopen = %q, %v", v, err)
		}
	})
}
