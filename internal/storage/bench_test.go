package storage_test

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

// benchChurn measures the session-shaped write/read mix the server
// produces: put a record, read it back, occasionally delete — the cost
// of making every visitor's trail durable, per backend.
func benchChurn(b *testing.B, st storage.Store) {
	val := []byte(`{"state":{"context":"ByAuthor:picasso","node":"guitar","history":[{"Context":"ByAuthor:picasso","NodeID":"guitar"}]}}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("session/%032d", i%1024)
		if err := st.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Get(key); err != nil {
			b.Fatal(err)
		}
		if i%16 == 0 {
			if err := st.Delete(key); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkChurnMem(b *testing.B) {
	st := storage.NewMem()
	defer st.Close()
	benchChurn(b, st)
}

func BenchmarkChurnFile(b *testing.B) {
	st, err := storage.OpenFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchChurn(b, st)
}

// BenchmarkFileReopen measures cold-start recovery: opening a store that
// already holds many session records (snapshot + log replay).
func BenchmarkFileReopen(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		b.Fatal(err)
	}
	val := []byte(`{"state":{"context":"ByAuthor:picasso","node":"guitar"}}`)
	for i := 0; i < 4096; i++ {
		if err := st.Put(fmt.Sprintf("session/%032d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := storage.OpenFile(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Get("session/" + fmt.Sprintf("%032d", 99)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
