package storage_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

func TestFileConformance(t *testing.T) {
	storagetest.Run(t, storagetest.Factory{
		Open: func(t testing.TB) storage.Store {
			st, err := storage.OpenFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		Reopen: func(t testing.TB, st storage.Store) storage.Store {
			fs := st.(*storage.File)
			dir := fs.Dir()
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := storage.OpenFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			return st2
		},
	})
}

// TestFileTornTail simulates a crash mid-append: the log's final record
// is cut short, and reopening must recover everything before it.
func TestFileTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("survivor", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("victim", []byte("this record will be torn")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: abandon the store with no final compaction
	// and shear bytes off the log's tail.
	if err := st.CloseWithoutFlush(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer st2.Close()
	if v, err := st2.Get("survivor"); err != nil || string(v) != "intact" {
		t.Errorf("record before the tear lost: %q, %v", v, err)
	}
	if _, err := st2.Get("victim"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("torn record resurrected: err = %v, want ErrNotFound", err)
	}
	// The store must stay writable after recovery.
	if err := st2.Put("victim", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if v, _ := st2.Get("victim"); string(v) != "rewritten" {
		t.Errorf("post-recovery write lost: %q", v)
	}
}

// TestFileCompaction drives the log past its threshold and checks the
// state survives the snapshot rewrite and a reopen from snapshot only.
func TestFileCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir, storage.WithCompactBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%02d", i%10) // overwrites force garbage for compaction to drop
		if err := st.Put(key, []byte(strings.Repeat("x", 20)+fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := os.Stat(filepath.Join(dir, "snapshot"))
	if err != nil {
		t.Fatalf("no snapshot written after churn past threshold: %v", err)
	}
	if snap.Size() == 0 {
		t.Error("snapshot is empty")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	n := 0
	_ = st2.Scan("k", func(k string, v []byte) error { n++; return nil })
	if n != 10 {
		t.Errorf("keys after compaction+reopen = %d, want 10", n)
	}
	if v, err := st2.Get("k09"); err != nil || !strings.HasSuffix(string(v), "49") {
		t.Errorf("latest overwrite lost: %q, %v", v, err)
	}
}

// TestFileStaleLogReplayIsIdempotent covers the crash window between the
// snapshot rename and the log truncation: replaying the stale log over
// the new snapshot must reproduce the same state.
func TestFileStaleLogReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir, storage.WithCompactBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Preserve the pre-compaction log, force a compaction, then put the
	// stale log back — exactly the on-disk state after a crash between
	// rename and truncate.
	logPath := filepath.Join(dir, "log")
	stale, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWithoutFlush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i := 0; i < 5; i++ {
		if v, err := st2.Get(fmt.Sprintf("k%d", i)); err != nil || string(v) != fmt.Sprint(i) {
			t.Errorf("Get(k%d) = %q, %v", i, v, err)
		}
	}
}

// TestFileSingleWriterLock: a second process (here, a second handle)
// opening a live store directory must fail fast rather than share the
// log; the lock frees on Close.
func TestFileSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenFile(dir); err == nil {
		t.Fatal("second opener acquired a live store directory")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	st2.Close()
}

func TestFileCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot"), []byte("not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenFile(dir); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

// TestFileAbsurdLengthHeaderRejected: a corrupt header declaring a huge
// record length must come back as a clean error, not an allocation
// panic or OOM.
func TestFileAbsurdLengthHeaderRejected(t *testing.T) {
	for name, header := range map[string]string{
		"huge value":    "p 1 9223372036854775806\nkv\n",
		"huge key":      "d 999999999999\nk\n",
		"negative-ish":  "p 3 -1\nkey\n",
		"non-numeric":   "p one two\nxx\n",
		"unknown opkey": "z 3\nkey\n",
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "snapshot"), []byte(header), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := storage.OpenFile(dir); err == nil {
			t.Errorf("%s header accepted", name)
		}
	}
}
