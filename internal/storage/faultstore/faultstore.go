// Package faultstore is a deterministic, seedable fault-injecting
// storage.Store decorator — the chaos half of the persistence
// subsystem. It wraps any backend and injects failures by scripted
// scenario: per-op-class failure rates, fail-N-then-recover bursts,
// latency injection, and torn writes (Put reports success but the
// durable bytes are truncated, visible only after a simulated crash).
// Everything it does is driven by a seeded PRNG, so a chaos test that
// fails replays bit-for-bit from its seed.
//
// The zero-fault decorator is a faithful Store: it passes the full
// storagetest conformance suite and composes with storage.Instrument
// in either order, so a chaos run sees the same op-latency series a
// production run would.
//
// Scenarios can be built programmatically (Fail, FailRate, Latency,
// TearPuts) or parsed from the compact text syntax Configure accepts:
//
//	op:directive=value[;op:directive=value...]
//
// where op is get|put|delete|scan|* and directive is one of
// fail=N (fail the next N ops), rate=F (fail each op with probability
// F), latency=D (delay each op by the Go duration D), and — Put only —
// tear=N (accept the next N Puts but persist truncated bytes). For
// example:
//
//	put:fail=3;get:rate=0.25;put:latency=5ms
//
// fails the next three Puts, then recovers; every Get flips a 25% coin;
// every Put waits 5ms first.
package faultstore

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// ErrInjected is the error injected faults return (wrapped with the op
// class), so a test can tell a scripted failure from a real one.
var ErrInjected = errors.New("faultstore: injected fault")

// Op classifies store operations for fault scripting.
type Op uint8

const (
	// OpGet covers Store.Get.
	OpGet Op = iota
	// OpPut covers Store.Put.
	OpPut
	// OpDelete covers Store.Delete.
	OpDelete
	// OpScan covers Store.Scan.
	OpScan
	numOps
)

// String names the op class ("get", "put", "delete", "scan").
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	}
	return "unknown"
}

// opPlan is the scripted behavior of one op class.
type opPlan struct {
	// failN fails the next failN ops, then recovers.
	failN int
	// rate fails each op with this probability (0 disables).
	rate float64
	// latency delays each op before it runs.
	latency time.Duration
}

// OpStats reports what one op class has seen.
type OpStats struct {
	// Attempts counts operations that reached the decorator.
	Attempts uint64
	// Injected counts operations failed by script.
	Injected uint64
}

// Store decorates an inner storage.Store with scripted faults. Safe
// for concurrent use; the fault script itself may be mutated while
// operations are in flight (a chaos test flips failures on and off
// under live traffic).
type Store struct {
	inner storage.Store

	mu    sync.Mutex
	rng   *rand.Rand
	plans [numOps]opPlan
	stats [numOps]OpStats

	// tearN tears the next tearN Puts: the inner store receives
	// truncated bytes but the caller sees success, and shadow keeps the
	// intact value so reads stay consistent until Crash discards it —
	// the write the kernel acknowledged but the disk never finished.
	tearN  int
	torn   uint64
	shadow map[string][]byte
}

// New wraps inner with a fault script driven by the given PRNG seed.
// With no script configured the decorator is transparent.
func New(inner storage.Store, seed int64) *Store {
	return &Store{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		shadow: map[string][]byte{},
	}
}

// Fail fails the next n operations of class op with ErrInjected, then
// recovers — the fail-N-then-recover scenario.
func (f *Store) Fail(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[op].failN = n
}

// FailRate fails each operation of class op with probability rate
// (0 disables, 1 fails every op), drawn from the seeded PRNG.
func (f *Store) FailRate(op Op, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[op].rate = rate
}

// Latency delays every operation of class op by d before it runs.
func (f *Store) Latency(op Op, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[op].latency = d
}

// TearPuts accepts the next n Puts but persists only half the bytes:
// success is reported, reads still see the intact value, and the
// corruption surfaces after Crash — the torn-on-reopen scenario.
func (f *Store) TearPuts(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearN = n
}

// Recover clears every failure mode (fail-N counters, rates, latency,
// pending tears). Torn values already written stay torn.
func (f *Store) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.plans {
		f.plans[i] = opPlan{}
	}
	f.tearN = 0
}

// Crash simulates process death after torn writes: the intact shadow
// copies are discarded, so subsequent reads see what actually reached
// the inner store — the truncated bytes.
func (f *Store) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shadow = map[string][]byte{}
}

// Stats reports attempts and injected failures for one op class.
func (f *Store) Stats(op Op) OpStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats[op]
}

// TornWrites reports how many Puts have been torn so far.
func (f *Store) TornWrites() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.torn
}

// Configure applies a scenario in the compact text syntax (see the
// package comment): "put:fail=3;get:rate=0.25;put:latency=5ms". An
// error leaves the script untouched.
func (f *Store) Configure(scenario string) error {
	type apply func(*Store)
	var pending []apply
	for _, clause := range strings.Split(scenario, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		opName, directive, ok := strings.Cut(clause, ":")
		if !ok {
			return fmt.Errorf("faultstore: clause %q: want op:directive=value", clause)
		}
		key, value, ok := strings.Cut(directive, "=")
		if !ok {
			return fmt.Errorf("faultstore: clause %q: want op:directive=value", clause)
		}
		var ops []Op
		switch opName {
		case "get":
			ops = []Op{OpGet}
		case "put":
			ops = []Op{OpPut}
		case "delete":
			ops = []Op{OpDelete}
		case "scan":
			ops = []Op{OpScan}
		case "*":
			ops = []Op{OpGet, OpPut, OpDelete, OpScan}
		default:
			return fmt.Errorf("faultstore: clause %q: unknown op %q (want get, put, delete, scan or *)", clause, opName)
		}
		switch key {
		case "fail":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return fmt.Errorf("faultstore: clause %q: fail wants a non-negative integer", clause)
			}
			for _, op := range ops {
				op := op
				pending = append(pending, func(s *Store) { s.plans[op].failN = n })
			}
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil || r < 0 || r > 1 {
				return fmt.Errorf("faultstore: clause %q: rate wants a float in [0,1]", clause)
			}
			for _, op := range ops {
				op := op
				pending = append(pending, func(s *Store) { s.plans[op].rate = r })
			}
		case "latency":
			d, err := time.ParseDuration(value)
			if err != nil || d < 0 {
				return fmt.Errorf("faultstore: clause %q: latency wants a Go duration", clause)
			}
			for _, op := range ops {
				op := op
				pending = append(pending, func(s *Store) { s.plans[op].latency = d })
			}
		case "tear":
			if opName != "put" {
				return fmt.Errorf("faultstore: clause %q: tear applies to put only", clause)
			}
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return fmt.Errorf("faultstore: clause %q: tear wants a non-negative integer", clause)
			}
			pending = append(pending, func(s *Store) { s.tearN = n })
		default:
			return fmt.Errorf("faultstore: clause %q: unknown directive %q (want fail, rate, latency or tear)", clause, key)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range pending {
		p(f)
	}
	return nil
}

// before runs the scripted pre-op behavior for one operation: count
// it, sleep its injected latency, and decide whether it fails. The
// latency sleep happens outside the lock so concurrent chaos traffic
// does not serialize on the script mutex.
func (f *Store) before(op Op) error {
	f.mu.Lock()
	f.stats[op].Attempts++
	delay := f.plans[op].latency
	fail := false
	if f.plans[op].failN > 0 {
		f.plans[op].failN--
		fail = true
	} else if r := f.plans[op].rate; r > 0 && f.rng.Float64() < r {
		fail = true
	}
	if fail {
		f.stats[op].Injected++
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("faultstore: %s: %w", op, ErrInjected)
	}
	return nil
}

// Get implements storage.Store. A key with a live shadow copy (a torn
// Put before the crash) answers from the shadow, like a page cache
// serving bytes the disk never got.
func (f *Store) Get(key string) ([]byte, error) {
	if err := f.before(OpGet); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if v, ok := f.shadow[key]; ok {
		out := append([]byte(nil), v...)
		f.mu.Unlock()
		return out, nil
	}
	f.mu.Unlock()
	return f.inner.Get(key)
}

// Put implements storage.Store, honoring the tear script: a torn Put
// persists truncated bytes but reports success and shadows the intact
// value until Crash.
func (f *Store) Put(key string, value []byte) error {
	if err := f.before(OpPut); err != nil {
		return err
	}
	f.mu.Lock()
	tear := f.tearN > 0
	if tear {
		f.tearN--
		f.torn++
	}
	f.mu.Unlock()
	if !tear {
		return f.inner.Put(key, value)
	}
	if err := f.inner.Put(key, value[:len(value)/2]); err != nil {
		return err
	}
	f.mu.Lock()
	f.shadow[key] = append([]byte(nil), value...)
	f.mu.Unlock()
	return nil
}

// Delete implements storage.Store.
func (f *Store) Delete(key string) error {
	if err := f.before(OpDelete); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.shadow, key)
	f.mu.Unlock()
	return f.inner.Delete(key)
}

// Scan implements storage.Store. Shadowed keys are served intact, the
// same view Get gives before a crash.
func (f *Store) Scan(prefix string, fn func(key string, value []byte) error) error {
	if err := f.before(OpScan); err != nil {
		return err
	}
	f.mu.Lock()
	overlay := make(map[string][]byte, len(f.shadow))
	for k, v := range f.shadow {
		if strings.HasPrefix(k, prefix) {
			overlay[k] = append([]byte(nil), v...)
		}
	}
	f.mu.Unlock()
	if len(overlay) == 0 {
		return f.inner.Scan(prefix, fn)
	}
	return f.inner.Scan(prefix, func(key string, value []byte) error {
		if v, ok := overlay[key]; ok {
			return fn(key, v)
		}
		return fn(key, value)
	})
}

// Generation implements storage.Store; generation stamping is never
// fault-injected (it is the snapshot coordination channel, not the
// data path under test).
func (f *Store) Generation() (uint64, error) { return f.inner.Generation() }

// SetGeneration implements storage.Store.
func (f *Store) SetGeneration(gen uint64) error { return f.inner.SetGeneration(gen) }

// Name identifies the decorator and its inner backend for diagnostics.
func (f *Store) Name() string { return "fault(" + f.inner.Name() + ")" }

// Close closes the inner store.
func (f *Store) Close() error { return f.inner.Close() }
