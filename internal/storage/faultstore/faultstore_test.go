package faultstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestConformance: a zero-fault decorator is a faithful Store — the
// full backend conformance suite passes through it.
func TestConformance(t *testing.T) {
	storagetest.Run(t, storagetest.Factory{
		Open: func(t testing.TB) storage.Store {
			return New(storage.NewMem(), 1)
		},
	})
}

// TestConformanceComposedWithInstrument: the chaos decorator and the
// metrics decorator stack, in the order navserve would wire them.
func TestConformanceComposedWithInstrument(t *testing.T) {
	storagetest.Run(t, storagetest.Factory{
		Open: func(t testing.TB) storage.Store {
			return storage.Instrument(New(storage.NewMem(), 1))
		},
	})
}

// TestFailNThenRecover: exactly the next N ops of the class fail, the
// N+1st succeeds, and other classes are untouched.
func TestFailNThenRecover(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	fs.Fail(OpPut, 2)
	for i := 0; i < 2; i++ {
		if err := fs.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
			t.Fatalf("Put %d = %v, want ErrInjected", i, err)
		}
	}
	if err := fs.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after burst = %v, want nil", err)
	}
	if _, err := fs.Get("k"); err != nil {
		t.Fatalf("Get during Put burst scripting = %v, want nil", err)
	}
	st := fs.Stats(OpPut)
	if st.Attempts != 3 || st.Injected != 2 {
		t.Errorf("put stats = %+v, want 3 attempts, 2 injected", st)
	}
}

// TestFailRateDeterministic: the same seed produces the same failure
// pattern — a failing chaos run replays exactly.
func TestFailRateDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		fs := New(storage.NewMem(), seed)
		fs.FailRate(OpGet, 0.5)
		_ = fs.Put("k", []byte("v")) // Put is unscripted
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := fs.Get("k")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at op %d", i)
		}
	}
	sawFail, sawOK := false, false
	for _, failed := range a {
		if failed {
			sawFail = true
		} else {
			sawOK = true
		}
	}
	if !sawFail || !sawOK {
		t.Errorf("rate 0.5 over 64 ops: fail=%v ok=%v, want both", sawFail, sawOK)
	}
}

// TestLatencyInjection: a scripted delay actually holds the op.
func TestLatencyInjection(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	fs.Latency(OpPut, 20*time.Millisecond)
	start := time.Now()
	if err := fs.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Put returned after %v, want >= 20ms", d)
	}
}

// TestTornPutSurfacesAfterCrash: a torn Put reports success and reads
// stay intact — until Crash discards the shadow, after which the store
// holds the truncated bytes that actually "reached disk".
func TestTornPutSurfacesAfterCrash(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	fs.TearPuts(1)
	val := []byte("0123456789")
	if err := fs.Put("k", val); err != nil {
		t.Fatalf("torn Put = %v, want reported success", err)
	}
	if got, err := fs.Get("k"); err != nil || string(got) != "0123456789" {
		t.Fatalf("Get before crash = %q, %v; want intact value", got, err)
	}
	// Scan sees the intact shadow too.
	fs.Scan("k", func(k string, v []byte) error {
		if string(v) != "0123456789" {
			t.Errorf("Scan before crash = %q, want intact value", v)
		}
		return nil
	})
	if n := fs.TornWrites(); n != 1 {
		t.Errorf("TornWrites = %d, want 1", n)
	}
	fs.Crash()
	got, err := fs.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Errorf("Get after crash = %q, want the torn half", got)
	}
}

// TestRecoverClearsScript: Recover drops every pending failure mode.
func TestRecoverClearsScript(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	fs.Fail(OpPut, 100)
	fs.FailRate(OpGet, 1)
	fs.TearPuts(5)
	fs.Recover()
	if err := fs.Put("k", []byte("value")); err != nil {
		t.Fatalf("Put after Recover = %v", err)
	}
	if got, err := fs.Get("k"); err != nil || string(got) != "value" {
		t.Fatalf("Get after Recover = %q, %v", got, err)
	}
	fs.Crash()
	if got, _ := fs.Get("k"); string(got) != "value" {
		t.Errorf("post-Recover Put was torn anyway: %q", got)
	}
}

// TestConfigureScenarios: the compact text syntax drives the same
// script the programmatic calls do, and bad clauses are rejected
// without applying anything.
func TestConfigureScenarios(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	if err := fs.Configure("put:fail=2;get:rate=1;put:latency=1ms"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fs.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
			t.Fatalf("scripted Put %d = %v, want ErrInjected", i, err)
		}
	}
	if err := fs.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after scripted burst = %v", err)
	}
	if _, err := fs.Get("k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get with rate=1 = %v, want ErrInjected", err)
	}

	for _, bad := range []string{
		"put",              // no directive
		"put:fail",         // no value
		"fly:fail=1",       // unknown op
		"put:explode=1",    // unknown directive
		"put:fail=-1",      // negative
		"get:rate=2",       // out of range
		"get:tear=1",       // tear is put-only
		"put:latency=fast", // not a duration
	} {
		fresh := New(storage.NewMem(), 1)
		if err := fresh.Configure(bad); err == nil {
			t.Errorf("Configure(%q) accepted", bad)
		}
		// A rejected scenario leaves the store transparent.
		if err := fresh.Put("k", []byte("v")); err != nil {
			t.Errorf("store scripted by rejected scenario %q: %v", bad, err)
		}
	}

	// A wildcard clause scripts every class.
	wild := New(storage.NewMem(), 1)
	if err := wild.Configure("*:fail=1"); err != nil {
		t.Fatal(err)
	}
	if err := wild.Put("k", nil); !errors.Is(err, ErrInjected) {
		t.Errorf("wildcard Put = %v", err)
	}
	if _, err := wild.Get("k"); !errors.Is(err, ErrInjected) {
		t.Errorf("wildcard Get = %v", err)
	}
	if err := wild.Delete("k"); !errors.Is(err, ErrInjected) {
		t.Errorf("wildcard Delete = %v", err)
	}
	if err := wild.Scan("", func(string, []byte) error { return nil }); !errors.Is(err, ErrInjected) {
		t.Errorf("wildcard Scan = %v", err)
	}
}

// TestNamePropagatesBackend: diagnostics name both layers.
func TestNamePropagatesBackend(t *testing.T) {
	fs := New(storage.NewMem(), 1)
	if got := fs.Name(); got != "fault(mem)" {
		t.Errorf("Name = %q, want fault(mem)", got)
	}
}
