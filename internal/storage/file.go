package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File layout: <dir>/snapshot holds the full state as of the last
// compaction; <dir>/log holds every record appended since. Both use the
// same record encoding (see appendRecord). Opening replays snapshot then
// log; compaction rewrites the snapshot via write-temp-then-rename and
// truncates the log, so a crash at any point leaves a readable store:
//
//   - crash mid-append: the torn final log record is detected on reopen
//     (short read / missing terminator) and discarded;
//   - crash mid-compaction: the temp snapshot is ignored, the old
//     snapshot + full log still replay;
//   - crash between rename and log truncation: replaying the stale log
//     over the new snapshot is idempotent (it rewrites the same values).
const (
	snapshotFile = "snapshot"
	logFile      = "log"
	snapshotTmp  = "snapshot.tmp"
	lockFile     = "lock"
)

// DefaultCompactBytes is the log size that triggers a compaction.
const DefaultCompactBytes = 1 << 20

// FileOption configures OpenFile.
type FileOption func(*File)

// WithCompactBytes sets the log size (in bytes) past which a Put or
// Delete triggers snapshot compaction. Non-positive disables automatic
// compaction (Close still compacts).
func WithCompactBytes(n int64) FileOption {
	return func(f *File) { f.compactAt = n }
}

// File is the durable Store backend: an in-memory map mirrored to an
// append-only record log with periodic snapshot compaction. Reads are
// served from memory; every mutation is appended to the log before it is
// applied, so the on-disk state is never behind the in-memory one.
type File struct {
	dir       string
	compactAt int64

	mu       sync.Mutex
	data     map[string][]byte
	gen      uint64
	log      *os.File
	lock     *os.File
	logBytes int64
	closed   bool
}

// OpenFile opens (creating if needed) a file store rooted at dir and
// replays its snapshot and log into memory.
func OpenFile(dir string, opts ...FileOption) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: opening file store: %w", err)
	}
	f := &File{
		dir:       dir,
		compactAt: DefaultCompactBytes,
		data:      map[string][]byte{},
	}
	for _, opt := range opts {
		opt(f)
	}
	if err := f.acquireLock(); err != nil {
		return nil, err
	}
	if err := f.loadSnapshot(); err != nil {
		f.releaseLock()
		return nil, err
	}
	if err := f.replayLog(); err != nil {
		f.releaseLock()
		return nil, err
	}
	return f, nil
}

// acquireLock takes an exclusive advisory lock on <dir>/lock. The log
// format has exactly one writer by construction (each process holds its
// own file offset and in-memory map), so a second opener would corrupt
// the store; multi-process sharing happens by sequential hand-off of the
// directory, never concurrently.
func (f *File) acquireLock() error {
	lock, err := os.OpenFile(filepath.Join(f.dir, lockFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening lock file: %w", err)
	}
	if err := flockExclusive(lock); err != nil {
		lock.Close()
		return fmt.Errorf("storage: %s is in use by another process: %w", f.dir, err)
	}
	f.lock = lock
	return nil
}

// releaseLock drops the advisory lock (closing the fd releases flock).
func (f *File) releaseLock() {
	if f.lock != nil {
		f.lock.Close()
		f.lock = nil
	}
}

// loadSnapshot replays the snapshot file, if any. A snapshot is written
// atomically (temp + rename), so unlike the log it must parse cleanly.
func (f *File) loadSnapshot() error {
	file, err := os.Open(filepath.Join(f.dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer file.Close()
	_, err = f.replay(bufio.NewReader(file), false)
	if err != nil {
		return fmt.Errorf("storage: snapshot corrupt: %w", err)
	}
	return nil
}

// replayLog replays the append-only log over the snapshot state and
// leaves the log file open for appending. A torn final record — the
// signature of a crash mid-append — is truncated away.
func (f *File) replayLog() error {
	path := filepath.Join(f.dir, logFile)
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening log: %w", err)
	}
	good, err := f.replay(bufio.NewReader(file), true)
	if err != nil {
		file.Close()
		return fmt.Errorf("storage: log corrupt: %w", err)
	}
	if err := file.Truncate(good); err != nil {
		file.Close()
		return fmt.Errorf("storage: truncating torn log tail: %w", err)
	}
	if _, err := file.Seek(good, io.SeekStart); err != nil {
		file.Close()
		return fmt.Errorf("storage: seeking log: %w", err)
	}
	f.log = file
	f.logBytes = good
	return nil
}

// replay applies records from r to the in-memory state and returns the
// byte offset of the last complete record. With tolerateTorn, a record
// cut short by EOF stops the replay cleanly (the offset excludes it);
// otherwise it is an error. Malformed records that are not torn tails
// are errors either way.
func (f *File) replay(r *bufio.Reader, tolerateTorn bool) (int64, error) {
	var offset int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			return offset, nil
		}
		if err != nil {
			if tolerateTorn && isTorn(err) {
				return offset, nil
			}
			return offset, err
		}
		switch rec.op {
		case opPut:
			f.data[rec.key] = rec.value
		case opDelete:
			delete(f.data, rec.key)
		case opGen:
			f.gen = rec.gen
		}
		offset += n
	}
}

// Record ops.
const (
	opPut    = 'p'
	opDelete = 'd'
	opGen    = 'g'
)

// maxRecordLen bounds a record's declared key or value length (64 MiB).
// Headers are parsed from disk before allocation, so an unbounded length
// from a corrupt header would turn into a huge allocation (or an
// overflowed negative make) instead of the clean "log corrupt" error
// recovery is designed to give.
const maxRecordLen = 64 << 20

// record is one decoded log/snapshot entry.
type record struct {
	op    byte
	key   string
	value []byte
	gen   uint64
}

// tornError marks a record cut short by EOF — a crash mid-append.
type tornError struct{ cause error }

func (e *tornError) Error() string { return fmt.Sprintf("torn record: %v", e.cause) }

func isTorn(err error) bool {
	_, ok := err.(*tornError)
	return ok
}

// appendRecord encodes one record. The format is length-prefixed and
// newline-terminated so it is binary-safe for values yet greppable for
// humans:
//
//	p <keylen> <vallen>\n<key><value>\n
//	d <keylen>\n<key>\n
//	g <generation>\n
func appendRecord(buf []byte, rec record) []byte {
	switch rec.op {
	case opPut:
		buf = append(buf, fmt.Sprintf("p %d %d\n", len(rec.key), len(rec.value))...)
		buf = append(buf, rec.key...)
		buf = append(buf, rec.value...)
		buf = append(buf, '\n')
	case opDelete:
		buf = append(buf, fmt.Sprintf("d %d\n", len(rec.key))...)
		buf = append(buf, rec.key...)
		buf = append(buf, '\n')
	case opGen:
		buf = append(buf, fmt.Sprintf("g %d\n", rec.gen)...)
	}
	return buf
}

// readRecord decodes the next record from r, returning it and the number
// of bytes it occupied. io.EOF at a record boundary is returned as-is; an
// EOF inside a record comes back as *tornError.
func readRecord(r *bufio.Reader) (record, int64, error) {
	header, err := r.ReadString('\n')
	if err == io.EOF && header == "" {
		return record{}, 0, io.EOF
	}
	if err != nil {
		return record{}, 0, &tornError{cause: err}
	}
	n := int64(len(header))
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) == 0 {
		return record{}, 0, fmt.Errorf("storage: empty record header")
	}
	rec := record{op: fields[0][0]}
	switch {
	case fields[0] == "p" && len(fields) == 3:
		klen, err1 := strconv.Atoi(fields[1])
		vlen, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil ||
			klen < 0 || vlen < 0 || klen > maxRecordLen || vlen > maxRecordLen {
			return record{}, 0, fmt.Errorf("storage: bad put header %q", header)
		}
		body := make([]byte, klen+vlen+1)
		m, err := io.ReadFull(r, body)
		n += int64(m)
		if err != nil {
			return record{}, 0, &tornError{cause: err}
		}
		if body[klen+vlen] != '\n' {
			return record{}, 0, fmt.Errorf("storage: unterminated put record")
		}
		rec.key = string(body[:klen])
		rec.value = body[klen : klen+vlen]
		return rec, n, nil
	case fields[0] == "d" && len(fields) == 2:
		klen, err := strconv.Atoi(fields[1])
		if err != nil || klen < 0 || klen > maxRecordLen {
			return record{}, 0, fmt.Errorf("storage: bad delete header %q", header)
		}
		body := make([]byte, klen+1)
		m, rerr := io.ReadFull(r, body)
		n += int64(m)
		if rerr != nil {
			return record{}, 0, &tornError{cause: rerr}
		}
		if body[klen] != '\n' {
			return record{}, 0, fmt.Errorf("storage: unterminated delete record")
		}
		rec.key = string(body[:klen])
		return rec, n, nil
	case fields[0] == "g" && len(fields) == 2:
		gen, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return record{}, 0, fmt.Errorf("storage: bad generation header %q", header)
		}
		rec.gen = gen
		return rec, n, nil
	default:
		return record{}, 0, fmt.Errorf("storage: unknown record header %q", header)
	}
}

// appendLocked writes one record to the log and applies it to memory,
// compacting when the log has outgrown the threshold. f.mu must be held.
func (f *File) appendLocked(rec record) error {
	if f.closed {
		return ErrClosed
	}
	if len(rec.key) > maxRecordLen || len(rec.value) > maxRecordLen {
		return fmt.Errorf("storage: record exceeds %d-byte limit", maxRecordLen)
	}
	buf := appendRecord(nil, rec)
	if _, err := f.log.Write(buf); err != nil {
		// Roll the log back to the last record boundary. Without this a
		// short write would sit mid-file, get buried by the next
		// successful append, and turn into a non-torn parse error that
		// bricks the store on reopen.
		if terr := f.log.Truncate(f.logBytes); terr == nil {
			_, _ = f.log.Seek(f.logBytes, io.SeekStart)
		}
		return fmt.Errorf("storage: appending to log: %w", err)
	}
	f.logBytes += int64(len(buf))
	switch rec.op {
	case opPut:
		f.data[rec.key] = append([]byte(nil), rec.value...)
	case opDelete:
		delete(f.data, rec.key)
	case opGen:
		f.gen = rec.gen
	}
	if f.compactAt > 0 && f.logBytes > f.compactAt {
		return f.compactLocked()
	}
	return nil
}

// compactLocked rewrites the full state as a fresh snapshot (temp file,
// fsync, rename) and truncates the log. f.mu must be held.
func (f *File) compactLocked() error {
	tmpPath := filepath.Join(f.dir, snapshotTmp)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("storage: compacting: %w", err)
	}
	w := bufio.NewWriter(tmp)
	keys := make([]string, 0, len(f.data))
	for k := range f.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	buf = appendRecord(buf[:0], record{op: opGen, gen: f.gen})
	if _, err := w.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: compacting: %w", err)
	}
	for _, k := range keys {
		buf = appendRecord(buf[:0], record{op: opPut, key: k, value: f.data[k]})
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("storage: compacting: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: compacting: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: compacting: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: compacting: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(f.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: publishing snapshot: %w", err)
	}
	// The snapshot now carries everything; restart the log. A crash
	// before the truncate lands is harmless: replaying the old log over
	// the new snapshot rewrites the same values.
	if err := f.log.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncating log: %w", err)
	}
	if _, err := f.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: truncating log: %w", err)
	}
	f.logBytes = 0
	return nil
}

// Get implements Store.
func (f *File) Get(key string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	v, ok := f.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Put implements Store.
func (f *File) Put(key string, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(record{op: opPut, key: key, value: value})
}

// Delete implements Store. Deletes of absent keys are not logged.
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, ok := f.data[key]; !ok {
		return nil
	}
	return f.appendLocked(record{op: opDelete, key: key})
}

// Scan implements Store.
func (f *File) Scan(prefix string, fn func(key string, value []byte) error) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	matched := make(map[string][]byte)
	for k, v := range f.data {
		if strings.HasPrefix(k, prefix) {
			matched[k] = append([]byte(nil), v...)
		}
	}
	f.mu.Unlock()
	return scanSorted(matched, fn)
}

// Generation implements Store.
func (f *File) Generation() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.gen, nil
}

// SetGeneration implements Store.
func (f *File) SetGeneration(gen uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(record{op: opGen, gen: gen})
}

// Name implements Store.
func (f *File) Name() string { return "file" }

// Dir returns the directory the store is rooted at.
func (f *File) Dir() string { return f.dir }

// CloseWithoutFlush abandons the store: the log and lock are released
// with no final compaction, leaving the directory exactly as a process
// crash would (which releases the flock the same way, by fd death).
// Crash-recovery tests use this; everything else wants Close.
func (f *File) CloseWithoutFlush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	err := f.log.Close()
	f.releaseLock()
	f.closed = true
	return err
}

// Compact forces a snapshot compaction (tests and operational tooling;
// normal operation compacts automatically past the byte threshold).
func (f *File) Compact() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return f.compactLocked()
}

// Close performs the final flush — a last compaction so the whole state
// is in one fsync'd snapshot — and releases the log file. Closing twice
// is not an error.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	err := f.compactLocked()
	if cerr := f.log.Close(); err == nil {
		err = cerr
	}
	f.releaseLock()
	f.closed = true
	return err
}
