package storage

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
)

// memShard is one lock domain of a Mem store.
type memShard struct {
	mu      sync.RWMutex
	entries map[string][]byte
}

// Mem is the in-memory Store backend: a sharded map, the same shape the
// server's session table always had, now behind the Store interface so
// the serving stack is backend-agnostic. It survives nothing — a process
// restart loses everything — which is exactly the behaviour the file
// backend exists to fix.
type Mem struct {
	shards []*memShard
	gen    atomic.Uint64
	closed atomic.Bool
}

// DefaultMemShards is the shard count NewMem uses.
const DefaultMemShards = 16

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	m := &Mem{shards: make([]*memShard, DefaultMemShards)}
	for i := range m.shards {
		m.shards[i] = &memShard{entries: map[string][]byte{}}
	}
	return m
}

// shard maps a key onto its lock domain.
func (m *Mem) shard(key string) *memShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// Get implements Store.
func (m *Mem) Get(key string) ([]byte, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	sh := m.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.entries[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Put implements Store.
func (m *Mem) Put(key string, value []byte) error {
	if m.closed.Load() {
		return ErrClosed
	}
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.entries[key] = append([]byte(nil), value...)
	return nil
}

// Delete implements Store.
func (m *Mem) Delete(key string) error {
	if m.closed.Load() {
		return ErrClosed
	}
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.entries, key)
	return nil
}

// Scan implements Store. The snapshot of matching keys is taken shard by
// shard, then visited in sorted order.
func (m *Mem) Scan(prefix string, fn func(key string, value []byte) error) error {
	if m.closed.Load() {
		return ErrClosed
	}
	matched := map[string][]byte{}
	for _, sh := range m.shards {
		sh.mu.RLock()
		for k, v := range sh.entries {
			if strings.HasPrefix(k, prefix) {
				matched[k] = append([]byte(nil), v...)
			}
		}
		sh.mu.RUnlock()
	}
	return scanSorted(matched, fn)
}

// Generation implements Store.
func (m *Mem) Generation() (uint64, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	return m.gen.Load(), nil
}

// SetGeneration implements Store.
func (m *Mem) SetGeneration(gen uint64) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.gen.Store(gen)
	return nil
}

// Name implements Store.
func (m *Mem) Name() string { return "mem" }

// Close implements Store.
func (m *Mem) Close() error {
	m.closed.Store(true)
	return nil
}
