//go:build !unix

package storage

import "os"

// flockExclusive is a no-op where flock is unavailable: the lock file
// still marks the directory, but a concurrent second opener is not
// detected. The single-writer contract then rests on the operator.
func flockExclusive(*os.File) error { return nil }
