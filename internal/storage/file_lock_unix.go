//go:build unix

package storage

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f,
// failing when another process already holds it. The lock dies with the
// file descriptor, so a crashed process never leaves the store locked.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
