package storage_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestInstrumentedConformance: the decorator must be behaviorally
// invisible — same contract, same errors, same copy semantics.
func TestInstrumentedConformance(t *testing.T) {
	storagetest.Run(t, storagetest.Factory{
		Open: func(t testing.TB) storage.Store {
			return storage.Instrument(storage.NewMem())
		},
	})
}

// TestInstrumentRecords: operations land in the shared op-latency
// histograms under the backend's name.
func TestInstrumentRecords(t *testing.T) {
	st := storage.Instrument(storage.NewMem())
	defer st.Close()
	get := obs.Default.Histogram("navstorage_op_duration_seconds",
		"Storage operation latency by backend and operation.",
		"backend", "mem", "op", "get")
	put := obs.Default.Histogram("navstorage_op_duration_seconds",
		"Storage operation latency by backend and operation.",
		"backend", "mem", "op", "put")
	gets, puts := get.Count(), put.Count()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("missing"); err == nil {
		t.Fatal("expected ErrNotFound")
	}
	if got := put.Count() - puts; got != 1 {
		t.Errorf("put observations = %d, want 1", got)
	}
	// Errors are timed too: a failing backend must not vanish from the
	// latency picture.
	if got := get.Count() - gets; got != 2 {
		t.Errorf("get observations = %d, want 2", got)
	}
	if st.Name() != "mem" {
		t.Errorf("Name = %q, want mem (pass-through)", st.Name())
	}
}
