package storage_test

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

func TestMemConformance(t *testing.T) {
	storagetest.Run(t, storagetest.Factory{
		Open: func(t testing.TB) storage.Store { return storage.NewMem() },
		// No Reopen: the mem backend is deliberately non-durable.
	})
}

func TestMemName(t *testing.T) {
	if got := storage.NewMem().Name(); got != "mem" {
		t.Errorf("Name = %q, want mem", got)
	}
}
