package storage

import (
	"time"

	"repro/internal/obs"
)

// instrumented decorates a Store, timing every operation into
// navstorage_op_duration_seconds{backend,op}. The histograms are
// resolved once at wrap time, so the per-operation cost is two clock
// reads and one atomic record — nothing on the storage path allocates
// for metrics.
type instrumented struct {
	st                            Store
	get, put, del, scan, gen, set *obs.Histogram
}

// Instrument wraps st so every operation's latency is recorded in the
// default registry under the backend's name. Wrapping the same backend
// twice shares series (registration is get-or-create); Name and the
// error surface pass through untouched.
func Instrument(st Store) Store {
	h := func(op string) *obs.Histogram {
		return obs.Default.Histogram("navstorage_op_duration_seconds",
			"Storage operation latency by backend and operation.",
			"backend", st.Name(), "op", op)
	}
	return &instrumented{
		st:  st,
		get: h("get"), put: h("put"), del: h("delete"),
		scan: h("scan"), gen: h("generation"), set: h("set_generation"),
	}
}

func (i *instrumented) Get(key string) ([]byte, error) {
	start := time.Now()
	v, err := i.st.Get(key)
	i.get.Observe(time.Since(start))
	return v, err
}

func (i *instrumented) Put(key string, value []byte) error {
	start := time.Now()
	err := i.st.Put(key, value)
	i.put.Observe(time.Since(start))
	return err
}

func (i *instrumented) Delete(key string) error {
	start := time.Now()
	err := i.st.Delete(key)
	i.del.Observe(time.Since(start))
	return err
}

func (i *instrumented) Scan(prefix string, fn func(key string, value []byte) error) error {
	start := time.Now()
	err := i.st.Scan(prefix, fn)
	i.scan.Observe(time.Since(start))
	return err
}

func (i *instrumented) Generation() (uint64, error) {
	start := time.Now()
	g, err := i.st.Generation()
	i.gen.Observe(time.Since(start))
	return g, err
}

func (i *instrumented) SetGeneration(gen uint64) error {
	start := time.Now()
	err := i.st.SetGeneration(gen)
	i.set.Observe(time.Since(start))
	return err
}

func (i *instrumented) Name() string { return i.st.Name() }

func (i *instrumented) Close() error { return i.st.Close() }
