// Package storage is the persistence subsystem behind the XLink-aware
// user agent: a small key/value Store interface with pluggable backends.
// Two things live in a store today — visitor sessions (the paper's §2
// context trails, serialized as JSON by internal/server) and site
// snapshots (the separated data documents plus links.xml, exported by
// internal/core) — so that a restart of the agent loses neither the
// navigational artifact nor anyone's position in it.
//
// Backends:
//
//   - Mem: the in-process map the server always had, now behind the
//     interface. Fast, shared by nothing, durable across nothing.
//   - File: an append-only record log with periodic snapshot
//     compaction. Crash-safe: snapshots are written to a temp file and
//     renamed into place, and a torn final log record (a crash mid-
//     append) is detected and discarded on reopen.
//
// Every backend must pass the shared conformance suite in
// internal/storage/storagetest.
package storage

import (
	"errors"
	"sort"
)

// ErrNotFound is returned by Get for keys with no value.
var ErrNotFound = errors.New("storage: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: store is closed")

// Store is a durable (or deliberately non-durable) key/value space with
// an atomically stamped generation counter. Implementations must be safe
// for concurrent use.
//
// The generation is a single uint64 the owner stamps to mark which
// version of the world the stored values belong to — internal/core
// stamps it with the page-cache generation when exporting a site
// snapshot, so a reader can tell whether two stores hold the same woven
// site definition.
type Store interface {
	// Get returns the value stored under key, or ErrNotFound.
	// The returned slice is the caller's to keep: mutating it must not
	// affect the store.
	Get(key string) ([]byte, error)
	// Put stores value under key, replacing any previous value. The
	// store keeps its own copy: the caller may reuse the slice.
	Put(key string, value []byte) error
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key string) error
	// Scan calls fn for every key with the given prefix, in sorted key
	// order, with the same copy semantics as Get. A non-nil error from
	// fn stops the scan and is returned.
	Scan(prefix string, fn func(key string, value []byte) error) error
	// Generation returns the current generation stamp (zero initially).
	Generation() (uint64, error)
	// SetGeneration stamps the store with gen, atomically with respect
	// to concurrent operations, and durably for durable backends.
	SetGeneration(gen uint64) error
	// Name identifies the backend ("mem", "file") for diagnostics such
	// as /healthz.
	Name() string
	// Close flushes and releases the store. Operations after Close
	// return ErrClosed. Closing twice is not an error.
	Close() error
}

// scanSorted delivers a pre-copied snapshot of matching entries to fn in
// sorted key order — the Scan contract both built-in backends share, so
// its ordering and copy semantics cannot drift between them.
func scanSorted(matched map[string][]byte, fn func(key string, value []byte) error) error {
	keys := make([]string, 0, len(matched))
	for k := range matched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := fn(k, matched[k]); err != nil {
			return err
		}
	}
	return nil
}
