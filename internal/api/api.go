// Package api defines the wire contract of the control plane: the JSON
// payloads `/api/v1/...` serves and accepts, shared by the server
// (internal/server) and the typed Go client (client). Version 1 is
// additive-only — fields may be added, never renamed or repurposed; a
// breaking change means /api/v2.
package api

import (
	"time"

	"repro/internal/analytics"
	"repro/internal/navigation"
)

// Version is the API version prefix the server mounts and the client
// speaks.
const Version = "v1"

// BasePath is the URL prefix of every control-plane endpoint.
const BasePath = "/api/" + Version

// Error is the structured error body every non-2xx control-plane
// response carries: {"error": {"status": 404, "message": "..."}}.
type Error struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	// TraceID is the request's W3C trace id when tracing is enabled, so
	// a failed call is joinable to its trace in /api/v1/traces without
	// parsing the Traceparent header.
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorBody is the envelope an Error travels in.
type ErrorBody struct {
	Error Error `json:"error"`
}

// NodeClass is the wire form of one navigational node class.
type NodeClass struct {
	Name      string   `json:"name"`
	Class     string   `json:"class"`
	TitleAttr string   `json:"title_attr,omitempty"`
	Attrs     []string `json:"attrs,omitempty"`
}

// Link is the wire form of one navigational link view.
type Link struct {
	Name string `json:"name"`
	Rel  string `json:"rel"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Family is the wire form of one context-family declaration, its access
// structure carried as a full spec.
type Family struct {
	Name      string                    `json:"name"`
	NodeClass string                    `json:"node_class"`
	GroupBy   string                    `json:"group_by,omitempty"`
	OrderBy   string                    `json:"order_by,omitempty"`
	Where     string                    `json:"where,omitempty"`
	Show      string                    `json:"show,omitempty"`
	Access    *navigation.StructureSpec `json:"access,omitempty"`
	// AccessText is the one-line declaration form of Access — the same
	// text SpecText renders, "" when the structure has no wire form.
	AccessText string `json:"access_text,omitempty"`
	// Contexts lists the family's resolved context instances.
	Contexts []string `json:"contexts,omitempty"`
}

// Model is the GET /api/v1/model payload: the whole navigational aspect
// as a wire artifact.
type Model struct {
	// SpecText is the declaration artifact navigation.SpecText renders
	// — byte-identical to what the E8 change-cost experiment diffs.
	SpecText        string      `json:"spec_text"`
	NodeClasses     []NodeClass `json:"node_classes"`
	Links           []Link      `json:"links,omitempty"`
	Families        []Family    `json:"families"`
	Landmarks       []string    `json:"landmarks,omitempty"`
	CacheGeneration uint64      `json:"cache_generation"`
}

// Context is one resolved context instance in the GET /api/v1/contexts
// listing.
type Context struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	Access  string `json:"access"`
	Entry   string `json:"entry"`
	Members int    `json:"members"`
	HasHub  bool   `json:"has_hub"`
	// MemberIDs lists the member node ids in context order. Additive
	// v1 field: absent from pre-navload servers, so consumers must
	// tolerate it missing.
	MemberIDs []string `json:"member_ids,omitempty"`
}

// Structure is the GET/PUT /api/v1/contexts/{family}/structure payload.
type Structure struct {
	Family string                    `json:"family"`
	Spec   *navigation.StructureSpec `json:"spec"`
	// Text is the one-line declaration form (AccessText).
	Text string `json:"text,omitempty"`
	// Contexts lists the resolved instances the structure serves.
	Contexts []string `json:"contexts,omitempty"`
}

// MutationResult reports what a write endpoint changed. The cache
// generation is the woven-page cache's value after the mutation — a
// rotated generation is what rotates the affected pages' ETags.
type MutationResult struct {
	// Family is set by structure swaps, Document by document patches.
	Family   string `json:"family,omitempty"`
	Document string `json:"document,omitempty"`
	// Contexts lists the resolved instances affected by the mutation.
	Contexts []string `json:"contexts,omitempty"`
	// DroppedPages is how many cached pages the mutation invalidated
	// (-1 when the mutation path does not report a count).
	DroppedPages    int    `json:"dropped_pages"`
	CacheGeneration uint64 `json:"cache_generation"`
}

// SnapshotResult reports a POST /api/v1/snapshot export.
type SnapshotResult struct {
	Store           string `json:"store"`
	Documents       int    `json:"documents"`
	CacheGeneration uint64 `json:"cache_generation"`
}

// AdaptResult reports a forced POST /api/v1/adapt derivation cycle.
type AdaptResult struct {
	DerivedStructures int    `json:"derived_structures"`
	AdaptGeneration   uint64 `json:"adapt_generation"`
	CacheGeneration   uint64 `json:"cache_generation"`
}

// GraphContext is one context's folded traffic in the analytics export.
type GraphContext struct {
	Hops    uint64                 `json:"hops"`
	Visits  map[string]uint64      `json:"visits,omitempty"`
	Entries map[string]uint64      `json:"entries,omitempty"`
	Edges   []analytics.Transition `json:"edges,omitempty"`
}

// Graph is the GET /api/v1/analytics/graph payload: the full transition
// graph the adaptation pipeline derives from, unlike /stats which
// truncates to top-k summaries.
type Graph struct {
	Analytics bool                    `json:"analytics"`
	Hops      uint64                  `json:"hops"`
	Contexts  map[string]GraphContext `json:"contexts,omitempty"`
}

// Event is one traced model mutation — the GET /api/v1/events record.
// It mirrors the server's internal mutation-trace ring on the wire:
// what changed the model, how long the rebuild took, and the
// invalidation blast radius the dependency diff decided on.
type Event struct {
	// Seq numbers mutations monotonically from process start; the
	// server retains a bounded ring of recent events but never
	// renumbers, so gaps reveal dropped history.
	Seq uint64 `json:"seq"`
	// Time is when the mutation completed (RFC 3339).
	Time time.Time `json:"time"`
	// Kind is the mutation entry point: "structure-swap", "document" or
	// "stylesheet".
	Kind string `json:"kind"`
	// Target names what was mutated: comma-joined family names for a
	// structure swap, the document URI for a patch.
	Target string `json:"target,omitempty"`
	// DurationSeconds is how long the mutation's rebuild took.
	DurationSeconds float64 `json:"duration_seconds"`
	// PagesInvalidated is how many cached pages the mutation dropped.
	PagesInvalidated int `json:"pages_invalidated"`
	// Verdict is the dependency diff's conclusion: "full", "local" or
	// "none".
	Verdict string `json:"verdict,omitempty"`
	// CacheGeneration is the woven-page cache generation after the
	// mutation.
	CacheGeneration uint64 `json:"cache_generation"`
}

// EventsResponse is the GET /api/v1/events payload.
type EventsResponse struct {
	// Total is how many mutations have been traced since process start,
	// including events the ring has since dropped.
	Total uint64 `json:"total"`
	// Events holds the retained trace, newest first.
	Events []Event `json:"events"`
}

// TraceSpan is one phase of a request's lifecycle inside a Trace:
// where in the request the phase began and how long it ran, both as
// nanosecond offsets so spans stay exact at cache-hit scale.
type TraceSpan struct {
	// Phase names the lifecycle step from the fixed vocabulary: "admit",
	// "session-lookup", "session-rehydrate", "cache-hit", "cache-join",
	// "cache-miss", "weave", "hop-record", "flush-enqueue", "storage-op",
	// "response-write" or "mutation".
	Phase string `json:"phase"`
	// StartNS is the span's start offset from the request's start.
	StartNS int64 `json:"start_ns"`
	// DurationNS is how long the phase ran.
	DurationNS int64 `json:"duration_ns"`
}

// Trace is one captured request lifecycle — the GET /api/v1/traces
// record: identity (W3C trace context), what was served, how long it
// took in total and phase by phase.
type Trace struct {
	// Seq numbers kept traces monotonically from process start; the ring
	// is bounded but never renumbers.
	Seq uint64 `json:"seq"`
	// Time is when the request finished (RFC 3339).
	Time time.Time `json:"time"`
	// TraceID and SpanID are the request's W3C trace context (32 and 16
	// hex digits); ParentSpanID is set when the caller sent a traceparent
	// header and this request joined its trace.
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Route is the request's route class ("page", "doc", "traversal",
	// "session", "api", ...); Path is the concrete URL path.
	Route string `json:"route"`
	Path  string `json:"path"`
	// Status is the response status code.
	Status int `json:"status"`
	// DurationSeconds is the request's total wall time.
	DurationSeconds float64 `json:"duration_seconds"`
	// Slow marks a trace captured (or also qualifying) as slower than
	// the -trace-slow threshold; Sampled marks one kept by the 1-in-N
	// sampler. A trace can be both.
	Slow    bool `json:"slow"`
	Sampled bool `json:"sampled"`
	// TruncatedSpans counts phases dropped past the per-request span
	// capacity (0 in any normal request).
	TruncatedSpans int `json:"truncated_spans,omitempty"`
	// Spans holds the per-phase breakdown in recording order. Phases are
	// non-overlapping, so their durations sum to at most the total.
	Spans []TraceSpan `json:"spans"`
}

// TracesResponse is the GET /api/v1/traces payload.
type TracesResponse struct {
	// Enabled reports whether the server is tracing at all — false
	// distinguishes "tracing off" from "nothing captured yet".
	Enabled bool `json:"enabled"`
	// Total is how many traces have been kept since process start,
	// including ones the ring has since dropped.
	Total uint64 `json:"total"`
	// Traces holds the retained records, newest first.
	Traces []Trace `json:"traces"`
}
