package cli

import (
	"flag"
	"testing"
)

func TestRegisterAndDefaults(t *testing.T) {
	var f DatasetFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Dataset != "paper" || f.Access != "indexed-guided-tour" {
		t.Errorf("defaults = %+v", f)
	}
	app, err := f.BuildApp()
	if err != nil {
		t.Fatal(err)
	}
	if app.Resolved() == nil {
		t.Error("app not resolved")
	}
}

func TestSyntheticFlags(t *testing.T) {
	var f DatasetFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	args := []string{"-dataset", "synthetic", "-painters", "2", "-paintings", "3", "-movements", "0", "-access", "index"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	store, err := f.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store.InstancesOf("Painting")); got != 6 {
		t.Errorf("paintings = %d, want 6", got)
	}
	access, err := f.BuildAccess()
	if err != nil {
		t.Fatal(err)
	}
	if access.Kind() != "index" {
		t.Errorf("access = %s", access.Kind())
	}
}

func TestFlagErrors(t *testing.T) {
	cases := []DatasetFlags{
		{Dataset: "unknown", Access: "index"},
		{Dataset: "synthetic", Painters: 0, Paintings: 5, Access: "index"},
		{Dataset: "paper", Access: "teleporter"},
	}
	for _, f := range cases {
		if _, err := f.BuildApp(); err == nil {
			t.Errorf("BuildApp(%+v) accepted", f)
		}
	}
}
