// Package cli holds the dataset/model flag handling shared by the
// command-line tools (navweave, navserve, navbench, navgen).
package cli

import (
	"flag"
	"fmt"

	"repro/internal/conceptual"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
)

// DatasetFlags selects the dataset and access structure an app is built
// from.
type DatasetFlags struct {
	// Dataset is "paper" (the figures' museum) or "synthetic".
	Dataset string
	// Painters, Paintings and Movements size a synthetic dataset.
	Painters  int
	Paintings int
	Movements int
	// Seed makes synthetic generation deterministic.
	Seed int64
	// Access names the access structure
	// (index, guided-tour, indexed-guided-tour, menu, circular-*).
	Access string
}

// Register installs the flags on fs.
func (f *DatasetFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dataset, "dataset", "paper", "dataset: paper or synthetic")
	fs.IntVar(&f.Painters, "painters", 5, "synthetic: number of painters")
	fs.IntVar(&f.Paintings, "paintings", 8, "synthetic: paintings per painter")
	fs.IntVar(&f.Movements, "movements", 3, "synthetic: number of movements")
	fs.Int64Var(&f.Seed, "seed", 1, "synthetic: random seed")
	fs.StringVar(&f.Access, "access", "indexed-guided-tour",
		"access structure: index, guided-tour, indexed-guided-tour, menu (or circular-... tours)")
}

// BuildStore constructs the selected dataset.
func (f *DatasetFlags) BuildStore() (*conceptual.Store, error) {
	switch f.Dataset {
	case "paper":
		return museum.PaperStore(), nil
	case "synthetic":
		if f.Painters <= 0 || f.Paintings <= 0 {
			return nil, fmt.Errorf("cli: synthetic dataset needs positive -painters and -paintings")
		}
		return museum.Synthetic(museum.SyntheticSpec{
			Painters:            f.Painters,
			PaintingsPerPainter: f.Paintings,
			Movements:           f.Movements,
			Seed:                f.Seed,
		}), nil
	default:
		return nil, fmt.Errorf("cli: unknown dataset %q (want paper or synthetic)", f.Dataset)
	}
}

// BuildAccess constructs the selected access structure.
func (f *DatasetFlags) BuildAccess() (navigation.AccessStructure, error) {
	return navigation.AccessByKind(f.Access)
}

// BuildApp assembles the woven application for the selected dataset and
// access structure.
func (f *DatasetFlags) BuildApp() (*core.App, error) {
	store, err := f.BuildStore()
	if err != nil {
		return nil, err
	}
	access, err := f.BuildAccess()
	if err != nil {
		return nil, err
	}
	return core.NewApp(store, museum.Model(access))
}
