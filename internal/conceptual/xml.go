package conceptual

import (
	"fmt"

	"repro/internal/xmldom"
)

// ExportInstance renders one instance as a standalone XML document in the
// shape of the paper's Figures 7–8 (picasso.xml, avignon.xml): the class
// name as root element, the id as an attribute, and each attribute as a
// child element — and, crucially, no links. Link structure lives in the
// linkbase, which is the whole point of the separation.
func ExportInstance(s *Store, inst *Instance) *xmldom.Document {
	root := xmldom.NewElement(inst.Class)
	root.SetAttr("id", inst.ID)
	for _, name := range inst.AttrNames() {
		root.AddElement(name).AppendText(inst.Attr(name))
	}
	doc := xmldom.NewDocument(root)
	doc.BaseURI = inst.ID + ".xml"
	return doc
}

// ExportAll exports every instance to its own document, returning a map
// from suggested file name ("<id>.xml") to document.
func ExportAll(s *Store) map[string]*xmldom.Document {
	out := make(map[string]*xmldom.Document, s.Len())
	for _, inst := range s.Instances() {
		out[inst.ID+".xml"] = ExportInstance(s, inst)
	}
	return out
}

// ImportInstance parses a document produced by ExportInstance back into
// the store.
func ImportInstance(s *Store, doc *xmldom.Document) (*Instance, error) {
	root := doc.Root()
	if root == nil {
		return nil, fmt.Errorf("conceptual: import: empty document")
	}
	id := root.AttrValue("id")
	attrs := map[string]string{}
	for _, c := range root.ChildElements() {
		attrs[c.Name.Local] = c.Text()
	}
	return s.Add(root.Name.Local, id, attrs)
}
