// Package conceptual implements the conceptual-model layer of the paper's
// architecture: the application's classes, attributes and relationships,
// independent of both navigation and presentation.
//
// OOHDM (the methodology the paper builds on) designs a web application in
// three models: the conceptual model (this package), the navigational model
// (package navigation — views over these classes), and the abstract
// interface model (package presentation). Keeping the three apart is
// precisely the separation the paper argues for; this package owns only
// "what the domain is", never "how it is traversed or shown".
package conceptual

import (
	"fmt"
	"sort"
	"sync"
)

// AttrType is the value type of a class attribute.
type AttrType int

// Attribute types.
const (
	StringAttr AttrType = iota + 1
	IntAttr
)

// String names the attribute type.
func (t AttrType) String() string {
	switch t {
	case StringAttr:
		return "string"
	case IntAttr:
		return "int"
	default:
		return "unknown"
	}
}

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name     string
	Type     AttrType
	Required bool
}

// Class is a conceptual class: a named set of attribute declarations.
type Class struct {
	Name  string
	Attrs []AttrDef

	attrIndex map[string]int
}

// NewClass declares a class with the given attributes.
func NewClass(name string, attrs ...AttrDef) *Class {
	c := &Class{Name: name, Attrs: attrs, attrIndex: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		c.attrIndex[a.Name] = i
	}
	return c
}

// Attr returns the declaration of the named attribute.
func (c *Class) Attr(name string) (AttrDef, bool) {
	i, ok := c.attrIndex[name]
	if !ok {
		return AttrDef{}, false
	}
	return c.Attrs[i], true
}

// Cardinality constrains how many instances may participate on each side
// of a relationship.
type Cardinality int

// Relationship cardinalities (source-to-target).
const (
	OneToOne Cardinality = iota + 1
	OneToMany
	ManyToOne
	ManyToMany
)

// String names the cardinality.
func (c Cardinality) String() string {
	switch c {
	case OneToOne:
		return "1:1"
	case OneToMany:
		return "1:N"
	case ManyToOne:
		return "N:1"
	case ManyToMany:
		return "N:M"
	default:
		return "unknown"
	}
}

// Relationship declares a named, directed relationship between classes.
type Relationship struct {
	// Name is the forward traversal name (e.g. "paints").
	Name string
	// Source and Target are class names.
	Source string
	Target string
	// Card constrains participation, read source-to-target.
	Card Cardinality
	// Inverse, when non-empty, names the reverse traversal
	// (e.g. "paintedBy").
	Inverse string
}

// Schema is a set of classes and relationships.
type Schema struct {
	classes map[string]*Class
	rels    map[string]*Relationship
	// ordered names for deterministic iteration
	classOrder []string
	relOrder   []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		classes: map[string]*Class{},
		rels:    map[string]*Relationship{},
	}
}

// AddClass registers a class; redefinition is an error.
func (s *Schema) AddClass(c *Class) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("conceptual: class must have a name")
	}
	if _, dup := s.classes[c.Name]; dup {
		return fmt.Errorf("conceptual: class %q already defined", c.Name)
	}
	s.classes[c.Name] = c
	s.classOrder = append(s.classOrder, c.Name)
	return nil
}

// MustAddClass is AddClass that panics, for statically known schemas.
func (s *Schema) MustAddClass(c *Class) {
	if err := s.AddClass(c); err != nil {
		panic(err)
	}
}

// AddRelationship registers a relationship; both end classes must exist.
func (s *Schema) AddRelationship(r *Relationship) error {
	if r == nil || r.Name == "" {
		return fmt.Errorf("conceptual: relationship must have a name")
	}
	if _, dup := s.rels[r.Name]; dup {
		return fmt.Errorf("conceptual: relationship %q already defined", r.Name)
	}
	if _, ok := s.classes[r.Source]; !ok {
		return fmt.Errorf("conceptual: relationship %q: unknown source class %q", r.Name, r.Source)
	}
	if _, ok := s.classes[r.Target]; !ok {
		return fmt.Errorf("conceptual: relationship %q: unknown target class %q", r.Name, r.Target)
	}
	if r.Card == 0 {
		r.Card = ManyToMany
	}
	if r.Inverse != "" {
		if _, dup := s.rels[r.Inverse]; dup {
			return fmt.Errorf("conceptual: inverse name %q collides with existing relationship", r.Inverse)
		}
	}
	s.rels[r.Name] = r
	s.relOrder = append(s.relOrder, r.Name)
	return nil
}

// MustAddRelationship is AddRelationship that panics.
func (s *Schema) MustAddRelationship(r *Relationship) {
	if err := s.AddRelationship(r); err != nil {
		panic(err)
	}
}

// Class returns the named class, or nil.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// Relationship returns the named (forward) relationship, or nil.
func (s *Schema) Relationship(name string) *Relationship { return s.rels[name] }

// Classes returns all classes in declaration order.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.classOrder))
	for _, n := range s.classOrder {
		out = append(out, s.classes[n])
	}
	return out
}

// Relationships returns all relationships in declaration order.
func (s *Schema) Relationships() []*Relationship {
	out := make([]*Relationship, 0, len(s.relOrder))
	for _, n := range s.relOrder {
		out = append(out, s.rels[n])
	}
	return out
}

// Instance is one object of a conceptual class. Attribute reads and
// Store.SetAttr may race (a live content edit against an in-flight
// page weave), so attrs is guarded.
type Instance struct {
	// ID uniquely identifies the instance within a Store.
	ID string
	// Class names the instance's class.
	Class string

	mu    sync.RWMutex
	attrs map[string]string
}

// Attr returns the named attribute value ("" when unset).
func (i *Instance) Attr(name string) string {
	i.mu.RLock()
	defer i.mu.RUnlock()
	return i.attrs[name]
}

// AttrOK returns the named attribute value and whether it is set.
func (i *Instance) AttrOK(name string) (string, bool) {
	i.mu.RLock()
	defer i.mu.RUnlock()
	v, ok := i.attrs[name]
	return v, ok
}

// AttrNames returns the set attribute names, sorted.
func (i *Instance) AttrNames() []string {
	i.mu.RLock()
	defer i.mu.RUnlock()
	out := make([]string, 0, len(i.attrs))
	for k := range i.attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// setAttr stores one attribute under the write lock (Store.SetAttr's
// already-validated half).
func (i *Instance) setAttr(name, value string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.attrs[name] = value
}

// String renders the instance for diagnostics.
func (i *Instance) String() string {
	return fmt.Sprintf("%s(%s)", i.Class, i.ID)
}
