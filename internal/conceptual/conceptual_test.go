package conceptual

import (
	"strings"
	"testing"
)

// museumSchema builds the paper's domain: painters, paintings, movements.
func museumSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddClass(NewClass("Painter",
		AttrDef{Name: "name", Type: StringAttr, Required: true},
		AttrDef{Name: "born", Type: IntAttr},
	))
	s.MustAddClass(NewClass("Painting",
		AttrDef{Name: "title", Type: StringAttr, Required: true},
		AttrDef{Name: "year", Type: IntAttr},
		AttrDef{Name: "technique", Type: StringAttr},
	))
	s.MustAddClass(NewClass("Movement",
		AttrDef{Name: "name", Type: StringAttr, Required: true},
	))
	s.MustAddRelationship(&Relationship{
		Name: "paints", Source: "Painter", Target: "Painting",
		Card: OneToMany, Inverse: "paintedBy",
	})
	s.MustAddRelationship(&Relationship{
		Name: "includes", Source: "Movement", Target: "Painting",
		Card: ManyToMany, Inverse: "belongsTo",
	})
	return s
}

func museumStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore(museumSchema(t))
	st.MustAdd("Painter", "picasso", map[string]string{"name": "Pablo Picasso", "born": "1881"})
	st.MustAdd("Painting", "guitar", map[string]string{"title": "Guitar", "year": "1913"})
	st.MustAdd("Painting", "guernica", map[string]string{"title": "Guernica", "year": "1937"})
	st.MustAdd("Painting", "avignon", map[string]string{"title": "Les Demoiselles d'Avignon", "year": "1907"})
	st.MustAdd("Movement", "cubism", map[string]string{"name": "Cubism"})
	st.MustLink("paints", "picasso", "guitar")
	st.MustLink("paints", "picasso", "guernica")
	st.MustLink("paints", "picasso", "avignon")
	st.MustLink("includes", "cubism", "guitar")
	st.MustLink("includes", "cubism", "avignon")
	return st
}

func TestSchemaDefinition(t *testing.T) {
	s := museumSchema(t)
	if got := len(s.Classes()); got != 3 {
		t.Errorf("classes = %d, want 3", got)
	}
	if got := len(s.Relationships()); got != 2 {
		t.Errorf("relationships = %d, want 2", got)
	}
	painter := s.Class("Painter")
	if painter == nil {
		t.Fatal("Painter class missing")
	}
	if def, ok := painter.Attr("name"); !ok || !def.Required {
		t.Errorf("Painter.name = %+v, %v", def, ok)
	}
	if _, ok := painter.Attr("ghost"); ok {
		t.Error("unknown attribute reported present")
	}
	if s.Relationship("paints").Card != OneToMany {
		t.Errorf("paints cardinality = %v", s.Relationship("paints").Card)
	}
}

func TestSchemaErrors(t *testing.T) {
	s := NewSchema()
	if err := s.AddClass(NewClass("")); err == nil {
		t.Error("empty class name accepted")
	}
	s.MustAddClass(NewClass("A"))
	if err := s.AddClass(NewClass("A")); err == nil {
		t.Error("duplicate class accepted")
	}
	if err := s.AddRelationship(&Relationship{Name: "r", Source: "A", Target: "Nope"}); err == nil {
		t.Error("unknown target class accepted")
	}
	if err := s.AddRelationship(&Relationship{Name: "r", Source: "Nope", Target: "A"}); err == nil {
		t.Error("unknown source class accepted")
	}
	if err := s.AddRelationship(&Relationship{Name: "", Source: "A", Target: "A"}); err == nil {
		t.Error("empty relationship name accepted")
	}
	s.MustAddRelationship(&Relationship{Name: "r", Source: "A", Target: "A"})
	if err := s.AddRelationship(&Relationship{Name: "r", Source: "A", Target: "A"}); err == nil {
		t.Error("duplicate relationship accepted")
	}
	if err := s.AddRelationship(&Relationship{Name: "r2", Source: "A", Target: "A", Inverse: "r"}); err == nil {
		t.Error("inverse colliding with existing relationship accepted")
	}
	// Default cardinality is N:M.
	s.MustAddRelationship(&Relationship{Name: "r3", Source: "A", Target: "A"})
	if s.Relationship("r3").Card != ManyToMany {
		t.Errorf("default cardinality = %v", s.Relationship("r3").Card)
	}
}

func TestStoreAddAndQuery(t *testing.T) {
	st := museumStore(t)
	if st.Len() != 5 {
		t.Errorf("Len = %d, want 5", st.Len())
	}
	picasso := st.Get("picasso")
	if picasso == nil || picasso.Attr("name") != "Pablo Picasso" {
		t.Fatalf("picasso = %v", picasso)
	}
	if got := picasso.String(); !strings.Contains(got, "picasso") {
		t.Errorf("String = %q", got)
	}
	paintings := st.InstancesOf("Painting")
	if len(paintings) != 3 {
		t.Fatalf("paintings = %d", len(paintings))
	}
	// Insertion order is preserved.
	if paintings[0].ID != "guitar" || paintings[2].ID != "avignon" {
		t.Errorf("order = %v", paintings)
	}
	if v, ok := picasso.AttrOK("born"); !ok || v != "1881" {
		t.Errorf("born = %q, %v", v, ok)
	}
	if _, ok := picasso.AttrOK("died"); ok {
		t.Error("unset attribute reported present")
	}
	names := picasso.AttrNames()
	if len(names) != 2 || names[0] != "born" {
		t.Errorf("AttrNames = %v (want sorted)", names)
	}
}

func TestStoreAddErrors(t *testing.T) {
	st := NewStore(museumSchema(t))
	cases := []struct {
		class, id string
		attrs     map[string]string
	}{
		{"Ghost", "g1", nil},                                            // unknown class
		{"Painter", "", map[string]string{"name": "X"}},                 // missing id
		{"Painter", "p1", map[string]string{"ghost": "X"}},              // unknown attribute
		{"Painter", "p1", map[string]string{"name": "X", "born": "xx"}}, // bad int
		{"Painter", "p1", nil},                                          // missing required attr
	}
	for _, c := range cases {
		if _, err := st.Add(c.class, c.id, c.attrs); err == nil {
			t.Errorf("Add(%q,%q,%v) accepted", c.class, c.id, c.attrs)
		}
	}
	st.MustAdd("Painter", "p1", map[string]string{"name": "X"})
	if _, err := st.Add("Painter", "p1", map[string]string{"name": "Y"}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestRelationshipTraversal(t *testing.T) {
	st := museumStore(t)
	works := st.Related("picasso", "paints")
	if len(works) != 3 {
		t.Fatalf("picasso paints %d, want 3", len(works))
	}
	if works[0].ID != "guitar" || works[1].ID != "guernica" || works[2].ID != "avignon" {
		t.Errorf("link order = %v", works)
	}
	back := st.RelatedReverse("guitar", "paints")
	if len(back) != 1 || back[0].ID != "picasso" {
		t.Errorf("guitar paintedBy = %v", back)
	}
	// Traverse by inverse name.
	inv, err := st.Traverse("guitar", "paintedBy")
	if err != nil || len(inv) != 1 || inv[0].ID != "picasso" {
		t.Errorf("Traverse(paintedBy) = %v, %v", inv, err)
	}
	fwd, err := st.Traverse("cubism", "includes")
	if err != nil || len(fwd) != 2 {
		t.Errorf("Traverse(includes) = %v, %v", fwd, err)
	}
	if _, err := st.Traverse("guitar", "ghostRel"); err == nil {
		t.Error("unknown relationship name accepted")
	}
	if st.LinkCount("paints") != 3 {
		t.Errorf("LinkCount = %d", st.LinkCount("paints"))
	}
}

func TestLinkValidation(t *testing.T) {
	st := museumStore(t)
	cases := []struct {
		rel, from, to string
	}{
		{"ghost", "picasso", "guitar"},   // unknown rel
		{"paints", "nobody", "guitar"},   // unknown source
		{"paints", "picasso", "nothing"}, // unknown target
		{"paints", "guitar", "guernica"}, // wrong source class
		{"paints", "picasso", "cubism"},  // wrong target class
		{"paints", "picasso", "guitar"},  // duplicate link
	}
	for _, c := range cases {
		if err := st.Link(c.rel, c.from, c.to); err == nil {
			t.Errorf("Link(%q,%q,%q) accepted", c.rel, c.from, c.to)
		}
	}
}

func TestCardinalityEnforcement(t *testing.T) {
	st := museumStore(t)
	// paints is 1:N — a painting cannot have two painters.
	st.MustAdd("Painter", "dali", map[string]string{"name": "Salvador Dali"})
	if err := st.Link("paints", "dali", "guitar"); err == nil {
		t.Error("1:N violation accepted (second painter for guitar)")
	}
	// N:M allows sharing.
	st.MustAdd("Movement", "surrealism", map[string]string{"name": "Surrealism"})
	if err := st.Link("includes", "surrealism", "guitar"); err != nil {
		t.Errorf("N:M share rejected: %v", err)
	}

	// 1:1 restricts both sides.
	s := NewSchema()
	s.MustAddClass(NewClass("A"))
	s.MustAddClass(NewClass("B"))
	s.MustAddRelationship(&Relationship{Name: "pairs", Source: "A", Target: "B", Card: OneToOne})
	one := NewStore(s)
	one.MustAdd("A", "a1", nil)
	one.MustAdd("A", "a2", nil)
	one.MustAdd("B", "b1", nil)
	one.MustAdd("B", "b2", nil)
	one.MustLink("pairs", "a1", "b1")
	if err := one.Link("pairs", "a1", "b2"); err == nil {
		t.Error("1:1 violation accepted (a1 to second target)")
	}
	if err := one.Link("pairs", "a2", "b1"); err == nil {
		t.Error("1:1 violation accepted (b1 from second source)")
	}
	// N:1: a source may link once.
	s2 := NewSchema()
	s2.MustAddClass(NewClass("A"))
	s2.MustAddClass(NewClass("B"))
	s2.MustAddRelationship(&Relationship{Name: "into", Source: "A", Target: "B", Card: ManyToOne})
	m1 := NewStore(s2)
	m1.MustAdd("A", "a1", nil)
	m1.MustAdd("B", "b1", nil)
	m1.MustAdd("B", "b2", nil)
	m1.MustLink("into", "a1", "b1")
	if err := m1.Link("into", "a1", "b2"); err == nil {
		t.Error("N:1 violation accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	st := museumStore(t)
	doc := ExportInstance(st, st.Get("picasso"))
	out := doc.String()
	// Shape of the paper's Figure 7: class root, id attr, attr children.
	if !strings.Contains(out, `<Painter id="picasso">`) {
		t.Errorf("export shape wrong: %s", out)
	}
	if !strings.Contains(out, "<name>Pablo Picasso</name>") {
		t.Errorf("attribute element missing: %s", out)
	}
	if strings.Contains(out, "guitar") {
		t.Errorf("export leaked link structure: %s", out)
	}

	// Round trip into a fresh store.
	st2 := NewStore(museumSchema(t))
	inst, err := ImportInstance(st2, doc)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID != "picasso" || inst.Attr("name") != "Pablo Picasso" || inst.Attr("born") != "1881" {
		t.Errorf("imported = %+v", inst)
	}
}

func TestExportAll(t *testing.T) {
	st := museumStore(t)
	docs := ExportAll(st)
	if len(docs) != 5 {
		t.Fatalf("exported %d docs, want 5", len(docs))
	}
	if _, ok := docs["guitar.xml"]; !ok {
		t.Error("guitar.xml missing")
	}
	if docs["guitar.xml"].BaseURI != "guitar.xml" {
		t.Errorf("BaseURI = %q", docs["guitar.xml"].BaseURI)
	}
}

func TestEnumStrings(t *testing.T) {
	if StringAttr.String() != "string" || IntAttr.String() != "int" || AttrType(0).String() != "unknown" {
		t.Error("AttrType.String values wrong")
	}
	cards := map[Cardinality]string{OneToOne: "1:1", OneToMany: "1:N", ManyToOne: "N:1", ManyToMany: "N:M", Cardinality(0): "unknown"}
	for c, want := range cards {
		if c.String() != want {
			t.Errorf("Cardinality(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
