package conceptual

import (
	"fmt"
	"strconv"
)

// Store holds the instances and relationship links of one application,
// validated against a Schema. Iteration orders are deterministic
// (insertion order), which keeps woven sites and experiment output stable.
type Store struct {
	schema *Schema

	instances map[string]*Instance
	order     []string

	// links[rel] is the ordered list of (from, to) instance-ID pairs.
	links map[string][]linkPair
}

type linkPair struct{ from, to string }

// NewStore returns an empty store over the given schema.
func NewStore(schema *Schema) *Store {
	return &Store{
		schema:    schema,
		instances: map[string]*Instance{},
		links:     map[string][]linkPair{},
	}
}

// Schema returns the store's schema.
func (s *Store) Schema() *Schema { return s.schema }

// Add creates an instance of the named class, validating the attributes
// against the class declaration.
func (s *Store) Add(class, id string, attrs map[string]string) (*Instance, error) {
	c := s.schema.Class(class)
	if c == nil {
		return nil, fmt.Errorf("conceptual: unknown class %q", class)
	}
	if id == "" {
		return nil, fmt.Errorf("conceptual: instance of %q must have an id", class)
	}
	if _, dup := s.instances[id]; dup {
		return nil, fmt.Errorf("conceptual: duplicate instance id %q", id)
	}
	inst := &Instance{ID: id, Class: class, attrs: map[string]string{}}
	for k, v := range attrs {
		def, ok := c.Attr(k)
		if !ok {
			return nil, fmt.Errorf("conceptual: class %q has no attribute %q", class, k)
		}
		if def.Type == IntAttr {
			if _, err := strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("conceptual: %s.%s: %q is not an integer", class, k, v)
			}
		}
		inst.attrs[k] = v
	}
	for _, def := range c.Attrs {
		if def.Required {
			if _, ok := inst.attrs[def.Name]; !ok {
				return nil, fmt.Errorf("conceptual: %s(%s): required attribute %q missing", class, id, def.Name)
			}
		}
	}
	s.instances[id] = inst
	s.order = append(s.order, id)
	return inst, nil
}

// SetAttr updates one attribute of an existing instance, validated
// against the class declaration — the minimal content edit (a curator
// fixing one caption) that core.InvalidateDocument turns into a narrow
// cache invalidation. Required attributes cannot be cleared to "".
func (s *Store) SetAttr(id, name, value string) error {
	inst := s.instances[id]
	if inst == nil {
		return fmt.Errorf("conceptual: unknown instance %q", id)
	}
	if err := s.validateAttr(inst, name, value); err != nil {
		return err
	}
	inst.setAttr(name, value)
	return nil
}

// SetAttrs updates several attributes of one instance, validating the
// whole batch against the class declaration before applying any of it —
// the control plane's validate-then-mutate contract: one bad attribute
// in a PATCH leaves the instance exactly as it was.
func (s *Store) SetAttrs(id string, set map[string]string) error {
	if len(set) == 0 {
		return fmt.Errorf("conceptual: no attributes to set on %q", id)
	}
	inst := s.instances[id]
	if inst == nil {
		return fmt.Errorf("conceptual: unknown instance %q", id)
	}
	for name, value := range set {
		if err := s.validateAttr(inst, name, value); err != nil {
			return err
		}
	}
	for name, value := range set {
		inst.setAttr(name, value)
	}
	return nil
}

// validateAttr checks one attribute update against the instance's class
// declaration without applying it.
func (s *Store) validateAttr(inst *Instance, name, value string) error {
	c := s.schema.Class(inst.Class)
	def, ok := c.Attr(name)
	if !ok {
		return fmt.Errorf("conceptual: class %q has no attribute %q", inst.Class, name)
	}
	if def.Type == IntAttr {
		if _, err := strconv.Atoi(value); err != nil {
			return fmt.Errorf("conceptual: %s.%s: %q is not an integer", inst.Class, name, value)
		}
	}
	if def.Required && value == "" {
		return fmt.Errorf("conceptual: %s(%s): required attribute %q cannot be cleared", inst.Class, inst.ID, name)
	}
	return nil
}

// MustAdd is Add that panics, for fixtures.
func (s *Store) MustAdd(class, id string, attrs map[string]string) *Instance {
	inst, err := s.Add(class, id, attrs)
	if err != nil {
		panic(err)
	}
	return inst
}

// Get returns the instance with the given ID, or nil.
func (s *Store) Get(id string) *Instance { return s.instances[id] }

// Len returns the number of instances.
func (s *Store) Len() int { return len(s.order) }

// Instances returns all instances in insertion order.
func (s *Store) Instances() []*Instance {
	out := make([]*Instance, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.instances[id])
	}
	return out
}

// InstancesOf returns the instances of one class, in insertion order.
func (s *Store) InstancesOf(class string) []*Instance {
	var out []*Instance
	for _, id := range s.order {
		if inst := s.instances[id]; inst.Class == class {
			out = append(out, inst)
		}
	}
	return out
}

// Link records that rel holds from instance fromID to instance toID,
// validating end classes and cardinality.
func (s *Store) Link(rel, fromID, toID string) error {
	r := s.schema.Relationship(rel)
	if r == nil {
		return fmt.Errorf("conceptual: unknown relationship %q", rel)
	}
	from := s.instances[fromID]
	if from == nil {
		return fmt.Errorf("conceptual: %s: unknown source instance %q", rel, fromID)
	}
	to := s.instances[toID]
	if to == nil {
		return fmt.Errorf("conceptual: %s: unknown target instance %q", rel, toID)
	}
	if from.Class != r.Source {
		return fmt.Errorf("conceptual: %s: source %s is %q, want %q", rel, fromID, from.Class, r.Source)
	}
	if to.Class != r.Target {
		return fmt.Errorf("conceptual: %s: target %s is %q, want %q", rel, toID, to.Class, r.Target)
	}
	for _, p := range s.links[rel] {
		if p.from == fromID && p.to == toID {
			return fmt.Errorf("conceptual: %s: duplicate link %s -> %s", rel, fromID, toID)
		}
	}
	// Cardinality: OneToMany/OneToOne restrict the target to one source;
	// ManyToOne/OneToOne restrict the source to one target.
	if r.Card == OneToMany || r.Card == OneToOne {
		for _, p := range s.links[rel] {
			if p.to == toID {
				return fmt.Errorf("conceptual: %s (%s): target %s already linked from %s", rel, r.Card, toID, p.from)
			}
		}
	}
	if r.Card == ManyToOne || r.Card == OneToOne {
		for _, p := range s.links[rel] {
			if p.from == fromID {
				return fmt.Errorf("conceptual: %s (%s): source %s already linked to %s", rel, r.Card, fromID, p.to)
			}
		}
	}
	s.links[rel] = append(s.links[rel], linkPair{from: fromID, to: toID})
	return nil
}

// MustLink is Link that panics, for fixtures.
func (s *Store) MustLink(rel, fromID, toID string) {
	if err := s.Link(rel, fromID, toID); err != nil {
		panic(err)
	}
}

// Related returns the targets related to fromID via rel, in link order.
func (s *Store) Related(fromID, rel string) []*Instance {
	var out []*Instance
	for _, p := range s.links[rel] {
		if p.from == fromID {
			out = append(out, s.instances[p.to])
		}
	}
	return out
}

// RelatedReverse returns the sources whose rel points at toID. When the
// schema declares an inverse name for rel, traversing by that inverse name
// is equivalent.
func (s *Store) RelatedReverse(toID, rel string) []*Instance {
	var out []*Instance
	for _, p := range s.links[rel] {
		if p.to == toID {
			out = append(out, s.instances[p.from])
		}
	}
	return out
}

// Traverse follows a relationship by name: a forward name traverses
// source-to-target, a declared inverse name traverses target-to-source.
func (s *Store) Traverse(fromID, relName string) ([]*Instance, error) {
	if s.schema.Relationship(relName) != nil {
		return s.Related(fromID, relName), nil
	}
	for _, r := range s.schema.Relationships() {
		if r.Inverse == relName {
			return s.RelatedReverse(fromID, r.Name), nil
		}
	}
	return nil, fmt.Errorf("conceptual: no relationship or inverse named %q", relName)
}

// LinkCount returns the number of links recorded for rel.
func (s *Store) LinkCount(rel string) int { return len(s.links[rel]) }
