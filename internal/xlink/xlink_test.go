package xlink

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/xmldom"
)

// linksSrc mirrors the paper's Figure 9 links.xml: one extended link
// connecting the Picasso data files with explicit traversal arcs.
const linksSrc = `<links xmlns:xlink="http://www.w3.org/1999/xlink">
  <paintingTour xlink:type="extended" xlink:title="Paintings by Picasso">
    <loc xlink:type="locator" xlink:href="picasso.xml" xlink:label="painter" xlink:title="Pablo Picasso"/>
    <loc xlink:type="locator" xlink:href="guitar.xml" xlink:label="painting" xlink:title="Guitar"/>
    <loc xlink:type="locator" xlink:href="guernica.xml" xlink:label="painting" xlink:title="Guernica"/>
    <loc xlink:type="locator" xlink:href="avignon.xml" xlink:label="painting" xlink:title="Les Demoiselles d'Avignon"/>
    <go xlink:type="arc" xlink:from="painter" xlink:to="painting" xlink:arcrole="urn:nav:index" xlink:show="replace" xlink:actuate="onRequest"/>
  </paintingTour>
</links>`

func parseDoc(t *testing.T, src string) *xmldom.Document {
	t.Helper()
	d, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFindExtendedLink(t *testing.T) {
	ls, err := FindLinks(parseDoc(t, linksSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Extendeds) != 1 {
		t.Fatalf("extended links = %d, want 1", len(ls.Extendeds))
	}
	x := ls.Extendeds[0]
	if x.Title != "Paintings by Picasso" {
		t.Errorf("title = %q", x.Title)
	}
	if len(x.Locators) != 4 {
		t.Errorf("locators = %d, want 4", len(x.Locators))
	}
	if len(x.Resources) != 0 {
		t.Errorf("resources = %d, want 0", len(x.Resources))
	}
}

func TestArcExpansionCrossProduct(t *testing.T) {
	ls, err := FindLinks(parseDoc(t, linksSrc))
	if err != nil {
		t.Fatal(err)
	}
	arcs := ls.Extendeds[0].Arcs()
	// one painter x three paintings = 3 arcs
	if len(arcs) != 3 {
		t.Fatalf("arcs = %d, want 3", len(arcs))
	}
	for _, a := range arcs {
		if a.From.Href != "picasso.xml" {
			t.Errorf("arc from = %s, want picasso.xml", a.From.Href)
		}
		if a.Arcrole != "urn:nav:index" {
			t.Errorf("arcrole = %q", a.Arcrole)
		}
		if a.Show != ShowReplace || a.Actuate != ActuateOnRequest {
			t.Errorf("behaviour = %s/%s", a.Show, a.Actuate)
		}
	}
	tos := map[string]bool{}
	for _, a := range arcs {
		tos[a.To.Href] = true
	}
	for _, want := range []string{"guitar.xml", "guernica.xml", "avignon.xml"} {
		if !tos[want] {
			t.Errorf("missing arc to %s", want)
		}
	}
}

func TestArcOmittedFromTo(t *testing.T) {
	const src = `<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
	  <a xlink:type="locator" xlink:href="a.xml" xlink:label="x"/>
	  <b xlink:type="locator" xlink:href="b.xml" xlink:label="y"/>
	  <arc xlink:type="arc"/>
	</l>`
	ls, err := FindLinks(parseDoc(t, src))
	if err != nil {
		t.Fatal(err)
	}
	arcs := ls.Extendeds[0].Arcs()
	if len(arcs) != 4 { // 2 endpoints x 2 endpoints
		t.Errorf("arcs = %d, want 4 (full cross product)", len(arcs))
	}
}

func TestSharedLabelMultipliesArcs(t *testing.T) {
	const src = `<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
	  <a xlink:type="locator" xlink:href="a.xml" xlink:label="many"/>
	  <b xlink:type="locator" xlink:href="b.xml" xlink:label="many"/>
	  <c xlink:type="locator" xlink:href="c.xml" xlink:label="one"/>
	  <arc xlink:type="arc" xlink:from="one" xlink:to="many"/>
	</l>`
	ls, err := FindLinks(parseDoc(t, src))
	if err != nil {
		t.Fatal(err)
	}
	arcs := ls.Extendeds[0].Arcs()
	if len(arcs) != 2 {
		t.Errorf("arcs = %d, want 2", len(arcs))
	}
}

func TestLocalResources(t *testing.T) {
	const src = `<hub xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
	  <title xlink:type="title">Hub link</title>
	  <here xlink:type="resource" xlink:label="home" xlink:title="Home">Start here</here>
	  <there xlink:type="locator" xlink:href="far.xml" xlink:label="away"/>
	  <out xlink:type="arc" xlink:from="home" xlink:to="away"/>
	</hub>`
	ls, err := FindLinks(parseDoc(t, src))
	if err != nil {
		t.Fatal(err)
	}
	x := ls.Extendeds[0]
	if len(x.Resources) != 1 || x.Resources[0].Label != "home" {
		t.Fatalf("resources = %v", x.Resources)
	}
	if len(x.Titles) != 1 || x.Titles[0] != "Hub link" {
		t.Errorf("titles = %v", x.Titles)
	}
	arcs := x.Arcs()
	if len(arcs) != 1 {
		t.Fatalf("arcs = %d", len(arcs))
	}
	if arcs[0].From.Remote() {
		t.Error("from endpoint should be local")
	}
	if !arcs[0].To.Remote() {
		t.Error("to endpoint should be remote")
	}
	if got := arcs[0].From.Resource.Element.Text(); got != "Start here" {
		t.Errorf("local resource text = %q", got)
	}
}

func TestSimpleLinks(t *testing.T) {
	const src = `<page xmlns:xlink="http://www.w3.org/1999/xlink">
	  <a xlink:type="simple" xlink:href="next.xml" xlink:title="Next" xlink:show="replace">next</a>
	  <img xlink:href="pic.png" xlink:show="embed" xlink:actuate="onLoad"/>
	</page>`
	ls, err := FindLinks(parseDoc(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Simples) != 2 {
		t.Fatalf("simple links = %d, want 2 (explicit + href shorthand)", len(ls.Simples))
	}
	if ls.Simples[0].Title != "Next" || ls.Simples[0].Show != ShowReplace {
		t.Errorf("first simple = %+v", ls.Simples[0])
	}
	if ls.Simples[1].Show != ShowEmbed || ls.Simples[1].Actuate != ActuateOnLoad {
		t.Errorf("second simple = %+v", ls.Simples[1])
	}
}

func TestMalformedLinks(t *testing.T) {
	bad := []string{
		// simple link without href
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="simple"/>`,
		// invalid show value
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="simple" xlink:href="x" xlink:show="explode"/>`,
		// invalid actuate value
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="simple" xlink:href="x" xlink:actuate="never"/>`,
		// invalid type value
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="hyper"/>`,
		// locator without href
		`<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended"><a xlink:type="locator" xlink:label="x"/></l>`,
		// arc to undeclared label
		`<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
		   <a xlink:type="locator" xlink:href="a.xml" xlink:label="x"/>
		   <arc xlink:type="arc" xlink:from="x" xlink:to="ghost"/></l>`,
		// invalid show on arc
		`<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
		   <a xlink:type="locator" xlink:href="a.xml" xlink:label="x"/>
		   <arc xlink:type="arc" xlink:from="x" xlink:to="x" xlink:show="bang"/></l>`,
	}
	for _, src := range bad {
		if _, err := FindLinks(parseDoc(t, src)); err == nil {
			t.Errorf("FindLinks accepted malformed link:\n%s", src)
		}
	}
}

func TestFindLinksNilDocument(t *testing.T) {
	if _, err := FindLinks(nil); err == nil {
		t.Error("nil document should error")
	}
}

func TestSplitRef(t *testing.T) {
	tests := []struct {
		href string
		want Ref
	}{
		{"picasso.xml", Ref{URI: "picasso.xml"}},
		{"picasso.xml#guitar", Ref{URI: "picasso.xml", Fragment: "guitar"}},
		{"#guitar", Ref{URI: "", Fragment: "guitar"}},
		{"doc.xml#xpointer(//painting[1])", Ref{URI: "doc.xml", Fragment: "xpointer(//painting[1])"}},
	}
	for _, tt := range tests {
		if got := SplitRef(tt.href); got != tt.want {
			t.Errorf("SplitRef(%q) = %+v, want %+v", tt.href, got, tt.want)
		}
		if got := tt.want.String(); got != tt.href {
			t.Errorf("Ref(%+v).String() = %q, want %q", tt.want, got, tt.href)
		}
	}
}

func newTestRepo(t *testing.T) MapRepository {
	t.Helper()
	return MapRepository{
		"picasso.xml": parseDoc(t, `<painter id="picasso"><name>Pablo Picasso</name></painter>`),
		"guitar.xml":  parseDoc(t, `<painting id="guitar"><title>Guitar</title></painting>`),
		"guernica.xml": parseDoc(t,
			`<painting id="guernica"><title>Guernica</title></painting>`),
		"avignon.xml": parseDoc(t,
			`<painting id="avignon"><title>Les Demoiselles d'Avignon</title></painting>`),
	}
}

func TestLinkbaseAggregation(t *testing.T) {
	lb := NewLinkbase()
	if err := lb.AddDocument(parseDoc(t, linksSrc)); err != nil {
		t.Fatal(err)
	}
	st := lb.Stats()
	if st.Extended != 1 || st.Arcs != 3 || st.Documents != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := len(lb.ArcsFromURI("picasso.xml")); got != 3 {
		t.Errorf("ArcsFromURI(picasso.xml) = %d, want 3", got)
	}
	if got := len(lb.ArcsFromURI("guitar.xml")); got != 0 {
		t.Errorf("ArcsFromURI(guitar.xml) = %d, want 0", got)
	}
	if got := len(lb.ArcsByRole("urn:nav:index")); got != 3 {
		t.Errorf("ArcsByRole = %d, want 3", got)
	}
	if got := len(lb.ArcsFromRef(Ref{URI: "picasso.xml"})); got != 3 {
		t.Errorf("ArcsFromRef = %d, want 3", got)
	}
}

func TestResolveRef(t *testing.T) {
	repo := newTestRepo(t)
	// Whole document.
	nodes, err := ResolveRef(repo, "guitar.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Type() != xmldom.DocumentNode {
		t.Errorf("whole-doc ref = %v", nodes)
	}
	// Shorthand fragment.
	nodes, err = ResolveRef(repo, "guitar.xml#guitar")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].(*xmldom.Element).Name.Local != "painting" {
		t.Errorf("fragment ref = %v", nodes)
	}
	// XPointer fragment.
	nodes, err = ResolveRef(repo, "picasso.xml#xpointer(//name)")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "Pablo Picasso" {
		t.Errorf("xpointer ref = %v", nodes)
	}
	// Unknown document.
	if _, err := ResolveRef(repo, "nowhere.xml"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown doc err = %v", err)
	}
	// Bad pointer syntax.
	if _, err := ResolveRef(repo, "guitar.xml#bad pointer("); err == nil {
		t.Error("bad pointer should error")
	}
}

func TestArcsFromNode(t *testing.T) {
	repo := newTestRepo(t)
	lb := NewLinkbase()
	// Link the painter element (via fragment) to paintings.
	const src = `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <a xlink:type="locator" xlink:href="picasso.xml#picasso" xlink:label="p"/>
	    <b xlink:type="locator" xlink:href="guitar.xml#guitar" xlink:label="w"/>
	    <arc xlink:type="arc" xlink:from="p" xlink:to="w"/>
	  </l>
	</links>`
	if err := lb.AddDocument(parseDoc(t, src)); err != nil {
		t.Fatal(err)
	}
	painterDoc, _ := repo.Get("picasso.xml")
	painter := painterDoc.Root()
	arcs, err := lb.ArcsFromNode(repo, painter)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 1 {
		t.Fatalf("arcs from painter = %d, want 1", len(arcs))
	}
	// A node that is no arc's source.
	other := painterDoc.Root().FirstChildElement("name")
	arcs, err = lb.ArcsFromNode(repo, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 0 {
		t.Errorf("arcs from name = %d, want 0", len(arcs))
	}
}

func TestLoadWithLinkbases(t *testing.T) {
	repo := newTestRepo(t)
	// second.xml is an additional linkbase reached via a linkbase arc.
	repo["second.xml"] = parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <a xlink:type="locator" xlink:href="guernica.xml" xlink:label="g"/>
	    <b xlink:type="locator" xlink:href="avignon.xml" xlink:label="a"/>
	    <arc xlink:type="arc" xlink:from="g" xlink:to="a"/>
	  </l>
	</links>`)
	first := parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <start xlink:type="resource" xlink:label="here"/>
	    <more xlink:type="locator" xlink:href="second.xml" xlink:label="lb"/>
	    <load xlink:type="arc" xlink:from="here" xlink:to="lb"
	          xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
	  </l>
	</links>`)
	lb := NewLinkbase()
	if err := lb.LoadWithLinkbases(first, repo); err != nil {
		t.Fatal(err)
	}
	st := lb.Stats()
	if st.Extended != 2 {
		t.Errorf("extended links after transitive load = %d, want 2", st.Extended)
	}
	if got := len(lb.ArcsFromURI("guernica.xml")); got != 1 {
		t.Errorf("arcs from guernica = %d, want 1", got)
	}
}

func TestLoadWithLinkbasesMissingTarget(t *testing.T) {
	repo := MapRepository{}
	first := parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <start xlink:type="resource" xlink:label="here"/>
	    <more xlink:type="locator" xlink:href="missing.xml" xlink:label="lb"/>
	    <load xlink:type="arc" xlink:from="here" xlink:to="lb"
	          xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
	  </l>
	</links>`)
	lb := NewLinkbase()
	if err := lb.LoadWithLinkbases(first, repo); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestEndpointString(t *testing.T) {
	remote := Endpoint{Label: "p", Href: "a.xml"}
	if !strings.Contains(remote.String(), "a.xml") {
		t.Errorf("remote endpoint string = %q", remote.String())
	}
	local := Endpoint{Label: "r", Resource: &Resource{}}
	if !strings.Contains(local.String(), "local") {
		t.Errorf("local endpoint string = %q", local.String())
	}
	arc := Arc{From: remote, To: local, Arcrole: "urn:x"}
	if !strings.Contains(arc.String(), "urn:x") {
		t.Errorf("arc string = %q", arc.String())
	}
}

func TestMapRepositoryURIs(t *testing.T) {
	repo := newTestRepo(t)
	uris := repo.URIs()
	if len(uris) != 4 {
		t.Fatalf("URIs = %v", uris)
	}
	for i := 1; i < len(uris); i++ {
		if uris[i-1] >= uris[i] {
			t.Errorf("URIs not sorted: %v", uris)
		}
	}
}
