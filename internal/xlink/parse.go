package xlink

import (
	"fmt"

	"repro/internal/xmldom"
)

// Simple is a simple link: an element carrying xlink:href (and optionally
// the behaviour and semantic attributes) that links its own content to one
// remote resource, like an HTML <a>.
type Simple struct {
	// Element is the linking element.
	Element *xmldom.Element
	// Href is the remote resource reference (required).
	Href string
	// Role, Arcrole and Title are the semantic attributes.
	Role    string
	Arcrole string
	Title   string
	// Show and Actuate are the behaviour attributes.
	Show    Show
	Actuate Actuate
}

// Locator is an extended-link child that addresses a remote resource.
type Locator struct {
	Element *xmldom.Element
	Label   string
	Href    string
	Role    string
	Title   string
}

// Resource is an extended-link child that supplies a local resource.
type Resource struct {
	Element *xmldom.Element
	Label   string
	Role    string
	Title   string
}

// arcElem is an arc rule before label expansion.
type arcElem struct {
	element *xmldom.Element
	from    string
	to      string
	arcrole string
	title   string
	show    Show
	actuate Actuate
}

// Extended is an extended link: an out-of-line link connecting any number
// of local and remote resources with explicit traversal arcs. The paper's
// links.xml (Figure 9) is a document of extended links.
type Extended struct {
	// Element is the extended-link element.
	Element *xmldom.Element
	// Role and Title are the link's semantic attributes.
	Role  string
	Title string
	// Locators and Resources are the participating endpoints.
	Locators  []*Locator
	Resources []*Resource
	// Titles holds xlink:type="title" child elements' text.
	Titles []string

	arcElems []arcElem
}

// LinkSet is the result of scanning one document for XLink markup.
type LinkSet struct {
	// Simples are the simple links found, in document order.
	Simples []*Simple
	// Extendeds are the extended links found, in document order.
	Extendeds []*Extended
	// Doc is the scanned document.
	Doc *xmldom.Document
}

func attr(e *xmldom.Element, local string) string {
	v, _ := e.Attr(Namespace, local)
	return v
}

// FindLinks scans a document for XLink markup and returns the discovered
// links. Elements with xlink:type="simple", or an xlink:href and no
// xlink:type (the spec's shorthand), become simple links; elements with
// xlink:type="extended" are parsed with their locator/resource/arc/title
// children. Malformed link markup is reported as an error.
func FindLinks(doc *xmldom.Document) (*LinkSet, error) {
	if doc == nil || doc.Root() == nil {
		return nil, fmt.Errorf("xlink: nil or empty document")
	}
	ls := &LinkSet{Doc: doc}
	var err error
	visit(doc.Root(), func(e *xmldom.Element) bool {
		if err != nil {
			return false
		}
		t := Type(attr(e, "type"))
		switch t {
		case TypeSimple:
			s, serr := parseSimple(e)
			if serr != nil {
				err = serr
				return false
			}
			ls.Simples = append(ls.Simples, s)
			return true
		case TypeExtended:
			x, xerr := parseExtended(e)
			if xerr != nil {
				err = xerr
				return false
			}
			ls.Extendeds = append(ls.Extendeds, x)
			return false // children already consumed
		case "":
			if attr(e, "href") != "" {
				s, serr := parseSimple(e)
				if serr != nil {
					err = serr
					return false
				}
				ls.Simples = append(ls.Simples, s)
			}
			return true
		case TypeLocator, TypeArc, TypeResource, TypeTitle:
			// Only meaningful inside an extended link; stray ones are
			// ignored per spec conformance rules ("no meaning").
			return true
		case TypeNone:
			return true
		default:
			err = fmt.Errorf("xlink: element <%s>: invalid xlink:type %q", e.Path(), t)
			return false
		}
	})
	if err != nil {
		return nil, err
	}
	return ls, nil
}

// visit walks elements pre-order; fn returning false prunes the subtree.
func visit(e *xmldom.Element, fn func(*xmldom.Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.ChildElements() {
		visit(c, fn)
	}
}

func parseSimple(e *xmldom.Element) (*Simple, error) {
	s := &Simple{
		Element: e,
		Href:    attr(e, "href"),
		Role:    attr(e, "role"),
		Arcrole: attr(e, "arcrole"),
		Title:   attr(e, "title"),
		Show:    Show(attr(e, "show")),
		Actuate: Actuate(attr(e, "actuate")),
	}
	if s.Href == "" {
		return nil, fmt.Errorf("xlink: simple link <%s> missing xlink:href", e.Path())
	}
	if !validShow(s.Show) {
		return nil, fmt.Errorf("xlink: simple link <%s>: invalid xlink:show %q", e.Path(), s.Show)
	}
	if !validActuate(s.Actuate) {
		return nil, fmt.Errorf("xlink: simple link <%s>: invalid xlink:actuate %q", e.Path(), s.Actuate)
	}
	return s, nil
}

func parseExtended(e *xmldom.Element) (*Extended, error) {
	x := &Extended{
		Element: e,
		Role:    attr(e, "role"),
		Title:   attr(e, "title"),
	}
	for _, c := range e.ChildElements() {
		switch Type(attr(c, "type")) {
		case TypeLocator:
			loc := &Locator{
				Element: c,
				Label:   attr(c, "label"),
				Href:    attr(c, "href"),
				Role:    attr(c, "role"),
				Title:   attr(c, "title"),
			}
			if loc.Href == "" {
				return nil, fmt.Errorf("xlink: locator <%s> missing xlink:href", c.Path())
			}
			x.Locators = append(x.Locators, loc)
		case TypeResource:
			x.Resources = append(x.Resources, &Resource{
				Element: c,
				Label:   attr(c, "label"),
				Role:    attr(c, "role"),
				Title:   attr(c, "title"),
			})
		case TypeArc:
			arc := arcElem{
				element: c,
				from:    attr(c, "from"),
				to:      attr(c, "to"),
				arcrole: attr(c, "arcrole"),
				title:   attr(c, "title"),
				show:    Show(attr(c, "show")),
				actuate: Actuate(attr(c, "actuate")),
			}
			if !validShow(arc.show) {
				return nil, fmt.Errorf("xlink: arc <%s>: invalid xlink:show %q", c.Path(), arc.show)
			}
			if !validActuate(arc.actuate) {
				return nil, fmt.Errorf("xlink: arc <%s>: invalid xlink:actuate %q", c.Path(), arc.actuate)
			}
			x.arcElems = append(x.arcElems, arc)
		case TypeTitle:
			x.Titles = append(x.Titles, c.StringValue())
		default:
			// Non-XLink children carry no linking meaning; skip.
		}
	}
	// Validate that arc labels reference participating resources.
	labels := x.labelSet()
	for _, a := range x.arcElems {
		if a.from != "" && len(labels[a.from]) == 0 {
			return nil, fmt.Errorf("xlink: arc in <%s>: from label %q matches no locator or resource", e.Path(), a.from)
		}
		if a.to != "" && len(labels[a.to]) == 0 {
			return nil, fmt.Errorf("xlink: arc in <%s>: to label %q matches no locator or resource", e.Path(), a.to)
		}
	}
	return x, nil
}

// labelSet maps each label to its endpoints; multiple endpoints may share
// a label, which multiplies arcs on expansion.
func (x *Extended) labelSet() map[string][]Endpoint {
	m := map[string][]Endpoint{}
	for _, l := range x.Locators {
		m[l.Label] = append(m[l.Label], Endpoint{Label: l.Label, Href: l.Href, Title: l.Title, Role: l.Role})
	}
	for _, r := range x.Resources {
		m[r.Label] = append(m[r.Label], Endpoint{Label: r.Label, Resource: r, Title: r.Title, Role: r.Role})
	}
	return m
}

// allEndpoints lists every participating endpoint (locators then local
// resources, in document order).
func (x *Extended) allEndpoints() []Endpoint {
	var out []Endpoint
	for _, l := range x.Locators {
		out = append(out, Endpoint{Label: l.Label, Href: l.Href, Title: l.Title, Role: l.Role})
	}
	for _, r := range x.Resources {
		out = append(out, Endpoint{Label: r.Label, Resource: r, Title: r.Title, Role: r.Role})
	}
	return out
}

// Arcs expands the link's arc elements into concrete traversal arcs. An
// absent from or to selects every participating endpoint (§5.1.3); a
// label shared by several endpoints produces one arc per pair.
func (x *Extended) Arcs() []Arc {
	labels := x.labelSet()
	var out []Arc
	for _, ae := range x.arcElems {
		var froms, tos []Endpoint
		if ae.from == "" {
			froms = x.allEndpoints()
		} else {
			froms = labels[ae.from]
		}
		if ae.to == "" {
			tos = x.allEndpoints()
		} else {
			tos = labels[ae.to]
		}
		for _, f := range froms {
			for _, t := range tos {
				out = append(out, Arc{
					Link:    x,
					From:    f,
					To:      t,
					Arcrole: ae.arcrole,
					Title:   ae.title,
					Show:    ae.show,
					Actuate: ae.actuate,
				})
			}
		}
	}
	return out
}
