// Package xlink implements the XML Linking Language (XLink) 1.0: simple
// links, extended links with locators, resources, arcs and titles, arc
// expansion, linkbase documents and traversal resolution.
//
// This is the substrate the paper's §6 proposal rests on: link structure is
// authored in separate XML documents (a linkbase such as the paper's
// links.xml, Figure 9) instead of being embedded in content pages, and an
// XLink processor — this package — recovers the traversal graph from it.
package xlink

import (
	"fmt"
	"strings"
)

// Namespace is the XLink namespace URI.
const Namespace = "http://www.w3.org/1999/xlink"

// LinkbaseArcrole marks arcs that lead to additional linkbase documents.
const LinkbaseArcrole = "http://www.w3.org/1999/xlink/properties/linkbase"

// Type is the value space of xlink:type.
type Type string

// xlink:type values.
const (
	TypeSimple   Type = "simple"
	TypeExtended Type = "extended"
	TypeLocator  Type = "locator"
	TypeArc      Type = "arc"
	TypeResource Type = "resource"
	TypeTitle    Type = "title"
	TypeNone     Type = "none"
)

// Show is the value space of xlink:show, the link behaviour attribute.
type Show string

// xlink:show values.
const (
	ShowUnspecified Show = ""
	ShowNew         Show = "new"
	ShowReplace     Show = "replace"
	ShowEmbed       Show = "embed"
	ShowOther       Show = "other"
	ShowNone        Show = "none"
)

// Actuate is the value space of xlink:actuate.
type Actuate string

// xlink:actuate values.
const (
	ActuateUnspecified Actuate = ""
	ActuateOnLoad      Actuate = "onLoad"
	ActuateOnRequest   Actuate = "onRequest"
	ActuateOther       Actuate = "other"
	ActuateNone        Actuate = "none"
)

func validShow(s Show) bool {
	switch s {
	case ShowUnspecified, ShowNew, ShowReplace, ShowEmbed, ShowOther, ShowNone:
		return true
	}
	return false
}

func validActuate(a Actuate) bool {
	switch a {
	case ActuateUnspecified, ActuateOnLoad, ActuateOnRequest, ActuateOther, ActuateNone:
		return true
	}
	return false
}

// Ref is an XLink href split into document URI and fragment pointer.
type Ref struct {
	// URI is the document part; empty means "this document".
	URI string
	// Fragment is the XPointer after '#'; empty means the whole document.
	Fragment string
}

// SplitRef splits an href value into document URI and fragment.
func SplitRef(href string) Ref {
	uri, frag, _ := strings.Cut(href, "#")
	return Ref{URI: uri, Fragment: frag}
}

// String reassembles the reference.
func (r Ref) String() string {
	if r.Fragment == "" {
		return r.URI
	}
	return r.URI + "#" + r.Fragment
}

// Endpoint is one end of a traversal arc: either a remote resource
// identified by href (from a locator) or a local resource element.
type Endpoint struct {
	// Label is the xlink:label the endpoint was selected by.
	Label string
	// Href is non-empty for remote endpoints (locators).
	Href string
	// Resource is non-nil for local endpoints.
	Resource *Resource
	// Title is the human-readable endpoint title, when given.
	Title string
	// Role is the endpoint's xlink:role, when given.
	Role string
}

// Remote reports whether the endpoint refers to a remote resource.
func (e Endpoint) Remote() bool { return e.Resource == nil }

// String renders the endpoint for diagnostics.
func (e Endpoint) String() string {
	if e.Remote() {
		return fmt.Sprintf("%s(%s)", e.Label, e.Href)
	}
	return fmt.Sprintf("%s(local)", e.Label)
}

// Arc is an expanded traversal arc between two endpoints of an extended
// link. Arc elements with absent from/to expand to the cross product of
// all participating labels, per XLink 1.0 §5.1.3.
type Arc struct {
	// Link is the extended link that defined the arc.
	Link *Extended
	// From and To are the traversal endpoints.
	From Endpoint
	To   Endpoint
	// Arcrole, Title, Show, Actuate are the arc element's properties.
	Arcrole string
	Title   string
	Show    Show
	Actuate Actuate
}

// IsLinkbaseArc reports whether the arc loads an external linkbase.
func (a Arc) IsLinkbaseArc() bool { return a.Arcrole == LinkbaseArcrole }

// String renders the arc for diagnostics.
func (a Arc) String() string {
	return fmt.Sprintf("%s -> %s [%s]", a.From, a.To, a.Arcrole)
}
