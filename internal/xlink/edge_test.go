package xlink

import (
	"testing"
)

func TestLinkbaseCycleTolerated(t *testing.T) {
	// Two linkbases referencing each other must not loop forever.
	a := parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <s xlink:type="resource" xlink:label="here"/>
	    <o xlink:type="locator" xlink:href="b.xml" xlink:label="other"/>
	    <arc xlink:type="arc" xlink:from="here" xlink:to="other"
	         xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
	  </l></links>`)
	a.BaseURI = "a.xml"
	b := parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <s xlink:type="resource" xlink:label="here"/>
	    <o xlink:type="locator" xlink:href="a.xml" xlink:label="other"/>
	    <arc xlink:type="arc" xlink:from="here" xlink:to="other"
	         xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
	  </l></links>`)
	b.BaseURI = "b.xml"
	repo := MapRepository{"a.xml": a, "b.xml": b}
	lb := NewLinkbase()
	if err := lb.LoadWithLinkbases(a, repo); err != nil {
		t.Fatal(err)
	}
	if got := lb.Stats().Extended; got != 2 {
		t.Errorf("extended links = %d, want 2 (each loaded once)", got)
	}
}

func TestArcsFromNodeLocalResource(t *testing.T) {
	doc := parseDoc(t, `<links xmlns:xlink="http://www.w3.org/1999/xlink">
	  <l xlink:type="extended">
	    <start xlink:type="resource" xlink:label="s">origin</start>
	    <dest xlink:type="locator" xlink:href="d.xml" xlink:label="d"/>
	    <arc xlink:type="arc" xlink:from="s" xlink:to="d"/>
	  </l></links>`)
	lb := NewLinkbase()
	if err := lb.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	// The local resource element is the arc source.
	start := lb.Extendeds()[0].Resources[0].Element
	arcs, err := lb.ArcsFromNode(MapRepository{}, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 1 {
		t.Errorf("arcs from local resource = %d, want 1", len(arcs))
	}
	// Unresolvable remote endpoints are skipped, not fatal.
	other := doc.Root()
	arcs, err = lb.ArcsFromNode(MapRepository{}, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 0 {
		t.Errorf("arcs from unrelated node = %d", len(arcs))
	}
}

func TestResolveEndpoint(t *testing.T) {
	repo := newTestRepo(t)
	local := Endpoint{Label: "l", Resource: &Resource{Element: repo["picasso.xml"].Root()}}
	nodes, err := ResolveEndpoint(repo, local)
	if err != nil || len(nodes) != 1 {
		t.Errorf("local endpoint: %v %v", nodes, err)
	}
	remote := Endpoint{Label: "r", Href: "guitar.xml#guitar"}
	nodes, err = ResolveEndpoint(repo, remote)
	if err != nil || len(nodes) != 1 {
		t.Errorf("remote endpoint: %v %v", nodes, err)
	}
	missing := Endpoint{Label: "m", Href: "nope.xml"}
	if _, err := ResolveEndpoint(repo, missing); err == nil {
		t.Error("missing endpoint resolved")
	}
}

func TestEndpointContainsNoMatchFragment(t *testing.T) {
	repo := newTestRepo(t)
	ep := Endpoint{Label: "x", Href: "guitar.xml#no-such-id"}
	ok, err := EndpointContains(repo, ep, repo["guitar.xml"].Root())
	if err != nil {
		t.Fatalf("no-match fragment should not be fatal: %v", err)
	}
	if ok {
		t.Error("non-matching fragment reported containment")
	}
}

func TestSimpleLinkDefaults(t *testing.T) {
	ls, err := FindLinks(parseDoc(t,
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:href="x.xml"/>`))
	if err != nil {
		t.Fatal(err)
	}
	s := ls.Simples[0]
	if s.Show != ShowUnspecified || s.Actuate != ActuateUnspecified {
		t.Errorf("defaults = %q/%q", s.Show, s.Actuate)
	}
	if s.Role != "" || s.Arcrole != "" || s.Title != "" {
		t.Errorf("semantic attrs should default empty: %+v", s)
	}
}

func TestExtendedLinkIgnoresNonXLinkChildren(t *testing.T) {
	ls, err := FindLinks(parseDoc(t, `<l xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
	  <plain>no xlink attributes at all</plain>
	  <r xlink:type="resource" xlink:label="x"/>
	</l>`))
	if err != nil {
		t.Fatal(err)
	}
	x := ls.Extendeds[0]
	if len(x.Resources) != 1 || len(x.Locators) != 0 {
		t.Errorf("participants = %d res, %d loc", len(x.Resources), len(x.Locators))
	}
}

func TestStrayTypeElementsIgnored(t *testing.T) {
	// Locator/arc/resource/title outside an extended link carry no
	// meaning and must be skipped without error.
	ls, err := FindLinks(parseDoc(t, `<root xmlns:xlink="http://www.w3.org/1999/xlink">
	  <a xlink:type="locator" xlink:href="x.xml"/>
	  <b xlink:type="arc"/>
	  <c xlink:type="resource"/>
	  <d xlink:type="title"/>
	  <e xlink:type="none" xlink:href="ignored.xml"/>
	</root>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Simples) != 0 || len(ls.Extendeds) != 0 {
		t.Errorf("stray elements produced links: %+v", ls)
	}
}

func TestArcsByRoleAndStats(t *testing.T) {
	lb := NewLinkbase()
	if err := lb.AddDocument(parseDoc(t, linksSrc)); err != nil {
		t.Fatal(err)
	}
	if got := len(lb.ArcsByRole("urn:other")); got != 0 {
		t.Errorf("foreign role arcs = %d", got)
	}
	if got := len(lb.Simples()); got != 0 {
		t.Errorf("simples = %d", got)
	}
	if got := len(lb.Extendeds()); got != 1 {
		t.Errorf("extendeds = %d", got)
	}
}
