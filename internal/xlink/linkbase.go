package xlink

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/xmldom"
	"repro/internal/xpointer"
)

// Repository resolves document URIs to parsed documents. The paper's
// weaver loads picasso.xml, avignon.xml etc. through this interface so the
// linkbase can address them uniformly.
type Repository interface {
	// Get returns the document identified by uri.
	Get(uri string) (*xmldom.Document, error)
}

// ErrNotFound is returned by repositories for unknown URIs.
var ErrNotFound = errors.New("xlink: document not found")

// MapRepository is an in-memory Repository keyed by URI.
type MapRepository map[string]*xmldom.Document

// Get implements Repository.
func (m MapRepository) Get(uri string) (*xmldom.Document, error) {
	if d, ok := m[uri]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, uri)
}

// URIs lists the repository's document URIs in sorted order.
func (m MapRepository) URIs() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Linkbase aggregates the links of one or more linkbase documents and
// answers traversal queries. It is the machine-readable form of the
// paper's links.xml: all navigation structure, separate from content.
type Linkbase struct {
	extendeds []*Extended
	simples   []*Simple
	arcs      []Arc
	docURIs   []string
}

// NewLinkbase returns an empty linkbase.
func NewLinkbase() *Linkbase { return &Linkbase{} }

// AddDocument scans a document for links and adds them to the linkbase.
// The document's own URI (for diagnostics) is taken from its BaseURI.
func (lb *Linkbase) AddDocument(doc *xmldom.Document) error {
	ls, err := FindLinks(doc)
	if err != nil {
		return err
	}
	lb.extendeds = append(lb.extendeds, ls.Extendeds...)
	lb.simples = append(lb.simples, ls.Simples...)
	for _, x := range ls.Extendeds {
		lb.arcs = append(lb.arcs, x.Arcs()...)
	}
	lb.docURIs = append(lb.docURIs, doc.BaseURI)
	return nil
}

// LoadWithLinkbases adds doc and then transitively follows every arc whose
// arcrole is the XLink linkbase arcrole, loading the referenced documents
// from repo as additional linkbases (§5.1.5). Cycles are tolerated.
func (lb *Linkbase) LoadWithLinkbases(doc *xmldom.Document, repo Repository) error {
	seen := map[string]bool{doc.BaseURI: true}
	queue := []*xmldom.Document{doc}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		before := len(lb.arcs)
		if err := lb.AddDocument(d); err != nil {
			return err
		}
		for _, a := range lb.arcs[before:] {
			if !a.IsLinkbaseArc() || !a.To.Remote() {
				continue
			}
			ref := SplitRef(a.To.Href)
			if seen[ref.URI] {
				continue
			}
			seen[ref.URI] = true
			next, err := repo.Get(ref.URI)
			if err != nil {
				return fmt.Errorf("xlink: loading linkbase %q: %w", ref.URI, err)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// Extendeds returns the aggregated extended links.
func (lb *Linkbase) Extendeds() []*Extended { return lb.extendeds }

// Simples returns the aggregated simple links.
func (lb *Linkbase) Simples() []*Simple { return lb.simples }

// Arcs returns every expanded arc in the linkbase.
func (lb *Linkbase) Arcs() []Arc { return lb.arcs }

// ArcsByRole returns the arcs whose arcrole equals role.
func (lb *Linkbase) ArcsByRole(role string) []Arc {
	var out []Arc
	for _, a := range lb.arcs {
		if a.Arcrole == role {
			out = append(out, a)
		}
	}
	return out
}

// ArcsFromURI returns the arcs whose starting endpoint addresses the given
// document URI (any fragment).
func (lb *Linkbase) ArcsFromURI(uri string) []Arc {
	var out []Arc
	for _, a := range lb.arcs {
		if a.From.Remote() && SplitRef(a.From.Href).URI == uri {
			out = append(out, a)
		}
	}
	return out
}

// ArcsFromRef returns the arcs whose starting endpoint is exactly the
// given reference (URI plus fragment).
func (lb *Linkbase) ArcsFromRef(ref Ref) []Arc {
	var out []Arc
	for _, a := range lb.arcs {
		if a.From.Remote() && SplitRef(a.From.Href) == ref {
			out = append(out, a)
		}
	}
	return out
}

// ArcsFromNode returns the arcs whose starting endpoint resolves (through
// repo) to a node-set containing node. This answers the XLink-aware user
// agent's question "which traversals begin here?" — the capability the
// paper notes was missing from 2002 browsers.
func (lb *Linkbase) ArcsFromNode(repo Repository, node xmldom.Node) ([]Arc, error) {
	var out []Arc
	for _, a := range lb.arcs {
		ok, err := EndpointContains(repo, a.From, node)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, a)
		}
	}
	return out, nil
}

// EndpointContains reports whether the endpoint's resource (resolved via
// repo for remote endpoints) contains the given node.
func EndpointContains(repo Repository, ep Endpoint, node xmldom.Node) (bool, error) {
	if !ep.Remote() {
		return xmldom.Node(ep.Resource.Element) == node, nil
	}
	nodes, err := ResolveRef(repo, ep.Href)
	if err != nil {
		if errors.Is(err, ErrNotFound) || errors.Is(err, xpointer.ErrNoMatch) {
			return false, nil
		}
		return false, err
	}
	for _, n := range nodes {
		if n == node {
			return true, nil
		}
	}
	return false, nil
}

// ResolveRef resolves an href (URI plus optional XPointer fragment) to
// nodes: the whole document when no fragment is given, otherwise the
// pointer's result.
func ResolveRef(repo Repository, href string) ([]xmldom.Node, error) {
	ref := SplitRef(href)
	doc, err := repo.Get(ref.URI)
	if err != nil {
		return nil, err
	}
	if ref.Fragment == "" {
		return []xmldom.Node{doc}, nil
	}
	ptr, err := xpointer.Parse(ref.Fragment)
	if err != nil {
		return nil, fmt.Errorf("xlink: href %q: %w", href, err)
	}
	return ptr.Resolve(doc)
}

// ResolveEndpoint resolves an endpoint to its nodes: the local resource
// element, or the remote reference's resolution.
func ResolveEndpoint(repo Repository, ep Endpoint) ([]xmldom.Node, error) {
	if !ep.Remote() {
		return []xmldom.Node{ep.Resource.Element}, nil
	}
	return ResolveRef(repo, ep.Href)
}

// Stats summarizes the linkbase for diagnostics and experiments.
type Stats struct {
	Documents int
	Extended  int
	Simple    int
	Arcs      int
}

// Stats returns aggregate counts.
func (lb *Linkbase) Stats() Stats {
	return Stats{
		Documents: len(lb.docURIs),
		Extended:  len(lb.extendeds),
		Simple:    len(lb.simples),
		Arcs:      len(lb.arcs),
	}
}
