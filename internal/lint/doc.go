// Package lint is the umbrella for navlint, the repository's own
// static-analysis suite. The analyzers live in subpackages and are run
// by cmd/navlint (standalone or as a `go vet -vettool`); each one
// turns an architectural invariant of the navigational-separation
// design into a machine-checked rule:
//
//	hotpath     //repro:hotpath functions (the paths AllocsPerRun
//	            guards) must not transitively format, touch
//	            encoding/json, read time.Now, take RWMutex write locks,
//	            launch goroutines or call known-escaping helpers.
//	locks       every Lock/RLock released on all paths, no nested
//	            acquisition (direct or through a callee), no
//	            mutation-plane call under a read lock.
//	planes      the import lattice between the navigational aspect,
//	            the core, and the serving/control stack; mutation-plane
//	            calls confined to //repro:plane(control) code inside
//	            internal/server.
//	apihandler  /api/v1 dispatch hygiene: Cache-Control: no-store
//	            before dispatch, 405+Allow method guards on every
//	            mounted handler, strict JSON decoding, //repro:nostore
//	            bodies really setting no-store.
//	directives  the //repro: annotation grammar itself, so a typo'd
//	            annotation fails the build instead of silently
//	            disabling a rule.
//
// The annotation grammar is documented in internal/lint/annotations;
// the invariant tables (sin list, layering, mutation plane) in
// internal/lint/rules. The analysis and load subpackages are a
// stdlib-only mirror of the golang.org/x/tools/go/analysis driver
// stack, kept API-compatible so the suite can migrate to x/tools by
// swapping imports.
package lint
