// Package apihandler implements the navlint analyzer for the /api/v1
// control surface's HTTP discipline.
//
// The dispatcher — the function marked //repro:apimux — must set
// Cache-Control: no-store before dispatching to any handler, so no
// control-plane response (errors included) is ever cached by an
// intermediary. Every handler it mounts (a method whose name matches
// api[A-Z]… and that takes an http.ResponseWriter) must be reached
// through a method guard: an enclosing `if allowMethods(...)` or a
// switch with a `default:` that calls allowMethods — that is what
// turns a wrong-method request into 405 + Allow instead of a confusing
// 404 or, worse, an unintended mutation. Handlers declared but never
// mounted are reported too: an unreachable handler is usually a
// dispatch case someone forgot.
//
// Handlers must not call encoding/json decoding functions directly;
// request bodies go through the strict decode helper (unknown fields
// and trailing content rejected), so a typo'd field in a PUT fails
// loudly instead of silently installing a half-read value.
//
// Independently, any function marked //repro:nostore must set
// Cache-Control: no-store in its own body — the annotation for serve
// handlers (stats, health, session state) whose output is live
// operational or per-visitor data.
package apihandler

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annotations"
)

// Config names the package's HTTP-discipline helpers.
type Config struct {
	// HandlerPrefix is the method-name prefix that marks a handler
	// ("api": matches apiModel, apiStructurePut, …; the next rune must
	// be upper-case, so apiError and apiAuthorized are not handlers —
	// they also take no ResponseWriter).
	HandlerPrefix string
	// GuardFunc is the method-guard helper (returns true to proceed,
	// answers 405+Allow itself otherwise).
	GuardFunc string
	// DecodeHelper is the strict JSON decode helper handlers must use.
	DecodeHelper string
}

// Analyzer is the apihandler rule with the repository's helper names.
var Analyzer = New(Config{
	HandlerPrefix: "api",
	GuardFunc:     "allowMethods",
	DecodeHelper:  "decodeStrict",
})

// jsonDecoders are the calls handlers must route through the strict
// helper instead.
var jsonDecoders = map[string]bool{
	"encoding/json.Unmarshal":         true,
	"encoding/json.NewDecoder":        true,
	"(*encoding/json.Decoder).Decode": true,
	"(*encoding/json.Decoder).Token":  true,
}

// New builds an apihandler analyzer for the given helper names.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "apihandler",
		Doc:  "checks /api/v1 dispatch: no-store before dispatch, 405 method guards on every handler, strict JSON decoding",
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		run(pass, cfg)
		return nil, nil
	}
	return a
}

type handlerInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	df      *annotations.File
	mounted bool
}

func run(pass *analysis.Pass, cfg Config) {
	type muxInfo struct {
		decl *ast.FuncDecl
		df   *annotations.File
	}
	var muxes []muxInfo
	handlers := map[*types.Func]*handlerInfo{}
	for _, file := range pass.Files {
		df := annotations.Parse(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if df.FuncDirective(fd, annotations.KindAPIMux) != nil {
				muxes = append(muxes, muxInfo{fd, df})
			}
			if df.FuncDirective(fd, annotations.KindNoStore) != nil && !setsNoStore(fd.Body) {
				pass.Reportf(fd.Name.Pos(), "%s is marked //repro:nostore but never sets Cache-Control: no-store", fd.Name.Name)
			}
			if isHandler(fn, cfg.HandlerPrefix) {
				handlers[fn] = &handlerInfo{fn: fn, decl: fd, df: df}
			}
		}
	}

	for _, h := range handlers {
		checkDecoding(pass, h, cfg)
	}
	if len(muxes) == 0 {
		return // no dispatcher in this package; nothing to mount against
	}
	for _, m := range muxes {
		c := &muxChecker{pass: pass, cfg: cfg, df: m.df, handlers: handlers}
		c.checkNoStoreOrder(m.decl)
		c.walk(m.decl.Body, false)
	}
	// Deterministic order for the orphan reports.
	var orphans []*handlerInfo
	for _, h := range handlers {
		if !h.mounted {
			orphans = append(orphans, h)
		}
	}
	for _, h := range sortByPos(orphans) {
		pass.Reportf(h.decl.Name.Pos(), "handler %s is never dispatched from the //repro:apimux function; mount it or remove it",
			h.fn.Name())
	}
}

func sortByPos(hs []*handlerInfo) []*handlerInfo {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && hs[j].decl.Pos() < hs[j-1].decl.Pos(); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
	return hs
}

// isHandler reports whether fn is a mounted-handler candidate: a method
// whose name is HandlerPrefix followed by an upper-case rune, taking an
// http.ResponseWriter.
func isHandler(fn *types.Func, prefix string) bool {
	name := fn.Name()
	if !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
		return false
	}
	if r := name[len(prefix)]; r < 'A' || r > 'Z' {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isResponseWriter(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkDecoding reports direct encoding/json decoding inside a handler.
func checkDecoding(pass *analysis.Pass, h *handlerInfo, cfg Config) {
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || !jsonDecoders[analysis.ObjectKey(fn)] {
			return true
		}
		if _, allowed := h.df.AllowedAt(call.Pos()); allowed {
			return true
		}
		pass.Reportf(call.Pos(), "handler %s decodes JSON with %s; use %s (rejects unknown fields and trailing content)",
			h.fn.Name(), fn.Name(), cfg.DecodeHelper)
		return true
	})
}

type muxChecker struct {
	pass     *analysis.Pass
	cfg      Config
	df       *annotations.File
	handlers map[*types.Func]*handlerInfo
}

// checkNoStoreOrder verifies the mux sets Cache-Control: no-store
// before the first handler dispatch.
func (c *muxChecker) checkNoStoreOrder(decl *ast.FuncDecl) {
	var setPos, dispatchPos token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if setPos == token.NoPos && isNoStoreSet(call) {
			setPos = call.Pos()
		}
		if dispatchPos == token.NoPos {
			if fn := staticCallee(c.pass.TypesInfo, call); fn != nil {
				if _, isH := c.handlers[fn]; isH {
					dispatchPos = call.Pos()
				}
			}
		}
		return true
	})
	switch {
	case setPos == token.NoPos:
		c.pass.Reportf(decl.Name.Pos(), "//repro:apimux dispatcher %s never sets Cache-Control: no-store", decl.Name.Name)
	case dispatchPos != token.NoPos && dispatchPos < setPos:
		c.pass.Reportf(dispatchPos, "handler dispatched before the dispatcher sets Cache-Control: no-store")
	}
}

// walk traverses the mux body tracking whether the current position is
// covered by a method guard.
func (c *muxChecker) walk(n ast.Node, guarded bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if n.Init != nil {
			c.walk(n.Init, guarded)
		}
		c.walk(n.Cond, guarded)
		c.walk(n.Body, guarded || c.isGuardExpr(n.Cond))
		c.walk(n.Else, guarded)
	case *ast.SwitchStmt:
		c.walkSwitch(n.Init, n.Tag, n.Body, guarded)
	case *ast.TypeSwitchStmt:
		c.walkSwitch(n.Init, nil, n.Body, guarded)
	case *ast.CallExpr:
		if fn := staticCallee(c.pass.TypesInfo, n); fn != nil {
			if h, isH := c.handlers[fn]; isH {
				h.mounted = true
				if _, allowed := c.df.AllowedAt(n.Pos()); !guarded && !allowed {
					c.pass.Reportf(n.Pos(), "handler %s dispatched without a method guard (%s): wrong-method requests will not get 405 + Allow",
						fn.Name(), c.cfg.GuardFunc)
				}
			}
		}
		for _, arg := range n.Args {
			c.walk(arg, guarded)
		}
		c.walk(n.Fun, guarded)
	default:
		c.walkChildren(n, guarded)
	}
}

// walkSwitch handles the guard idiom `switch method { case GET: …
// default: allowMethods(...) }`: a default clause that calls the guard
// makes every case guarded.
func (c *muxChecker) walkSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, guarded bool) {
	if init != nil {
		c.walk(init, guarded)
	}
	if tag != nil {
		c.walk(tag, guarded)
	}
	defGuard := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok || cc.List != nil {
			continue
		}
		for _, s := range cc.Body {
			if c.containsGuardCall(s) {
				defGuard = true
			}
		}
	}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, x := range cc.List {
			c.walk(x, guarded)
		}
		for _, s := range cc.Body {
			c.walk(s, guarded || defGuard)
		}
	}
}

// walkChildren recurses generically, re-entering walk for the node
// kinds that alter guardedness.
func (c *muxChecker) walkChildren(n ast.Node, guarded bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n || child == nil {
			return child == n
		}
		switch child.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CallExpr:
			c.walk(child, guarded)
			return false
		}
		return true
	})
}

func (c *muxChecker) isGuardExpr(cond ast.Expr) bool {
	return cond != nil && c.containsGuardCall(cond)
}

func (c *muxChecker) containsGuardCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		call, ok := child.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == c.cfg.GuardFunc {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == c.cfg.GuardFunc {
				found = true
			}
		}
		return !found
	})
	return found
}

// isNoStoreSet matches `….Set("Cache-Control", "no-store")`.
func isNoStoreSet(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" || len(call.Args) != 2 {
		return false
	}
	return strLit(call.Args[0]) == "cache-control" && strLit(call.Args[1]) == "no-store"
}

// setsNoStore reports whether body contains a no-store Set call.
func setsNoStore(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isNoStoreSet(call) {
			found = true
		}
		return !found
	})
	return found
}

// strLit lower-cases a string literal's value ("" for non-literals).
func strLit(x ast.Expr) string {
	lit, ok := x.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return strings.ToLower(s)
}

// staticCallee resolves a call's target function, nil for dynamic
// calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
