package apihandler_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/apihandler"
)

func TestAPIHandler(t *testing.T) {
	root := filepath.Join("..", "testdata", "src")
	analysistest.Run(t, root, apihandler.Analyzer, "apitest/a", "apitest/b")
}
