package locks_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/locks"
)

func TestLocks(t *testing.T) {
	root := filepath.Join("..", "testdata", "src")
	a := locks.New(map[string][]string{
		"lockstest/a.App": {"Mutate", "Mutate2"},
	})
	analysistest.Run(t, root, a, "lockstest/a", "lockstest/b")
}
