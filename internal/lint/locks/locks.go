// Package locks implements the navlint analyzer that checks mutex
// discipline by abstract interpretation of each function body.
//
// It tracks which sync.Mutex / sync.RWMutex values are held along every
// statement path and reports:
//
//   - a lock still held at a return (and not covered by a deferred
//     unlock, including unlocks inside deferred closures);
//   - branches of an if/switch/select that disagree about which locks
//     are held when control converges;
//   - a loop body that does not restore the lock state it entered with;
//   - nested acquisition of a mutex that is already held (recursive
//     RLock is tolerated — legal, if inadvisable);
//   - releasing a read lock with Unlock or a write lock with RUnlock;
//   - calling a method that takes a lock the caller already holds on
//     the same receiver (via per-function acquire summaries, exported
//     as facts so the check crosses package boundaries);
//   - calling a mutation-plane method (rules.MutationPlane) while a
//     read lock is held on the same receiver — the mutation takes the
//     write lock, which self-deadlocks.
//
// Locks are identified by their source expression ("app.mu", "sh.mu"),
// so two shards of a striped lock are different locks; interprocedural
// matching additionally requires the call's receiver expression to
// match the held lock's root, which keeps shard helpers from
// false-positiving. //repro:allow(reason) on an acquisition suppresses
// findings for that lock; on a call, it suppresses the call-site
// checks.
package locks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annotations"
	"repro/internal/lint/rules"
)

// Analyzer is the locks rule with the repository's mutation-plane
// table.
var Analyzer = New(rules.MutationPlane)

// AcquiresFact summarizes which receiver-field mutexes a method
// acquires, as "field:r" / "field:w" entries.
type AcquiresFact struct {
	Fields []string
}

// AFact marks AcquiresFact as an analysis fact.
func (*AcquiresFact) AFact() {}

// New builds a locks analyzer with the given mutation-plane table
// (receiver type key → method names).
func New(mutation map[string][]string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "locks",
		Doc:       "checks that every Lock/RLock is released on all paths and that held locks are never re-acquired, directly or through a callee",
		FactTypes: []analysis.Fact{(*AcquiresFact)(nil)},
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		run(pass, mutation)
		return nil, nil
	}
	return a
}

// heldLock is one tracked acquisition.
type heldLock struct {
	key     string // source expression of the mutex: "app.mu"
	root    string // expression of the value owning it: "app" ("" if none)
	typeKey string // owning type + field: "repro/internal/core.App.mu" ("" if unknowable)
	mode    byte   // 'r' or 'w'
	pos     token.Pos
	allowed bool // acquisition carries a //repro:allow
}

// env is the abstract state at one program point.
type env struct {
	held     []heldLock
	deferred map[string]byte // mutex key → release mode pending at exit
}

func newEnv() *env { return &env{deferred: map[string]byte{}} }

func (e *env) clone() *env {
	c := &env{
		held:     append([]heldLock(nil), e.held...),
		deferred: make(map[string]byte, len(e.deferred)),
	}
	for k, v := range e.deferred {
		c.deferred[k] = v
	}
	return c
}

// signature is a canonical description of the held set, for comparing
// states at merge points.
func (e *env) signature() string {
	keys := make([]string, len(e.held))
	for i, h := range e.held {
		keys[i] = h.key + ":" + string(h.mode)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func (e *env) find(key string) int {
	for i, h := range e.held {
		if h.key == key {
			return i
		}
	}
	return -1
}

type checker struct {
	pass     *analysis.Pass
	mutation map[string][]string
	df       *annotations.File
	fn       *types.Func
	// summaries holds the acquire summary of every method declared in
	// this package: field name → strongest mode taken.
	summaries map[*types.Func]map[string]byte
}

func run(pass *analysis.Pass, mutation map[string][]string) {
	summaries := map[*types.Func]map[string]byte{}
	type unit struct {
		fd *ast.FuncDecl
		fn *types.Func
		df *annotations.File
	}
	var units []unit
	for _, file := range pass.Files {
		df := annotations.Parse(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			units = append(units, unit{fd, fn, df})
			if s := summarize(pass.TypesInfo, fd); len(s) > 0 {
				summaries[fn] = s
				fact := &AcquiresFact{}
				for f, m := range s {
					fact.Fields = append(fact.Fields, f+":"+string(m))
				}
				sort.Strings(fact.Fields)
				pass.ExportObjectFact(fn, fact)
			}
		}
	}
	for _, u := range units {
		c := &checker{pass: pass, mutation: mutation, df: u.df, fn: u.fn, summaries: summaries}
		e := newEnv()
		term := c.interp(u.fd.Body.List, e)
		if !term {
			c.checkLeaks(e, u.fd.Body.End())
		}
	}
}

// summarize records which receiver-field mutexes fd acquires anywhere
// in its body ('w' dominates 'r').
func summarize(info *types.Info, fd *ast.FuncDecl) map[string]byte {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := fd.Recv.List[0].Names[0].Name
	out := map[string]byte{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, target, ok := mutexOp(info, call)
		if !ok || (op != "Lock" && op != "RLock") {
			return true
		}
		sel, ok := target.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recv {
			return true
		}
		mode := byte('w')
		if op == "RLock" {
			mode = 'r'
		}
		if out[sel.Sel.Name] != 'w' {
			out[sel.Sel.Name] = mode
		}
		return true
	})
	return out
}

// mutexOp classifies call as a sync mutex operation, returning the
// method name and the receiver expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (op string, target ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", nil, false
	}
	return fn.Name(), sel.X, true
}

// describe computes the identity of a mutex expression.
func (c *checker) describe(target ast.Expr) (key, root, typeKey string) {
	key = types.ExprString(target)
	if sel, ok := target.(*ast.SelectorExpr); ok {
		root = types.ExprString(sel.X)
		if tk := typeKeyOf(c.pass.TypesInfo.Types[sel.X].Type); tk != "" {
			typeKey = tk + "." + sel.Sel.Name
		}
	}
	return key, root, typeKey
}

// typeKeyOf renders a (possibly pointer-to) named type as
// "pkgpath.Name", the key format of rules.MutationPlane.
func typeKeyOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// interp walks stmts updating e; the return reports whether every path
// through stmts terminates (return/panic/branch).
func (c *checker) interp(stmts []ast.Stmt, e *env) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			c.scanCalls(s, e)
			c.checkLeaks(e, s.Pos())
			return true
		case *ast.BranchStmt: // break/continue/goto leave the path
			return true
		case *ast.BlockStmt:
			if c.interp(s.List, e) {
				return true
			}
		case *ast.LabeledStmt:
			if c.interp([]ast.Stmt{s.Stmt}, e) {
				return true
			}
		case *ast.DeferStmt:
			c.applyDefer(s, e)
		case *ast.GoStmt:
			// The goroutine body is not on this path.
		case *ast.IfStmt:
			if c.interpIf(s, e) {
				return true
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.scanCalls(s.Init, e)
			}
			if s.Cond != nil {
				c.scanCalls(s.Cond, e)
			}
			c.interpLoop(s.Body, s.Pos(), e)
			if s.Cond == nil && !hasBreak(s.Body) {
				return true // for{} without break never falls through
			}
		case *ast.RangeStmt:
			c.scanCalls(s.X, e)
			c.interpLoop(s.Body, s.Pos(), e)
		case *ast.SwitchStmt:
			if c.interpSwitch(s.Init, s.Tag, s.Body, false, e) {
				return true
			}
		case *ast.TypeSwitchStmt:
			if c.interpSwitch(s.Init, nil, s.Body, false, e) {
				return true
			}
		case *ast.SelectStmt:
			if c.interpSwitch(nil, nil, s.Body, true, e) {
				return true
			}
		case *ast.ExprStmt:
			if isPanic(c.pass.TypesInfo, s.X) {
				return true
			}
			c.scanCalls(s, e)
		default:
			c.scanCalls(s, e)
		}
	}
	return false
}

// interpIf interprets an if/else chain and merges the branch states.
func (c *checker) interpIf(s *ast.IfStmt, e *env) bool {
	if s.Init != nil {
		c.scanCalls(s.Init, e)
	}
	c.scanCalls(s.Cond, e)
	thenEnv := e.clone()
	thenTerm := c.interp(s.Body.List, thenEnv)
	elseEnv := e.clone()
	elseTerm := false
	switch el := s.Else.(type) {
	case *ast.BlockStmt:
		elseTerm = c.interp(el.List, elseEnv)
	case *ast.IfStmt:
		elseTerm = c.interpIf(el, elseEnv)
	case nil:
		// No else: elseEnv is the fall-through state.
	}
	return c.merge(s.Pos(), e, []*env{thenEnv, elseEnv}, []bool{thenTerm, elseTerm})
}

// interpSwitch interprets switch/type-switch/select bodies. implicitNone
// distinguishes select (some case always runs) from switch, where a
// missing default means the whole statement may be a no-op.
func (c *checker) interpSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, isSelect bool, e *env) bool {
	if init != nil {
		c.scanCalls(init, e)
	}
	if tag != nil {
		c.scanCalls(tag, e)
	}
	var envs []*env
	var terms []bool
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, x := range cl.List {
				c.scanCalls(x, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.scanCalls(cl.Comm, e)
			}
			stmts = cl.Body
		}
		ce := e.clone()
		envs = append(envs, ce)
		terms = append(terms, c.interp(stmts, ce))
	}
	if !isSelect && !hasDefault {
		// Possibly no case matches: entry state flows through.
		envs = append(envs, e.clone())
		terms = append(terms, false)
	}
	if len(envs) == 0 {
		return isSelect // empty select blocks forever
	}
	return c.merge(body.Pos(), e, envs, terms)
}

// interpLoop interprets a loop body, which must restore the lock state
// it entered with.
func (c *checker) interpLoop(body *ast.BlockStmt, pos token.Pos, e *env) {
	le := e.clone()
	term := c.interp(body.List, le)
	if !term && le.signature() != e.signature() {
		c.pass.Reportf(pos, "lock state changes across this loop body (%s before, %s after an iteration)",
			describeSig(e.signature()), describeSig(le.signature()))
	}
}

// merge reconciles branch exit states into *e; returns true when every
// branch terminated.
func (c *checker) merge(pos token.Pos, e *env, envs []*env, terms []bool) bool {
	var live []*env
	for i, be := range envs {
		if !terms[i] {
			live = append(live, be)
		}
	}
	if len(live) == 0 {
		return true
	}
	first := live[0].signature()
	for _, be := range live[1:] {
		if be.signature() != first {
			if !c.allowedSig(live) {
				c.pass.Reportf(pos, "branches disagree about held locks when control merges (%s vs %s)",
					describeSig(first), describeSig(be.signature()))
			}
			break
		}
	}
	// Continue with the state holding the fewest locks: conservative
	// against cascading nested-acquisition noise after a divergence.
	best := live[0]
	for _, be := range live[1:] {
		if len(be.held) < len(best.held) {
			best = be
		}
	}
	*e = *best
	return false
}

// allowedSig reports whether every lock involved in a divergence was
// acquired under a //repro:allow.
func (c *checker) allowedSig(envs []*env) bool {
	any := false
	for _, be := range envs {
		for _, h := range be.held {
			any = true
			if !h.allowed {
				return false
			}
		}
	}
	return any
}

func describeSig(sig string) string {
	if sig == "" {
		return "none held"
	}
	return sig
}

// checkLeaks reports locks still held (and not deferred-released) at an
// exit point.
func (c *checker) checkLeaks(e *env, at token.Pos) {
	for _, h := range e.held {
		if _, ok := e.deferred[h.key]; ok || h.allowed {
			continue
		}
		c.pass.Reportf(h.pos, "%s is locked here but not unlocked on the path leaving the function at line %d",
			h.key, c.pass.Fset.Position(at).Line)
	}
}

// applyDefer handles deferred releases, including unlocks buried in a
// deferred closure.
func (c *checker) applyDefer(s *ast.DeferStmt, e *env) {
	record := func(call *ast.CallExpr) {
		op, target, ok := mutexOp(c.pass.TypesInfo, call)
		if !ok || (op != "Unlock" && op != "RUnlock") {
			return
		}
		key, _, _ := c.describe(target)
		mode := byte('w')
		if op == "RUnlock" {
			mode = 'r'
		}
		e.deferred[key] = mode
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
		return
	}
	record(s.Call)
}

// scanCalls visits every call in a non-control statement or expression,
// in source order, applying mutex operations and call-site checks.
// Function literals are skipped: their bodies run when called, not
// here.
func (c *checker) scanCalls(n ast.Node, e *env) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if op, target, ok := mutexOp(c.pass.TypesInfo, n); ok {
				c.applyMutexOp(op, target, n.Pos(), e)
				return true
			}
			c.checkCall(n, e)
		}
		return true
	})
}

func (c *checker) applyMutexOp(op string, target ast.Expr, pos token.Pos, e *env) {
	key, root, typeKey := c.describe(target)
	_, allowed := c.df.AllowedAt(pos)
	switch op {
	case "Lock", "RLock":
		mode := byte('w')
		if op == "RLock" {
			mode = 'r'
		}
		if i := e.find(key); i >= 0 {
			prev := e.held[i]
			// Recursive RLock is legal; everything else deadlocks.
			if (mode == 'w' || prev.mode == 'w') && !allowed && !prev.allowed {
				c.pass.Reportf(pos, "%s is acquired here while already held since line %d (deadlock)",
					key, c.pass.Fset.Position(prev.pos).Line)
			}
			return
		}
		e.held = append(e.held, heldLock{key, root, typeKey, mode, pos, allowed})
	case "Unlock", "RUnlock":
		i := e.find(key)
		if i < 0 {
			return // released by a caller or helper; out of scope
		}
		want := byte('w')
		if op == "RUnlock" {
			want = 'r'
		}
		if e.held[i].mode != want && !allowed && !e.held[i].allowed {
			c.pass.Reportf(pos, "%s was %s-locked at line %d but released with %s",
				key, modeName(e.held[i].mode), c.pass.Fset.Position(e.held[i].pos).Line, op)
		}
		e.held = append(e.held[:i], e.held[i+1:]...)
	}
}

func modeName(m byte) string {
	if m == 'r' {
		return "read"
	}
	return "write"
}

// checkCall applies the interprocedural checks to a non-mutex call:
// calling a method whose summary acquires a lock the caller holds on
// the same receiver, and calling a mutation-plane method under a read
// lock.
func (c *checker) checkCall(call *ast.CallExpr, e *env) {
	if len(e.held) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
		return
	}
	if _, allowed := c.df.AllowedAt(call.Pos()); allowed {
		return
	}
	recvStr := types.ExprString(sel.X)
	recvType := typeKeyOf(c.pass.TypesInfo.Types[sel.X].Type)
	if recvType == "" {
		return
	}
	// Acquire-summary check: the callee takes a lock we already hold.
	for field, am := range c.calleeAcquires(fn) {
		tk := recvType + "." + field
		for _, h := range e.held {
			if h.typeKey != tk || h.root != recvStr || h.allowed {
				continue
			}
			if am == 'w' || h.mode == 'w' {
				c.pass.Reportf(call.Pos(), "calling %s acquires %s while it is already %s-locked at line %d (deadlock)",
					fn.Name(), h.key, modeName(h.mode), c.pass.Fset.Position(h.pos).Line)
				return
			}
		}
	}
	// Mutation-plane check: mutating the model under a read lock.
	for _, m := range c.mutation[recvType] {
		if m != fn.Name() {
			continue
		}
		for _, h := range e.held {
			if h.mode == 'r' && h.root == recvStr && !h.allowed {
				c.pass.Reportf(call.Pos(), "mutation-plane method %s called while read lock %s (line %d) is held; the mutation takes the write lock and deadlocks",
					fn.Name(), h.key, c.pass.Fset.Position(h.pos).Line)
				return
			}
		}
	}
}

// calleeAcquires returns fn's acquire summary, from this package's
// sweep or from an imported fact.
func (c *checker) calleeAcquires(fn *types.Func) map[string]byte {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	var fact AcquiresFact
	if !c.pass.ImportObjectFact(fn, &fact) {
		return nil
	}
	out := map[string]byte{}
	for _, f := range fact.Fields {
		if i := strings.LastIndexByte(f, ':'); i > 0 {
			out[f[:i]] = f[i+1]
		}
	}
	return out
}

func isPanic(info *types.Info, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			// break inside these doesn't leave the outer loop; a labeled
			// break would, but the approximation errs toward "has break",
			// which only weakens the never-falls-through claim.
			switch n.(type) {
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				return true // still scan for labeled/nested breaks crudely
			}
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}
