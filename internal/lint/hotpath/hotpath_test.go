package hotpath_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	root := filepath.Join("..", "testdata", "src")
	analysistest.Run(t, root, hotpath.Analyzer, "hotpathtest/a", "hotpathtest/b")
}
