// Package hotpath implements the navlint analyzer that keeps the
// repository's benchmarked serve paths allocation- and reflection-free.
//
// A function marked //repro:hotpath must not — directly or through any
// statically resolvable call chain — format with fmt, touch
// encoding/json, read the global clock, take an RWMutex write lock,
// launch a goroutine, or call the known-escaping stdlib helpers listed
// in internal/lint/rules. A //repro:allow(reason) on (or directly
// above) a call both suppresses the finding and stops the walk from
// descending into that callee, which is how deliberately cold branches
// (cache-miss weaves, shutdown drains) are carved out of a hot
// function.
//
// The walk is per-package: each function's transitive sins are
// summarized into an object fact, so when analysis crosses a package
// boundary it reads the callee's summary instead of its body. Calls
// through interfaces and function values do not resolve statically and
// are not followed; the AllocsPerRun guards remain the dynamic
// backstop for those.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annotations"
	"repro/internal/lint/rules"
)

// Analyzer is the hotpath rule with the repository's sin table.
var Analyzer = New(rules.StdlibSins)

// SinsFact is the exported per-function summary: every sin the
// function transitively commits, with the call chain that reaches it.
type SinsFact struct {
	Sins []SinInfo
}

// AFact marks SinsFact as an analysis fact.
func (*SinsFact) AFact() {}

// SinInfo is one transitive sin.
type SinInfo struct {
	// Kind is the rules.Sin classification.
	Kind uint8
	// Sink names the offending call ("fmt.Sprintf", "go statement").
	Sink string
	// Via is the call chain from this function's immediate callee down
	// to the sink, " → "-joined; empty for a direct sin.
	Via string
}

// maxSinsPerFunc bounds fact size; a function with more problems than
// this has bigger problems.
const maxSinsPerFunc = 16

// finding is a sin with the position of the immediate call that leads
// to it (always inside the package being analyzed).
type finding struct {
	pos token.Pos
	SinInfo
}

// New builds a hotpath analyzer over the given sin table (tests swap in
// small tables; the repo uses rules.StdlibSins).
func New(sins map[string]rules.Sin) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "hotpath",
		Doc:       "reports formatting, JSON, clock, write-lock and allocating calls reachable from //repro:hotpath functions",
		FactTypes: []analysis.Fact{(*SinsFact)(nil)},
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		run(pass, sins)
		return nil, nil
	}
	return a
}

type walker struct {
	pass *analysis.Pass
	sins map[string]rules.Sin
	// decls maps the functions declared (with bodies) in this package.
	decls map[*types.Func]*ast.FuncDecl
	// notes holds the parsed directives of the file each decl lives in.
	notes map[*ast.FuncDecl]*annotations.File
	// memo caches computed summaries; state guards against recursion.
	memo  map[*types.Func][]finding
	state map[*types.Func]int // 0 new, 1 in progress, 2 done
}

func run(pass *analysis.Pass, sins map[string]rules.Sin) {
	w := &walker{
		pass:  pass,
		sins:  sins,
		decls: map[*types.Func]*ast.FuncDecl{},
		notes: map[*ast.FuncDecl]*annotations.File{},
		memo:  map[*types.Func][]finding{},
		state: map[*types.Func]int{},
	}
	type hot struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var hots []hot
	for _, file := range pass.Files {
		df := annotations.Parse(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w.decls[fn] = fd
			w.notes[fd] = df
			if df.FuncDirective(fd, annotations.KindHotpath) != nil {
				hots = append(hots, hot{fn, fd})
			}
		}
	}
	// Summarize every function and export the non-clean summaries so
	// downstream packages can judge their own hot paths.
	for fn := range w.decls {
		if fs := w.summary(fn); len(fs) > 0 {
			fact := &SinsFact{}
			for _, f := range fs {
				fact.Sins = append(fact.Sins, f.SinInfo)
			}
			pass.ExportObjectFact(fn, fact)
		}
	}
	for _, h := range hots {
		for _, f := range w.summary(h.fn) {
			via := ""
			if f.Via != "" {
				via = " via " + f.Via
			}
			pass.Reportf(f.pos, "hotpath function %s calls %s (%s)%s; fix it or annotate the call with //repro:allow(reason)",
				h.fn.Name(), f.Sink, rules.Sin(f.Kind), via)
		}
	}
}

// summary computes (and memoizes) fn's transitive sins.
func (w *walker) summary(fn *types.Func) []finding {
	if w.state[fn] == 2 {
		return w.memo[fn]
	}
	if w.state[fn] == 1 {
		return nil // recursion: the cycle's sins surface on the other frames
	}
	w.state[fn] = 1
	decl := w.decls[fn]
	var fs []finding
	if decl != nil {
		fs = w.walkBody(decl)
	}
	w.state[fn] = 2
	w.memo[fn] = fs
	return fs
}

func (w *walker) walkBody(decl *ast.FuncDecl) []finding {
	df := w.notes[decl]
	var fs []finding
	add := func(f finding) {
		if len(fs) < maxSinsPerFunc {
			fs = append(fs, f)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, ok := df.AllowedAt(n.Pos()); ok {
				return false
			}
			add(finding{n.Pos(), SinInfo{uint8(rules.SinAlloc), "go statement", ""}})
			return false // the goroutine body runs off the hot path
		case *ast.CallExpr:
			callee := calleeFunc(w.pass.TypesInfo, n)
			if callee == nil {
				return true // func value / interface call: unresolvable
			}
			if _, ok := df.AllowedAt(n.Pos()); ok {
				return false // allow suppresses and prunes the walk
			}
			key := analysis.ObjectKey(callee)
			if sin, ok := w.sins[key]; ok {
				add(finding{n.Pos(), SinInfo{uint8(sin), key, ""}})
				return true
			}
			if isRWMutexWriteLock(callee) {
				add(finding{n.Pos(), SinInfo{uint8(rules.SinWriteLock), key, ""}})
				return true
			}
			if callee.Pkg() == nil {
				return true // builtins (len, append, ...)
			}
			for _, sub := range w.calleeSins(callee) {
				sub.pos = n.Pos()
				name := shortName(callee)
				if sub.Via == "" {
					sub.Via = name
				} else {
					sub.Via = name + " → " + sub.Via
				}
				add(sub)
			}
			return true
		}
		return true
	})
	return fs
}

// calleeSins returns the callee's summary: computed locally when the
// callee is declared in this package, imported as a fact otherwise.
func (w *walker) calleeSins(callee *types.Func) []finding {
	if _, local := w.decls[callee]; local {
		return w.summary(callee)
	}
	var fact SinsFact
	if !w.pass.ImportObjectFact(callee, &fact) {
		return nil // other-module or bodiless: assumed clean
	}
	fs := make([]finding, len(fact.Sins))
	for i, s := range fact.Sins {
		fs[i] = finding{SinInfo: s}
	}
	return fs
}

// calleeFunc statically resolves a call's target, or nil when the call
// goes through a function value or an interface.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch: target unknown
		}
	}
	return fn
}

// isRWMutexWriteLock matches Lock on a sync.RWMutex receiver, however
// the mutex is reached (field, embedding, pointer).
func isRWMutexWriteLock(fn *types.Func) bool {
	if fn.Name() != "Lock" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RWMutex" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// shortName renders a callee for chain messages: "Type.Method" for
// methods, the bare name otherwise.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return fmt.Sprintf("%s.%s", named.Obj().Name(), fn.Name())
	}
	return fn.Name()
}
