// Package dep exists to prove sins travel across package boundaries as
// facts: importers see Format's fmt call without reading this body.
package dep

import "fmt"

func Format(v int) string { return fmt.Sprintf("%d", v) }

func Clean(v int) int { return v + 1 }
