// Package b checks cross-package hotpath analysis: dep's summaries
// arrive as facts, not by re-reading dep's source.
package b

import "hotpathtest/dep"

//repro:hotpath
func Uses() string {
	_ = dep.Clean(1)
	return dep.Format(2) // want `hotpath function Uses calls fmt\.Sprintf \(reflective formatting\) via Format`
}

//repro:hotpath
func AllowedCross() string {
	//repro:allow(cold path: only runs on config reload)
	return dep.Format(3)
}
