// Package a is the hotpath analyzer's positive corpus: direct sins,
// transitive sins, the //repro:allow escape hatch and goroutine
// launches.
package a

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

type T struct {
	mu sync.RWMutex
}

//repro:hotpath
func Direct() string {
	s := fmt.Sprintf("x%d", 1)     // want `hotpath function Direct calls fmt\.Sprintf \(reflective formatting\)`
	_ = time.Now()                 // want `hotpath function Direct calls time\.Now \(global clock read\)`
	parts := strings.Split(s, "x") // want `hotpath function Direct calls strings\.Split \(known-escaping allocation\)`
	_, _ = json.Marshal(parts)     // want `hotpath function Direct calls encoding/json\.Marshal \(JSON encoding/decoding\)`
	return s
}

//repro:hotpath
func (t *T) WriteLocks() {
	t.mu.Lock() // want `hotpath function WriteLocks calls \(\*sync\.RWMutex\)\.Lock \(RWMutex write lock\)`
	t.mu.Unlock()
}

//repro:hotpath
func Transitive() {
	helper() // want `hotpath function Transitive calls fmt\.Errorf \(reflective formatting\) via helper`
}

//repro:hotpath
func TwoDeep() {
	outer() // want `hotpath function TwoDeep calls fmt\.Errorf \(reflective formatting\) via outer → helper`
}

func outer() { helper() }

func helper() { _ = fmt.Errorf("boom") }

//repro:hotpath
func Allowed() {
	//repro:allow(cold branch: formatting happens only on the miss path)
	helper()
	_ = readClock() //repro:allow(protocol requires a wall-clock stamp here)
}

func readClock() time.Time { return time.Now() }

//repro:hotpath
func Spawns() {
	go helper() // want `hotpath function Spawns calls go statement \(known-escaping allocation\)`
}

// NotAnnotated may sin freely; only //repro:hotpath functions are
// checked.
func NotAnnotated() string { return fmt.Sprintf("%d", 2) }
