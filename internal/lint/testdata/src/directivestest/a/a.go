// Package a is the directives corpus: every way to get the annotation
// grammar wrong.
package a

//repro:hotpth // want `malformed //repro: directive: unknown directive verb`
var x = 1

//repro:allow // want `malformed //repro: directive: allow requires a reason: //repro:allow\(reason\)`
var y = 2

//repro:plane(bogus) // want `malformed //repro: directive: plane must be one of serve, control, main`
var z = 3

//repro:allow(unclosed // want `malformed //repro: directive: unclosed '\(' in directive`
var w = 4

//repro:hotpath // want `//repro:hotpath is not attached to a function declaration and has no effect`
var v = 5

//repro:plane(serve)
var fileLevel = 6

//repro:plane(control) // want `multiple file-level //repro:plane directives in one file; only the first takes effect`
var conflicting = 7

// ok attaches its directive properly: no finding.
//
//repro:hotpath
func ok() int { return x + y + z + w + v + fileLevel + conflicting }
