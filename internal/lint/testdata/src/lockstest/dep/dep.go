// Package dep exports a type whose methods lock an exported mutex, so
// the acquire-summary fact must cross the package boundary.
package dep

import "sync"

type Box struct {
	Mu sync.RWMutex
	V  int
}

func (b *Box) Fill() {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.V++
}
