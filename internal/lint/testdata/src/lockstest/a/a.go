// Package a is the locks analyzer's positive corpus: leaks, divergent
// branches, loop imbalance, nested acquisition, wrong-mode release,
// read-locked mutation calls, and the clean idioms that must stay
// silent.
package a

import "sync"

type App struct {
	mu sync.RWMutex
	n  int
}

// Mutate takes the write lock; its acquire summary makes calling it
// under a held lock a finding.
func (a *App) Mutate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
}

// Mutate2 delegates, so it has no acquire summary of its own — the
// mutation-plane table catches it instead.
func (a *App) Mutate2() { a.lockedSet() }

func (a *App) lockedSet() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
}

func (a *App) ReadThenMutate() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.Mutate() // want `calling Mutate acquires a\.mu while it is already read-locked at line \d+ \(deadlock\)`
	return a.n
}

func (a *App) ReadThenMutate2() {
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.Mutate2() // want `mutation-plane method Mutate2 called while read lock a\.mu \(line \d+\) is held`
}

func (a *App) Leak(cond bool) {
	a.mu.Lock() // want `a\.mu is locked here but not unlocked on the path leaving the function at line \d+`
	if cond {
		return
	}
	a.mu.Unlock()
}

func (a *App) Divergent(cond bool) {
	if cond { // want `branches disagree about held locks when control merges`
		a.mu.Lock()
	}
	a.mu.Unlock()
}

func (a *App) LoopImbalance(n int) {
	for i := 0; i < n; i++ { // want `lock state changes across this loop body`
		a.mu.RLock()
	}
}

func (a *App) Nested() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want `a\.mu is acquired here while already held since line \d+ \(deadlock\)`
}

func (a *App) WrongMode() {
	a.mu.RLock()
	a.mu.Unlock() // want `a\.mu was read-locked at line \d+ but released with Unlock`
}

// --- clean idioms below: no diagnostics expected ---

func (a *App) CleanDefer() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.n
}

func (a *App) CleanDeferClosure() {
	a.mu.Lock()
	defer func() {
		a.n++
		a.mu.Unlock()
	}()
}

func (a *App) CleanBranches(cond bool) int {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
		return 0
	}
	n := a.n
	a.mu.Unlock()
	return n
}

func (a *App) CleanExplicitAcrossBranches(mode int) int {
	a.mu.RLock()
	var n int
	switch mode {
	case 0:
		n = a.n
	default:
		n = -a.n
	}
	a.mu.RUnlock()
	return n
}

func (a *App) CleanLoopBalanced(k int) int {
	total := 0
	for i := 0; i < k; i++ {
		a.mu.RLock()
		total += a.n
		a.mu.RUnlock()
	}
	return total
}

type striped struct {
	shards [4]sync.Mutex
}

// two locks two distinct shards: expression identity keeps them apart.
func (s *striped) two(i, j int) {
	s.shards[i].Lock()
	defer s.shards[i].Unlock()
	s.shards[j].Lock()
	s.shards[j].Unlock()
}

type handoff struct {
	mu sync.Mutex
}

// Acquire intentionally returns holding the lock; the allow documents
// the handoff.
func (h *handoff) Acquire() {
	//repro:allow(lock is handed to the caller, released by Release)
	h.mu.Lock()
}

func (h *handoff) Release() {
	h.mu.Unlock()
}
