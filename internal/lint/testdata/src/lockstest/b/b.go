// Package b checks that lock-acquire summaries arrive from other
// packages as facts.
package b

import "lockstest/dep"

func Use(box *dep.Box) int {
	box.Mu.RLock()
	defer box.Mu.RUnlock()
	box.Fill() // want `calling Fill acquires box\.Mu while it is already read-locked at line \d+ \(deadlock\)`
	return box.V
}

func CleanUse(box *dep.Box) int {
	box.Mu.RLock()
	defer box.Mu.RUnlock()
	return box.V
}
