// Package a is the apihandler corpus: a dispatcher with guarded,
// switch-guarded, unguarded and orphaned handlers, strict-decode
// violations and //repro:nostore checks.
package a

import (
	"encoding/json"
	"net/http"
)

type S struct{}

func allowMethods(w http.ResponseWriter, method string, allowed ...string) bool {
	for _, m := range allowed {
		if method == m {
			return true
		}
	}
	w.WriteHeader(http.StatusMethodNotAllowed)
	return false
}

//repro:apimux
func (s *S) ServeAPI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	switch r.URL.Path {
	case "/good":
		if allowMethods(w, r.Method, http.MethodGet) {
			s.apiGood(w)
		}
	case "/switch":
		switch r.Method {
		case http.MethodGet:
			s.apiSwitchGuarded(w)
		default:
			allowMethods(w, r.Method, http.MethodGet)
		}
	case "/bare":
		s.apiUnguarded(w) // want `handler apiUnguarded dispatched without a method guard \(allowMethods\)`
	case "/decode":
		if allowMethods(w, r.Method, http.MethodPut) {
			s.apiBadDecode(w, r)
		}
	case "/stream":
		if allowMethods(w, r.Method, http.MethodPut) {
			s.apiAllowedDecode(w, r)
		}
	case "/escape":
		//repro:allow(single-method prefix tree, guard lives in the helper)
		s.apiEscaped(w)
	}
}

func (s *S) apiGood(w http.ResponseWriter) { w.WriteHeader(http.StatusOK) }

func (s *S) apiSwitchGuarded(w http.ResponseWriter) { w.WriteHeader(http.StatusOK) }

func (s *S) apiUnguarded(w http.ResponseWriter) { w.WriteHeader(http.StatusOK) }

func (s *S) apiEscaped(w http.ResponseWriter) { w.WriteHeader(http.StatusOK) }

func (s *S) apiOrphan(w http.ResponseWriter) { // want `handler apiOrphan is never dispatched from the //repro:apimux function`
	w.WriteHeader(http.StatusOK)
}

func (s *S) apiBadDecode(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	_ = json.Unmarshal(nil, &v) // want `handler apiBadDecode decodes JSON with Unmarshal; use decodeStrict`
	w.WriteHeader(http.StatusOK)
}

func (s *S) apiAllowedDecode(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	//repro:allow(streaming endpoint, strict decode happens per-chunk downstream)
	_ = json.Unmarshal(nil, &v)
	w.WriteHeader(http.StatusOK)
}

//repro:nostore
func (s *S) serveStats(w http.ResponseWriter, r *http.Request) { // want `serveStats is marked //repro:nostore but never sets Cache-Control: no-store`
	w.WriteHeader(http.StatusOK)
}

//repro:nostore
func (s *S) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
}
