// Package b: a dispatcher that forgets Cache-Control: no-store.
package b

import "net/http"

type S struct{}

func allowMethods(w http.ResponseWriter, method string, allowed ...string) bool {
	return method == allowed[0]
}

//repro:apimux
func (s *S) ServeAPI(w http.ResponseWriter, r *http.Request) { // want `//repro:apimux dispatcher ServeAPI never sets Cache-Control: no-store`
	if allowMethods(w, r.Method, http.MethodGet) {
		s.apiX(w)
	}
}

func (s *S) apiX(w http.ResponseWriter) { w.WriteHeader(http.StatusOK) }
