// Package nav plays the navigation layer: importing the serving stack
// re-tangles the planes and must be reported.
package nav

import (
	"planestest/core"
	_ "planestest/srv" // want `plane violation: planestest/nav must not import planestest/srv`
)

func Entry(a *core.App) int { return a.Get() }
