// This whole file is control plane.
//
//repro:plane(control)

package srv

import "planestest/core"

func FileControl(a *core.App) {
	a.Set(4)
}
