// Package srv plays the serving stack: files default to the serve
// plane, which may read but not mutate.
package srv

import "planestest/core"

func Serve(a *core.App) int {
	return a.Get()
}

func BadMutate(a *core.App) {
	a.Set(1) // want `serve-plane function BadMutate calls mutation-plane method \(planestest/core\.App\)\.Set`
}

// Control is a control-plane entry point sharing a serve-plane file.
//
//repro:plane(control)
func Control(a *core.App) {
	a.Set(2)
}

func AllowedMutate(a *core.App) {
	//repro:allow(startup-only seeding, runs before the listener opens)
	a.Set(3)
}
