// Package core is the planes corpus's stand-in application core: Get
// is the read plane, Set the mutation plane.
package core

type App struct {
	v int
}

func (a *App) Get() int { return a.v }

func (a *App) Set(v int) { a.v = v }
