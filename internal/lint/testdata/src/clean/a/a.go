// Package a is the negative corpus: every annotation used correctly,
// every idiom the analyzers must tolerate. All five analyzers run over
// it and must stay silent.
package a

import (
	"net/http"
	"sync"
)

type App struct {
	mu sync.RWMutex
	n  int
}

// Read is the hot read path: read lock, no formatting, no clock, no
// allocation.
//
//repro:hotpath
func (a *App) Read() int {
	a.mu.RLock()
	n := a.n
	a.mu.RUnlock()
	return n
}

// Write is the mutation plane: write lock under defer.
func (a *App) Write(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n = v
}

// ReadInto takes the branchy unlock path: explicit per-branch release.
func (a *App) ReadInto(out *int) bool {
	a.mu.RLock()
	if out == nil {
		a.mu.RUnlock()
		return false
	}
	*out = a.n
	a.mu.RUnlock()
	return true
}

type S struct {
	app *App
}

func allowMethods(w http.ResponseWriter, method string, allowed ...string) bool {
	for _, m := range allowed {
		if method == m {
			return true
		}
	}
	w.WriteHeader(http.StatusMethodNotAllowed)
	return false
}

//repro:apimux
func (s *S) ServeAPI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	switch r.URL.Path {
	case "/read":
		if allowMethods(w, r.Method, http.MethodGet) {
			s.apiRead(w)
		}
	case "/write":
		switch r.Method {
		case http.MethodPut:
			s.apiWrite(w, r)
		default:
			allowMethods(w, r.Method, http.MethodPut)
		}
	}
}

// apiWrite is a control-plane handler; the plane directive marks the
// function, not the file.
//
//repro:plane(control)
func (s *S) apiWrite(w http.ResponseWriter, r *http.Request) {
	s.app.Write(1)
	w.WriteHeader(http.StatusOK)
}

func (s *S) apiRead(w http.ResponseWriter) {
	_ = s.app.Read()
	w.WriteHeader(http.StatusOK)
}

//repro:nostore
func (s *S) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
}
