package planes_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/planes"
	"repro/internal/lint/rules"
)

func TestPlanes(t *testing.T) {
	root := filepath.Join("..", "testdata", "src")
	a := planes.New(
		[]rules.ImportRule{{Pkg: "planestest/nav", Forbid: []string{"planestest/srv"}}},
		map[string][]string{"planestest/core.App": {"Set"}},
		"planestest/srv",
	)
	analysistest.Run(t, root, a, "planestest/nav", "planestest/srv")
}
