// Package planes implements the navlint analyzer that keeps the
// navigational aspect separated — the paper's core claim — by machine
// rather than by convention.
//
// Two checks:
//
//  1. Import layering. rules.Layering forbids the foundation layers
//     (navigation, conceptual, presentation, storage, the XML stack)
//     from importing the application core, the serving stack or the
//     control plane; analytics from importing core or server; core
//     from importing server; and so on. A violation is reported at the
//     offending import spec.
//
//  2. Mutation confinement. Inside the serve-plane package
//     (rules.ServePlanePkg), files default to the serve plane and may
//     only use the read plane of core.App and conceptual.Store. A call
//     to a mutation-plane method (rules.MutationPlane) is reported
//     unless the file carries //repro:plane(control) — the /api/v1
//     control surface — or the enclosing function does (the adapt
//     loop, which shares a file with serve handlers). A function-level
//     directive overrides the file's.
package planes

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annotations"
	"repro/internal/lint/rules"
)

// Analyzer is the planes rule with the repository's layering and
// mutation tables.
var Analyzer = New(rules.Layering, rules.MutationPlane, rules.ServePlanePkg)

// New builds a planes analyzer over explicit tables (tests supply small
// ones).
func New(layering []rules.ImportRule, mutation map[string][]string, servePkg string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "planes",
		Doc:  "enforces the import layering between planes and confines mutation-plane calls to control-plane code",
		Run: func(pass *analysis.Pass) (any, error) {
			checkImports(pass, layering)
			if matchPattern(servePkg, pass.Pkg.Path()) {
				checkMutationConfinement(pass, mutation)
			}
			return nil, nil
		},
	}
}

// matchPattern reports whether path matches pattern, where a trailing
// "/..." matches the package and its subtree.
func matchPattern(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

func checkImports(pass *analysis.Pass, layering []rules.ImportRule) {
	for _, rule := range layering {
		if !matchPattern(rule.Pkg, pass.Pkg.Path()) {
			continue
		}
		for _, file := range pass.Files {
			for _, spec := range file.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				for _, forbid := range rule.Forbid {
					if matchPattern(forbid, path) {
						pass.Reportf(spec.Pos(), "plane violation: %s must not import %s (layering rule for %s)",
							pass.Pkg.Path(), path, rule.Pkg)
					}
				}
			}
		}
	}
}

func checkMutationConfinement(pass *analysis.Pass, mutation map[string][]string) {
	for _, file := range pass.Files {
		df := annotations.Parse(pass.Fset, file)
		filePlane, ok := df.FilePlane(file)
		if !ok {
			filePlane = annotations.PlaneServe
		}
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			plane := filePlane
			if d := df.FuncDirective(fd, annotations.KindPlane); d != nil {
				plane = d.Arg
			}
			if plane != annotations.PlaneServe {
				continue // control and main planes may mutate
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				typeKey, method, ok := mutationCall(pass.TypesInfo, call, mutation)
				if !ok {
					return true
				}
				if _, allowed := df.AllowedAt(call.Pos()); allowed {
					return true
				}
				pass.Reportf(call.Pos(), "serve-plane function %s calls mutation-plane method (%s).%s; move it to control-plane code or mark it //repro:plane(control)",
					fd.Name.Name, typeKey, method)
				return true
			})
		}
	}
}

// mutationCall reports whether call statically targets a method listed
// in the mutation-plane table.
func mutationCall(info *types.Info, call *ast.CallExpr, mutation map[string][]string) (typeKey, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, m := range mutation[key] {
		if m == fn.Name() {
			return key, m, true
		}
	}
	return "", "", false
}
