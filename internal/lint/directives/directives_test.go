package directives_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/directives"
)

func TestDirectives(t *testing.T) {
	root := filepath.Join("..", "testdata", "src")
	analysistest.Run(t, root, directives.Analyzer, "directivestest/a")
}
