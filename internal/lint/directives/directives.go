// Package directives implements the navlint analyzer that validates
// the //repro: annotation grammar itself, so a typo cannot silently
// disable a rule: a misspelled verb, an allow without a reason, an
// unknown plane name, a hotpath/apimux/nostore directive floating on a
// line no function declaration claims, or two file-level plane
// directives fighting over the same file are all reported here rather
// than quietly ignored by the analyzers that consume them.
package directives

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annotations"
)

// Analyzer validates //repro: directives.
var Analyzer = &analysis.Analyzer{
	Name: "directives",
	Doc:  "rejects malformed or misplaced //repro: annotations",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		df := annotations.Parse(pass.Fset, file)
		if len(df.All) == 0 {
			continue
		}
		// Which directive lines does some function declaration claim?
		claimed := map[int]bool{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				start := pass.Fset.Position(fd.Doc.Pos()).Line
				end := pass.Fset.Position(fd.Doc.End()).Line
				for line := start; line <= end; line++ {
					claimed[line] = true
				}
			}
			line := pass.Fset.Position(fd.Pos()).Line
			claimed[line] = true
			claimed[line-1] = true
		}
		filePlanes := 0
		for _, d := range df.All {
			if d.Malformed != "" {
				pass.Reportf(d.Pos, "malformed //repro: directive: %s", d.Malformed)
				continue
			}
			switch d.Kind {
			case annotations.KindHotpath, annotations.KindAPIMux, annotations.KindNoStore:
				if !claimed[d.Line] {
					pass.Reportf(d.Pos, "//repro:%s is not attached to a function declaration and has no effect", d.Kind)
				}
			case annotations.KindPlane:
				if !claimed[d.Line] {
					filePlanes++
					if filePlanes > 1 {
						pass.Reportf(d.Pos, "multiple file-level //repro:plane directives in one file; only the first takes effect")
					}
				}
			}
		}
	}
	return nil, nil
}
