// Package annotations parses the //repro: directive comments the navlint
// analyzers act on. The grammar, in full:
//
//	//repro:hotpath
//	    On a function declaration (doc comment or the declaration line):
//	    the function is on a benchmarked hot path; the hotpath analyzer
//	    forbids it — and everything it statically, transitively calls —
//	    from formatting, JSON codecs, time.Now, RWMutex write locks and
//	    the other known-allocating constructs in internal/lint/rules.
//
//	//repro:allow(reason)
//	    On (or on the line directly above) an offending line: suppresses
//	    navlint findings there. The reason is mandatory; an allow on a
//	    call also stops the hotpath walk from descending into the callee
//	    (the escape hatch for cold branches like cache-miss weaves).
//
//	//repro:plane(control) — also: serve, main
//	    On a file (anywhere at top level) or on a function declaration:
//	    assigns the file or function to a plane. In internal/server,
//	    files default to the serve plane, which must not call
//	    mutation-plane methods of core.App or conceptual.Store; the
//	    control plane (the /api/v1 handlers, the adapt loop) may.
//	    A function-level directive overrides the file's.
//
//	//repro:apimux
//	    On the function that dispatches /api/v1 requests: the apihandler
//	    analyzer checks it sets Cache-Control: no-store before any
//	    dispatch and that every api* handler it mounts is method-guarded.
//
//	//repro:nostore
//	    On a handler that serves live operational or per-visitor state:
//	    the apihandler analyzer checks the body sets
//	    Cache-Control: no-store.
//
// Directives are comments, so they cost nothing at runtime; navlint's
// directives analyzer rejects malformed ones (unknown verb, missing
// allow reason, unknown plane) so a typo cannot silently disable a rule.
package annotations

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix starts every navlint directive comment.
const Prefix = "//repro:"

// Kind enumerates the directive verbs.
type Kind string

const (
	KindHotpath Kind = "hotpath"
	KindAllow   Kind = "allow"
	KindPlane   Kind = "plane"
	KindAPIMux  Kind = "apimux"
	KindNoStore Kind = "nostore"
)

// Plane names accepted by //repro:plane(...).
const (
	PlaneServe   = "serve"
	PlaneControl = "control"
	PlaneMain    = "main"
)

// Directive is one parsed //repro: comment.
type Directive struct {
	Kind Kind
	// Arg is the parenthesized argument (the allow reason, the plane
	// name); empty for argument-less verbs.
	Arg string
	Pos token.Pos
	// Line is the line the comment ends on.
	Line int
	// Malformed describes a grammar violation ("" when well-formed).
	Malformed string
}

// File is the parsed directive set of one source file.
type File struct {
	fset *token.FileSet
	// All lists every directive in source order (including malformed
	// ones, for the directives analyzer).
	All []Directive
	// byLine indexes well-formed directives by the line they end on.
	byLine map[int][]Directive
}

// Parse scans one file's comments for directives.
func Parse(fset *token.FileSet, f *ast.File) *File {
	df := &File{fset: fset, byLine: map[int][]Directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, Prefix) {
				continue
			}
			d := parseDirective(c.Text)
			d.Pos = c.Pos()
			d.Line = fset.Position(c.End()).Line
			df.All = append(df.All, d)
			if d.Malformed == "" {
				df.byLine[d.Line] = append(df.byLine[d.Line], d)
			}
		}
	}
	return df
}

// parseDirective interprets the text after //repro: .
func parseDirective(text string) Directive {
	body := strings.TrimPrefix(text, Prefix)
	verb, arg := body, ""
	// The verb runs to the first '(' or whitespace; a parenthesized
	// argument may contain spaces, and anything after the argument (or
	// after the first space of an argument-less directive) is
	// commentary.
	if i := strings.IndexAny(body, "( \t"); i >= 0 {
		verb = body[:i]
		if body[i] == '(' {
			rest := body[i+1:]
			j := strings.IndexByte(rest, ')')
			if j < 0 {
				return Directive{Kind: Kind(verb), Malformed: "unclosed '(' in directive"}
			}
			arg = strings.TrimSpace(rest[:j])
		}
	}
	d := Directive{Kind: Kind(verb), Arg: arg}
	switch d.Kind {
	case KindHotpath, KindAPIMux, KindNoStore:
		if arg != "" {
			d.Malformed = "directive takes no argument"
		}
	case KindAllow:
		if arg == "" {
			d.Malformed = "allow requires a reason: //repro:allow(reason)"
		}
	case KindPlane:
		switch arg {
		case PlaneServe, PlaneControl, PlaneMain:
		default:
			d.Malformed = "plane must be one of serve, control, main"
		}
	default:
		d.Malformed = "unknown directive verb"
	}
	return d
}

// kindAt returns the first well-formed directive of the given kind
// ending on line.
func (df *File) kindAt(line int, kind Kind) *Directive {
	for i := range df.byLine[line] {
		if df.byLine[line][i].Kind == kind {
			return &df.byLine[line][i]
		}
	}
	return nil
}

// AllowedAt reports whether pos is covered by an //repro:allow: a
// directive on the same line, or one on the line directly above (a
// standalone comment ahead of the statement).
func (df *File) AllowedAt(pos token.Pos) (reason string, ok bool) {
	line := df.fset.Position(pos).Line
	if d := df.kindAt(line, KindAllow); d != nil {
		return d.Arg, true
	}
	if d := df.kindAt(line-1, KindAllow); d != nil {
		return d.Arg, true
	}
	return "", false
}

// FuncDirective returns the directive of the given kind attached to
// decl: in its doc comment, or ending on the line its func keyword sits
// on, or on the line directly above it (a detached comment).
func (df *File) FuncDirective(decl *ast.FuncDecl, kind Kind) *Directive {
	if decl.Doc != nil {
		start := df.fset.Position(decl.Doc.Pos()).Line
		end := df.fset.Position(decl.Doc.End()).Line
		for line := start; line <= end; line++ {
			if d := df.kindAt(line, kind); d != nil {
				return d
			}
		}
	}
	line := df.fset.Position(decl.Pos()).Line
	if d := df.kindAt(line, kind); d != nil {
		return d
	}
	if d := df.kindAt(line-1, kind); d != nil {
		return d
	}
	return nil
}

// FilePlane returns the file-level plane: the first well-formed plane
// directive not attached to a function declaration. ok is false when
// the file declares none.
func (df *File) FilePlane(f *ast.File) (plane string, ok bool) {
	funcLines := map[int]bool{}
	for _, decl := range f.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		if !isFunc {
			continue
		}
		if fd.Doc != nil {
			start := df.fset.Position(fd.Doc.Pos()).Line
			end := df.fset.Position(fd.Doc.End()).Line
			for line := start; line <= end; line++ {
				funcLines[line] = true
			}
		}
		funcLines[df.fset.Position(fd.Pos()).Line] = true
	}
	for _, d := range df.All {
		if d.Kind == KindPlane && d.Malformed == "" && !funcLines[d.Line] {
			return d.Arg, true
		}
	}
	return "", false
}
