// Package rules is the single place the repository's architectural
// invariants are written down as data: which standard-library calls are
// hot-path sins, which core methods form the mutation plane, and which
// packages may import which. The analyzers in internal/lint interpret
// these tables; changing an invariant is an edit here, not in analyzer
// logic.
package rules

// Sin classifies why a call is forbidden on a //repro:hotpath function.
type Sin uint8

const (
	// SinFormat is reflective formatting (fmt.Sprintf and family):
	// interface boxing plus a scan of the format string, on a path
	// budgeted in nanoseconds.
	SinFormat Sin = iota + 1
	// SinJSON is an encoding/json marshal, unmarshal or codec
	// construction — reflection and allocation by design.
	SinJSON
	// SinTimeNow is a clock read; hot paths take time from an injected
	// func() time.Time (testable, and elidable) rather than the global
	// clock. Suppress at genuinely required sites with //repro:allow.
	SinTimeNow
	// SinWriteLock is acquiring an RWMutex write lock: writers stall
	// every concurrent reader of the serve path. Plain sync.Mutex locks
	// (sharded, short) are deliberately not sins.
	SinWriteLock
	// SinAlloc is a known-escaping construct: stdlib helpers whose
	// contract forces a heap allocation per call (strings.Split,
	// strconv.Itoa, hash constructors, buffer constructors, goroutine
	// launches).
	SinAlloc
)

// String names the sin for diagnostics.
func (s Sin) String() string {
	switch s {
	case SinFormat:
		return "reflective formatting"
	case SinJSON:
		return "JSON encoding/decoding"
	case SinTimeNow:
		return "global clock read"
	case SinWriteLock:
		return "RWMutex write lock"
	case SinAlloc:
		return "known-escaping allocation"
	}
	return "unknown sin"
}

// StdlibSins models the standard library for the hotpath walk: calls to
// these functions (keyed by types.Func full name) are sins; stdlib
// functions not listed are assumed clean, since the walk does not
// descend into stdlib bodies. The table errs toward the calls that have
// actually appeared on — or near — this repository's hot paths.
var StdlibSins = map[string]Sin{
	// fmt: everything that formats.
	"fmt.Sprintf":  SinFormat,
	"fmt.Sprint":   SinFormat,
	"fmt.Sprintln": SinFormat,
	"fmt.Errorf":   SinFormat,
	"fmt.Fprintf":  SinFormat,
	"fmt.Fprint":   SinFormat,
	"fmt.Fprintln": SinFormat,
	"fmt.Printf":   SinFormat,
	"fmt.Print":    SinFormat,
	"fmt.Println":  SinFormat,
	"fmt.Appendf":  SinFormat,
	"fmt.Append":   SinFormat,
	"fmt.Appendln": SinFormat,

	// encoding/json: codecs and their constructors.
	"encoding/json.Marshal":                     SinJSON,
	"encoding/json.MarshalIndent":               SinJSON,
	"encoding/json.Unmarshal":                   SinJSON,
	"encoding/json.NewEncoder":                  SinJSON,
	"encoding/json.NewDecoder":                  SinJSON,
	"(*encoding/json.Encoder).Encode":           SinJSON,
	"(*encoding/json.Decoder).Decode":           SinJSON,
	"(encoding/json.Marshaler).MarshalJSON":     SinJSON,
	"(*encoding/json.RawMessage).UnmarshalJSON": SinJSON,

	// The global clock. time.Since is time.Now in a trenchcoat.
	"time.Now":   SinTimeNow,
	"time.Since": SinTimeNow,

	// Write locks (also matched structurally by receiver type, so
	// embedded RWMutexes are caught; listed here for completeness).
	"(*sync.RWMutex).Lock": SinWriteLock,

	// Known-escaping constructs.
	"strings.Split":         SinAlloc,
	"strings.SplitN":        SinAlloc,
	"strings.SplitAfter":    SinAlloc,
	"strings.Fields":        SinAlloc,
	"strings.Join":          SinAlloc,
	"strings.Repeat":        SinAlloc,
	"strings.ReplaceAll":    SinAlloc,
	"strings.ToLower":       SinAlloc,
	"strings.ToUpper":       SinAlloc,
	"strconv.Itoa":          SinAlloc,
	"strconv.FormatInt":     SinAlloc,
	"strconv.FormatUint":    SinAlloc,
	"strconv.FormatFloat":   SinAlloc,
	"strconv.AppendQuote":   SinAlloc,
	"strconv.Quote":         SinAlloc,
	"hash/fnv.New32":        SinAlloc,
	"hash/fnv.New32a":       SinAlloc,
	"hash/fnv.New64":        SinAlloc,
	"hash/fnv.New64a":       SinAlloc,
	"hash/fnv.New128":       SinAlloc,
	"hash/fnv.New128a":      SinAlloc,
	"hash/maphash.Bytes":    SinAlloc,
	"bytes.NewBuffer":       SinAlloc,
	"bytes.NewBufferString": SinAlloc,
	"bytes.Split":           SinAlloc,
	"bytes.Join":            SinAlloc,
	"regexp.Compile":        SinAlloc,
	"regexp.MustCompile":    SinAlloc,
	"sort.Strings":          SinAlloc,
	"sort.Slice":            SinAlloc,
}

// MutationPlane lists, per receiver type (keyed by package path +
// "." + type name), the methods that mutate the woven model or the
// conceptual store. The planes analyzer confines calls to them inside
// ServePlanePkg to //repro:plane(control) files/functions; the locks
// analyzer reports calling one while a read lock on the same receiver
// type is held (the mutation takes the write lock — self-deadlock).
var MutationPlane = map[string][]string{
	"repro/internal/core.App": {
		"SetAccessStructure",
		"SetAccessStructures",
		"SetStylesheet",
		"SetStylesheetXML",
		"InvalidateDocument",
		// Replication-plane entry points ride the same confinement: the
		// serve path has no business exporting snapshots either.
		"ExportSnapshot",
	},
	"repro/internal/conceptual.Store": {
		"SetAttr",
		"SetAttrs",
	},
}

// ServePlanePkg is the package whose files default to the serve plane:
// calls to MutationPlane methods there are confined to files or
// functions marked //repro:plane(control).
const ServePlanePkg = "repro/internal/server"

// ImportRule forbids a package (and its subtree, with a trailing
// "/...") from importing any of the listed packages/subtrees.
type ImportRule struct {
	Pkg    string
	Forbid []string
}

// upperPlanes is what the foundation layers must never reach back into.
var upperPlanes = []string{
	"repro/internal/server",
	"repro/internal/api",
	"repro/internal/core",
	"repro/internal/analytics",
	"repro/client",
	"repro/cmd/...",
}

// Layering is the import lattice: the navigational aspect and the
// layers below it must not know about the application core, the serving
// stack or the control plane. Several of these edges would also be
// import cycles today; the rules keep them failing with a named reason
// if the cycle is ever broken by moving code, and catch the acyclic
// ones (e.g. analytics → core) the compiler would happily accept.
var Layering = []ImportRule{
	{Pkg: "repro/internal/navigation", Forbid: upperPlanes},
	{Pkg: "repro/internal/conceptual", Forbid: upperPlanes},
	{Pkg: "repro/internal/presentation", Forbid: upperPlanes},
	{Pkg: "repro/internal/aspect", Forbid: upperPlanes},
	{Pkg: "repro/internal/storage", Forbid: upperPlanes},
	{Pkg: "repro/internal/xmldom", Forbid: upperPlanes},
	{Pkg: "repro/internal/xlink", Forbid: upperPlanes},
	{Pkg: "repro/internal/xpath", Forbid: upperPlanes},
	{Pkg: "repro/internal/xpointer", Forbid: upperPlanes},
	{Pkg: "repro/internal/difflib", Forbid: upperPlanes},
	// obs is infrastructure every layer may instrument with; it must
	// never know who uses it.
	{Pkg: "repro/internal/obs", Forbid: upperPlanes},
	// analytics derives structures for core to install, but must not
	// reach core (or the server) itself — the adapt loop wires them.
	{Pkg: "repro/internal/analytics", Forbid: []string{
		"repro/internal/server", "repro/internal/api",
		"repro/internal/core", "repro/client", "repro/cmd/...",
	}},
	// core is the woven application; the serving stack and wire layer
	// sit above it.
	{Pkg: "repro/internal/core", Forbid: []string{
		"repro/internal/server", "repro/internal/api", "repro/client", "repro/cmd/...",
	}},
	// The wire-types package stays pure: no server, no core.
	{Pkg: "repro/internal/api", Forbid: []string{
		"repro/internal/server", "repro/internal/core", "repro/client", "repro/cmd/...",
	}},
	// The client speaks the wire protocol only.
	{Pkg: "repro/client", Forbid: []string{
		"repro/internal/server", "repro/internal/core", "repro/cmd/...",
	}},
	// The load harness sees only what a browser sees: the wire client
	// and HTTP. Importing the serving stack, the core, or even the
	// navigation package would make its history mirror a tautology
	// instead of an independent check of the server's semantics.
	{Pkg: "repro/internal/load", Forbid: []string{
		"repro/internal/server", "repro/internal/core", "repro/internal/navigation",
		"repro/internal/analytics", "repro/cmd/...",
	}},
}
