// Package analysis is a self-contained mirror of the
// golang.org/x/tools/go/analysis API surface that navlint's analyzers
// are written against. The toolchain this repository builds with has no
// module proxy access, so instead of vendoring x/tools we implement the
// small slice of it the suite needs: Analyzer, Pass, Diagnostic and
// per-object facts. The shapes (and field names) deliberately match
// x/tools so the analyzers can be moved onto the real framework by
// changing one import line.
//
// Two drivers run these analyzers (see cmd/navlint): a standalone
// multichecker that loads the whole module and runs the suite over every
// package in dependency order, and a `go vet -vettool` unitchecker that
// analyzes one package per invocation and exchanges facts through vetx
// files. Facts make transitive analyses (the hotpath call-graph walk)
// work identically in both modes: an analyzer summarizes each function
// it sees and exports the summary as a fact; when analysis crosses a
// package boundary it imports the callee's fact instead of its body.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the rule; diagnostics are printed as
	// "pos: [name] message" so a failure names the rule that fired.
	Name string
	// Doc is the one-paragraph description `navlint help` prints.
	Doc string
	// FactTypes lists the fact value types the analyzer exports and
	// imports. Every type must be gob-encodable; facts of unlisted
	// types are rejected.
	FactTypes []Fact
	// Run executes the analyzer on one package.
	Run func(*Pass) (any, error)
}

// Fact is a package- or object-associated datum an analyzer exports for
// downstream packages. The marker method keeps arbitrary values out of
// the fact store.
type Fact interface{ AFact() }

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// Facts is the driver-owned store this pass reads dependency facts
	// from and writes its own into.
	Facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact associates fact with obj for downstream packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if err := p.Facts.put(p.Analyzer, obj, fact); err != nil {
		panic(fmt.Sprintf("analysis: exporting %T for %v: %v", fact, obj, err))
	}
}

// ImportObjectFact copies the fact associated with obj (by this
// analyzer, possibly in another package) into *fact and reports whether
// one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts.get(p.Analyzer, obj, fact)
}

// ObjectKey is the canonical cross-package name of an object: the
// types.Func full name for functions and methods (e.g.
// "(*repro/internal/core.App).RenderPageCached"), package path + "." +
// name otherwise. It is identical whether the object was type-checked
// from source or read back from export data, which is what lets facts
// written by one driver mode be read by the other.
func ObjectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		if orig := f.Origin(); orig != nil {
			f = orig // generic instantiations share the origin's facts
		}
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// factKey identifies one stored fact.
type factKey struct {
	Analyzer string
	Object   string
	Type     string
}

// FactStore holds gob-encoded facts keyed by (analyzer, object, fact
// type). The standalone driver keeps one store for the whole run; the
// unitchecker driver fills it from the dependency vetx files and
// serializes it back out for the packages that import this one.
type FactStore struct {
	m map[factKey][]byte
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey][]byte{}} }

func factTypeName(fact Fact) string { return reflect.TypeOf(fact).String() }

func (s *FactStore) put(a *Analyzer, obj types.Object, fact Fact) error {
	if err := checkFactType(a, fact); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(fact).Elem()); err != nil {
		return err
	}
	s.m[factKey{a.Name, ObjectKey(obj), factTypeName(fact)}] = buf.Bytes()
	return nil
}

func (s *FactStore) get(a *Analyzer, obj types.Object, fact Fact) bool {
	raw, ok := s.m[factKey{a.Name, ObjectKey(obj), factTypeName(fact)}]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).DecodeValue(reflect.ValueOf(fact).Elem()); err != nil {
		return false
	}
	return true
}

func checkFactType(a *Analyzer, fact Fact) error {
	name := factTypeName(fact)
	for _, ft := range a.FactTypes {
		if factTypeName(ft) == name {
			return nil
		}
	}
	return fmt.Errorf("fact type %s not declared in %s.FactTypes", name, a.Name)
}

// wireFact is the serialized form of one fact in a vetx file.
type wireFact struct {
	Analyzer string
	Object   string
	Type     string
	Data     []byte
}

// Encode serializes the whole store (a vetx payload).
func (s *FactStore) Encode() ([]byte, error) {
	facts := make([]wireFact, 0, len(s.m))
	for k, v := range s.m {
		facts = append(facts, wireFact{k.Analyzer, k.Object, k.Type, v})
	}
	// Deterministic output keeps vetx files cache-stable.
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Merge decodes a vetx payload produced by Encode into the store.
func (s *FactStore) Merge(raw []byte) error {
	var facts []wireFact
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&facts); err != nil {
		return err
	}
	for _, f := range facts {
		s.m[factKey{f.Analyzer, f.Object, f.Type}] = f.Data
	}
	return nil
}
