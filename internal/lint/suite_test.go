package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/apihandler"
	"repro/internal/lint/directives"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/locks"
	"repro/internal/lint/planes"
)

// TestNegativeCorpus runs every analyzer over the clean corpus, which
// uses all the annotations correctly and must produce zero findings.
func TestNegativeCorpus(t *testing.T) {
	root := filepath.Join("testdata", "src")
	for _, a := range []*analysis.Analyzer{
		directives.Analyzer,
		hotpath.Analyzer,
		locks.Analyzer,
		planes.Analyzer,
		apihandler.Analyzer,
	} {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			analysistest.Run(t, root, a, "clean/a")
		})
	}
}
