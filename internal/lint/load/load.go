// Package load type-checks the packages navlint analyzes, without any
// dependency outside the standard library and the go toolchain.
//
// The trick that keeps this cheap and network-free: imports are never
// type-checked from source. One `go list -export -deps -json` invocation
// makes the toolchain compile (or reuse from the build cache) export
// data for every dependency — standard library included — and the gc
// importer reads types straight out of those files. Only the packages
// under analysis are parsed and type-checked from source, exactly the
// way `go vet` feeds its unitchecker tools. The result is that the
// standalone driver and the -vettool driver see byte-identical type
// information.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one source-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/core").
	PkgPath string
	// Dir is the directory the files live in.
	Dir string
	// Files are the parsed compilation units (no _test.go files).
	Files []*ast.File
	// Types and Info are the type-checker's output.
	Types *types.Package
	Info  *types.Info
	// Imports lists the in-scope imports that are themselves being
	// analyzed (module-local for Repo, corpus-local for Corpus) — the
	// edges the driver orders analysis by.
	Imports []string
}

// listEntry is the slice of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -export -deps -json` over patterns in dir and
// returns the decoded entries. The -export flag makes the toolchain
// produce (or reuse) export data for every listed package.
func goList(dir string, patterns []string) ([]listEntry, error) {
	gocmd := os.Getenv("GO")
	if gocmd == "" {
		gocmd = "go"
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Imports"}, patterns...)
	cmd := exec.Command(gocmd, args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w", strings.Join(patterns, " "), err)
	}
	var entries []listEntry
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup adapts a path→export-file map to the gc importer's
// lookup contract.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates the full set of type-checker result maps.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// parseDir parses the named files in dir into fset.
func parseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// check type-checks one parsed package against imp.
func check(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// topo orders pkgs so every package appears after the packages it
// imports (of those present in the set).
func topo(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.PkgPath] != 0 {
			return
		}
		state[p.PkgPath] = 1
		for _, imp := range p.Imports {
			if dep := byPath[imp]; dep != nil {
				visit(dep)
			}
		}
		state[p.PkgPath] = 2
		order = append(order, p)
	}
	// Deterministic roots make the run order (and output order) stable.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PkgPath < sorted[j].PkgPath })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

// Repo loads every package matched by patterns (e.g. "./...") in the
// module rooted at dir, type-checked from source with all imports —
// module-local ones included — resolved through export data. Packages
// are returned in dependency order, ready for a fact-passing analysis
// sweep.
func Repo(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	targetPaths := map[string]bool{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targetPaths[e.ImportPath] = true
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, e := range entries {
		if !targetPaths[e.ImportPath] || len(e.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, e.Dir, e.GoFiles)
		if err != nil {
			return nil, nil, fmt.Errorf("load: parsing %s: %w", e.ImportPath, err)
		}
		tpkg, info, err := check(fset, e.ImportPath, files, imp)
		if err != nil {
			return nil, nil, fmt.Errorf("load: type-checking %s: %v", e.ImportPath, err)
		}
		var local []string
		for _, i := range e.Imports {
			if targetPaths[i] {
				local = append(local, i)
			}
		}
		pkgs = append(pkgs, &Package{
			PkgPath: e.ImportPath,
			Dir:     e.Dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Imports: local,
		})
	}
	return fset, topo(pkgs), nil
}

// Unit loads one package from an explicit file list (the unitchecker
// driver's entry point, fed by go vet's .cfg): the files are parsed and
// type-checked with imports resolved through the supplied export-data
// map, after applying the import-path remapping in importMap.
func Unit(pkgPath string, files []string, importMap, packageFile map[string]string) (*token.FileSet, *Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		parsed = append(parsed, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := check(fset, pkgPath, parsed, imp)
	if err != nil {
		return nil, nil, err
	}
	return fset, &Package{PkgPath: pkgPath, Files: parsed, Types: tpkg, Info: info}, nil
}

// corpusImporter resolves imports for testdata corpora: names that
// match a directory under the corpus root are type-checked from source
// (recursively), everything else goes to export data.
type corpusImporter struct {
	fset    *token.FileSet
	root    string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func (ci *corpusImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir := filepath.Join(ci.root, filepath.FromSlash(path)); isDir(dir) {
		p, err := ci.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ci.std.Import(path)
}

func (ci *corpusImporter) load(path, dir string) (*Package, error) {
	if ci.loading[path] {
		return nil, fmt.Errorf("load: corpus import cycle through %q", path)
	}
	ci.loading[path] = true
	defer delete(ci.loading, path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	files, err := parseDir(ci.fset, dir, names)
	if err != nil {
		return nil, err
	}
	var local []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if isDir(filepath.Join(ci.root, filepath.FromSlash(p))) {
				local = append(local, p)
			}
		}
	}
	tpkg, info, err := check(ci.fset, path, files, ci)
	if err != nil {
		return nil, fmt.Errorf("type-checking corpus package %s: %v", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info, Imports: local}
	ci.pkgs[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

func goFilesIn(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if n := de.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return names, nil
}

// Corpus loads the named corpus packages (directories under root, e.g.
// "testdata/src/<name>") plus their corpus-local imports, all
// type-checked from source, with external imports resolved through
// export data obtained from the host toolchain. The returned slice is
// in dependency order and includes the local imports, so a driver can
// run an analyzer over it front to back and have facts flow.
func Corpus(root string, names ...string) (*token.FileSet, []*Package, error) {
	// One `go list` call fetches export data for every external import
	// any corpus file mentions.
	external := map[string]bool{}
	var scan func(dir string) error
	seen := map[string]bool{}
	scan = func(dir string) error {
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		files, err := goFilesIn(dir)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		for _, name := range files {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range f.Imports {
				p := strings.Trim(spec.Path.Value, `"`)
				if local := filepath.Join(root, filepath.FromSlash(p)); isDir(local) {
					if err := scan(local); err != nil {
						return err
					}
				} else {
					external[p] = true
				}
			}
		}
		return nil
	}
	for _, name := range names {
		if err := scan(filepath.Join(root, filepath.FromSlash(name))); err != nil {
			return nil, nil, err
		}
	}
	exports := map[string]string{}
	if len(external) > 0 {
		var pats []string
		for p := range external {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		entries, err := goList(root, pats)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	fset := token.NewFileSet()
	ci := &corpusImporter{
		fset:    fset,
		root:    root,
		std:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	for _, name := range names {
		if _, ok := ci.pkgs[name]; ok {
			continue
		}
		if _, err := ci.load(name, filepath.Join(root, filepath.FromSlash(name))); err != nil {
			return nil, nil, err
		}
	}
	var pkgs []*Package
	for _, p := range ci.pkgs {
		pkgs = append(pkgs, p)
	}
	return fset, topo(pkgs), nil
}
