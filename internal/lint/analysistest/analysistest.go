// Package analysistest runs a navlint analyzer over a testdata corpus
// and checks its diagnostics against // want "regexp" comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	mu.Lock() // want `mu is locked here but not unlocked`
//
// A want comment may carry several quoted regexps (each must match a
// distinct diagnostic on that line). Every diagnostic must be wanted
// and every want must be matched; anything else fails the test with
// the file:line of the mismatch.
//
// Corpus packages live under root as src-style import paths
// (testdata/src/<name>); corpus-local imports are loaded too and run
// first, so analyzers that exchange facts across packages are
// exercised for real.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// expectation is one parsed want regexp.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the named corpus packages from root and applies a to each
// (dependencies first, sharing one fact store), then reconciles
// diagnostics with the corpus's want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, names ...string) {
	t.Helper()
	fset, pkgs, err := load.Corpus(root, names...)
	if err != nil {
		t.Fatalf("loading corpus %v: %v", names, err)
	}
	wants := map[string][]*expectation{} // "file:line" → expectations
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					parseWants(t, fset, c.Pos(), c.Text, wants)
				}
			}
		}
	}
	facts := analysis.NewFactStore()
	for _, p := range pkgs {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			for _, exp := range wants[key] {
				if !exp.matched && exp.re.MatchString(d.Message) {
					exp.matched = true
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, p.PkgPath, err)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

// parseWants extracts the quoted regexps from a // want comment.
func parseWants(t *testing.T, fset *token.FileSet, pos token.Pos, text string, wants map[string][]*expectation) {
	t.Helper()
	// The marker is a comment starting with "// want", or — when the
	// line's comment is already taken by a directive — an embedded
	// "// want" later in the same comment.
	var rest string
	if i := strings.Index(text[2:], "// want "); i >= 0 {
		rest = strings.TrimSpace(text[2+i+len("// want "):])
	} else if body := strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t"); strings.HasPrefix(body, "want ") {
		rest = strings.TrimSpace(body[len("want "):])
	} else {
		return
	}
	position := fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	for rest != "" {
		var raw string
		var err error
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Fatalf("%s: unterminated want string", position)
			}
			raw, err = strconv.Unquote(rest[:end+1])
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want raw string", position)
			}
			raw = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s: malformed want comment near %q", position, rest)
		}
		if err != nil {
			t.Fatalf("%s: bad want string: %v", position, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", position, raw, err)
		}
		wants[key] = append(wants[key], &expectation{re: re})
	}
}
