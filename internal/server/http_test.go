package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/navigation"
	"repro/internal/presentation"
)

// condGet performs a GET with an optional If-None-Match header.
func condGet(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// firstGet fetches path once, checking the validator contract on the
// way: a strong "g<generation>-<hash>" ETag, Cache-Control: no-cache,
// and a 304 revalidation with an empty body.
func firstGet(t *testing.T, url string) (etag string) {
	t.Helper()
	resp := condGet(t, url, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first GET = %d", resp.StatusCode)
	}
	etag = resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"g`) || !strings.Contains(etag, "-") {
		t.Fatalf("ETag = %q, want \"g<generation>-<hash>\"", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", cc)
	}
	resp = condGet(t, url, etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	return etag
}

// TestConditionalGetPages is the acceptance scenario for the validator:
// a second GET with If-None-Match of the returned ETag yields 304, a
// mutation the content depends on yields 200 with a new tag — and a
// mutation it does NOT depend on keeps the old tag validating, because
// invalidation is dependency-aware.
func TestConditionalGetPages(t *testing.T) {
	t.Run("page depends on the stylesheet slot", func(t *testing.T) {
		srv, ts := testServer(t)
		etag := firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")
		// Toggling the stylesheet re-weaves member pages; even though
		// the woven bytes end up identical, the generation moved.
		srv.app.SetStylesheet(&presentation.Stylesheet{})
		srv.app.SetStylesheet(nil) // restore built-in presentation
		resp := condGet(t, ts.URL+"/ByAuthor/picasso/guitar.html", etag)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET after SetStylesheet = %d, want 200", resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got == etag || got == "" {
			t.Errorf("ETag after mutation = %q, want a new tag (old %q)", got, etag)
		}
	})

	t.Run("linkbase ignores the stylesheet, tracks the structure", func(t *testing.T) {
		srv, ts := testServer(t)
		etag := firstGet(t, ts.URL+"/links.xml")
		// The stylesheet is presentation; links.xml is navigation. The
		// validator must survive the unrelated mutation.
		srv.app.SetStylesheet(&presentation.Stylesheet{})
		srv.app.SetStylesheet(nil)
		resp := condGet(t, ts.URL+"/links.xml", etag)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("GET after SetStylesheet = %d, want 304 (linkbase unchanged)", resp.StatusCode)
		}
		// An access-structure swap rewrites the linkbase: new tag.
		if err := srv.app.SetAccessStructure("ByAuthor", navigation.Index{}); err != nil {
			t.Fatal(err)
		}
		resp = condGet(t, ts.URL+"/links.xml", etag)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET after SetAccessStructure = %d, want 200", resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got == etag || got == "" {
			t.Errorf("ETag after access swap = %q, want a new tag (old %q)", got, etag)
		}
	})

	t.Run("data document tracks only its own content", func(t *testing.T) {
		srv, ts := testServer(t)
		etag := firstGet(t, ts.URL+"/data/guitar.xml")
		// Neither presentation nor navigation mutations touch the data
		// document: the validator keeps validating through both.
		srv.app.SetStylesheet(&presentation.Stylesheet{})
		srv.app.SetStylesheet(nil)
		if err := srv.app.SetAccessStructure("ByAuthor", navigation.Index{}); err != nil {
			t.Fatal(err)
		}
		resp := condGet(t, ts.URL+"/data/guitar.xml", etag)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("GET after unrelated mutations = %d, want 304 (document unchanged)", resp.StatusCode)
		}
		// A content edit to the document itself produces a new tag.
		if err := srv.app.Store().SetAttr("guitar", "technique", "Sheet metal and wire"); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.app.InvalidateDocument("guitar.xml"); err != nil {
			t.Fatal(err)
		}
		resp = condGet(t, ts.URL+"/data/guitar.xml", etag)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET after content edit = %d, want 200", resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got == etag || got == "" {
			t.Errorf("ETag after content edit = %q, want a new tag (old %q)", got, etag)
		}
	})
}

// TestConditionalGetStillMovesSession: revalidating a page is still a
// visit — the trail grows even when the response is 304.
func TestConditionalGetStillMovesSession(t *testing.T) {
	_, ts := testServer(t)
	resp := condGet(t, ts.URL+"/ByAuthor/picasso/guitar.html", "")
	etag := resp.Header.Get("ETag")
	cookie := ""
	for _, c := range resp.Cookies() {
		if c.Name == sessionCookie {
			cookie = c.Value
		}
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/ByAuthor/picasso/guitar.html", nil)
	req.Header.Set("If-None-Match", etag)
	req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d", resp2.StatusCode)
	}
	code, body, _ := doGet(t, ts, "/session", cookie)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var visits []navigation.Visit
	if err := json.Unmarshal([]byte(body), &visits); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 2 {
		t.Errorf("visits after 304 = %d, want 2 (revalidation still counts)", len(visits))
	}
}

func TestETagMatching(t *testing.T) {
	cases := []struct {
		inm, etag string
		want      bool
	}{
		{`"g1-abc"`, `"g1-abc"`, true},
		{`"g1-abc"`, `"g2-abc"`, false},
		{`*`, `"g1-abc"`, true},
		{`"x", "g1-abc"`, `"g1-abc"`, true},
		{`W/"g1-abc"`, `"g1-abc"`, true},
		{`"g1-abc`, `"g1-abc"`, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.inm, c.etag); got != c.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", c.inm, c.etag, got, c.want)
		}
	}
}

// TestHeadRequests: HEAD must return the same headers as GET — status,
// content type, ETag, Content-Length — with an empty body.
func TestHeadRequests(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/", "/ByAuthor/picasso/guitar.html", "/links.xml", "/session", "/healthz"} {
		t.Run(path, func(t *testing.T) {
			getResp := condGet(t, ts.URL+path, "")
			getBody, _ := io.ReadAll(getResp.Body)

			headResp, err := http.DefaultClient.Head(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer headResp.Body.Close()
			if headResp.StatusCode != getResp.StatusCode {
				t.Errorf("HEAD status = %d, GET = %d", headResp.StatusCode, getResp.StatusCode)
			}
			if body, _ := io.ReadAll(headResp.Body); len(body) != 0 {
				t.Errorf("HEAD carried a body: %q", body)
			}
			if got, want := headResp.Header.Get("Content-Type"), getResp.Header.Get("Content-Type"); got != want {
				t.Errorf("HEAD Content-Type = %q, GET = %q", got, want)
			}
			if got, want := headResp.Header.Get("ETag"), getResp.Header.Get("ETag"); got != want {
				t.Errorf("HEAD ETag = %q, GET = %q", got, want)
			}
			// /healthz carries live vitals (uptime, heap) whose rendered
			// width drifts a few bytes between two requests; its HEAD
			// Content-Length is counted from HEAD's own suppressed body,
			// so compare with tolerance there and exactly elsewhere.
			tolerance := 0
			if path == "/healthz" {
				tolerance = 16
			}
			if cl := headResp.Header.Get("Content-Length"); cl != "" {
				n, err := strconv.Atoi(cl)
				if err != nil || n < len(getBody)-tolerance || n > len(getBody)+tolerance {
					t.Errorf("HEAD Content-Length = %s, GET body = %d bytes", cl, len(getBody))
				}
			}
		})
	}
}

// TestHeadConditional: HEAD with a matching If-None-Match revalidates to
// 304 just like GET.
func TestHeadConditional(t *testing.T) {
	_, ts := testServer(t)
	etag := condGet(t, ts.URL+"/links.xml", "").Header.Get("ETag")
	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/links.xml", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional HEAD = %d, want 304", resp.StatusCode)
	}
}

// TestPerRequestEndpointsNoStore: responses derived from per-requester
// or live operational state must tell intermediaries not to cache them.
// /session in particular is keyed by the requester's cookie — a shared
// cache replaying it to another visitor would leak their trail.
func TestPerRequestEndpointsNoStore(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/session", "/healthz", "/arcs?node=guitar"} {
		resp := condGet(t, ts.URL+path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("Allow = %q, want \"GET, HEAD\"", allow)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	// Create one session and warm one cached page first.
	doGet(t, ts, "/ByAuthor/picasso/guitar.html", "")
	code, body, _ := doGet(t, ts, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status          string `json:"status"`
		Sessions        int    `json:"sessions"`
		CacheGeneration uint64 `json:"cache_generation"`
		CachedPages     int    `json:"cached_pages"`
		Store           string `json:"store"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("unmarshalling %q: %v", body, err)
	}
	if health.Status != "ok" {
		t.Errorf("status = %q", health.Status)
	}
	if health.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", health.Sessions)
	}
	if health.CachedPages != 1 {
		t.Errorf("cached_pages = %d, want 1", health.CachedPages)
	}
	if health.Store != "none" {
		t.Errorf("store = %q, want none (no persistence configured)", health.Store)
	}
}

func TestHealthzReportsBackend(t *testing.T) {
	for _, tc := range []struct {
		name string
	}{{"mem"}, {"file"}} {
		t.Run(tc.name, func(t *testing.T) {
			st := newTestStore(t, tc.name)
			_, ts := persistentServer(t, st)
			_, body, _ := doGet(t, ts, "/healthz", "")
			if !strings.Contains(body, `"store":"`+tc.name+`"`) {
				t.Errorf("healthz = %s, want store %q", body, tc.name)
			}
		})
	}
}

// TestSplitPagePath covers the path-grammar edge cases.
func TestSplitPagePath(t *testing.T) {
	cases := []struct {
		path        string
		wantContext string
		wantNode    string
		wantErr     bool
	}{
		{"ByAuthor/picasso/guitar.html", "ByAuthor:picasso", "guitar", false},
		{"ByAuthor/picasso/index.html", "ByAuthor:picasso", navigation.HubID, false},
		{"AllPaintings/guitar.html", "AllPaintings", "guitar", false},
		// Nested group paths: every directory joins the context name.
		{"Family/group/sub/node.html", "Family:group:sub", "node", false},
		{"Family/group/sub/index.html", "Family:group:sub", navigation.HubID, false},
		// Bare index.html has no context directory.
		{"index.html", "", "", true},
		// A single-segment page likewise.
		{"guitar.html", "", "", true},
		// Empty segments: doubled, leading and trailing slashes.
		{"ByAuthor//guitar.html", "", "", true},
		{"/ByAuthor/guitar.html", "", "", true},
		{"ByAuthor/picasso/.html", "", "", true},
		{"ByAuthor/guitar.html/", "", "", true},
		{"", "", "", true},
	}
	for _, c := range cases {
		ctx, node, err := splitPagePath(c.path)
		if c.wantErr {
			if err == nil {
				t.Errorf("splitPagePath(%q) = (%q, %q), want error", c.path, ctx, node)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitPagePath(%q): %v", c.path, err)
			continue
		}
		if ctx != c.wantContext || node != c.wantNode {
			t.Errorf("splitPagePath(%q) = (%q, %q), want (%q, %q)",
				c.path, ctx, node, c.wantContext, c.wantNode)
		}
	}
}

// TestTrailingSlashAndEmptySegment404 drives the edge cases end to end.
func TestTrailingSlashAndEmptySegment404(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{
		"/ByAuthor/picasso/guitar.html/",
		"/ByAuthor//guitar.html",
		"/index.html",
	} {
		code, _, _ := doGet(t, ts, path, "")
		if code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
}
