// This file is the /api/v1 control plane: every handler here mutates or
// inspects the model under operator authority, off the request hot path.
//
//repro:plane(control)

package server

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/analytics"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/navigation"
	"repro/internal/obs"
)

// maxAPIBody bounds control-plane request bodies: a structure spec or a
// stylesheet is kilobytes, so anything past this is a mistake (or an
// attack), not a bigger site.
const maxAPIBody = 1 << 20

// WithAPIToken enables the /api/v1 control plane, guarded by the given
// bearer token: every request must carry "Authorization: Bearer <tok>".
// Without this option (or with an empty token) the control plane is
// disabled entirely — reads included — and every /api request answers
// 403, so a server nobody configured a token for exposes no mutation
// surface.
func WithAPIToken(tok string) Option {
	return func(s *Server) { s.apiToken = tok }
}

// serveAPI dispatches one control-plane request. Unlike the serving
// routes, API routes are method-aware per resource: a GET resource
// answers PUT with 405 and an Allow header, not a blanket rejection.
// Every response — errors included — is JSON with Cache-Control:
// no-store, so intermediaries never cache operational state.
//
//repro:apimux
func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request, rt reqTrace) {
	w.Header().Set("Cache-Control", "no-store")
	// The control plane always propagates trace context — it is off the
	// hot path, and apiError reads the header back to stamp the trace id
	// into structured error bodies.
	if tp := rt.traceparent(); tp != "" {
		w.Header().Set("Traceparent", tp)
	}
	if r.URL.Path != api.BasePath && !strings.HasPrefix(r.URL.Path, api.BasePath+"/") {
		apiError(w, http.StatusNotFound, "unknown API version (this server speaks %s)", api.BasePath)
		return
	}
	if s.apiToken == "" {
		apiError(w, http.StatusForbidden,
			"control plane disabled: the server was started without an API token")
		return
	}
	if !s.apiAuthorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="navigation control plane"`)
		apiError(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return
	}

	// HEAD rides every GET resource: same headers, counted body.
	method := r.Method
	if method == http.MethodHead {
		hw := &headWriter{inner: w}
		defer hw.finish()
		w = hw
		method = http.MethodGet
	}

	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, api.BasePath), "/")
	segs := strings.Split(rest, "/")
	switch {
	case rest == "":
		if allowMethods(w, method, http.MethodGet) {
			s.apiIndex(w)
		}
	case rest == "model":
		if allowMethods(w, method, http.MethodGet) {
			s.apiModel(w)
		}
	case rest == "contexts":
		if allowMethods(w, method, http.MethodGet) {
			s.apiContexts(w)
		}
	case len(segs) == 3 && segs[0] == "contexts" && segs[2] == "structure":
		switch method {
		case http.MethodGet:
			s.apiStructureGet(w, segs[1])
		case http.MethodPut:
			s.apiStructurePut(w, r, segs[1], rt)
		default:
			allowMethods(w, method, http.MethodGet, http.MethodPut)
		}
	case len(segs) == 2 && segs[0] == "documents":
		if allowMethods(w, method, http.MethodPatch) {
			s.apiDocumentPatch(w, r, segs[1], rt)
		}
	case rest == "stylesheet":
		switch method {
		case http.MethodGet:
			s.apiStylesheetGet(w)
		case http.MethodPut:
			s.apiStylesheetPut(w, r, rt)
		case http.MethodDelete:
			s.apiStylesheetDelete(w, rt)
		default:
			allowMethods(w, method, http.MethodGet, http.MethodPut, http.MethodDelete)
		}
	case rest == "analytics/graph":
		if allowMethods(w, method, http.MethodGet) {
			s.apiGraph(w)
		}
	case rest == "events":
		if allowMethods(w, method, http.MethodGet) {
			s.apiEvents(w, r)
		}
	case rest == "traces":
		if allowMethods(w, method, http.MethodGet) {
			s.apiTraces(w, r)
		}
	case rest == "snapshot":
		if allowMethods(w, method, http.MethodPost) {
			s.apiSnapshot(w, rt)
		}
	case rest == "adapt":
		if allowMethods(w, method, http.MethodPost) {
			s.apiAdapt(w)
		}
	default:
		apiError(w, http.StatusNotFound, "no such control-plane resource %q", r.URL.Path)
	}
}

// apiAuthorized checks the bearer token in constant time.
func (s *Server) apiAuthorized(r *http.Request) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return false
	}
	tok := strings.TrimSpace(strings.TrimPrefix(auth, prefix))
	return subtle.ConstantTimeCompare([]byte(tok), []byte(s.apiToken)) == 1
}

// allowMethods admits the listed methods and answers anything else with
// 405 and an Allow header (HEAD is implied wherever GET is allowed).
func allowMethods(w http.ResponseWriter, method string, allowed ...string) bool {
	for _, m := range allowed {
		if method == m {
			return true
		}
	}
	var list []string
	for _, m := range allowed {
		list = append(list, m)
		if m == http.MethodGet {
			list = append(list, http.MethodHead)
		}
	}
	allow := strings.Join(list, ", ")
	w.Header().Set("Allow", allow)
	apiError(w, http.StatusMethodNotAllowed, "method %s not allowed (allow: %s)", method, allow)
	return false
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError emits the structured JSON error every control-plane failure
// carries. When the response already carries trace context (serveAPI
// and the shed path set Traceparent before any body is written), the
// trace id rides the error body too, so a failed call is joinable to
// its trace without parsing headers.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorBody{Error: api.Error{
		Status:  status,
		Message: fmt.Sprintf(format, args...),
		TraceID: traceIDFromHeader(w.Header().Get("Traceparent")),
	}})
}

// traceIDFromHeader pulls the 32-hex trace id out of a W3C traceparent
// header value, "" when the header is absent or malformed.
func traceIDFromHeader(tp string) string {
	if len(tp) != 55 {
		return ""
	}
	return tp[3:35]
}

// readBody drains a bounded request body: over-limit is 413, any other
// read failure (a truncated or malformed transfer) is 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxAPIBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			apiError(w, http.StatusRequestEntityTooLarge,
				"request body over %d bytes", maxAPIBody)
		} else {
			apiError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// decodeStrict unmarshals one JSON value, rejecting unknown fields and
// trailing content — half-applied or concatenated payloads must fail
// validation, not silently install their first value.
func decodeStrict(body []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing content after the JSON value")
	}
	return nil
}

// apiIndex lists the control plane's resources — GET /api/v1 is the
// discoverable front door.
func (s *Server) apiIndex(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, struct {
		Version   string   `json:"version"`
		Endpoints []string `json:"endpoints"`
	}{
		Version: api.Version,
		Endpoints: []string{
			"GET " + api.BasePath + "/model",
			"GET " + api.BasePath + "/contexts",
			"GET|PUT " + api.BasePath + "/contexts/{family}/structure",
			"PATCH " + api.BasePath + "/documents/{id}",
			"GET|PUT|DELETE " + api.BasePath + "/stylesheet",
			"GET " + api.BasePath + "/analytics/graph",
			"GET " + api.BasePath + "/events",
			"GET " + api.BasePath + "/traces",
			"POST " + api.BasePath + "/snapshot",
			"POST " + api.BasePath + "/adapt",
		},
	})
}

// apiModel serves the whole navigational aspect as a wire artifact:
// the SpecText declaration plus structured node classes, links,
// families (access structures as specs) and landmarks. Everything is
// read from one App.View snapshot, so a concurrent swap cannot make
// spec_text and the families' specs contradict each other.
func (s *Server) apiModel(w http.ResponseWriter) {
	view := s.app.View()
	rm := view.Resolved
	access := view.Access
	m := api.Model{
		SpecText:        view.SpecText,
		CacheGeneration: view.Generation,
		Landmarks:       rm.Model.Landmarks(),
	}
	for _, nc := range rm.Model.NodeClasses() {
		m.NodeClasses = append(m.NodeClasses, api.NodeClass{
			Name: nc.Name, Class: nc.Class, TitleAttr: nc.TitleAttr,
			Attrs: append([]string(nil), nc.AttrNames...),
		})
	}
	for _, l := range rm.Model.Links() {
		m.Links = append(m.Links, api.Link{Name: l.Name, Rel: l.Rel, From: l.From, To: l.To})
	}
	for _, c := range rm.Model.Contexts() {
		fam := api.Family{
			Name: c.Name, NodeClass: c.NodeClass,
			GroupBy: c.GroupBy, OrderBy: c.OrderBy,
			Where: c.Where, Show: c.Show,
		}
		if as := access[c.Name]; as != nil {
			fam.AccessText = navigation.AccessText(as)
			if spec, err := navigation.EncodeSpec(as); err == nil {
				fam.Access = spec
			}
		}
		for _, rc := range rm.ContextsOf(c.Name) {
			fam.Contexts = append(fam.Contexts, rc.Name)
		}
		m.Families = append(m.Families, fam)
	}
	writeJSON(w, http.StatusOK, m)
}

// apiContexts lists every resolved context instance.
func (s *Server) apiContexts(w http.ResponseWriter) {
	rm := s.app.Resolved()
	out := make([]api.Context, 0, len(rm.Contexts))
	for _, rc := range rm.Contexts {
		ids := make([]string, 0, len(rc.Members))
		for _, m := range rc.Members {
			ids = append(ids, m.ID())
		}
		out = append(out, api.Context{
			Name:      rc.Name,
			Family:    rc.Def.Name,
			Access:    navigation.AccessText(rc.Def.Access),
			Entry:     rc.EntryNode(),
			Members:   len(rc.Members),
			HasHub:    rc.Def.Access.HasHub(),
			MemberIDs: ids,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// familyContexts names the family's resolved instances.
func familyContexts(rm *navigation.ResolvedModel, family string) []string {
	var out []string
	for _, rc := range rm.ContextsOf(family) {
		out = append(out, rc.Name)
	}
	return out
}

// apiStructureGet serves one family's access structure as its wire
// spec — the artifact an operator GETs, edits and PUTs back. One View
// snapshot keeps the spec and the instance list from different models.
func (s *Server) apiStructureGet(w http.ResponseWriter, family string) {
	view := s.app.View()
	as, ok := view.Access[family]
	if !ok {
		apiError(w, http.StatusNotFound, "unknown context family %q", family)
		return
	}
	spec, err := navigation.EncodeSpec(as)
	if err != nil {
		apiError(w, http.StatusNotImplemented,
			"family %q serves a structure with no wire form: %v", family, err)
		return
	}
	writeJSON(w, http.StatusOK, api.Structure{
		Family:   family,
		Spec:     spec,
		Text:     navigation.AccessText(as),
		Contexts: familyContexts(view.Resolved, family),
	})
}

// apiStructurePut swaps one family's access structure from a wire spec
// — the paper's one-line maintenance change as one authenticated HTTP
// call. The spec is fully decoded and validated before any state moves,
// and the swap runs through the batched SetAccessStructures path, so
// the dependency-aware cache re-weaves only the family's own contexts
// and only their ETags rotate.
func (s *Server) apiStructurePut(w http.ResponseWriter, r *http.Request, family string, rt reqTrace) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var spec navigation.StructureSpec
	if err := decodeStrict(body, &spec); err != nil {
		apiError(w, http.StatusBadRequest, "malformed structure spec: %v", err)
		return
	}
	as, err := navigation.DecodeSpec(&spec)
	if err != nil {
		apiError(w, http.StatusBadRequest, "invalid structure spec: %v", err)
		return
	}
	// SetAccessStructures validates the family itself (one critical
	// section — a pre-check here would race a concurrent model change).
	mutFrom := rt.now()
	dropped, err := s.app.SetAccessStructures(map[string]navigation.AccessStructure{family: as})
	rt.span(obs.PhaseMutation, mutFrom)
	if errors.Is(err, core.ErrUnknownFamily) {
		apiError(w, http.StatusNotFound, "unknown context family %q", family)
		return
	}
	if err != nil {
		apiError(w, http.StatusInternalServerError, "swapping structure: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.MutationResult{
		Family:          family,
		Contexts:        familyContexts(s.app.Resolved(), family),
		DroppedPages:    dropped,
		CacheGeneration: s.app.CacheGeneration(),
	})
}

// documentPatch is the PATCH /api/v1/documents/{id} request body.
type documentPatch struct {
	// Set maps attribute names to new values, validated as a batch
	// against the class declaration before any is applied.
	Set map[string]string `json:"set"`
}

// apiDocumentPatch edits the conceptual instance behind one data
// document and routes the change through the dependency-aware rebuild:
// a caption edit costs only that document's pages, a title edit
// invalidates as widely as it must — the rebuild diff, not the caller,
// decides the blast radius.
func (s *Server) apiDocumentPatch(w http.ResponseWriter, r *http.Request, id string, rt reqTrace) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var patch documentPatch
	if err := decodeStrict(body, &patch); err != nil {
		apiError(w, http.StatusBadRequest, "malformed document patch: %v", err)
		return
	}
	if len(patch.Set) == 0 {
		apiError(w, http.StatusBadRequest, `document patch sets nothing (want {"set": {"attr": "value"}})`)
		return
	}
	if s.app.Store().Get(id) == nil {
		apiError(w, http.StatusNotFound, "unknown instance %q", id)
		return
	}
	// The mutation phase spans the edit plus the dependency-aware
	// rebuild — the cost an operator's trace should attribute to a patch.
	mutFrom := rt.now()
	if err := s.app.Store().SetAttrs(id, patch.Set); err != nil {
		apiError(w, http.StatusBadRequest, "invalid document patch: %v", err)
		return
	}
	uri := navigation.NodeHref(id)
	dropped, err := s.app.InvalidateDocument(uri)
	rt.span(obs.PhaseMutation, mutFrom)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "re-deriving after edit: %v", err)
		return
	}
	var contexts []string
	for _, rc := range s.app.Resolved().ContextsContaining(id) {
		contexts = append(contexts, rc.Name)
	}
	writeJSON(w, http.StatusOK, api.MutationResult{
		Document:        uri,
		Contexts:        contexts,
		DroppedPages:    dropped,
		CacheGeneration: s.app.CacheGeneration(),
	})
}

// apiStylesheetGet serves back the stylesheet XML a PUT installed; the
// built-in (or a programmatically installed) presentation has no wire
// artifact and answers 404.
func (s *Server) apiStylesheetGet(w http.ResponseWriter) {
	src, ok := s.app.StylesheetXML()
	if !ok {
		apiError(w, http.StatusNotFound,
			"no stylesheet installed through the control plane (built-in presentation in effect)")
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	_, _ = io.WriteString(w, src)
}

// apiStylesheetPut installs a presentation stylesheet from its XML
// form. The source is parsed before anything changes; only pages woven
// through the stylesheet slot re-weave.
func (s *Server) apiStylesheetPut(w http.ResponseWriter, r *http.Request, rt reqTrace) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		apiError(w, http.StatusBadRequest, "empty stylesheet (DELETE restores the built-in presentation)")
		return
	}
	mutFrom := rt.now()
	err := s.app.SetStylesheetXML(string(body))
	rt.span(obs.PhaseMutation, mutFrom)
	if err != nil {
		apiError(w, http.StatusBadRequest, "invalid stylesheet: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.MutationResult{
		Document:        "stylesheet",
		DroppedPages:    -1,
		CacheGeneration: s.app.CacheGeneration(),
	})
}

// apiStylesheetDelete restores the built-in presentation.
func (s *Server) apiStylesheetDelete(w http.ResponseWriter, rt reqTrace) {
	mutFrom := rt.now()
	s.app.SetStylesheet(nil)
	rt.span(obs.PhaseMutation, mutFrom)
	writeJSON(w, http.StatusOK, api.MutationResult{
		Document:        "stylesheet",
		DroppedPages:    -1,
		CacheGeneration: s.app.CacheGeneration(),
	})
}

// apiGraph exports the full transition graph the adaptation pipeline
// derives from — every context's visits, entries and edges, not the
// top-k truncation /stats shows.
func (s *Server) apiGraph(w http.ResponseWriter) {
	if s.rec == nil {
		writeJSON(w, http.StatusOK, api.Graph{Analytics: false})
		return
	}
	g := analytics.BuildGraph(s.rec.Snapshot())
	out := api.Graph{Analytics: true, Hops: g.Hops}
	if len(g.Contexts) > 0 {
		out.Contexts = make(map[string]api.GraphContext, len(g.Contexts))
		for name, cg := range g.Contexts {
			out.Contexts[name] = api.GraphContext{
				Hops:    cg.Hops,
				Visits:  cg.Visits,
				Entries: cg.Entries,
				Edges:   cg.Edges(),
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// apiEvents serves the mutation-trace ring: one record per model
// mutation (structure swap, document patch, stylesheet change) with
// its rebuild duration, diff verdict and invalidation blast radius,
// newest first. ?limit=N truncates; the ring itself is bounded, so the
// full payload stays small either way.
func (s *Server) apiEvents(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			apiError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", q)
			return
		}
		limit = n
	}
	ring := s.app.Events()
	recent := ring.Recent(limit)
	out := api.EventsResponse{Total: ring.Total(), Events: make([]api.Event, 0, len(recent))}
	for _, e := range recent {
		out.Events = append(out.Events, api.Event{
			Seq:              e.Seq,
			Time:             e.Time,
			Kind:             e.Kind,
			Target:           e.Target,
			DurationSeconds:  e.Duration.Seconds(),
			PagesInvalidated: e.PagesInvalidated,
			Verdict:          e.Verdict,
			CacheGeneration:  e.CacheGeneration,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// apiTraces serves the request-trace ring: every sampled or slow
// request with its route, status, total duration and per-phase span
// breakdown, newest first. ?limit=N truncates; ?slow=1 keeps only the
// traces captured (or also qualifying) as slow. With tracing disabled
// the response says so instead of answering an empty ring that looks
// like a silent server.
func (s *Server) apiTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			apiError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", q)
			return
		}
		limit = n
	}
	slowOnly := false
	if q := r.URL.Query().Get("slow"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			apiError(w, http.StatusBadRequest, "slow must be a boolean, got %q", q)
			return
		}
		slowOnly = v
	}
	if s.tracer == nil {
		writeJSON(w, http.StatusOK, api.TracesResponse{Enabled: false, Traces: []api.Trace{}})
		return
	}
	ring := s.tracer.Ring()
	recent := ring.Recent(limit, slowOnly)
	out := api.TracesResponse{Enabled: true, Total: ring.Total(), Traces: make([]api.Trace, 0, len(recent))}
	for _, tr := range recent {
		t := api.Trace{
			Seq:             tr.Seq,
			Time:            tr.Time,
			TraceID:         tr.TraceID,
			SpanID:          tr.SpanID,
			ParentSpanID:    tr.ParentID,
			Route:           tr.Route,
			Path:            tr.Path,
			Status:          tr.Status,
			DurationSeconds: tr.Duration.Seconds(),
			Slow:            tr.Slow,
			Sampled:         tr.Sampled,
			TruncatedSpans:  tr.Truncated,
			Spans:           make([]api.TraceSpan, 0, len(tr.Spans)),
		}
		for _, sp := range tr.Spans {
			t.Spans = append(t.Spans, api.TraceSpan{
				Phase:      sp.Phase.Name(),
				StartNS:    sp.Start.Nanoseconds(),
				DurationNS: sp.Dur.Nanoseconds(),
			})
		}
		out.Traces = append(out.Traces, t)
	}
	writeJSON(w, http.StatusOK, out)
}

// apiSnapshot exports the woven site definition into the server's
// persistence backend on demand — the startup export, callable live.
func (s *Server) apiSnapshot(w http.ResponseWriter, rt reqTrace) {
	if s.persist == nil {
		apiError(w, http.StatusConflict, "no persistence backend configured (start with -store file)")
		return
	}
	storeFrom := rt.now()
	err := s.app.ExportSnapshot(s.persist)
	rt.span(obs.PhaseStorageOp, storeFrom)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "exporting snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.SnapshotResult{
		Store:           s.persist.Name(),
		Documents:       len(s.app.Repository()),
		CacheGeneration: s.app.CacheGeneration(),
	})
}

// apiAdapt forces one adaptation cycle — the derive loop's tick, on
// demand, so an operator can pull freshly recorded traffic into the
// linkbase without waiting out the interval.
func (s *Server) apiAdapt(w http.ResponseWriter) {
	derived, err := s.Adapt()
	if err != nil {
		apiError(w, http.StatusConflict, "%v", err)
		return
	}
	gen, _ := s.AdaptStats()
	writeJSON(w, http.StatusOK, api.AdaptResult{
		DerivedStructures: derived,
		AdaptGeneration:   gen,
		CacheGeneration:   s.app.CacheGeneration(),
	})
}
