// Overload protection: a bounded in-flight request limiter. Every
// request is classed (serving routes vs. the control plane) and
// admitted only while the class's in-flight count is under its bound;
// past it the request is shed immediately — 503 with Retry-After —
// before any session, cache or store work happens, so an overloaded
// server degrades by refusing cheaply instead of queueing expensively.
// Operational probes (/healthz, /readyz, /metrics, /stats) are never
// shed: a load balancer must be able to see an overloaded server.

package server

import (
	"net/http"
	"sync/atomic"
)

// limitClass groups route classes for in-flight limiting: one bound
// for the serving surface, one for the control plane, and an exempt
// class for operational probes.
type limitClass uint8

const (
	// limitServe covers the visitor-facing surface: pages, documents,
	// traversals, sessions, the site map and arcs.
	limitServe limitClass = iota
	// limitAPI covers the /api/v1 control plane.
	limitAPI
	// limitOps covers operational probes, never shed.
	limitOps
	numLimitClasses
)

// limitClassOf maps every route class onto its limiter class.
var limitClassOf = [numRoutes]limitClass{
	routeSiteMap:   limitServe,
	routePage:      limitServe,
	routeDoc:       limitServe,
	routeTraversal: limitServe,
	routeSession:   limitServe,
	routeHealth:    limitOps,
	routeReady:     limitOps,
	routeStats:     limitOps,
	routeMetrics:   limitOps,
	routeArcs:      limitServe,
	routeAPI:       limitAPI,
	routeOther:     limitServe,
}

// inflightSlot is one class's in-flight counter, padded to a cache
// line so the serve and API classes never false-share under load.
type inflightSlot struct {
	n atomic.Int64
	_ [56]byte
}

// inflightLimiter bounds concurrent requests per limit class. A zero
// (or negative) limit disables the bound for the class — the default —
// and costs one predictable branch on the request path; an active
// bound costs two uncontended-case atomic adds. Nothing here
// allocates: the hot-serve allocation guard covers the admitted path.
type inflightLimiter struct {
	limits   [numLimitClasses]int64
	inflight [numLimitClasses]inflightSlot
}

// acquire admits the request, or returns false when the class is
// saturated — the caller sheds without doing any work. Every true
// return must be paired with release.
func (l *inflightLimiter) acquire(c limitClass) bool {
	max := l.limits[c]
	if max <= 0 {
		return true
	}
	if l.inflight[c].n.Add(1) > max {
		l.inflight[c].n.Add(-1)
		return false
	}
	return true
}

// release returns the request's slot.
func (l *inflightLimiter) release(c limitClass) {
	if l.limits[c] > 0 {
		l.inflight[c].n.Add(-1)
	}
}

// WithMaxInflight bounds concurrently served visitor-facing requests
// (pages, documents, traversals, sessions); past the bound requests
// are shed with 503 + Retry-After before any work is done. Zero (the
// default) disables the bound. Operational probes are never shed.
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.limits.limits[limitServe] = int64(n) }
}

// WithMaxInflightAPI bounds concurrent /api/v1 control-plane requests
// the same way. Zero (the default) disables the bound.
func WithMaxInflightAPI(n int) Option {
	return func(s *Server) { s.limits.limits[limitAPI] = int64(n) }
}

// shed answers a request refused by the limiter: 503 with a
// Retry-After hint, written before any session or cache work happened.
// The body is plain text — a shed response must stay as cheap as the
// refusal itself — but it does carry the trace context when tracing is
// on, so a Retry-After burst is joinable to its traces.
func shed(w http.ResponseWriter, traceparent string) {
	if traceparent != "" {
		w.Header().Set("Traceparent", traceparent)
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Cache-Control", "no-store")
	http.Error(w, "overloaded: in-flight request limit reached", http.StatusServiceUnavailable)
}
