package server

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/obs"
)

// routeClass buckets request paths for the request metrics: one label
// value per serving surface, so a latency regression or an error burst
// can be attributed to pages vs. documents vs. the control plane
// without per-path cardinality.
type routeClass uint8

const (
	routeSiteMap routeClass = iota
	routePage
	routeDoc
	routeTraversal
	routeSession
	routeHealth
	routeReady
	routeStats
	routeMetrics
	routeArcs
	routeAPI
	routeOther
	numRoutes
)

var routeNames = [numRoutes]string{
	"sitemap", "page", "doc", "traversal", "session",
	"health", "ready", "stats", "metrics", "arcs", "api", "other",
}

// classify maps a request path onto its route class. It mirrors the
// dispatch in ServeHTTP/route exactly and allocates nothing — it runs
// on every request.
func classify(path string) routeClass {
	if path == "/api" || strings.HasPrefix(path, "/api/") {
		return routeAPI
	}
	path = strings.TrimPrefix(path, "/")
	switch {
	case path == "":
		return routeSiteMap
	case path == "links.xml", strings.HasPrefix(path, "data/"):
		return routeDoc
	case path == "session", path == "history":
		return routeSession
	case path == "healthz":
		return routeHealth
	case path == "readyz":
		return routeReady
	case path == "stats":
		return routeStats
	case path == "metrics":
		return routeMetrics
	case path == "arcs":
		return routeArcs
	case strings.HasPrefix(path, "go/"):
		return routeTraversal
	case strings.HasSuffix(path, ".html"):
		return routePage
	}
	return routeOther
}

// statusClasses are the status buckets of the request counter.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// statusIdx buckets a status code; anything outside 2xx–5xx (a 1xx
// would be a bug in this server) lands in the 5xx bucket, where an
// operator will look at it.
func statusIdx(status int) int {
	i := status/100 - 2
	if i < 0 || i >= len(statusClasses) {
		return len(statusClasses) - 1
	}
	return i
}

// Request metrics, fully preallocated at init so the record path is an
// array index and an atomic add — no map lookups, no label rendering.
var (
	httpRequests    [numRoutes][len(statusClasses)]*obs.Counter
	httpNotModified [numRoutes]*obs.Counter
	httpDuration    [numRoutes]*obs.Histogram
	httpShed        [numRoutes]*obs.Counter
)

// Flush and adaptation instrumentation (the per-instance queue depth is
// an inline gauge in serveMetrics; these are process-wide totals).
var (
	flushBatchDuration = obs.Default.Histogram("navserve_flush_batch_duration_seconds",
		"Time one write-behind flush batch took to reach the store.")
	flushBatches = obs.Default.Counter("navserve_flush_batches_total",
		"Write-behind flush batches drained.")
	flushWrites = obs.Default.Counter("navserve_flush_writes_total",
		"Session records written (or tombstoned) by flush batches.")

	adaptCycleDuration = obs.Default.Histogram("navserve_adapt_cycle_duration_seconds",
		"Time one adaptation cycle took: snapshot, graph, derive, swap.")
	adaptCycles = obs.Default.Counter("navserve_adapt_cycles_total",
		"Completed adaptation cycles.")
)

// Resilience instrumentation: persistence failures, their retries, and
// retry-queue drops (the degraded bit and queue depth are per-instance
// gauges in serveMetrics).
var (
	persistErrors = obs.Default.Counter("navserve_persist_errors_total",
		"Session persistence operations that failed (store errors and marshal failures).")
	persistRetries = obs.Default.Counter("navserve_persist_retries_total",
		"Failed session writes rescheduled for a backoff retry.")
	persistRetryDropped = obs.Default.Counter("navserve_persist_retry_dropped_total",
		"Retry-queue entries dropped oldest-first because the queue was full.")
)

func init() {
	const (
		reqHelp  = "HTTP requests by route class and status class."
		nmHelp   = "Conditional requests answered 304 Not Modified, by route class."
		durHelp  = "Request latency by route class."
		shedHelp = "Requests shed by the in-flight limiter before any work, by route class."
	)
	for rc := routeClass(0); rc < numRoutes; rc++ {
		route := routeNames[rc]
		for i, code := range statusClasses {
			httpRequests[rc][i] = obs.Default.Counter(
				"navserve_http_requests_total", reqHelp, "route", route, "code", code)
		}
		httpNotModified[rc] = obs.Default.Counter(
			"navserve_http_not_modified_total", nmHelp, "route", route)
		httpDuration[rc] = obs.Default.Histogram(
			"navserve_http_request_duration_seconds", durHelp, "route", route)
		httpShed[rc] = obs.Default.Counter(
			"navserve_http_shed_total", shedHelp, "route", route)
	}
}

// observeRequest records one finished request: status-classed counter,
// the 200-vs-304 split, and the latency histogram. It runs after every
// response on the serve path, so it carries the hot-path contract: the
// clock was read by the caller, and everything here is atomic adds.
//
//repro:hotpath
func observeRequest(rc routeClass, status int, d time.Duration) {
	httpRequests[rc][statusIdx(status)].Inc()
	if status == http.StatusNotModified {
		httpNotModified[rc].Inc()
	}
	httpDuration[rc].Observe(d)
}

// statusWriter records the status a handler writes so observeRequest
// can class it. Instances are pooled: a per-request allocation here
// would show up in the hot-serve allocation guard.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

var statusWriterPool = sync.Pool{New: func() any { return &statusWriter{} }}

// serveMetrics answers GET /metrics with the Prometheus text exposition
// of everything instrumented: the default registry (request, cache,
// rebuild, flush, storage and adapt series) plus this server instance's
// point-in-time gauges. Like /healthz it is bearer-exempt — scrapers
// are not operators — and carries no-store so an intermediary can never
// serve yesterday's vitals.
//
//repro:nostore
func (s *Server) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	_ = obs.Default.WritePrometheus(&b)
	s.writeInstanceGauges(&b)
	_, _ = io.WriteString(w, b.String())
}

// writeInstanceGauges renders the per-instance vitals — the /healthz
// payload, as scrapeable series. These live on the Server (several can
// coexist in one process), so they render inline rather than register
// globally.
func (s *Server) writeInstanceGauges(b *strings.Builder) {
	obs.WriteGauge(b, "navserve_sessions",
		"Live visitor sessions.", float64(s.sessions.len()))
	obs.WriteGauge(b, "navserve_cached_pages",
		"Woven pages currently cached.", float64(s.app.CachedPages()))
	obs.WriteGauge(b, "navserve_cache_generation",
		"Woven-page cache generation; advances with every model mutation.", float64(s.app.CacheGeneration()))
	queued, written := s.PersistStats()
	obs.WriteGauge(b, "navserve_flush_queue_depth",
		"Dirty sessions awaiting their write-behind flush.", float64(queued))
	obs.WriteGauge(b, "navserve_persist_writes",
		"Session records written to the persistence backend since start.", float64(written))
	retryQueued, _ := s.RetryStats()
	obs.WriteGauge(b, "navserve_persist_retry_queue_depth",
		"Failed session writes awaiting their backoff retry.", float64(retryQueued))
	degraded, _ := s.Degraded()
	degradedVal := 0.0
	if degraded {
		degradedVal = 1
	}
	obs.WriteGauge(b, "navserve_degraded",
		"1 while the store-health breaker is open (persistence failing, /readyz 503).", degradedVal)
	var rec analytics.Stats
	if s.rec != nil {
		rec = s.rec.Stats()
	}
	obs.WriteGauge(b, "navserve_analytics_recorded",
		"Navigation hops recorded by the analytics recorder.", float64(rec.Recorded))
	obs.WriteGauge(b, "navserve_analytics_sampled_out",
		"Hops skipped by sampling.", float64(rec.SampledOut))
	obs.WriteGauge(b, "navserve_analytics_dropped",
		"Hops dropped because the recorder's tables were full.", float64(rec.Dropped))
	adaptGen, derived := s.AdaptStats()
	obs.WriteGauge(b, "navserve_adapt_generation",
		"Completed adaptation cycles on this instance.", float64(adaptGen))
	obs.WriteGauge(b, "navserve_derived_structures",
		"Per-context structures the last adaptation cycle derived.", float64(derived))
	obs.WriteGauge(b, "navserve_mutation_events",
		"Model mutations traced since start (GET /api/v1/events for the ring).", float64(s.app.Events().Total()))
	if s.tracer != nil {
		obs.WriteGauge(b, "navserve_traces_kept",
			"Request traces kept (sampled or slow) since start (GET /api/v1/traces for the ring).",
			float64(s.tracer.Ring().Total()))
	}
	obs.WriteGauge(b, "navserve_uptime_seconds",
		"Seconds since this server was constructed.", time.Since(s.start).Seconds())
	obs.WriteGauge(b, "navserve_goroutines",
		"Live goroutines in the process.", float64(runtime.NumGoroutine()))
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	obs.WriteGauge(b, "navserve_heap_bytes",
		"Bytes of allocated heap objects.", float64(mem.HeapAlloc))
}
