package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
)

// analyticsServer builds a paper-museum server with a trail recorder
// and a permissive derivation config (tiny sample floors, so tests can
// adapt after a handful of simulated visitors).
func analyticsServer(t testing.TB, opts ...Option) (*Server, *analytics.Recorder) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	rec := analytics.NewRecorder(analytics.RecorderConfig{})
	opts = append([]Option{
		WithAnalytics(rec),
		WithDeriveConfig(analytics.Config{MinHops: 5, LandmarkShare: 0.4}),
	}, opts...)
	return New(app, opts...), rec
}

// visit performs one page GET as the given visitor, returning the
// session cookie (issued on first contact) and the response.
func visit(t *testing.T, srv *Server, path, cookie string) (string, *recorder) {
	t.Helper()
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest(path, cookie))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
	}
	if c := rec.cookie(); c != "" {
		cookie = c
	}
	return cookie, rec
}

// simulateDominantTraffic walks visitors through ByAuthor:picasso along
// guernica -> avignon -> guitar — deliberately not the authored year
// order (avignon, guitar, guernica).
func simulateDominantTraffic(t *testing.T, srv *Server, visitors int) {
	t.Helper()
	for v := 0; v < visitors; v++ {
		cookie := ""
		for _, page := range []string{
			"/ByAuthor/picasso/guernica.html",
			"/ByAuthor/picasso/avignon.html",
			"/ByAuthor/picasso/guitar.html",
		} {
			cookie, _ = visit(t, srv, page, cookie)
		}
	}
}

// TestAdaptiveEndToEnd is the acceptance scenario: simulated traffic
// produces a derived "popular next" structure whose top edge matches
// the dominant path, served live after an adapt cycle with correct
// ETag rotation — and only the adapted family's validators move.
func TestAdaptiveEndToEnd(t *testing.T) {
	srv, rec := analyticsServer(t)

	simulateDominantTraffic(t, srv, 10)
	if st := rec.Stats(); st.Recorded == 0 {
		t.Fatalf("recorder stats = %+v, want traffic", st)
	}

	// Validators before adaptation.
	_, before := visit(t, srv, "/ByAuthor/picasso/guernica.html", "")
	beforeTag := before.Header().Get("ETag")
	_, otherBefore := visit(t, srv, "/ByMovement/cubism/guitar.html", "")
	otherTag := otherBefore.Header().Get("ETag")

	plans, err := srv.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if plans == 0 {
		t.Fatal("adapt derived no structures")
	}
	if gen, derived := srv.AdaptStats(); gen != 1 || derived == 0 {
		t.Errorf("adapt stats = gen %d derived %d", gen, derived)
	}

	// The derived structure's order follows the dominant simulated
	// path, not the authored year order.
	tour, ok := srv.app.Resolved().Context("ByAuthor:picasso").Def.Access.(*navigation.AdaptiveTour)
	if !ok {
		t.Fatalf("access structure = %T, want *AdaptiveTour", srv.app.Resolved().Context("ByAuthor:picasso").Def.Access)
	}
	order := tour.Plans["ByAuthor:picasso"].Order
	if len(order) < 3 || order[0] != "guernica" || order[1] != "avignon" || order[2] != "guitar" {
		t.Fatalf("derived order = %v, want dominant path guernica avignon guitar", order)
	}

	// Served live, with a rotated validator: the old tag no longer
	// revalidates and the new page carries the learned Next edge.
	req := newRequest("/ByAuthor/picasso/guernica.html", "")
	req.Header.Set("If-None-Match", beforeTag)
	after := newRecorder()
	srv.ServeHTTP(after, req)
	if after.Code != http.StatusOK {
		t.Fatalf("post-adapt conditional GET = %d, want 200 (structure changed)", after.Code)
	}
	if tag := after.Header().Get("ETag"); tag == beforeTag {
		t.Errorf("ETag did not rotate across the adaptation: %q", tag)
	}
	body := after.Body.String()
	if !strings.Contains(body, `class="nav-next"`) || !strings.Contains(body, "/ByAuthor/picasso/avignon.html") {
		t.Errorf("adapted page lacks the learned next edge:\n%s", body)
	}

	// The un-adapted family keeps revalidating with its old tag.
	otherReq := newRequest("/ByMovement/cubism/guitar.html", "")
	otherReq.Header.Set("If-None-Match", otherTag)
	otherAfter := newRecorder()
	srv.ServeHTTP(otherAfter, otherReq)
	if otherAfter.Code != http.StatusNotModified {
		t.Errorf("ByMovement conditional GET after ByAuthor adapt = %d, want 304", otherAfter.Code)
	}

	// A second cycle over the same traffic derives the same tours and
	// must not rotate validators again (the no-op swap is skipped).
	tagStable := after.Header().Get("ETag")
	if _, err := srv.Adapt(); err != nil {
		t.Fatal(err)
	}
	_, again := visit(t, srv, "/ByAuthor/picasso/guernica.html", "")
	if got := again.Header().Get("ETag"); got != tagStable {
		t.Errorf("steady-state adapt rotated ETag %q -> %q", tagStable, got)
	}

	// An operator reverting the family by hand is not silently
	// ignored: the next cycle re-derives and re-installs the tour (the
	// steady-state skip compares against the live structure).
	if err := srv.app.SetAccessStructure("ByAuthor", navigation.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Adapt(); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.app.Resolved().Context("ByAuthor:picasso").Def.Access.(*navigation.AdaptiveTour); !ok {
		t.Error("adapt cycle after an operator revert left the authored structure in place")
	}
}

// TestTraversalFollowsAdaptedModel: a session created before an adapt
// cycle is rebased onto the new model, so /go/next answers per the
// same derived edges the freshly woven pages display — not the
// pre-adapt chain.
func TestTraversalFollowsAdaptedModel(t *testing.T) {
	srv, _ := analyticsServer(t)
	simulateDominantTraffic(t, srv, 10)

	// This visitor's session predates the adaptation. Authored order
	// (by year) says Next(guernica) does not exist — guernica is last.
	cookie, _ := visit(t, srv, "/ByAuthor/picasso/guernica.html", "")
	if _, err := srv.Adapt(); err != nil {
		t.Fatal(err)
	}

	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/go/next", cookie))
	if w.Code != http.StatusSeeOther {
		t.Fatalf("/go/next after adapt = %d: %s", w.Code, w.Body.String())
	}
	if loc := w.Header().Get("Location"); loc != "/ByAuthor/picasso/avignon.html" {
		t.Errorf("post-adapt Next = %q, want the derived /ByAuthor/picasso/avignon.html", loc)
	}
}

// TestTraversalRecording: session-relative /go/ traversals feed the
// recorder too, including entries via context switches.
func TestTraversalRecording(t *testing.T) {
	srv, rec := analyticsServer(t)
	cookie, _ := visit(t, srv, "/ByAuthor/picasso/avignon.html", "")
	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/go/next", cookie))
	if w.Code != http.StatusSeeOther {
		t.Fatalf("/go/next = %d", w.Code)
	}
	w = newRecorder()
	srv.ServeHTTP(w, newRequest("/go/switch?context=ByMovement:cubism", cookie))
	if w.Code != http.StatusSeeOther {
		t.Fatalf("/go/switch = %d: %s", w.Code, w.Body.String())
	}

	g := analytics.BuildGraph(rec.Snapshot())
	author := g.Contexts["ByAuthor:picasso"]
	if author == nil || author.NextCount("avignon", "guitar") != 1 {
		t.Errorf("author graph = %+v, want avignon->guitar traversal", author)
	}
	movement := g.Contexts["ByMovement:cubism"]
	if movement == nil || movement.Entries["guitar"] != 1 {
		t.Errorf("movement graph = %+v, want entry at guitar from the context switch", movement)
	}
}

// TestReloadNotRecorded: refreshing (or revalidating) the current page
// is not a traversal and must not pollute the transition graph.
func TestReloadNotRecorded(t *testing.T) {
	srv, rec := analyticsServer(t)
	cookie, _ := visit(t, srv, "/ByAuthor/picasso/guitar.html", "")
	for i := 0; i < 5; i++ {
		visit(t, srv, "/ByAuthor/picasso/guitar.html", cookie)
	}
	if st := rec.Stats(); st.Recorded != 1 {
		t.Errorf("recorded = %d, want 1 (the entry; reloads skipped)", st.Recorded)
	}
}

// TestStatsEndpoint: /stats exposes the recorder counters, adapt
// progress and per-context summaries.
func TestStatsEndpoint(t *testing.T) {
	srv, _ := analyticsServer(t)
	simulateDominantTraffic(t, srv, 4)
	if _, err := srv.Adapt(); err != nil {
		t.Fatal(err)
	}

	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/stats", ""))
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d", w.Code)
	}
	var payload struct {
		Analytics  bool `json:"analytics"`
		SampleRate int  `json:"sample_rate"`
		Recorder   struct {
			Recorded uint64 `json:"recorded"`
		} `json:"recorder"`
		AdaptGeneration   uint64 `json:"adapt_generation"`
		DerivedStructures uint64 `json:"derived_structures"`
		Contexts          map[string]struct {
			Hops     uint64                 `json:"hops"`
			TopEdges []analytics.Transition `json:"top_edges"`
		} `json:"contexts"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Analytics || payload.SampleRate != 1 || payload.Recorder.Recorded == 0 {
		t.Errorf("payload = %+v", payload)
	}
	if payload.AdaptGeneration != 1 || payload.DerivedStructures == 0 {
		t.Errorf("adapt fields = %d/%d", payload.AdaptGeneration, payload.DerivedStructures)
	}
	picasso := payload.Contexts["ByAuthor:picasso"]
	if picasso.Hops == 0 || len(picasso.TopEdges) == 0 {
		t.Fatalf("picasso summary = %+v", picasso)
	}
	// Every step of the dominant path was walked equally often, so the
	// top edge must be one of its two transitions.
	top := picasso.TopEdges[0]
	onPath := (top.From == "guernica" && top.To == "avignon") ||
		(top.From == "avignon" && top.To == "guitar")
	if !onPath || top.Count != 4 {
		t.Errorf("top edge = %+v, want a dominant-path edge with count 4", top)
	}

	// Without a recorder the endpoint reports analytics off.
	plain, _ := testServer(t)
	w = newRecorder()
	plain.ServeHTTP(w, newRequest("/stats", ""))
	var off struct {
		Analytics bool `json:"analytics"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &off); err != nil {
		t.Fatal(err)
	}
	if off.Analytics {
		t.Error("recorder-less /stats reports analytics on")
	}
}

// TestHealthzAnalytics: the liveness payload carries the analytics
// counters the satellite task asks for.
func TestHealthzAnalytics(t *testing.T) {
	srv, _ := analyticsServer(t)
	simulateDominantTraffic(t, srv, 4)
	if _, err := srv.Adapt(); err != nil {
		t.Fatal(err)
	}
	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/healthz", ""))
	var health struct {
		AnalyticsRecorded   uint64 `json:"analytics_recorded"`
		AnalyticsSampledOut uint64 `json:"analytics_sampled_out"`
		AdaptGeneration     uint64 `json:"adapt_generation"`
		DerivedStructures   uint64 `json:"derived_structures"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.AnalyticsRecorded == 0 || health.AdaptGeneration != 1 || health.DerivedStructures == 0 {
		t.Errorf("healthz analytics = %+v", health)
	}
}

// TestAdaptWithoutRecorder: Adapt on a recorder-less server errors
// rather than silently doing nothing.
func TestAdaptWithoutRecorder(t *testing.T) {
	srv, _ := testServer(t)
	if _, err := srv.Adapt(); err == nil {
		t.Error("Adapt without recorder = nil error")
	}
}

// TestTrailLimitOverHTTP: the server-side cap bounds /session history
// for long-lived crawler sessions.
func TestTrailLimitOverHTTP(t *testing.T) {
	srv, _ := analyticsServer(t, WithTrailLimit(3))
	cookie := ""
	for i := 0; i < 7; i++ {
		for _, page := range []string{"/ByAuthor/picasso/guitar.html", "/ByAuthor/picasso/guernica.html"} {
			cookie, _ = visit(t, srv, page, cookie)
		}
	}
	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/session", cookie))
	var visits []navigation.Visit
	if err := json.Unmarshal(w.Body.Bytes(), &visits); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 3 {
		t.Errorf("session history = %d visits, want 3 (capped)", len(visits))
	}
}

// TestAdaptationLoopAgainstTraffic is the -race hammer of the satellite
// task: live traversals, the adaptation loop, explicit access-structure
// swaps and stats reads all race over one server.
func TestAdaptationLoopAgainstTraffic(t *testing.T) {
	srv, _ := analyticsServer(t, WithDeriveConfig(analytics.Config{MinHops: 1}))
	stop := srv.StartAdaptation(time.Millisecond, 1)
	defer stop()

	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	for v := 0; v < 4; v++ {
		wg.Add(1)
		go func() { // visitors walking the dominant path
			defer wg.Done()
			cookie := ""
			pages := []string{
				"/ByAuthor/picasso/guernica.html",
				"/ByAuthor/picasso/avignon.html",
				"/ByAuthor/picasso/guitar.html",
				"/ByMovement/cubism/guitar.html",
			}
			for time.Now().Before(deadline) {
				for _, page := range pages {
					w := newRecorder()
					srv.ServeHTTP(w, newRequest(page, cookie))
					if w.Code != http.StatusOK {
						t.Errorf("GET %s = %d", page, w.Code)
						return
					}
					if c := w.cookie(); c != "" {
						cookie = c
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // a traverser exercising the session-relative API
		defer wg.Done()
		cookie := ""
		w := newRecorder()
		srv.ServeHTTP(w, newRequest("/ByAuthor/picasso/avignon.html", cookie))
		cookie = w.cookie()
		for time.Now().Before(deadline) {
			for _, action := range []string{"/go/next", "/go/prev"} {
				w := newRecorder()
				srv.ServeHTTP(w, newRequest(action, cookie))
			}
		}
	}()
	wg.Add(1)
	go func() { // an operator flapping the other family's structure
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			var as navigation.AccessStructure = navigation.Index{}
			if i%2 == 0 {
				as = navigation.IndexedGuidedTour{}
			}
			if err := srv.app.SetAccessStructure("ByMovement", as); err != nil {
				t.Errorf("SetAccessStructure: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // stats and health readers
		defer wg.Done()
		for time.Now().Before(deadline) {
			for _, path := range []string{"/stats", "/healthz"} {
				w := newRecorder()
				srv.ServeHTTP(w, newRequest(path, ""))
			}
		}
	}()
	wg.Wait()
	stop()

	// The server still serves coherently after the storm.
	w := newRecorder()
	srv.ServeHTTP(w, newRequest("/ByAuthor/picasso/guernica.html", ""))
	if w.Code != http.StatusOK {
		t.Fatalf("post-hammer GET = %d", w.Code)
	}
	if gen, _ := srv.AdaptStats(); gen == 0 {
		t.Error("adaptation loop never completed a cycle")
	}
}

// TestServeAllocsWithRecorder: enabling analytics must not blow the
// hot-path allocation budget — recording is alloc-free.
func TestServeAllocsWithRecorder(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	srv, _ := analyticsServer(t)
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d", rec.Code)
	}
	req := newRequest("/ByAuthor/picasso/guitar.html", rec.cookie())
	if avg := serveAllocs(t, srv, req); avg > maxPageServeAllocs {
		t.Errorf("hot page serve with recorder = %.1f allocs/op, budget %d", avg, maxPageServeAllocs)
	}
}

// TestStartAdaptationStopIdempotent mirrors the janitor contract.
func TestStartAdaptationStopIdempotent(t *testing.T) {
	srv, _ := analyticsServer(t)
	stop := srv.StartAdaptation(time.Hour, 1)
	stop()
	stop()
}
