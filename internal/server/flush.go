package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/navigation"
	"repro/internal/storage"
)

// Write-behind persistence defaults; override with WithFlushInterval,
// WithFlushBatch and WithRetryLimit.
const (
	// DefaultFlushInterval is how often the background flusher drains
	// the dirty-session queue when no batch fills up first. It bounds
	// the durability window: a crash loses at most this much trail.
	DefaultFlushInterval = 100 * time.Millisecond
	// DefaultFlushBatch is how many sessions one flush round writes,
	// and the queue depth that triggers an early flush.
	DefaultFlushBatch = 256
	// DefaultRetryLimit bounds the failed-write retry queue. When the
	// store stays down long enough to fill it, the oldest entry is
	// dropped (and counted) to admit the newest — bounded memory under
	// unbounded failure.
	DefaultRetryLimit = 4096
	// retryMaxDelay caps the exponential retry backoff.
	retryMaxDelay = 5 * time.Second
)

// retryEntry is one failed session write awaiting its next attempt.
type retryEntry struct {
	sess     *navigation.Session // nil = tombstone (delete, not write)
	attempts int
	nextAt   time.Time
	seq      uint64 // enqueue order, for oldest-first dropping
}

// flusher is the write-behind half of session persistence: navigation
// steps mark the session dirty in a coalescing queue (keyed by session
// id — only the latest state is ever written, so ten steps between two
// flushes cost one Put, not ten), and a background goroutine drains the
// queue in bounded batches on an interval. The request path pays a map
// insert; the marshal and the store write happen off-request.
//
// A nil session in the queue is a tombstone: the session was evicted and
// its durable record must be deleted instead of written. All store
// writes go through the single flusher goroutine (or through flushNow's
// caller while it holds the drain lock), so one session's Put and
// Delete can never land out of order.
//
// A write the store rejects is not dropped: it moves to a bounded retry
// queue and is re-attempted with capped exponential backoff, so a store
// outage queues persistence instead of silently losing trails. Failures
// and successes feed the server's store-health breaker — enough
// consecutive failures flip the server into degraded mode (see
// degraded.go) until a write lands again.
type flusher struct {
	st     storage.Store
	ttl    time.Duration
	now    func() time.Time
	health *breaker

	mu     sync.Mutex
	dirty  map[string]*navigation.Session
	closed bool

	// retry holds failed writes keyed by session id, each with its
	// attempt count and earliest next attempt. A fresh enqueue for the
	// id supersedes the entry (latest state wins, and user activity
	// warrants an immediate attempt). Guarded by mu.
	retry      map[string]*retryEntry
	retrySeq   uint64
	retryLimit int
	dropped    atomic.Uint64

	// drainMu serializes flush rounds, so a synchronous flushNow and
	// the background loop never interleave writes for one batch.
	drainMu sync.Mutex

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	batch    int
	interval time.Duration
	flushed  atomic.Uint64
}

// newFlusher starts the background flusher over st.
func newFlusher(st storage.Store, ttl time.Duration, now func() time.Time, batch int, interval time.Duration, retryLimit int, health *breaker) *flusher {
	if batch < 1 {
		batch = 1
	}
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	if retryLimit < 1 {
		retryLimit = 1
	}
	f := &flusher{
		st:         st,
		ttl:        ttl,
		now:        now,
		health:     health,
		dirty:      map[string]*navigation.Session{},
		retry:      map[string]*retryEntry{},
		retryLimit: retryLimit,
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		batch:      batch,
		interval:   interval,
	}
	f.wg.Add(1)
	go f.run()
	return f
}

// enqueue marks a session dirty; the latest enqueue for an id wins, and
// supersedes any retry pending for the id — the write that happens next
// round carries this fresher state. After close, the write happens
// synchronously — a late request must not lose its step just because
// shutdown started — but still under drainMu, so it cannot interleave
// with the final drain and land a Put/Delete pair for one id out of
// order.
//
//repro:hotpath
func (f *flusher) enqueue(id string, sess *navigation.Session) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.drainMu.Lock()
		//repro:allow(post-close stragglers write synchronously; shutdown only)
		f.writeObserved(id, sess)
		f.drainMu.Unlock()
		return
	}
	f.dirty[id] = sess
	delete(f.retry, id)
	depth := len(f.dirty)
	f.mu.Unlock()
	if depth >= f.batch {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// enqueueDelete queues a tombstone: the session was evicted, its durable
// record dies with it. Any pending state write for the id is superseded.
func (f *flusher) enqueueDelete(id string) { f.enqueue(id, nil) }

// depth reports how many sessions are waiting to be flushed.
func (f *flusher) depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.dirty)
}

// retryDepth reports how many failed writes await re-attempt.
func (f *flusher) retryDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.retry)
}

// run is the background drain loop.
func (f *flusher) run() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.done:
			f.flushNow()
			return
		case <-ticker.C:
		case <-f.kick:
		}
		f.flushRound()
	}
}

// flushRound drains one bounded batch.
func (f *flusher) flushRound() {
	f.drainMu.Lock()
	defer f.drainMu.Unlock()
	f.flushBatchLocked()
}

// flushNow drains the whole queue synchronously, promoting every
// pending retry to an immediate attempt first — the shutdown (and
// test) path gets one last chance to land everything, backoff or not.
func (f *flusher) flushNow() {
	f.drainMu.Lock()
	defer f.drainMu.Unlock()
	f.mu.Lock()
	for id, e := range f.retry {
		if _, pending := f.dirty[id]; !pending {
			f.dirty[id] = e.sess
		}
		delete(f.retry, id)
	}
	f.mu.Unlock()
	for f.flushBatchLocked() > 0 {
	}
}

// flushBatchLocked takes up to one batch off the queues — dirty
// sessions first, then retries whose backoff has elapsed — writes it,
// and reschedules failures. Returns how many entries it attempted.
// Callers must hold drainMu.
func (f *flusher) flushBatchLocked() int {
	now := f.now()
	f.mu.Lock()
	n := len(f.dirty)
	if n > f.batch {
		n = f.batch
	}
	ids := make([]string, 0, n)
	sessions := make([]*navigation.Session, 0, n)
	attempts := make([]int, 0, n)
	for id, sess := range f.dirty {
		ids = append(ids, id)
		sessions = append(sessions, sess)
		attempts = append(attempts, 0)
		delete(f.dirty, id)
		if len(ids) == n {
			break
		}
	}
	// Fill the rest of the batch with due retries.
	for id, e := range f.retry {
		if len(ids) >= f.batch {
			break
		}
		if e.nextAt.After(now) {
			continue
		}
		ids = append(ids, id)
		sessions = append(sessions, e.sess)
		attempts = append(attempts, e.attempts)
		delete(f.retry, id)
	}
	f.mu.Unlock()
	if len(ids) == 0 {
		return 0
	}
	start := time.Now()
	for i, id := range ids {
		if err := f.writeObserved(id, sessions[i]); err != nil {
			f.reschedule(id, sessions[i], attempts[i]+1)
		}
	}
	// The batch runs on the flusher goroutine (or a synchronous drain),
	// never on a request, so the clock reads are off the hot path.
	flushBatchDuration.Observe(time.Since(start))
	flushBatches.Inc()
	flushWrites.Add(uint64(len(ids)))
	return len(ids)
}

// reschedule queues a failed write for another attempt after a capped
// exponential backoff. The queue is bounded: when full, the oldest
// entry is dropped and counted — that session's trail loses durability
// (until its next step re-enqueues it), but memory stays bounded while
// the store is down.
func (f *flusher) reschedule(id string, sess *navigation.Session, attempts int) {
	delay := f.interval
	for i := 1; i < attempts && delay < retryMaxDelay; i++ {
		delay *= 2
	}
	if delay > retryMaxDelay {
		delay = retryMaxDelay
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, pending := f.dirty[id]; pending {
		// A fresh state was enqueued while this write was failing; the
		// pending write supersedes the failed one.
		return
	}
	if len(f.retry) >= f.retryLimit {
		var oldestID string
		var oldest *retryEntry
		for rid, e := range f.retry {
			if oldest == nil || e.seq < oldest.seq {
				oldestID, oldest = rid, e
			}
		}
		delete(f.retry, oldestID)
		f.dropped.Add(1)
		persistRetryDropped.Inc()
	}
	f.retrySeq++
	f.retry[id] = &retryEntry{
		sess:     sess,
		attempts: attempts,
		nextAt:   f.now().Add(delay),
		seq:      f.retrySeq,
	}
	persistRetries.Inc()
}

// writeObserved is write plus health accounting: a store failure trips
// the breaker toward degraded mode, a success resets it.
func (f *flusher) writeObserved(id string, sess *navigation.Session) error {
	err := f.write(id, sess)
	if err != nil {
		persistErrors.Inc()
		f.health.fail("session persistence failing: " + err.Error())
		return err
	}
	f.health.ok()
	return nil
}

// write persists one session's current state (or deletes its record for
// a tombstone). The session is snapshotted here, at write time, so
// coalesced steps are captured by their final state. The store's error
// is returned so the caller can retry; a marshal error is permanent
// (retrying the same state cannot help) and is swallowed after
// counting.
func (f *flusher) write(id string, sess *navigation.Session) error {
	if sess == nil {
		if err := f.st.Delete(sessionKeyPrefix + id); err != nil {
			return err
		}
		f.flushed.Add(1)
		return nil
	}
	rec := sessionRecord{State: sess.State()}
	if f.ttl > 0 {
		rec.Expires = f.now().Add(f.ttl)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		persistErrors.Inc()
		return nil
	}
	if err := f.st.Put(sessionKeyPrefix+id, raw); err != nil {
		return err
	}
	f.flushed.Add(1)
	return nil
}

// close stops the loop after a final full drain. Idempotent; enqueues
// arriving after close write through synchronously.
func (f *flusher) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.done)
	f.wg.Wait()
}
