package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/navigation"
	"repro/internal/storage"
)

// Write-behind persistence defaults; override with WithFlushInterval and
// WithFlushBatch.
const (
	// DefaultFlushInterval is how often the background flusher drains
	// the dirty-session queue when no batch fills up first. It bounds
	// the durability window: a crash loses at most this much trail.
	DefaultFlushInterval = 100 * time.Millisecond
	// DefaultFlushBatch is how many sessions one flush round writes,
	// and the queue depth that triggers an early flush.
	DefaultFlushBatch = 256
)

// flusher is the write-behind half of session persistence: navigation
// steps mark the session dirty in a coalescing queue (keyed by session
// id — only the latest state is ever written, so ten steps between two
// flushes cost one Put, not ten), and a background goroutine drains the
// queue in bounded batches on an interval. The request path pays a map
// insert; the marshal and the store write happen off-request.
//
// A nil session in the queue is a tombstone: the session was evicted and
// its durable record must be deleted instead of written. All store
// writes go through the single flusher goroutine (or through flushNow's
// caller while it holds the drain lock), so one session's Put and
// Delete can never land out of order.
type flusher struct {
	st  storage.Store
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	dirty  map[string]*navigation.Session
	closed bool

	// drainMu serializes flush rounds, so a synchronous flushNow and
	// the background loop never interleave writes for one batch.
	drainMu sync.Mutex

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	batch    int
	interval time.Duration
	flushed  atomic.Uint64
}

// newFlusher starts the background flusher over st.
func newFlusher(st storage.Store, ttl time.Duration, now func() time.Time, batch int, interval time.Duration) *flusher {
	if batch < 1 {
		batch = 1
	}
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	f := &flusher{
		st:       st,
		ttl:      ttl,
		now:      now,
		dirty:    map[string]*navigation.Session{},
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		batch:    batch,
		interval: interval,
	}
	f.wg.Add(1)
	go f.run()
	return f
}

// enqueue marks a session dirty; the latest enqueue for an id wins.
// After close, the write happens synchronously — a late request must
// not lose its step just because shutdown started — but still under
// drainMu, so it cannot interleave with the final drain and land a
// Put/Delete pair for one id out of order.
//
//repro:hotpath
func (f *flusher) enqueue(id string, sess *navigation.Session) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.drainMu.Lock()
		//repro:allow(post-close stragglers write synchronously; shutdown only)
		f.write(id, sess)
		f.drainMu.Unlock()
		return
	}
	f.dirty[id] = sess
	depth := len(f.dirty)
	f.mu.Unlock()
	if depth >= f.batch {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// enqueueDelete queues a tombstone: the session was evicted, its durable
// record dies with it. Any pending state write for the id is superseded.
func (f *flusher) enqueueDelete(id string) { f.enqueue(id, nil) }

// depth reports how many sessions are waiting to be flushed.
func (f *flusher) depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.dirty)
}

// run is the background drain loop.
func (f *flusher) run() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.done:
			f.flushNow()
			return
		case <-ticker.C:
		case <-f.kick:
		}
		f.flushRound()
	}
}

// flushRound drains one bounded batch.
func (f *flusher) flushRound() {
	f.drainMu.Lock()
	defer f.drainMu.Unlock()
	f.flushBatchLocked()
}

// flushNow drains the whole queue synchronously.
func (f *flusher) flushNow() {
	f.drainMu.Lock()
	defer f.drainMu.Unlock()
	for f.flushBatchLocked() > 0 {
	}
}

// flushBatchLocked takes up to one batch off the queue and writes it,
// returning how many entries it took. Callers must hold drainMu.
func (f *flusher) flushBatchLocked() int {
	f.mu.Lock()
	if len(f.dirty) == 0 {
		f.mu.Unlock()
		return 0
	}
	n := len(f.dirty)
	if n > f.batch {
		n = f.batch
	}
	ids := make([]string, 0, n)
	sessions := make([]*navigation.Session, 0, n)
	for id, sess := range f.dirty {
		ids = append(ids, id)
		sessions = append(sessions, sess)
		delete(f.dirty, id)
		if len(ids) == n {
			break
		}
	}
	f.mu.Unlock()
	start := time.Now()
	for i, id := range ids {
		f.write(id, sessions[i])
	}
	// The batch runs on the flusher goroutine (or a synchronous drain),
	// never on a request, so the clock reads are off the hot path.
	flushBatchDuration.Observe(time.Since(start))
	flushBatches.Inc()
	flushWrites.Add(uint64(len(ids)))
	return len(ids)
}

// write persists one session's current state (or deletes its record for
// a tombstone). The session is snapshotted here, at write time, so
// coalesced steps are captured by their final state.
func (f *flusher) write(id string, sess *navigation.Session) {
	if sess == nil {
		if f.st.Delete(sessionKeyPrefix+id) == nil {
			f.flushed.Add(1)
		}
		return
	}
	rec := sessionRecord{State: sess.State()}
	if f.ttl > 0 {
		rec.Expires = f.now().Add(f.ttl)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if f.st.Put(sessionKeyPrefix+id, raw) == nil {
		f.flushed.Add(1)
	}
}

// close stops the loop after a final full drain. Idempotent; enqueues
// arriving after close write through synchronously.
func (f *flusher) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.done)
	f.wg.Wait()
}
