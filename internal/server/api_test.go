package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

const testToken = "test-control-plane-token"

// apiTestServer boots a paper-museum server with the given options.
func apiTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(app, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// apiDo performs one control-plane request with an optional token.
func apiDo(t *testing.T, method, url, token, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeBody decodes a JSON response body into out.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// wantAPIError asserts a structured JSON error with the given status.
func wantAPIError(t *testing.T, resp *http.Response, status int) api.Error {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var eb api.ErrorBody
	decodeBody(t, resp, &eb)
	if eb.Error.Status != status || eb.Error.Message == "" {
		t.Errorf("error body = %+v, want status %d with a message", eb.Error, status)
	}
	return eb.Error
}

// TestAPIStructureSwapE2E is the acceptance scenario: a structure swap
// issued through PUT /api/v1/contexts/{family}/structure changes served
// pages and rotates ETags for only the affected context family.
func TestAPIStructureSwapE2E(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))

	authorTag := firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")
	movementTag := firstGet(t, ts.URL+"/ByMovement/cubism/guitar.html")
	hubResp := condGet(t, ts.URL+"/ByAuthor/picasso/index.html", "")
	if hubResp.StatusCode != http.StatusOK {
		t.Fatalf("hub before swap = %d", hubResp.StatusCode)
	}

	// The one-call edit: ByAuthor drops its index pages for a pure
	// guided tour.
	resp := apiDo(t, http.MethodPut, ts.URL+api.BasePath+"/contexts/ByAuthor/structure",
		testToken, `{"kind":"guided-tour"}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT structure = %d: %s", resp.StatusCode, body)
	}
	var res api.MutationResult
	decodeBody(t, resp, &res)
	if res.Family != "ByAuthor" || res.DroppedPages <= 0 {
		t.Errorf("mutation result = %+v, want ByAuthor with dropped pages", res)
	}
	found := false
	for _, name := range res.Contexts {
		if name == "ByAuthor:picasso" {
			found = true
		}
		if strings.HasPrefix(name, "ByMovement") {
			t.Errorf("mutation claims to affect %s", name)
		}
	}
	if !found {
		t.Errorf("mutation contexts = %v, want ByAuthor:picasso listed", res.Contexts)
	}

	// Affected family: new content, new validator.
	after := condGet(t, ts.URL+"/ByAuthor/picasso/guitar.html", authorTag)
	if after.StatusCode != http.StatusOK {
		t.Fatalf("author page after swap = %d, want 200 (new content)", after.StatusCode)
	}
	if got := after.Header.Get("ETag"); got == authorTag || got == "" {
		t.Errorf("author ETag after swap = %q, want a new tag (old %q)", got, authorTag)
	}
	body, _ := io.ReadAll(after.Body)
	if strings.Contains(string(body), `class="nav-up"`) {
		t.Error("guided-tour page still links Up to an index the structure no longer has")
	}
	if !strings.Contains(string(body), `class="nav-next"`) {
		t.Error("guided-tour page lacks the Next link")
	}
	// The family's hub pages are gone with the structure.
	if resp := condGet(t, ts.URL+"/ByAuthor/picasso/index.html", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("hub after swap = %d, want 404", resp.StatusCode)
	}

	// Unaffected family: the old validator still validates — the swap's
	// blast radius was exactly one family.
	if resp := condGet(t, ts.URL+"/ByMovement/cubism/guitar.html", movementTag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("ByMovement page after ByAuthor swap = %d, want 304", resp.StatusCode)
	}

	// The control plane reads back the new structure.
	resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/contexts/ByAuthor/structure", testToken, "")
	var st api.Structure
	decodeBody(t, resp, &st)
	if st.Spec == nil || st.Spec.Kind != "guided-tour" || st.Text != "guided-tour" {
		t.Errorf("structure after swap = %+v", st)
	}
}

// TestAPIWriteAuth is the other half of the acceptance criteria:
// unauthenticated requests and requests against a token-less server are
// rejected before anything mutates.
func TestAPIWriteAuth(t *testing.T) {
	t.Run("token-less server rejects everything", func(t *testing.T) {
		srv, ts := apiTestServer(t) // no WithAPIToken
		resp := apiDo(t, http.MethodPut, ts.URL+api.BasePath+"/contexts/ByAuthor/structure",
			"whatever", `{"kind":"menu"}`)
		wantAPIError(t, resp, http.StatusForbidden)
		if resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/model", "", ""); resp.StatusCode != http.StatusForbidden {
			t.Errorf("read on token-less server = %d, want 403", resp.StatusCode)
		}
		if kind := srv.app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "indexed-guided-tour" {
			t.Errorf("structure mutated to %q through a disabled control plane", kind)
		}
	})
	t.Run("missing and wrong tokens are 401", func(t *testing.T) {
		srv, ts := apiTestServer(t, WithAPIToken(testToken))
		for _, tok := range []string{"", "wrong-token"} {
			resp := apiDo(t, http.MethodPut, ts.URL+api.BasePath+"/contexts/ByAuthor/structure",
				tok, `{"kind":"menu"}`)
			wantAPIError(t, resp, http.StatusUnauthorized)
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Error("401 without WWW-Authenticate")
			}
		}
		if kind := srv.app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "indexed-guided-tour" {
			t.Errorf("structure mutated to %q by an unauthenticated request", kind)
		}
	})
}

// TestAPIValidateThenMutate: a spec that decodes but names garbage, or
// a bad attribute in a document patch batch, changes nothing.
func TestAPIValidateThenMutate(t *testing.T) {
	srv, ts := apiTestServer(t, WithAPIToken(testToken))

	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"malformed JSON", http.MethodPut, "/contexts/ByAuthor/structure", `{"kind"`, http.StatusBadRequest},
		{"unknown field", http.MethodPut, "/contexts/ByAuthor/structure", `{"kind":"menu","bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPut, "/contexts/ByAuthor/structure", `{"kind":"menu"}{"kind":"index"}`, http.StatusBadRequest},
		{"trailing patch garbage", http.MethodPatch, "/documents/guitar", `{"set":{"title":"x"}} extra`, http.StatusBadRequest},
		{"invalid spec", http.MethodPut, "/contexts/ByAuthor/structure", `{"kind":"index","circular":true}`, http.StatusBadRequest},
		{"unknown family", http.MethodPut, "/contexts/Nope/structure", `{"kind":"menu"}`, http.StatusNotFound},
		{"unknown instance", http.MethodPatch, "/documents/nope", `{"set":{"title":"x"}}`, http.StatusNotFound},
		{"empty patch", http.MethodPatch, "/documents/guitar", `{"set":{}}`, http.StatusBadRequest},
		{"bad stylesheet", http.MethodPut, "/stylesheet", `<not-a-stylesheet/>`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := apiDo(t, tc.method, ts.URL+api.BasePath+tc.path, testToken, tc.body)
			wantAPIError(t, resp, tc.status)
		})
	}

	// A patch batch with one bad attribute applies neither attribute.
	resp := apiDo(t, http.MethodPatch, ts.URL+api.BasePath+"/documents/guitar",
		testToken, `{"set":{"title":"Guitarra","year":"not-a-number"}}`)
	wantAPIError(t, resp, http.StatusBadRequest)
	if got := srv.app.Store().Get("guitar").Attr("title"); got != "Guitar" {
		t.Errorf("title = %q after rejected batch, want untouched Guitar", got)
	}
	if kind := srv.app.Resolved().Context("ByAuthor:picasso").Def.Access.Kind(); kind != "indexed-guided-tour" {
		t.Errorf("structure = %q after rejected writes, want untouched", kind)
	}
}

// TestAPIDocumentPatch drives a live content edit through the control
// plane: the document's pages rotate, unrelated documents keep
// revalidating.
func TestAPIDocumentPatch(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))
	guitarTag := firstGet(t, ts.URL+"/data/guitar.xml")
	otherTag := firstGet(t, ts.URL+"/data/memory.xml")

	resp := apiDo(t, http.MethodPatch, ts.URL+api.BasePath+"/documents/guitar",
		testToken, `{"set":{"technique":"Sheet metal and wire"}}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PATCH = %d: %s", resp.StatusCode, body)
	}
	var res api.MutationResult
	decodeBody(t, resp, &res)
	if res.Document != "guitar.xml" {
		t.Errorf("result document = %q", res.Document)
	}

	after := condGet(t, ts.URL+"/data/guitar.xml", guitarTag)
	if after.StatusCode != http.StatusOK {
		t.Fatalf("edited document = %d, want 200 with new content", after.StatusCode)
	}
	if body, _ := io.ReadAll(after.Body); !strings.Contains(string(body), "Sheet metal and wire") {
		t.Errorf("edited document does not carry the new value:\n%s", body)
	}
	if resp := condGet(t, ts.URL+"/data/memory.xml", otherTag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("unrelated document after edit = %d, want 304", resp.StatusCode)
	}
}

// TestAPIStylesheetRoundTrip: PUT serves back byte-identical XML on
// GET, DELETE restores the built-in presentation.
func TestAPIStylesheetRoundTrip(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))
	src := `<s:stylesheet xmlns:s="urn:repro:style">
  <s:template match="Painting">
    <html><body><h1><s:value-of select="title"/></h1></body></html>
  </s:template>
</s:stylesheet>`

	if resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/stylesheet", testToken, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before any PUT = %d, want 404 (built-in presentation)", resp.StatusCode)
	}
	pageTag := firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")

	resp := apiDo(t, http.MethodPut, ts.URL+api.BasePath+"/stylesheet", testToken, src)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT stylesheet = %d: %s", resp.StatusCode, body)
	}
	resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/stylesheet", testToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %d", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); string(body) != src {
		t.Errorf("stylesheet round trip lost bytes:\n%s", body)
	}
	// Member pages re-weave through the new stylesheet.
	if resp := condGet(t, ts.URL+"/ByAuthor/picasso/guitar.html", pageTag); resp.StatusCode != http.StatusOK {
		t.Errorf("page after stylesheet PUT = %d, want 200", resp.StatusCode)
	}

	if resp := apiDo(t, http.MethodDelete, ts.URL+api.BasePath+"/stylesheet", testToken, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/stylesheet", testToken, ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE = %d, want 404", resp.StatusCode)
	}
}

// TestAPIMethodAwareness: API resources answer disallowed methods with
// 405 and a per-resource Allow header; serving routes do the same with
// their GET/HEAD surface — the two route classes disagree about
// methods, correctly.
func TestAPIMethodAwareness(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPut, api.BasePath + "/model", "GET, HEAD"},
		{http.MethodDelete, api.BasePath + "/contexts", "GET, HEAD"},
		{http.MethodPost, api.BasePath + "/contexts/ByAuthor/structure", "GET, HEAD, PUT"},
		{http.MethodGet, api.BasePath + "/snapshot", "POST"},
		{http.MethodGet, api.BasePath + "/adapt", "POST"},
		{http.MethodPost, api.BasePath + "/stylesheet", "GET, HEAD, PUT, DELETE"},
		{http.MethodPut, api.BasePath + "/documents/guitar", "PATCH"},
	}
	for _, tc := range cases {
		resp := apiDo(t, tc.method, ts.URL+tc.path, testToken, "")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
	// A serving route still refuses non-GET/HEAD with its own Allow.
	resp := apiDo(t, http.MethodPut, ts.URL+"/ByAuthor/picasso/guitar.html", "", "x")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("serving route PUT = %d Allow=%q, want 405 with GET, HEAD",
			resp.StatusCode, resp.Header.Get("Allow"))
	}
	// HEAD rides GET on API resources.
	resp = apiDo(t, http.MethodHead, ts.URL+api.BasePath+"/model", testToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD model = %d, want 200", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Errorf("HEAD carried a body")
	}
}

// TestAPINoStore: operational endpoints must never be cached by
// intermediaries.
func TestAPINoStore(t *testing.T) {
	srv, ts := apiTestServer(t, WithAPIToken(testToken),
		WithAnalytics(analytics.NewRecorder(analytics.RecorderConfig{})))
	_ = srv
	for _, path := range []string{
		"/healthz", "/stats", "/arcs?node=guitar",
		api.BasePath + "/model", api.BasePath + "/contexts",
	} {
		resp := apiDo(t, http.MethodGet, ts.URL+path, testToken, "")
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", path, cc)
		}
	}
	// Errors carry it too — a cached 401 would pin a fixed token out.
	resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/model", "", "")
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("API error Cache-Control = %q, want no-store", cc)
	}
}

// TestAPIModelAndContexts: the read surface exposes the same artifact
// SpecText renders and the resolved-context inventory.
func TestAPIModelAndContexts(t *testing.T) {
	srv, ts := apiTestServer(t, WithAPIToken(testToken))
	resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/model", testToken, "")
	var m api.Model
	decodeBody(t, resp, &m)
	if m.SpecText != srv.app.SpecText() {
		t.Errorf("model spec text differs from the live artifact:\n%s", m.SpecText)
	}
	if !strings.Contains(m.SpecText, "access=indexed-guided-tour") {
		t.Errorf("spec text lacks the access declaration:\n%s", m.SpecText)
	}
	if len(m.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(m.Families))
	}
	for _, fam := range m.Families {
		if fam.Access == nil || fam.Access.Kind != "indexed-guided-tour" {
			t.Errorf("family %s access spec = %+v", fam.Name, fam.Access)
		}
	}

	resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/contexts", testToken, "")
	var contexts []api.Context
	decodeBody(t, resp, &contexts)
	byName := map[string]api.Context{}
	for _, c := range contexts {
		byName[c.Name] = c
	}
	picasso, ok := byName["ByAuthor:picasso"]
	if !ok || picasso.Members != 3 || !picasso.HasHub || picasso.Family != "ByAuthor" {
		t.Errorf("ByAuthor:picasso = %+v", picasso)
	}
}

// TestAPISnapshotAndAdapt: the operational POSTs answer 409 when their
// subsystem is absent and succeed when it is wired.
func TestAPISnapshotAndAdapt(t *testing.T) {
	t.Run("absent subsystems conflict", func(t *testing.T) {
		_, ts := apiTestServer(t, WithAPIToken(testToken))
		wantAPIError(t, apiDo(t, http.MethodPost, ts.URL+api.BasePath+"/snapshot", testToken, ""),
			http.StatusConflict)
		wantAPIError(t, apiDo(t, http.MethodPost, ts.URL+api.BasePath+"/adapt", testToken, ""),
			http.StatusConflict)
	})
	t.Run("wired subsystems respond", func(t *testing.T) {
		store := storage.NewMem()
		rec := analytics.NewRecorder(analytics.RecorderConfig{})
		_, ts := apiTestServer(t, WithAPIToken(testToken),
			WithPersistence(store), WithAnalytics(rec))
		resp := apiDo(t, http.MethodPost, ts.URL+api.BasePath+"/snapshot", testToken, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot = %d", resp.StatusCode)
		}
		var snap api.SnapshotResult
		decodeBody(t, resp, &snap)
		if snap.Documents == 0 || snap.Store != "mem" {
			t.Errorf("snapshot result = %+v", snap)
		}
		if _, err := core.LoadSnapshotRepository(store); err != nil {
			t.Errorf("snapshot not loadable: %v", err)
		}

		rec.Record("ByAuthor:picasso", analytics.EntryFrom, "guernica")
		resp = apiDo(t, http.MethodPost, ts.URL+api.BasePath+"/adapt", testToken, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("adapt = %d", resp.StatusCode)
		}
		var ad api.AdaptResult
		decodeBody(t, resp, &ad)
		if ad.AdaptGeneration != 1 {
			t.Errorf("adapt result = %+v, want generation 1", ad)
		}

		// The graph export reflects the recorded hop in full.
		resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/analytics/graph", testToken, "")
		var g api.Graph
		decodeBody(t, resp, &g)
		if !g.Analytics || g.Hops != 1 || g.Contexts["ByAuthor:picasso"].Entries["guernica"] != 1 {
			t.Errorf("graph = %+v", g)
		}
	})
}

// TestAPIUnknownVersionAndResource: /api/v2 and unknown v1 resources
// are structured 404s.
func TestAPIUnknownVersionAndResource(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))
	wantAPIError(t, apiDo(t, http.MethodGet, ts.URL+"/api/v2/model", testToken, ""),
		http.StatusNotFound)
	wantAPIError(t, apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/teapots", testToken, ""),
		http.StatusNotFound)
	resp := apiDo(t, http.MethodGet, ts.URL+api.BasePath, testToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s = %d, want the endpoint index", api.BasePath, resp.StatusCode)
	}
}
