package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Allocation budgets for the hot serve path. The pre-overhaul path
// (per-request serialization, hashing and string→byte copying) measured
// 10 allocs/op for a cached page and ~890 for links.xml; with bodies,
// ETags and lengths precomputed at weave time the remainder is header
// bookkeeping and the session step. The guards keep regressions from
// sneaking the serialization back onto the request path.
const (
	maxPageServeAllocs = 9
	maxDocServeAllocs  = 8
)

// serveAllocs measures allocations per ServeHTTP of one request.
func serveAllocs(t *testing.T, srv *Server, req *http.Request) float64 {
	t.Helper()
	w := &discardWriter{h: http.Header{}}
	w.reset()
	srv.ServeHTTP(w, req) // warm the caches outside the measurement
	return testing.AllocsPerRun(200, func() {
		w.reset()
		srv.ServeHTTP(w, req)
	})
}

// TestServeHotPathAllocs guards the per-request allocation count of the
// cached-page serve path.
func TestServeHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	srv, _ := testServer(t)
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d", rec.Code)
	}
	req := newRequest("/ByAuthor/picasso/guitar.html", rec.cookie())
	if avg := serveAllocs(t, srv, req); avg > maxPageServeAllocs {
		t.Errorf("hot page serve = %.1f allocs/op, budget %d", avg, maxPageServeAllocs)
	}
}

// TestServeHotPathAllocsTraced: the same hot cached serve with tracing
// enabled and the request unsampled — the ISSUE's zero-extra-allocation
// guarantee. The span slot is pooled, the sampling decision is an
// atomic add, and no Traceparent header is emitted, so the budget is
// the untraced one.
func TestServeHotPathAllocsTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	app := testApp(t)
	srv := New(app, WithTracing(obs.NewTracer(obs.TraceConfig{
		SampleEvery: 0, SlowThreshold: time.Hour, RingSize: 16,
	})))
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d", rec.Code)
	}
	req := newRequest("/ByAuthor/picasso/guitar.html", rec.cookie())
	if avg := serveAllocs(t, srv, req); avg > maxPageServeAllocs {
		t.Errorf("traced hot page serve = %.1f allocs/op, budget %d", avg, maxPageServeAllocs)
	}
}

// TestServeDocAllocs guards the linkbase and data-document serve paths,
// which must not re-serialize per request.
func TestServeDocAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	srv, _ := testServer(t)
	for _, path := range []string{"/links.xml", "/data/guitar.xml"} {
		if avg := serveAllocs(t, srv, newRequest(path, "")); avg > maxDocServeAllocs {
			t.Errorf("%s serve = %.1f allocs/op, budget %d", path, avg, maxDocServeAllocs)
		}
	}
}

// TestEtagMatchesAllocs: revalidation header matching walks the
// candidate list in place — no strings.Split slice per request.
func TestEtagMatchesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	inm := `"g1-aaa", W/"g2-bbb", "g3-ccc"`
	if avg := testing.AllocsPerRun(1000, func() {
		if !etagMatches(inm, `"g3-ccc"`) {
			t.Fatal("no match")
		}
	}); avg != 0 {
		t.Errorf("etagMatches = %.2f allocs/op, want 0", avg)
	}
}

// TestEnqueueSteadyStateAllocs: marking an already-dirty session dirty
// again — the common case, every request re-enqueues its session — must
// not allocate.
func TestEnqueueSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	f := newFlusher(storage.NewMem(), 0, time.Now, 1<<20, time.Hour, DefaultRetryLimit, newBreaker(0))
	defer f.close()
	// A tombstone enqueue exercises the same path as a state write: one
	// map assignment under the lock.
	f.enqueue("s1", nil)
	if avg := testing.AllocsPerRun(1000, func() {
		f.enqueue("s1", nil)
	}); avg != 0 {
		t.Errorf("steady-state enqueue = %.2f allocs/op, want 0", avg)
	}
}
