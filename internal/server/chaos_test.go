package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/faultstore"
)

// faultServer builds a write-behind server over a fault-injecting store,
// with the breaker at its most sensitive so one failed flush flips
// degraded mode.
func faultServer(t *testing.T, opts ...Option) (*Server, *faultstore.Store) {
	t.Helper()
	fs := faultstore.New(storage.NewMem(), 1)
	srv := writeBehindServer(t, fs, append([]Option{WithBreakerThreshold(1)}, opts...)...)
	return srv, fs
}

// scanSessions returns the persisted session records keyed by id.
func scanSessions(t *testing.T, st storage.Store) map[string]sessionRecord {
	t.Helper()
	out := map[string]sessionRecord{}
	err := st.Scan(sessionKeyPrefix, func(key string, value []byte) error {
		var rec sessionRecord
		if err := json.Unmarshal(value, &rec); err != nil {
			return err
		}
		out[strings.TrimPrefix(key, sessionKeyPrefix)] = rec
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// readyStatus hits /readyz and returns the HTTP status plus the decoded
// body.
func readyStatus(t *testing.T, srv *Server) (int, map[string]string) {
	t.Helper()
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/readyz", ""))
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body %q: %v", rec.Body.String(), err)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("readyz Cache-Control = %q, want no-store", cc)
	}
	return rec.Code, body
}

// TestDegradedModeServesHotPages is the end-to-end chaos scenario: with
// the store rejecting every Put, hot cached pages keep answering 200,
// /readyz flips to 503, /healthz reports degraded with a cause — and
// once the store recovers, the retry queue drains with zero sessions
// lost.
func TestDegradedModeServesHotPages(t *testing.T) {
	srv, fs := faultServer(t)

	// Three visitors walk the tour while the store is healthy enough to
	// take reads (rehydration) but will reject all writes.
	if err := fs.Configure("put:rate=1"); err != nil {
		t.Fatal(err)
	}
	cookies := make([]string, 3)
	for i := range cookies {
		c := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
		cookies[i] = step(t, srv, "/go/next", c)
	}

	// The flush hits the dead store: everything moves to the retry
	// queue and the breaker opens.
	srv.FlushSessions()
	if degraded, cause := srv.Degraded(); !degraded || cause == "" {
		t.Fatalf("Degraded() = (%v, %q), want open breaker with a cause", degraded, cause)
	}
	if queued, dropped := srv.RetryStats(); queued != len(cookies) || dropped != 0 {
		t.Fatalf("RetryStats = (%d, %d), want (%d, 0)", queued, dropped, len(cookies))
	}

	// Hot cached reads keep serving: degraded mode sheds durability, not
	// traffic.
	for _, c := range cookies {
		rec := newRecorder()
		srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guernica.html", c))
		if rec.Code != http.StatusOK {
			t.Fatalf("hot page while degraded = %d, want 200", rec.Code)
		}
	}

	// /readyz pulls the instance out of rotation; /healthz (liveness)
	// stays 200 but reports the degradation and its cause.
	if code, body := readyStatus(t, srv); code != http.StatusServiceUnavailable ||
		body["status"] != "degraded" || body["cause"] == "" {
		t.Errorf("readyz while degraded = %d %v, want 503 degraded with cause", code, body)
	}
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/healthz", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while degraded = %d, want 200 (liveness, not readiness)", rec.Code)
	}
	var health struct {
		Status        string `json:"status"`
		DegradedCause string `json:"degraded_cause"`
		PersistQueue  int    `json:"persist_queue"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	// The hot reads above re-enqueued each session's fresh state,
	// superseding its retry entry — so the pending writes now sit in the
	// dirty queue, not the retry queue.
	if health.Status != "degraded" || health.DegradedCause == "" || health.PersistQueue != len(cookies) {
		t.Errorf("healthz payload = %+v, want degraded with cause and %d dirty", health, len(cookies))
	}

	// The store recovers; the next drain lands every queued write.
	fs.Recover()
	srv.FlushSessions()

	if degraded, _ := srv.Degraded(); degraded {
		t.Error("still degraded after a successful flush")
	}
	if code, body := readyStatus(t, srv); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("readyz after recovery = %d %v, want 200 ready", code, body)
	}
	if queued, dropped := srv.RetryStats(); queued != 0 || dropped != 0 {
		t.Errorf("RetryStats after recovery = (%d, %d), want (0, 0)", queued, dropped)
	}
	recs := scanSessions(t, fs)
	if len(recs) != len(cookies) {
		t.Fatalf("persisted %d sessions, want %d — sessions lost across the outage", len(recs), len(cookies))
	}
	for _, c := range cookies {
		rec, ok := recs[c]
		if !ok {
			t.Fatalf("session %s lost across the outage", c)
		}
		// Each visitor took three steps (avignon, next, plus the hot
		// guernica read above); the record must carry the final state,
		// not the one that existed when the write first failed.
		if len(rec.State.History) != 3 {
			t.Errorf("session %s persisted %d visits, want 3 (latest state)", c, len(rec.State.History))
		}
	}
}

// TestFlakyStoreLosesNoSessions is the regression test for the silent
// session-loss bug: write used to ignore Put/Delete errors, so a
// transiently failing store dropped trails on the floor. Now a flaky
// store — every write fails a few times before landing — must not lose
// a single session.
func TestFlakyStoreLosesNoSessions(t *testing.T) {
	srv, fs := faultServer(t)
	const visitors = 8
	cookies := make([]string, visitors)
	for i := range cookies {
		cookies[i] = step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	}

	fs.Fail(faultstore.OpPut, 2*visitors) // every first (and second) attempt fails
	srv.FlushSessions()                   // all writes fail → retry queue
	if queued, _ := srv.RetryStats(); queued == 0 {
		t.Fatal("no retries queued — fault injection did not engage")
	}
	srv.FlushSessions() // still failing for some, then the script runs out
	srv.FlushSessions() // everything lands

	if queued, dropped := srv.RetryStats(); queued != 0 || dropped != 0 {
		t.Fatalf("RetryStats = (%d, %d) after recovery, want (0, 0)", queued, dropped)
	}
	recs := scanSessions(t, fs)
	if len(recs) != visitors {
		t.Fatalf("persisted %d sessions, want %d", len(recs), visitors)
	}
	for _, c := range cookies {
		if _, ok := recs[c]; !ok {
			t.Errorf("session %s lost", c)
		}
	}
}

// TestRetryQueueBounded: when the store stays dead and the retry queue
// fills, the oldest entry is dropped and counted — memory stays bounded
// under unbounded failure.
func TestRetryQueueBounded(t *testing.T) {
	srv, fs := faultServer(t, WithRetryLimit(2))
	if err := fs.Configure("put:rate=1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	}
	srv.FlushSessions()
	queued, dropped := srv.RetryStats()
	if queued != 2 {
		t.Errorf("retry queue = %d, want 2 (the limit)", queued)
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2 (oldest evicted)", dropped)
	}
}

// TestFreshStateSupersedesRetry: a session whose failed write is
// awaiting retry takes another step; the retry entry is replaced by the
// fresh state, and exactly the final state is what persists.
func TestFreshStateSupersedesRetry(t *testing.T) {
	srv, fs := faultServer(t)
	if err := fs.Configure("put:rate=1"); err != nil {
		t.Fatal(err)
	}
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	srv.FlushSessions() // fails → retry queue
	if queued, _ := srv.RetryStats(); queued != 1 {
		t.Fatal("expected one queued retry")
	}

	cookie = step(t, srv, "/go/next", cookie) // fresh state supersedes the retry
	if queued, _ := srv.RetryStats(); queued != 0 {
		t.Error("retry entry should have been superseded by the fresh enqueue")
	}

	fs.Recover()
	srv.FlushSessions()
	recs := scanSessions(t, fs)
	rec, ok := recs[cookie]
	if !ok {
		t.Fatal("session not persisted after recovery")
	}
	if rec.State.NodeID != "guitar" {
		t.Errorf("persisted position = %q, want guitar (the superseding state)", rec.State.NodeID)
	}
}

// TestEvictionTombstoneRetries: a Delete the store rejects is retried
// like a Put — an evicted session's record must not survive a transient
// outage.
func TestEvictionTombstoneRetries(t *testing.T) {
	fs := faultstore.New(storage.NewMem(), 1)
	clock := time.Now()
	now := func() time.Time { return clock }
	srv := writeBehindServer(t, fs,
		WithBreakerThreshold(1), WithSessionTTL(time.Minute), withClock(now))

	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	srv.FlushSessions() // record lands while healthy
	if _, err := fs.Get(sessionKeyPrefix + cookie); err != nil {
		t.Fatal(err)
	}

	fs.Fail(faultstore.OpDelete, 1)
	clock = clock.Add(2 * time.Minute)
	if n := srv.EvictExpiredSessions(); n != 1 {
		t.Fatalf("evicted = %d, want 1", n)
	}
	srv.FlushSessions() // tombstone fails → retry queue
	if _, err := fs.Get(sessionKeyPrefix + cookie); err != nil {
		t.Fatal("record vanished while the delete was failing:", err)
	}
	srv.FlushSessions() // retry promoted, delete lands
	if _, err := fs.Get(sessionKeyPrefix + cookie); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("evicted record survives the flaky delete: err=%v", err)
	}
}

// TestBreakerThreshold: the breaker needs threshold consecutive
// failures to open, and a single success closes it.
func TestBreakerThreshold(t *testing.T) {
	b := newBreaker(3)
	b.fail("x")
	b.fail("x")
	if degraded, _ := b.state(); degraded {
		t.Fatal("breaker open below threshold")
	}
	b.fail("store down")
	if degraded, cause := b.state(); !degraded || cause != "store down" {
		t.Fatalf("state = (%v, %q), want open with cause", degraded, cause)
	}
	b.ok()
	if degraded, _ := b.state(); degraded {
		t.Fatal("breaker still open after a success")
	}
	// Failures after the reset start counting from zero again.
	b.fail("y")
	b.fail("y")
	if degraded, _ := b.state(); degraded {
		t.Fatal("consecutive-failure count not reset by success")
	}
}
